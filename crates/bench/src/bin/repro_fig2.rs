//! Reproduces Fig. 2: the evolution of the Hessian-norm probe ‖Hz‖ across
//! training (a) and the late-training generalization gap (b) for HERO,
//! GRAD-L1 and SGD.

use hero_bench::{banner, emit_artifact, scale_from_args};
use hero_core::experiment::run_fig2;
use hero_core::report::render_fig2;

fn main() {
    hero_obs::init_from_env("repro_fig2");
    let scale = scale_from_args();
    banner("Fig. 2 (Hessian norm and generalization gap)", scale);
    let fig = run_fig2(scale).expect("fig 2 runs");
    emit_artifact("fig2", render_fig2(&fig));
    hero_obs::finish();
}
