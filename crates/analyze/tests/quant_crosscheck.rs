//! Cross-validation of the static quantization-clip lint against
//! `hero-quant`'s actual quantizer.
//!
//! The contract under test: if a tensor *empirically* clips under 4-bit
//! symmetric quantization (some element lands more than half a bin away
//! from its dequantized value), then the interval pass must have flagged
//! it *statically* — the static clip set is a superset of the empirical
//! one, with no false negatives. The reverse direction is not required
//! (intervals over-approximate), but the test also checks the lint is not
//! vacuously flagging everything.

use hero_analyze::{interval_pass, quant_clip_risk, RangeSeed};
use hero_autodiff::{Graph, Var};
use hero_quant::{quant_error, quantize_tensor, QuantScheme};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::Tensor;

const BITS: u8 = 4;

#[test]
fn static_clip_set_covers_empirical_clip_set_at_4_bits() {
    let mut rng = StdRng::seed_from_u64(0x0C11);
    let mut g = Graph::new();
    let mut vars: Vec<Var> = Vec::new();
    let mut seeds = Vec::new();
    let mut seeded_input = |g: &mut Graph, t: Tensor, lo: f32, hi: f32| {
        let v = g.input(t);
        seeds.push(RangeSeed {
            node: v.index(),
            lo,
            hi,
        });
        v
    };

    // Batch data: uniform in [-1, 1] — a well-behaved distribution.
    let x = {
        let r = &mut rng;
        seeded_input(
            &mut g,
            Tensor::from_fn([16, 12], |_| r.gen_range(-1.0f32..=1.0)),
            -1.0,
            1.0,
        )
    };
    // First weight: mostly small, with ~5% heavy outliers — the classic
    // shape that makes a percentile-calibrated quantizer clip.
    let w1 = {
        let r = &mut rng;
        seeded_input(
            &mut g,
            Tensor::from_fn([12, 10], |_| {
                if r.gen_range(0..20usize) == 0 {
                    let s = if r.gen::<bool>() { 1.0 } else { -1.0 };
                    s * r.gen_range(2.0f32..=3.0)
                } else {
                    r.gen_range(-0.2f32..=0.2)
                }
            }),
            -3.0,
            3.0,
        )
    };
    // Bias: tight, nearly constant range — must NOT clip.
    let b1 = {
        let r = &mut rng;
        seeded_input(
            &mut g,
            Tensor::from_fn([10], |_| r.gen_range(0.2f32..=0.3)),
            0.2,
            0.3,
        )
    };
    let w2 = {
        let r = &mut rng;
        seeded_input(
            &mut g,
            Tensor::from_fn([10, 4], |_| {
                if r.gen_range(0..10usize) == 0 {
                    r.gen_range(1.5f32..=2.5)
                } else {
                    r.gen_range(-0.3f32..=0.3)
                }
            }),
            -2.5,
            2.5,
        )
    };
    vars.extend([x, w1, b1, w2]);

    let h = g.matmul(x, w1).unwrap();
    let z = g.add(h, b1).unwrap();
    let a = g.relu(z);
    let logits = g.matmul(a, w2).unwrap();
    let labels: Vec<usize> = (0..16).map(|_| rng.gen_range(0..4usize)).collect();
    let loss = g.cross_entropy(logits, &labels).unwrap();
    vars.extend([h, z, a, logits, loss]);

    let tape = g.trace();
    let intervals = interval_pass(&tape, &seeds);

    let half_levels = ((1u32 << (BITS - 1)) - 1) as f32;
    let scheme = QuantScheme::symmetric(BITS).unwrap().with_percentile(0.9);
    let mut empirically_clipped = Vec::new();
    let mut statically_clean = Vec::new();
    for &v in &vars {
        let t = g.value(v);
        if t.numel() < 8 {
            continue;
        }
        let q = quantize_tensor(t, &scheme).unwrap();
        let delta = q.max_bin_width();
        if delta <= 0.0 {
            continue;
        }
        // The quantizer's actual symmetric clip range, recovered from the
        // grid it chose: max_abs = Δ · (2^(b−1) − 1).
        let clip_range = delta * half_levels;
        let err = quant_error(t, &q.values).unwrap();
        let clips = err.linf > delta / 2.0 + 1e-6;
        let flagged = quant_clip_risk(intervals[v.index()], BITS, clip_range);
        if clips {
            assert!(
                flagged,
                "node #{} ({}) clips empirically (linf {:e} > Δ/2 {:e}) but the \
                 static lint missed it (interval [{:e}, {:e}], clip range {clip_range:e})",
                v.index(),
                tape[v.index()].op,
                err.linf,
                delta / 2.0,
                intervals[v.index()].lo,
                intervals[v.index()].hi,
            );
            empirically_clipped.push(v.index());
        }
        if !flagged {
            statically_clean.push(v.index());
        }
    }
    // The exercise is only meaningful if both populations exist: some
    // tensors really clip (and are caught), some are statically clean
    // (the lint is not crying wolf on everything).
    assert!(
        !empirically_clipped.is_empty(),
        "no tensor clipped empirically; the cross-check is vacuous"
    );
    assert!(
        !statically_clean.is_empty(),
        "every tensor was statically flagged; the lint has no specificity"
    );
    g.reset();
}

#[test]
fn clip_risk_threshold_is_monotone_in_bits() {
    // If a tensor clips at 4 bits it must also be reported at every
    // narrower width for the same clip range: Δ grows as bits shrink, so
    // the flag can only get easier to trip.
    let iv = hero_analyze::Interval::of(-2.0, 2.0);
    let clip_range = 1.0;
    assert!(quant_clip_risk(iv, 4, clip_range));
    assert!(quant_clip_risk(iv, 3, clip_range));
    assert!(quant_clip_risk(iv, 2, clip_range));
}
