//! Convolutional layers: standard and depthwise.

use crate::module::{Layer, ParamInfo, ParamKind, ParamSource};
use hero_autodiff::{Graph, Var};
use hero_tensor::rng::Rng;
use hero_tensor::{ConvGeometry, Init, Result, Tensor};

/// 2-D convolution with a square kernel over NCHW inputs.
///
/// Weights are stored flattened as `(out_c, in_c*k*k)` — the layout
/// [`Graph::conv2d`] consumes directly. Convolutions are bias-free (the
/// paper's architectures all follow them with batch norm).
#[derive(Debug, Clone)]
pub struct Conv2d {
    w: Tensor,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_c * kernel * kernel;
        Conv2d {
            w: Init::KaimingNormal { fan_in }.tensor([out_c, fan_in], rng),
            in_c,
            out_c,
            kernel,
            stride,
            pad,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, g: &mut Graph, x: Var, _train: bool, vars: &mut Vec<Var>) -> Result<Var> {
        let dims = g.value(x).dims().to_vec();
        let geom = ConvGeometry::new(dims[2], dims[3], self.kernel, self.stride, self.pad)?;
        let w = g.input(self.w.clone_pooled());
        vars.push(w);
        g.conv2d(x, w, geom)
    }

    fn collect_params(&self, out: &mut Vec<Tensor>) {
        out.push(self.w.clone());
    }

    fn assign_params(&mut self, src: &mut ParamSource<'_>) -> Result<()> {
        src.copy_into(&mut self.w)?;
        Ok(())
    }

    fn param_infos(&self, prefix: &str, out: &mut Vec<ParamInfo>) {
        out.push(ParamInfo {
            name: format!("{prefix}.weight"),
            kind: ParamKind::Weight,
        });
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Depthwise 2-D convolution (`groups == channels`), the core of
/// MobileNet-style blocks. Weights are `(c, k, k)`.
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    w: Tensor,
    channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

impl DepthwiseConv2d {
    /// Creates a Kaiming-initialized depthwise convolution.
    pub fn new(
        channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = kernel * kernel;
        DepthwiseConv2d {
            w: Init::KaimingNormal { fan_in }.tensor([channels, kernel, kernel], rng),
            channels,
            kernel,
            stride,
            pad,
        }
    }

    /// Channel count (input == output for depthwise).
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, g: &mut Graph, x: Var, _train: bool, vars: &mut Vec<Var>) -> Result<Var> {
        let dims = g.value(x).dims().to_vec();
        let geom = ConvGeometry::new(dims[2], dims[3], self.kernel, self.stride, self.pad)?;
        let w = g.input(self.w.clone_pooled());
        vars.push(w);
        g.depthwise_conv2d(x, w, geom)
    }

    fn collect_params(&self, out: &mut Vec<Tensor>) {
        out.push(self.w.clone());
    }

    fn assign_params(&mut self, src: &mut ParamSource<'_>) -> Result<()> {
        src.copy_into(&mut self.w)?;
        Ok(())
    }

    fn param_infos(&self, prefix: &str, out: &mut Vec<ParamInfo>) {
        out.push(ParamInfo {
            name: format!("{prefix}.weight"),
            kind: ParamKind::Weight,
        });
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_tensor::rng::StdRng;

    #[test]
    fn conv_preserves_spatial_with_same_padding() {
        let mut c = Conv2d::new(3, 8, 3, 1, 1, &mut StdRng::seed_from_u64(0));
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([2, 3, 8, 8]));
        let mut vars = Vec::new();
        let y = c.forward(&mut g, x, true, &mut vars).unwrap();
        assert_eq!(g.value(y).dims(), &[2, 8, 8, 8]);
        assert_eq!(c.out_channels(), 8);
        assert_eq!(c.in_channels(), 3);
    }

    #[test]
    fn strided_conv_halves_spatial() {
        let mut c = Conv2d::new(4, 4, 3, 2, 1, &mut StdRng::seed_from_u64(1));
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([1, 4, 8, 8]));
        let mut vars = Vec::new();
        let y = c.forward(&mut g, x, true, &mut vars).unwrap();
        assert_eq!(g.value(y).dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn conv_rejects_wrong_channels() {
        let mut c = Conv2d::new(3, 8, 3, 1, 1, &mut StdRng::seed_from_u64(2));
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([1, 5, 8, 8]));
        let mut vars = Vec::new();
        assert!(c.forward(&mut g, x, true, &mut vars).is_err());
    }

    #[test]
    fn depthwise_preserves_channel_count() {
        let mut c = DepthwiseConv2d::new(6, 3, 1, 1, &mut StdRng::seed_from_u64(3));
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([2, 6, 4, 4]));
        let mut vars = Vec::new();
        let y = c.forward(&mut g, x, true, &mut vars).unwrap();
        assert_eq!(g.value(y).dims(), &[2, 6, 4, 4]);
        assert_eq!(c.channels(), 6);
    }

    #[test]
    fn params_round_trip() {
        let c = Conv2d::new(2, 4, 3, 1, 1, &mut StdRng::seed_from_u64(4));
        let mut ps = Vec::new();
        c.collect_params(&mut ps);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].dims(), &[4, 18]);
        let mut infos = Vec::new();
        c.param_infos("stem", &mut infos);
        assert_eq!(infos[0].name, "stem.weight");
        assert_eq!(infos[0].kind, ParamKind::Weight);
    }

    #[test]
    fn kaiming_scale_shrinks_with_fan_in() {
        let small = Conv2d::new(1, 64, 3, 1, 1, &mut StdRng::seed_from_u64(5));
        let large = Conv2d::new(64, 64, 3, 1, 1, &mut StdRng::seed_from_u64(5));
        let mut ps_s = Vec::new();
        small.collect_params(&mut ps_s);
        let mut ps_l = Vec::new();
        large.collect_params(&mut ps_l);
        assert!(ps_s[0].variance() > ps_l[0].variance());
    }
}
