//! # hero-nn
//!
//! Neural-network layers and reference models for the HERO (DAC 2022)
//! reproduction: dense, convolutional (standard + depthwise) and batch-norm
//! layers composed into scaled-down stand-ins for the paper's ResNet20,
//! MobileNetV2 and VGG19BN architectures.
//!
//! The central abstractions are [`Layer`] (a block that contributes
//! parameters to an autodiff [`hero_autodiff::Graph`] on each forward pass)
//! and [`Network`] (a complete model exposing the flat canonical-order
//! parameter view the HERO training methods operate on).
//!
//! # Examples
//!
//! ```
//! use hero_nn::models::{mlp, ModelConfig};
//! use hero_nn::loss::loss_and_grads;
//! use hero_tensor::Tensor;
//! use hero_tensor::rng::StdRng;
//!
//! # fn main() -> Result<(), hero_tensor::TensorError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = ModelConfig { classes: 3, in_channels: 1, input_hw: 2, width: 4 };
//! let mut net = mlp(cfg, &[8], &mut rng);
//! let x = Tensor::ones([2, 1, 2, 2]);
//! let out = loss_and_grads(&mut net, &x, &[0, 2])?;
//! assert_eq!(out.grads.len(), net.params().len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod act;
pub mod block;
pub mod checkpoint;
pub mod conv;
pub mod dropout;
pub mod linear;
pub mod loss;
pub mod models;
pub mod module;
pub mod norm;

pub use act::{Activation, AvgPool2d, Flatten, GlobalAvgPool2d, MaxPool2d};
pub use block::{BasicBlock, InvertedResidual};
pub use checkpoint::{load_params, load_params_from_file, save_params, save_params_to_file};
pub use conv::{Conv2d, DepthwiseConv2d};
pub use dropout::Dropout;
pub use linear::Linear;
pub use loss::{
    accuracy, eval_loss, evaluate_accuracy, loss_and_grads, loss_and_grads_smoothed, LossAndGrads,
};
pub use module::{Layer, Network, ParamInfo, ParamKind, ParamSource, Sequential, StateSource};
pub use norm::BatchNorm2d;
