//! Forward quantization-noise propagation over the trace IR.
//!
//! The third abstract domain of `hero-analyze`: given the value intervals
//! from [`crate::interval_pass`] and a set of *noise seeds* — input leaves
//! carrying a symmetric perturbation `|δ| ≤ m` (a weight tensor quantized
//! at `b` bits satisfies `m = Δ(b)/2` with Δ the bin width) — the pass
//! derives, per tape node, a sound interval enclosing the element-wise
//! difference between the perturbed and the unperturbed `f32` forward run:
//!
//! ```text
//!   f(x + δ) − f(x)   ∈   noise[node]      for every admissible δ
//! ```
//!
//! The transfers are affine-arithmetic style: exact first-order error
//! identities where they exist (`mul`, `square`, contractions), global
//! slope intervals via the mean-value theorem for the smooth activations,
//! and dedicated bounds for batch-norm and the losses. Like the value
//! pass, every transfer runs in `f64` and widens outward before narrowing
//! back to `f32`; since *two* concrete runs round independently, every
//! rounding/contraction slack is doubled relative to the value pass and
//! scales with the *value* magnitude at the node (the rounding error of
//! `a+e` is proportional to `|a+e|`, not `|e|`).
//!
//! The contract assumes both runs share all non-seeded state: same batch,
//! same labels, same dropout masks, same batch-norm mode. Nodes whose
//! value interval is unbounded get [`Interval::TOP`] noise — an unbounded
//! signal admits no finite rounding-error bound.
//!
//! At the loss root the propagated interval is a *certified* end-to-end
//! quantization-error bound, which is what `hero-quant` consumes as the
//! static sensitivity matrix `err[layer][bits]`.

use crate::diag::{DiagCode, Diagnostic};
use crate::interval::{Interval, ABS_MARGIN, CONTRACT_MARGIN, REL_MARGIN};
use crate::verify::provenance;
use hero_autodiff::{NodeTrace, TraceDetail};

/// Exactly-zero noise: unseeded leaves are bit-identical across runs.
const ZERO: Interval = Interval {
    lo: 0.0,
    hi: 0.0,
    maybe_nan: false,
};

/// `-ln(1e-12)` rounded up: the per-sample cap the clamped CE loss obeys.
pub(crate) const CE_CAP: f64 = 27.65;

/// A symmetric perturbation `|δ| ≤ magnitude` on an input leaf.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSeed {
    /// Tape index of the perturbed input node.
    pub node: usize,
    /// Element-wise ℓ∞ bound on the perturbation.
    pub magnitude: f32,
}

impl NoiseSeed {
    /// Seed for a weight tensor quantized symmetrically at `bits` with
    /// clip range `max_abs`: half a bin width, widened by the quantizer's
    /// own `f32` rounding headroom.
    pub fn for_quantized_weight(node: usize, max_abs: f32, bits: u8) -> NoiseSeed {
        let half_levels = ((1u64 << u32::from(bits.min(32))) / 2)
            .saturating_sub(1)
            .max(1) as f32;
        let delta = max_abs / half_levels;
        NoiseSeed {
            node,
            magnitude: 0.5 * delta * (1.0 + 1e-4) + 1e-6 * max_abs.max(1e-12),
        }
    }
}

/// Narrows `f64` bounds to an [`Interval`]; NaN bounds give up.
pub(crate) fn span(lo: f64, hi: f64) -> Interval {
    if lo.is_nan() || hi.is_nan() {
        return Interval::TOP;
    }
    Interval {
        lo: lo.min(hi) as f32,
        hi: lo.max(hi) as f32,
        maybe_nan: false,
    }
}

/// Element-wise op output: one rounding per run at magnitude `out_abs`.
pub(crate) fn elem(e: Interval, out_abs: f64) -> Interval {
    if e.maybe_nan || !out_abs.is_finite() {
        return Interval::TOP;
    }
    let slack = 2.0 * (REL_MARGIN * out_abs + ABS_MARGIN);
    span(f64::from(e.lo) - slack, f64::from(e.hi) + slack)
}

/// `K`-term contraction of a per-term error `e`, with both runs' summation
/// slack at term magnitude `term_abs`.
pub(crate) fn contract_err(e: Interval, k: usize, term_abs: f64) -> Interval {
    if e.maybe_nan || !term_abs.is_finite() {
        return Interval::TOP;
    }
    let kf = (k as f64).max(1.0);
    let slack = 2.0 * (kf * kf * CONTRACT_MARGIN * term_abs + ABS_MARGIN);
    span(f64::from(e.lo) * kf - slack, f64::from(e.hi) * kf + slack)
}

/// Mean-style reduction over `k` terms: the mean of per-element errors
/// stays inside `e`; only the accumulation slack (both runs) is added.
pub(crate) fn mean_err(e: Interval, k: usize, term_abs: f64) -> Interval {
    if e.maybe_nan || !term_abs.is_finite() {
        return Interval::TOP;
    }
    let kf = (k as f64).max(1.0);
    let slack = 2.0 * (kf * CONTRACT_MARGIN * term_abs + ABS_MARGIN);
    span(f64::from(e.lo) - slack, f64::from(e.hi) + slack)
}

/// Smallest interval containing `e` and `0` — the image of an error under
/// a monotone 1-Lipschitz clamp (ReLU family, max-pool).
pub(crate) fn hull_zero(e: Interval) -> Interval {
    Interval {
        lo: e.lo.min(0.0),
        hi: e.hi.max(0.0),
        maybe_nan: e.maybe_nan,
    }
}

/// Batch-norm output error. `m` is the per-channel normalization count
/// `n·h·w`, `inv_std_max` the recorded largest `1/√(σ²+ε)`.
///
/// With `u = √(σ²+ε)`, a per-element input perturbation `|δ| ≤ w/2`
/// (width `w = hi−lo` of `e_x`) shifts the channel mean by at most `w`
/// and — since the standard deviation is a 1-Lipschitz seminorm and
/// `std(δ) ≤ w/2` — shifts `u` by at most `d = w/2`. Writing
/// `x̂' − x̂ = x̂·(u−u')/u' + (δ − μ(δ))/u'`:
///
/// ```text
///   |x̂' − x̂|  ≤  (x̂_max·d + w) / (u_min − d)       (refined, batch-specific)
///   |x̂'|, |x̂| ≤  x̂_max = √m                        (input-independent)
/// ```
///
/// The output error `γ'x̂' + β' − γx̂ − β = γ(x̂'−x̂) + e_γ·x̂' + e_β` then
/// takes the tighter of the refined bound and the trivial `2γ_max·x̂_max`
/// fallback (which needs no `u_min` and survives `d ≥ u_min`).
#[allow(clippy::too_many_arguments)]
fn bn_err(
    ex: Interval,
    eg: Interval,
    eb: Interval,
    vg: Interval,
    m: usize,
    inv_std_max: f32,
    out_abs: f64,
) -> Interval {
    if ex.maybe_nan || eg.maybe_nan || eb.maybe_nan {
        return Interval::TOP;
    }
    let mf = m as f64;
    // |x̂| bound including the value pass's own accumulation widening.
    let xhat_max = mf.sqrt() * (1.0 + mf * CONTRACT_MARGIN) + 1e-6;
    let g_abs = f64::from(vg.add(eg).abs_max());
    let eg_abs = f64::from(eg.abs_max());
    let w = f64::from(ex.hi) - f64::from(ex.lo);
    if !w.is_finite() || !g_abs.is_finite() || !out_abs.is_finite() {
        return Interval::TOP;
    }
    let trivial = g_abs * 2.0 * xhat_max + eg_abs * xhat_max;
    let d = w / 2.0;
    // The recorded inv_std rounds once; shrink u_min a hair to cover it.
    let u_min = (1.0 / f64::from(inv_std_max)) * (1.0 - 1e-5);
    let refined = if u_min.is_finite() && u_min > d {
        g_abs * (xhat_max * d + w) / (u_min - d) + eg_abs * xhat_max
    } else {
        f64::INFINITY
    };
    let core = refined.min(trivial);
    let e = span(-core, core).add(eb);
    // Normalization reduces over m terms at x̂-level magnitude, scaled by γ.
    mean_err(e, m, out_abs.max(g_abs * xhat_max))
}

/// Runs the noise pass. `values` must be the interval-pass result for the
/// same tape; `seeds` perturb input leaves (unseeded inputs carry exactly
/// zero noise). Returns one error interval per node.
pub fn noise_pass(tape: &[NodeTrace], values: &[Interval], seeds: &[NoiseSeed]) -> Vec<Interval> {
    hero_obs::counters::ANALYZE_NOISE_PASSES.incr();
    let mut out: Vec<Interval> = Vec::with_capacity(tape.len());
    for (i, node) in tape.iter().enumerate() {
        let e = |slot: usize| -> Interval {
            node.parents
                .get(slot)
                .filter(|&&idx| idx < i)
                .map_or(Interval::TOP, |&idx| out[idx])
        };
        let v = |slot: usize| -> Interval {
            node.parents
                .get(slot)
                .filter(|&&idx| idx < i)
                .map_or(Interval::TOP, |&idx| {
                    values.get(idx).copied().unwrap_or(Interval::TOP)
                })
        };
        let pshape = |slot: usize| -> &[usize] {
            node.parents
                .get(slot)
                .filter(|&&idx| idx < i)
                .map_or(&[][..], |&idx| &tape[idx].shape)
        };
        let numel = |shape: &[usize]| -> usize { shape.iter().product() };
        // Magnitude both runs' outputs stay under: base value interval
        // plus the derived error.
        let own = values.get(i).copied().unwrap_or(Interval::TOP);
        let mag = |ee: Interval| -> f64 { f64::from(own.abs_max()) + f64::from(ee.abs_max()) };
        let scalar_c = match node.detail {
            TraceDetail::Scalar { c } => Some(c),
            _ => None,
        };
        let ev = match node.op {
            "input" => seeds.iter().find(|s| s.node == i).map_or(ZERO, |s| {
                let m = s.magnitude.abs();
                Interval::of(-m, m)
            }),
            "add" => {
                let ee = e(0).add(e(1));
                elem(ee, mag(ee))
            }
            "sub" => {
                let ee = e(0).sub(e(1));
                elem(ee, mag(ee))
            }
            "mul" => {
                // a'b' − ab = a·e_b + e_a·b'   with b' ∈ v₁ ⊕ e₁.
                let ee = v(0).mul(e(1)).add(e(0).mul(v(1).add(e(1))));
                elem(ee, mag(ee))
            }
            "scale" => match scalar_c {
                Some(c) => {
                    let ee = e(0).mul(Interval::point(c));
                    elem(ee, mag(ee))
                }
                None => Interval::TOP,
            },
            "add_scalar" => elem(e(0), mag(e(0))),
            "square" => {
                // (x+δ)² − x² = 2xδ + δ².
                let ee = Interval::point(2.0).mul(v(0)).mul(e(0)).add(e(0).square());
                elem(ee, mag(ee))
            }
            "matmul" => {
                let k = pshape(0).get(1).copied().unwrap_or(0);
                let eprod = v(0).mul(e(1)).add(e(0).mul(v(1).add(e(1))));
                let term = f64::from(v(0).add(e(0)).mul(v(1).add(e(1))).abs_max());
                contract_err(eprod, k, term)
            }
            "conv2d" | "depthwise_conv2d" => {
                let k = match node.detail {
                    TraceDetail::Conv { geom } => {
                        if node.op == "conv2d" {
                            pshape(0).get(1).copied().unwrap_or(0) * geom.kernel * geom.kernel
                        } else {
                            geom.kernel * geom.kernel
                        }
                    }
                    _ => 0,
                };
                if k == 0 {
                    Interval::TOP
                } else {
                    let eprod = v(0).mul(e(1)).add(e(0).mul(v(1).add(e(1))));
                    let term = f64::from(v(0).add(e(0)).mul(v(1).add(e(1))).abs_max());
                    contract_err(eprod, k, term)
                }
            }
            // Monotone 1-Lipschitz clamps are exact in f32; the error can
            // only shrink toward zero.
            "relu" | "relu6" => hull_zero(e(0)),
            // max over a window moves by at most the extreme per-element
            // perturbations; exact in f32.
            "max_pool2d" => e(0),
            "reshape" => e(0),
            "sum" => {
                let k = numel(pshape(0));
                let term = f64::from(v(0).add(e(0)).abs_max());
                contract_err(e(0), k, term)
            }
            "mean" => {
                let k = numel(pshape(0));
                let term = f64::from(v(0).add(e(0)).abs_max());
                mean_err(e(0), k, term)
            }
            "avg_pool2d" => match node.detail {
                TraceDetail::AvgPool { k } => {
                    let term = f64::from(v(0).add(e(0)).abs_max());
                    mean_err(e(0), k * k, term)
                }
                _ => Interval::TOP,
            },
            "global_avg_pool2d" => {
                let xs = pshape(0);
                if xs.len() != 4 {
                    Interval::TOP
                } else {
                    let term = f64::from(v(0).add(e(0)).abs_max());
                    mean_err(e(0), xs[2] * xs[3], term)
                }
            }
            "batch_norm" => {
                let xs = pshape(0);
                match node.detail {
                    TraceDetail::BatchNorm { inv_std_max, .. } if xs.len() == 4 => {
                        let m = xs[0] * xs[2] * xs[3];
                        let core = bn_err(
                            e(0),
                            e(1),
                            e(2),
                            v(1),
                            m,
                            inv_std_max,
                            f64::from(own.abs_max()),
                        );
                        elem(core, mag(core))
                    }
                    _ => Interval::TOP,
                }
            }
            // Per-row CE gradient is softmax − target: ℓ1-norm ≤ 2, so the
            // loss is 2-Lipschitz in ‖δz‖∞ (mean over the batch preserves
            // it); the 1e-12 probability clamp caps any single row at
            // CE_CAP regardless.
            "cross_entropy" | "cross_entropy_smoothed" => {
                let ez = e(0);
                let z_pert = v(0).add(ez);
                if ez.maybe_nan || !z_pert.is_finite() {
                    Interval::TOP
                } else {
                    let classes = pshape(0).get(1).copied().unwrap_or(1).max(1);
                    let batch = pshape(0).first().copied().unwrap_or(1).max(1);
                    let b = (2.0 * f64::from(ez.abs_max())).min(CE_CAP);
                    mean_err(span(-b, b), batch * classes, CE_CAP)
                }
            }
            // Sigmoid/tanh are smooth and monotone: by the mean-value
            // theorem the output error is slope·δ for some slope in the
            // derivative's global range.
            "sigmoid" => {
                let ee = Interval::of(0.0, 0.25).mul(e(0));
                elem(ee, mag(ee))
            }
            "tanh" => {
                let ee = Interval::of(0.0, 1.0).mul(e(0));
                elem(ee, mag(ee))
            }
            "leaky_relu" => match scalar_c {
                Some(s) => {
                    // Piecewise-linear with slopes {s, 1}; a chord between
                    // the two runs has average slope inside their hull.
                    let ee = Interval::of(s.min(1.0), s.max(1.0)).mul(e(0));
                    elem(ee, mag(ee))
                }
                None => Interval::TOP,
            },
            "ln" => {
                // MVT over the union of both runs' ranges U: the
                // derivative 1/x stays within [1/U.hi, 1/U.lo].
                let u = v(0).hull(v(0).add(e(0)));
                if u.lo <= 0.0 || !u.is_finite() {
                    Interval::TOP
                } else {
                    let d = Interval::of(
                        (1.0 / f64::from(u.hi)) as f32,
                        (1.0 / f64::from(u.lo)) as f32,
                    );
                    let ee = d.mul(e(0));
                    elem(ee, mag(ee))
                }
            }
            // Same mask in both runs: each element is scaled by a factor
            // in [0, max_scale].
            "dropout" => match node.detail {
                TraceDetail::Dropout { max_scale } => {
                    let ee = Interval::of(0.0, max_scale).mul(e(0));
                    elem(ee, mag(ee))
                }
                _ => Interval::TOP,
            },
            "mse_loss" => match node.detail {
                TraceDetail::Mse {
                    target_lo,
                    target_hi,
                } => {
                    // ((x+δ−t)² − (x−t)²) = 2(x−t)δ + δ², averaged over N.
                    let d = v(0).sub(Interval::of(target_lo, target_hi));
                    let ee = Interval::point(2.0).mul(d).mul(e(0)).add(e(0).square());
                    let term = f64::from(d.add(e(0)).square().abs_max());
                    mean_err(ee, numel(pshape(0)), term)
                }
                _ => Interval::TOP,
            },
            _ => Interval::TOP,
        };
        out.push(ev);
    }
    out
}

/// Emits the noise-domain lints: [`DiagCode::QuantNoiseDominant`] at the
/// first node where the propagated error bound exceeds the node's own
/// value-interval width (the quantization noise drowns the signal), and
/// [`DiagCode::QuantErrorBudgetExceeded`] at each root whose certified
/// error bound exceeds `budget`.
pub(crate) fn noise_diags(
    tape: &[NodeTrace],
    values: &[Interval],
    noise: &[Interval],
    roots: &[usize],
    budget: Option<f32>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let diag = |node: usize, code: DiagCode, message: String| Diagnostic {
        node,
        op: tape[node].op.to_string(),
        code,
        message,
        provenance: provenance(tape, node),
    };
    let mut dominant = vec![false; tape.len()];
    for (i, node) in tape.iter().enumerate() {
        if node.op == "input" {
            continue;
        }
        let (val, err) = (values[i], noise[i]);
        if !val.is_finite() {
            continue;
        }
        let e_abs = err.abs_max();
        if e_abs > val.width().max(f32::MIN_POSITIVE) {
            dominant[i] = true;
            // Report at the origin only; downstream nodes inherit the
            // problem through propagation, not on their own account.
            let inherited = node.parents.iter().any(|&p| p < i && dominant[p]);
            if !inherited {
                out.push(diag(
                    i,
                    DiagCode::QuantNoiseDominant,
                    format!(
                        "propagated quantization-error bound {e_abs:e} exceeds the node's \
                         value-interval width {:e}; the noise drowns the signal here",
                        val.width()
                    ),
                ));
            }
        }
    }
    if let Some(b) = budget {
        for &r in roots {
            let Some(err) = noise.get(r) else { continue };
            let e_abs = err.abs_max();
            if e_abs > b {
                out.push(diag(
                    r,
                    DiagCode::QuantErrorBudgetExceeded,
                    format!(
                        "certified output-error bound {e_abs:e} exceeds the declared \
                         error budget {b:e}"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{interval_pass, RangeSeed};
    use hero_autodiff::Graph;
    use hero_tensor::Tensor;

    fn seeds_for(g: &Graph) -> Vec<RangeSeed> {
        g.input_ranges()
            .into_iter()
            .map(|(node, lo, hi)| RangeSeed { node, lo, hi })
            .collect()
    }

    #[test]
    fn unseeded_leaves_carry_zero_noise() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(4));
        let y = g.square(x);
        let loss = g.sum(y);
        let tape = g.trace();
        let values = interval_pass(&tape, &seeds_for(&g));
        let noise = noise_pass(&tape, &values, &[]);
        for (i, e) in noise.iter().enumerate() {
            assert!(e.abs_max() < 1e-3, "node {i} picked up phantom noise {e:?}");
        }
        let _ = loss;
    }

    #[test]
    fn seeded_noise_grows_through_a_contraction() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([4, 8], |_| 0.5));
        let w = g.input(Tensor::from_fn([8, 3], |_| 0.1));
        let h = g.matmul(x, w).unwrap();
        let loss = g.sum(h);
        let tape = g.trace();
        let values = interval_pass(&tape, &seeds_for(&g));
        let seed = NoiseSeed {
            node: w.index(),
            magnitude: 0.01,
        };
        let noise = noise_pass(&tape, &values, &[seed]);
        let at_w = noise[w.index()].abs_max();
        let at_h = noise[h.index()].abs_max();
        let at_loss = noise[loss.index()].abs_max();
        assert!((at_w - 0.01).abs() < 1e-6);
        // 8-term contraction at |x| ≤ 0.5: roughly 8·0.5·0.01 = 0.04.
        assert!(at_h > 0.03 && at_h < 0.1, "at_h = {at_h}");
        assert!(at_loss > at_h, "sum should accumulate: {at_loss}");
        assert!(noise[loss.index()].is_finite());
    }

    #[test]
    fn larger_bit_width_certifies_smaller_error() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([4, 8], |_| 0.5));
        let w = g.input(Tensor::from_fn([8, 3], |_| 0.1));
        let h = g.matmul(x, w).unwrap();
        let loss = g.sum(h);
        let tape = g.trace();
        let values = interval_pass(&tape, &seeds_for(&g));
        let bound = |bits: u8| {
            let seed = NoiseSeed::for_quantized_weight(w.index(), 0.1, bits);
            noise_pass(&tape, &values, &[seed])[loss.index()].abs_max()
        };
        assert!(bound(2) > bound(4));
        assert!(bound(4) > bound(8));
    }

    #[test]
    fn relu_and_pool_do_not_amplify() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([1, 1, 4, 4], |_| 0.3));
        let r = g.relu(x);
        let p = g.max_pool2d(r, 2).unwrap();
        let tape = g.trace();
        let values = interval_pass(&tape, &seeds_for(&g));
        let seed = NoiseSeed {
            node: x.index(),
            magnitude: 0.05,
        };
        let noise = noise_pass(&tape, &values, &[seed]);
        assert!(noise[r.index()].abs_max() <= 0.05 + 1e-6);
        assert!(noise[p.index()].abs_max() <= 0.05 + 1e-6);
    }

    #[test]
    fn quantized_weight_seed_magnitude_matches_bin_width() {
        let s = NoiseSeed::for_quantized_weight(0, 1.0, 4);
        // Δ = 1/7 at 4 bits; seed ≈ Δ/2.
        assert!((s.magnitude - 0.5 / 7.0).abs() < 1e-3);
        // Degenerate bit widths stay finite (no shift overflow).
        let wide = NoiseSeed::for_quantized_weight(0, 1.0, 40);
        assert!(wide.magnitude.is_finite());
        let one = NoiseSeed::for_quantized_weight(0, 1.0, 1);
        assert!(one.magnitude.is_finite() && one.magnitude > 0.0);
    }
}
