//! Cost of the observability layer itself. Writes
//! `results/BENCH_overhead.json` (override with `HERO_BENCH_OUT`).
//!
//! Three tiers:
//!
//! * micro rows — one span site and one counter site with tracing
//!   disabled (the steady-state cost every instrumented call pays), plus
//!   the enabled span cost for scale;
//! * a macro row — one full HERO training step with tracing disabled.
//!
//! `scripts/verify.sh` runs this bench twice, once from a default build
//! and once with `--features obs-off`, and requires the macro rows to
//! agree within a few percent: proof that the disabled instrumentation is
//! free. The `obs_off` extra marks which configuration produced the file.

use hero_bench::timing::{bench_out_path, default_budget, time_op, write_json};
use hero_core::experiment::{model_config, MethodKind};
use hero_data::Preset;
use hero_nn::models::ModelKind;
use hero_optim::{train_step, Optimizer};
use hero_tensor::rng::StdRng;

fn main() {
    hero_obs::disable();
    let budget = default_budget();
    let micro_budget = budget / 10;
    let mut rows = Vec::new();

    rows.push(time_op("span_site_disabled", micro_budget, || {
        let _ = std::hint::black_box(hero_obs::span("bench_probe"));
    }));
    rows.push(time_op("counter_site_disabled", micro_budget, || {
        hero_obs::counters::GEMM_CALLS.incr();
    }));
    if !cfg!(feature = "obs-off") {
        hero_obs::enable();
        rows.push(time_op("span_site_enabled", micro_budget, || {
            let _ = std::hint::black_box(hero_obs::span("bench_probe"));
        }));
        hero_obs::disable();
        hero_obs::span::reset();
    }

    // Macro: one full HERO training step, batch 16, tracing disabled —
    // the row the verify-script overhead gate compares across builds.
    let preset = Preset::C10;
    let (train_set, _) = preset.load(0.2);
    let images = train_set.images.narrow(0, 16).unwrap();
    let labels = train_set.labels[..16].to_vec();
    let mut net = ModelKind::Resnet.build(model_config(preset), &mut StdRng::seed_from_u64(0));
    let mut opt = Optimizer::new(MethodKind::Hero.tuned());
    let row = time_op("overhead_step_HERO", budget, || {
        train_step(&mut net, &mut opt, &images, &labels, 0.01).unwrap();
    })
    .with_extra("obs_off", if cfg!(feature = "obs-off") { 1.0 } else { 0.0 });
    rows.push(row);

    let out = bench_out_path(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_overhead.json"
    ));
    write_json(out, &rows).expect("write results");
}
