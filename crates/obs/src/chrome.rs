//! Chrome-trace (`chrome://tracing` / Perfetto) exporter.
//!
//! Serializes captured span events as the Trace Event Format's simple JSON
//! array of complete (`"ph": "X"`) events. Load the written file via
//! `chrome://tracing` → Load, or <https://ui.perfetto.dev>.

use crate::json::JsonObj;
use crate::span::SpanEvent;

/// Serializes events as a Chrome-trace JSON array (timestamps and
/// durations in microseconds, as the format requires).
pub fn to_chrome_json(events: &[SpanEvent]) -> String {
    crate::json::array_lines(events.iter().map(|e| {
        let mut o = JsonObj::new();
        o.str("name", e.name)
            .str("cat", "hero")
            .str("ph", "X")
            .f64("ts", e.start_us as f64)
            .f64("dur", e.dur_ns as f64 / 1e3)
            .u64("pid", 1)
            .u64("tid", e.tid as u64);
        o.finish()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn export_is_a_valid_event_array() {
        let events = vec![
            SpanEvent {
                name: "forward",
                tid: 0,
                start_us: 10,
                dur_ns: 2500,
            },
            SpanEvent {
                name: "backward",
                tid: 1,
                start_us: 13,
                dur_ns: 1000,
            },
        ];
        let v = parse(&to_chrome_json(&events)).expect("parse");
        let arr = v.as_arr().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").and_then(Value::as_str), Some("forward"));
        assert_eq!(arr[0].get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(arr[0].get("dur").and_then(Value::as_f64), Some(2.5));
        assert_eq!(arr[1].get("tid").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn empty_export_is_an_empty_array() {
        assert_eq!(to_chrome_json(&[]), "[\n]\n");
    }
}
