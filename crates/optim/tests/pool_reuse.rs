//! Steady-state allocation test for the training hot path.
//!
//! After a warm-up step has populated the scratch pool (pack panels, matmul
//! outputs, im2col column matrices, graph values, gradients, optimizer
//! workspaces), every subsequent step must be served entirely from recycled
//! buffers: `pool::stats().fresh_allocs` stays at zero across the
//! measurement window. This is the pool-counter proof of the "O(1) new
//! allocations per step" claim in DESIGN.md.

use hero_nn::models::{mini_resnet, mlp, ModelConfig};
use hero_nn::Network;
use hero_optim::{train_step, Method, Optimizer};
use hero_tensor::rng::StdRng;
use hero_tensor::{gemm_pool_reset_stats, gemm_pool_stats, pool, set_gemm_threads, Tensor};

fn toy_batch(n: usize, cfg: &ModelConfig) -> (Tensor, Vec<usize>) {
    let x = Tensor::from_fn([n, cfg.in_channels, cfg.input_hw, cfg.input_hw], |i| {
        let sign = if i[0] % 2 == 0 { 1.0 } else { -1.0 };
        sign * (1.0 + 0.05 * (i[2] + i[3]) as f32)
    });
    let labels: Vec<usize> = (0..n).map(|i| i % cfg.classes).collect();
    (x, labels)
}

fn assert_steady_state_alloc_free(mut net: Network, cfg: &ModelConfig, method: Method) {
    let (x, labels) = toy_batch(4, cfg);
    let mut opt = Optimizer::new(method);
    // Warm-up: the first steps populate the free list and optimizer
    // workspaces (momentum buffers and the method scratch stabilise within
    // three steps; four gives headroom).
    for _ in 0..4 {
        train_step(&mut net, &mut opt, &x, &labels, 0.01).unwrap();
    }
    pool::reset_stats();
    for _ in 0..3 {
        train_step(&mut net, &mut opt, &x, &labels, 0.01).unwrap();
    }
    let stats = pool::stats();
    assert!(stats.leases > 0, "hot path no longer goes through the pool");
    assert_eq!(
        stats.fresh_allocs, 0,
        "steady-state steps performed fresh pool allocations: {stats:?}"
    );
}

#[test]
fn hero_steps_reuse_pool_buffers_on_conv_net() {
    let cfg = ModelConfig {
        classes: 4,
        in_channels: 3,
        input_hw: 8,
        width: 8,
    };
    let net = mini_resnet(cfg, 1, &mut StdRng::seed_from_u64(3));
    assert_steady_state_alloc_free(
        net,
        &cfg,
        Method::Hero {
            h: 0.01,
            gamma: 0.1,
        },
    );
}

#[test]
fn sgd_steps_reuse_pool_buffers_on_mlp() {
    let cfg = ModelConfig {
        classes: 2,
        in_channels: 1,
        input_hw: 4,
        width: 4,
    };
    let net = mlp(cfg, &[16], &mut StdRng::seed_from_u64(5));
    assert_steady_state_alloc_free(net, &cfg, Method::Sgd);
}

#[test]
fn parallel_gemm_workers_reuse_their_own_pack_buffers() {
    // The multicore macro-kernel leases pack buffers from each worker's
    // *own* thread-local pool. Steady state must show zero fresh
    // allocations AND zero foreign_recycles per worker: buffers never
    // cross worker pools, so there is nothing to reject.
    let dim = 256; // 2·256³ flops clears the parallel dispatch threshold
    let a = Tensor::from_fn([dim, dim], |i| {
        ((i[0] * 7 + i[1] * 3) % 11) as f32 / 5.0 - 1.0
    });
    let b = Tensor::from_fn([dim, dim], |i| {
        ((i[0] * 5 + i[1] * 2) % 13) as f32 / 6.0 - 1.0
    });
    set_gemm_threads(Some(2));
    // Warm-up: enough rounds that both workers' free lists hold the pack
    // panel sizes (job→worker assignment is a shared queue, so one round
    // is not a guarantee that every worker saw a chunk).
    for _ in 0..10 {
        let _ = a.matmul(&b).unwrap();
    }
    gemm_pool_reset_stats();
    for _ in 0..5 {
        let _ = a.matmul(&b).unwrap();
    }
    let stats = gemm_pool_stats();
    set_gemm_threads(None);
    assert_eq!(stats.len(), 2, "gemm pool should run two workers");
    assert!(
        stats.iter().any(|s| s.leases > 0),
        "no worker leased pack buffers — parallel path never engaged: {stats:?}"
    );
    for (w, s) in stats.iter().enumerate() {
        assert_eq!(
            s.fresh_allocs, 0,
            "worker {w} performed fresh pack allocations in steady state: {s:?}"
        );
        assert_eq!(
            s.foreign_recycles, 0,
            "worker {w} saw cross-thread recycles: {s:?}"
        );
    }
}

#[test]
fn grad_l1_steps_reuse_pool_buffers() {
    let cfg = ModelConfig {
        classes: 2,
        in_channels: 1,
        input_hw: 4,
        width: 4,
    };
    let net = mlp(cfg, &[16], &mut StdRng::seed_from_u64(5));
    assert_steady_state_alloc_free(net, &cfg, Method::GradL1 { lambda: 0.01 });
}
