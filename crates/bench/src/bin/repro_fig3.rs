//! Reproduces Fig. 3: 2-D loss contours around converged weights for HERO-
//! and SGD-trained ResNet20 stand-ins, along the same filter-normalized
//! random directions and at the same scale.

use hero_bench::{banner, emit_artifact, scale_from_args};
use hero_core::experiment::run_fig3;
use hero_core::report::render_fig3;

fn main() {
    hero_obs::init_from_env("repro_fig3");
    let scale = scale_from_args();
    banner("Fig. 3 (loss contours)", scale);
    let steps = if std::env::args().any(|a| a == "--fast") {
        11
    } else {
        17
    };
    let fig = run_fig3(scale, 1.0, steps).expect("fig 3 runs");
    emit_artifact("fig3", render_fig3(&fig));
    hero_obs::finish();
}
