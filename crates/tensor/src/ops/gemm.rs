//! Packed register-blocked GEMM: explicit-SIMD micro-kernels, a multicore
//! macro-kernel, and fused im2col packing.
//!
//! All matmul variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`, and the fused
//! convolution products over an [`Im2colView`]) route through one
//! [`gemm`] entry point that handles transposition and patch extraction
//! during packing, so the inner loop is always the same branch-free
//! MR×NR micro-kernel over contiguous panels:
//!
//! * **Packing** — for each KC-deep slice of the reduction dimension, a
//!   block of A is repacked into MR-row strips (`strip·kc·MR + kk·MR + r`)
//!   and a block of B into NR-column strips (`strip·kc·NR + kk·NR + j`),
//!   both zero-padded to full strip width. The B source is either a plain
//!   row-major matrix or an [`Im2colView`], in which case patch elements
//!   are sampled straight out of the NCHW input — convolution never
//!   materializes the `(C·k·k, N·oh·ow)` patch matrix.
//! * **Micro-kernels** — two variants behind runtime feature detection
//!   ([`GemmKernel`]): a portable scalar 4×8 kernel (auto-vectorized,
//!   k-loop unrolled 4×, plain mul+add so its sums are bitwise identical
//!   to [`crate::matmul_reference`]'s ascending-k order), and an AVX2/FMA
//!   6×16 kernel holding twelve `f32x8` accumulators in the ymm register
//!   file. The FMA kernel fuses each multiply-add rounding step, so it is
//!   *not* bitwise identical to the scalar kernel — see the tolerance
//!   contract in `crates/tensor/tests/gemm_kernels.rs`.
//! * **Blocking** — loops are ordered jc → pc → ic → jr → ir with cache
//!   blocks NC/KC/MC, so the B panel stays in L2/L3 across the ic loop and
//!   each A strip stays in L1 across the jr loop (the BLIS / GotoBLAS
//!   loop nest).
//! * **Multicore** — when `HERO_THREADS ≥ 2` (or [`set_gemm_threads`])
//!   and the product is large enough, the jc loop is partitioned into
//!   contiguous NR-aligned column chunks scattered over a process-wide
//!   [`WorkerPool`]. Each worker runs the full serial loop nest over its
//!   own chunk with pack buffers leased from its *own* thread-local
//!   [`crate::pool`], and owns a disjoint set of C columns, so there is
//!   no shared mutable packing state and the per-element summation order
//!   is exactly the serial order: parallel output is bitwise identical to
//!   serial output for any thread count.
//!
//! Pack buffers are leased from the thread-local [`crate::pool`], so a
//! steady-state training step performs no fresh pack allocations — on the
//! calling thread and on every GEMM worker alike.

use crate::ops::im2col::{Im2colMeta, Im2colView};
use crate::pool;
use crate::workers::{Job, WorkerPool};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock, PoisonError};

/// Scalar micro-kernel rows: C rows accumulated per inner call.
pub(crate) const MR: usize = 4;
/// Scalar micro-kernel columns: C columns accumulated per inner call.
pub(crate) const NR: usize = 8;
/// Reduction-dimension cache block (sizes the packed panels).
const KC: usize = 256;
/// Row cache block for the scalar kernel — a multiple of `MR`.
const MC: usize = 128;
/// Column cache block for the scalar kernel — a multiple of `NR`.
const NC: usize = 512;

/// AVX2 micro-kernel rows: six broadcast lanes fill the ymm file
/// (6 rows × 2 column registers = 12 accumulators + 1 broadcast + 2 B
/// loads = 15 of 16 registers).
const SIMD_MR: usize = 6;
/// AVX2 micro-kernel columns: two `f32x8` lanes.
const SIMD_NR: usize = 16;
/// Row cache block for the AVX2 kernel — a multiple of `SIMD_MR`.
const SIMD_MC: usize = 126;
/// Column cache block for the AVX2 kernel — a multiple of `SIMD_NR`.
const SIMD_NC: usize = 512;

/// Minimum `2·m·n·k` flop count before [`gemm`] considers fanning the jc
/// loop out to the worker pool; below this the scatter/join round trip
/// costs more than the arithmetic saves.
const PAR_MIN_FLOPS: u64 = 4 << 20;

/// Which micro-kernel the GEMM dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmKernel {
    /// Portable 4×8 kernel: plain mul+add, auto-vectorized. Bitwise
    /// identical to [`crate::matmul_reference`] for the same operands.
    Scalar,
    /// x86-64 6×16 kernel built on `_mm256_fmadd_ps`; requires AVX2+FMA
    /// at runtime. Fused rounding makes it differ from `Scalar` by a few
    /// ULP per dot product.
    Avx2Fma,
}

impl GemmKernel {
    /// Stable identifier used in bench rows and span names.
    pub fn name(self) -> &'static str {
        match self {
            GemmKernel::Scalar => "scalar",
            GemmKernel::Avx2Fma => "avx2fma",
        }
    }

    /// Span name: the kernel variant is an attribute of every GEMM trace
    /// event, expressed as distinct span names since spans carry none.
    fn span_name(self) -> &'static str {
        match self {
            GemmKernel::Scalar => "gemm",
            GemmKernel::Avx2Fma => "gemm_simd",
        }
    }

    fn mr(self) -> usize {
        match self {
            GemmKernel::Scalar => MR,
            GemmKernel::Avx2Fma => SIMD_MR,
        }
    }

    fn nr(self) -> usize {
        match self {
            GemmKernel::Scalar => NR,
            GemmKernel::Avx2Fma => SIMD_NR,
        }
    }

    fn mc(self) -> usize {
        match self {
            GemmKernel::Scalar => MC,
            GemmKernel::Avx2Fma => SIMD_MC,
        }
    }

    fn nc(self) -> usize {
        match self {
            GemmKernel::Scalar => NC,
            GemmKernel::Avx2Fma => SIMD_NC,
        }
    }
}

/// True when this CPU can run the AVX2/FMA micro-kernel.
fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Kernel chosen by runtime detection, honoring the `HERO_NO_SIMD`
/// escape hatch (any value other than `0`/empty disables SIMD for the
/// process — the env var is read once).
fn detected_kernel() -> GemmKernel {
    static DETECTED: OnceLock<GemmKernel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let disabled = std::env::var("HERO_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0");
        if !disabled && simd_supported() {
            GemmKernel::Avx2Fma
        } else {
            GemmKernel::Scalar
        }
    })
}

/// `0` = auto-detect, `1` = force scalar, `2` = force AVX2.
static FORCED_KERNEL: AtomicU8 = AtomicU8::new(0);

/// Overrides runtime kernel detection process-wide (`None` restores
/// auto-detection). Forcing [`GemmKernel::Avx2Fma`] on hardware without
/// AVX2+FMA silently falls back to scalar rather than faulting, so tests
/// and benches can request both variants unconditionally.
pub fn force_gemm_kernel(kernel: Option<GemmKernel>) {
    let v = match kernel {
        None => 0,
        Some(GemmKernel::Scalar) => 1,
        Some(GemmKernel::Avx2Fma) => 2,
    };
    FORCED_KERNEL.store(v, Ordering::Relaxed);
}

/// The micro-kernel the next [`gemm`] call will dispatch to, after the
/// force override, `HERO_NO_SIMD`, and CPU detection are applied.
pub fn active_gemm_kernel() -> GemmKernel {
    match FORCED_KERNEL.load(Ordering::Relaxed) {
        1 => GemmKernel::Scalar,
        2 if simd_supported() => GemmKernel::Avx2Fma,
        2 => GemmKernel::Scalar,
        _ => detected_kernel(),
    }
}

/// Worker-count override; `usize::MAX` means "use `HERO_THREADS`".
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Overrides the GEMM worker count process-wide (`None` restores the
/// `HERO_THREADS` environment value). `0` or `1` keeps the macro-kernel
/// serial. The parallel output is bitwise identical to serial, so this
/// only moves work between threads — it never changes results.
pub fn set_gemm_threads(threads: Option<usize>) {
    THREADS_OVERRIDE.store(threads.unwrap_or(usize::MAX), Ordering::Relaxed);
}

/// Effective GEMM worker count (override, else `HERO_THREADS`, read once).
fn gemm_threads() -> usize {
    let o = THREADS_OVERRIDE.load(Ordering::Relaxed);
    if o != usize::MAX {
        return o;
    }
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("HERO_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

/// The B operand of a [`gemm`] call: either a plain row-major matrix or a
/// virtual im2col patch matrix sampled during packing (the fused path —
/// the full patch matrix never exists in memory).
#[derive(Debug, Clone, Copy)]
pub(crate) enum BSrc<'a> {
    /// A stored `k × n` matrix (`n × k` when `trans`).
    Mat {
        /// Row-major elements.
        data: &'a [f32],
        /// Read the stored matrix as Bᵀ.
        trans: bool,
    },
    /// The virtual patch matrix of an NCHW input: `(C·k·k, N·oh·ow)`
    /// (transposed when `trans`, for the dW = dY·colsᵀ product).
    Cols {
        /// The input-backed view.
        view: Im2colView<'a>,
        /// Read the view as colsᵀ.
        trans: bool,
    },
}

impl BSrc<'_> {
    /// Debug-validates the logical `k × n` shape of this source.
    fn debug_check(&self, k: usize, n: usize) {
        match self {
            BSrc::Mat { data, .. } => debug_assert_eq!(data.len(), k * n),
            BSrc::Cols { view, trans } => {
                let (rows, cols) = if *trans {
                    (view.cols(), view.rows())
                } else {
                    (view.rows(), view.cols())
                };
                debug_assert_eq!((rows, cols), (k, n));
            }
        }
    }
}

#[inline]
fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

/// Packs the `mc × kc` block of A at `(ic, pc)` into `mr`-row strips.
///
/// `lda` is the leading dimension of the stored matrix (`k` for row-major
/// A, `m` when `trans` reads the stored `k × m` matrix as Aᵀ). The final
/// partial strip is zero-padded so the micro-kernel never needs a row
/// bounds check.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    trans: bool,
    lda: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    mr: usize,
) {
    let strips = mc.div_ceil(mr);
    for s in 0..strips {
        let base = s * kc * mr;
        let rows = mr.min(mc - s * mr);
        for kk in 0..kc {
            let at = base + kk * mr;
            for r in 0..rows {
                let (gi, gk) = (ic + s * mr + r, pc + kk);
                dst[at + r] = if trans {
                    a[gk * lda + gi]
                } else {
                    a[gi * lda + gk]
                };
            }
            for r in rows..mr {
                dst[at + r] = 0.0;
            }
        }
    }
}

/// Packs the `kc × nc` block of B at `(pc, jc)` into `nr`-column strips,
/// dispatching on the B source. The final partial strip is zero-padded.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    dst: &mut [f32],
    b: &BSrc<'_>,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
) {
    match b {
        BSrc::Mat { data, trans } => {
            let ldb = if *trans { k } else { n };
            pack_b_mat(dst, data, *trans, ldb, pc, kc, jc, nc, nr);
        }
        BSrc::Cols { view, trans } => pack_b_cols(dst, view, *trans, pc, kc, jc, nc, nr),
    }
}

/// Plain-matrix B packing (`ldb` is `n` row-major, `k` when transposed).
#[allow(clippy::too_many_arguments)]
fn pack_b_mat(
    dst: &mut [f32],
    b: &[f32],
    trans: bool,
    ldb: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
) {
    let strips = nc.div_ceil(nr);
    for s in 0..strips {
        let base = s * kc * nr;
        let cols = nr.min(nc - s * nr);
        for kk in 0..kc {
            let at = base + kk * nr;
            let gk = pc + kk;
            for j in 0..cols {
                let gj = jc + s * nr + j;
                dst[at + j] = if trans {
                    b[gj * ldb + gk]
                } else {
                    b[gk * ldb + gj]
                };
            }
            for j in cols..nr {
                dst[at + j] = 0.0;
            }
        }
    }
}

/// Fused im2col B packing: samples patch elements straight from the NCHW
/// input while building the NR-column strips, so convolution never writes
/// the patch matrix. Index decompositions along the k dimension are
/// precomputed per KC block (one stack table of at most [`KC`] entries).
/// In the forward orientation each packed row is additionally split into
/// same-`(img, oy)` column runs, which are contiguous in the input for
/// stride 1 and become `copy_from_slice` calls — the same streaming the
/// materializing `im2col` does, minus the intermediate matrix.
#[allow(clippy::too_many_arguments)]
fn pack_b_cols(
    dst: &mut [f32],
    view: &Im2colView<'_>,
    trans: bool,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
) {
    debug_assert!(kc <= KC);
    debug_assert!(nr <= SIMD_NR.max(NR));
    let m = &view.meta;
    let (stride, pad, h, w) = (m.stride, m.pad, m.h, m.w);
    let strips = nc.div_ceil(nr);
    let mut kdec = [(0usize, 0usize, 0usize); KC];
    if !trans {
        // B = cols: the k dimension walks patch rows (ch, ky, kx), columns
        // walk output sites (img, oy, ox).
        for (kk, slot) in kdec[..kc].iter_mut().enumerate() {
            *slot = view.row_pos(pc + kk);
        }
        for s in 0..strips {
            let base = s * kc * nr;
            let cols = nr.min(nc - s * nr);
            // Split the strip's columns into runs of consecutive `ox`
            // within one (img, oy) output row: `(img, oy, ox0, j0, len)`.
            // At most one run per column, so a stack table of NR suffices.
            let mut runs = [(0usize, 0usize, 0usize, 0usize, 0usize); SIMD_NR];
            let mut nruns = 0;
            let mut j = 0;
            while j < cols {
                let (img, oy, ox) = view.col_pos(jc + s * nr + j);
                let len = (m.ow - ox).min(cols - j);
                runs[nruns] = (img, oy, ox, j, len);
                nruns += 1;
                j += len;
            }
            for (kk, &(ch, ky, kx)) in kdec[..kc].iter().enumerate() {
                let drow = &mut dst[base + kk * nr..][..nr];
                for slot in &mut drow[cols..] {
                    *slot = 0.0;
                }
                for &(img, oy, ox0, j0, len) in &runs[..nruns] {
                    let dseg = &mut drow[j0..j0 + len];
                    let y = oy * stride + ky;
                    if y < pad || y >= h + pad {
                        dseg.fill(0.0);
                        continue;
                    }
                    let src_row = &view.data[((img * m.c + ch) * h + (y - pad)) * w..][..w];
                    if stride == 1 {
                        // x = ox + kx - pad must land in [0, w).
                        let lo = ox0.max(pad.saturating_sub(kx));
                        let hi = (ox0 + len).min((w + pad).saturating_sub(kx));
                        if lo < hi {
                            dseg[..lo - ox0].fill(0.0);
                            dseg[lo - ox0..hi - ox0]
                                .copy_from_slice(&src_row[lo + kx - pad..hi + kx - pad]);
                            dseg[hi - ox0..].fill(0.0);
                        } else {
                            dseg.fill(0.0);
                        }
                    } else {
                        for (t, slot) in dseg.iter_mut().enumerate() {
                            let x = (ox0 + t) * stride + kx;
                            *slot = if x >= pad && x < w + pad {
                                src_row[x - pad]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
        }
    } else {
        // B = colsᵀ: the k dimension walks output sites, columns walk
        // patch rows — the dW = dY·colsᵀ orientation. No source
        // contiguity along the columns here (consecutive patch rows hop
        // kernel taps), so pack element-wise with hoisted site offsets.
        for (kk, slot) in kdec[..kc].iter_mut().enumerate() {
            *slot = view.col_pos(pc + kk);
        }
        let mut jdec = [(0usize, 0usize, 0usize); SIMD_NR];
        for s in 0..strips {
            let base = s * kc * nr;
            let cols = nr.min(nc - s * nr);
            for (j, slot) in jdec[..cols].iter_mut().enumerate() {
                *slot = view.row_pos(jc + s * nr + j);
            }
            for (kk, &(img, oy, ox)) in kdec[..kc].iter().enumerate() {
                let (y0, x0, img_at) = (oy * stride, ox * stride, img * m.c * h * w);
                let drow = &mut dst[base + kk * nr..][..nr];
                for (slot, &(ch, ky, kx)) in drow[..cols].iter_mut().zip(&jdec[..cols]) {
                    let (y, x) = (y0 + ky, x0 + kx);
                    *slot = if y < pad || y >= h + pad || x < pad || x >= w + pad {
                        0.0
                    } else {
                        view.data[img_at + ch * h * w + (y - pad) * w + (x - pad)]
                    };
                }
                for slot in &mut drow[cols..] {
                    *slot = 0.0;
                }
            }
        }
    }
}

/// The scalar MR×NR register-blocked inner kernel: accumulates
/// `Ap · Bp` over `kc` packed k-steps (unrolled 4×) and adds the valid
/// `mr × nr` corner into C. Plain mul+add in ascending-k order — the
/// summation order [`crate::matmul_reference`] uses — so scalar GEMM is
/// bitwise identical to the reference kernel.
///
/// # Safety
///
/// `c` must be valid for reads and writes at `r * ldc + j` for every
/// `r < mr`, `j < nr`.
unsafe fn micro_kernel_scalar(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: *mut f32,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    accumulate_scalar(kc, ap, bp, &mut acc);
    for (r, acc_row) in acc.iter().enumerate().take(mr) {
        for (j, &v) in acc_row.iter().enumerate().take(nr) {
            *c.add(r * ldc + j) += v;
        }
    }
}

/// The accumulate loop of the scalar kernel, split out as a safe
/// slice-only function: with `&mut acc` the sole mutable reference LLVM
/// promotes the whole 4×8 tile to SSE registers and vectorizes each row
/// update — folding it into the pointer-writeback caller demonstrably
/// regresses codegen to shuffle-and-spill (~3× slower).
#[inline(never)]
fn accumulate_scalar(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    let mut kk = 0;
    while kk + 4 <= kc {
        for u in 0..4 {
            let a = &ap[(kk + u) * MR..(kk + u) * MR + MR];
            let b = &bp[(kk + u) * NR..(kk + u) * NR + NR];
            for r in 0..MR {
                let ar = a[r];
                for j in 0..NR {
                    acc[r][j] += ar * b[j];
                }
            }
        }
        kk += 4;
    }
    while kk < kc {
        let a = &ap[kk * MR..kk * MR + MR];
        let b = &bp[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let ar = a[r];
            for j in 0..NR {
                acc[r][j] += ar * b[j];
            }
        }
        kk += 1;
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The AVX2/FMA 6×16 micro-kernel. Each packed k-step loads two
    //! `f32x8` B registers, broadcasts each of the six A lanes, and issues
    //! twelve `vfmadd231ps` — 192 flops per iteration from 15 of the 16
    //! ymm registers. Full tiles stream through `loadu`/`add`/`storeu`;
    //! partial edge tiles spill the accumulators to a stack tile and add
    //! element-wise, which rounds identically (`vaddps` lane add ≡ scalar
    //! `+`), so edge handling never changes results.

    use super::{SIMD_MR, SIMD_NR};
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_broadcast_ss, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA. `ap` must hold at least
    /// `kc * SIMD_MR` packed elements and `bp` at least `kc * SIMD_NR`.
    /// `c` must be valid for reads and writes at `r * ldc + j` for every
    /// `r < mr`, `j < nr` — and, when `mr == SIMD_MR && nr == SIMD_NR`,
    /// for the full contiguous 16-wide rows the vector stores touch.
    #[allow(clippy::missing_safety_doc)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn micro_kernel(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        c: *mut f32,
        ldc: usize,
        mr: usize,
        nr: usize,
    ) {
        debug_assert!(ap.len() >= kc * SIMD_MR);
        debug_assert!(bp.len() >= kc * SIMD_NR);
        let mut acc = [[_mm256_setzero_ps(); 2]; SIMD_MR];
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        // k unrolled 2×: halves the loop overhead without touching the
        // per-accumulator FMA chain, so results are identical to the
        // rolled loop (each acc register still sees the same ascending-k
        // sequence of fused multiply-adds).
        for _ in 0..kc / 2 {
            let b0 = _mm256_loadu_ps(b);
            let b1 = _mm256_loadu_ps(b.add(8));
            for (r, lanes) in acc.iter_mut().enumerate() {
                let av = _mm256_broadcast_ss(&*a.add(r));
                lanes[0] = _mm256_fmadd_ps(av, b0, lanes[0]);
                lanes[1] = _mm256_fmadd_ps(av, b1, lanes[1]);
            }
            let b2 = _mm256_loadu_ps(b.add(SIMD_NR));
            let b3 = _mm256_loadu_ps(b.add(SIMD_NR + 8));
            for (r, lanes) in acc.iter_mut().enumerate() {
                let av = _mm256_broadcast_ss(&*a.add(SIMD_MR + r));
                lanes[0] = _mm256_fmadd_ps(av, b2, lanes[0]);
                lanes[1] = _mm256_fmadd_ps(av, b3, lanes[1]);
            }
            a = a.add(2 * SIMD_MR);
            b = b.add(2 * SIMD_NR);
        }
        if kc % 2 == 1 {
            let b0 = _mm256_loadu_ps(b);
            let b1 = _mm256_loadu_ps(b.add(8));
            for (r, lanes) in acc.iter_mut().enumerate() {
                let av = _mm256_broadcast_ss(&*a.add(r));
                lanes[0] = _mm256_fmadd_ps(av, b0, lanes[0]);
                lanes[1] = _mm256_fmadd_ps(av, b1, lanes[1]);
            }
        }
        if mr == SIMD_MR && nr == SIMD_NR {
            for (r, lanes) in acc.iter().enumerate() {
                let crow = c.add(r * ldc);
                _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), lanes[0]));
                let chigh = crow.add(8);
                _mm256_storeu_ps(chigh, _mm256_add_ps(_mm256_loadu_ps(chigh), lanes[1]));
            }
        } else {
            let mut tile = [0.0f32; SIMD_MR * SIMD_NR];
            for (r, lanes) in acc.iter().enumerate() {
                _mm256_storeu_ps(tile.as_mut_ptr().add(r * SIMD_NR), lanes[0]);
                _mm256_storeu_ps(tile.as_mut_ptr().add(r * SIMD_NR + 8), lanes[1]);
            }
            for r in 0..mr {
                for j in 0..nr {
                    *c.add(r * ldc + j) += tile[r * SIMD_NR + j];
                }
            }
        }
    }
}

/// Runs the serial BLIS loop nest over C columns `[j0, j1)` with the
/// given micro-kernel, leasing pack buffers from the *calling thread's*
/// scratch pool (per-worker buffers in the parallel path).
///
/// # Safety
///
/// `c` must point to an `m × n` row-major matrix valid for reads and
/// writes, and no other thread may concurrently access columns
/// `[j0, j1)` of it (callers partition columns disjointly). When the
/// kernel is [`GemmKernel::Avx2Fma`], the CPU must support AVX2+FMA.
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_range(
    kernel: GemmKernel,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_trans: bool,
    b: &BSrc<'_>,
    c: *mut f32,
    j0: usize,
    j1: usize,
) {
    let (mr, nr, mc_blk) = (kernel.mr(), kernel.nr(), kernel.mc());
    // For a fused im2col source, take the whole column range in one jc
    // pass: each B panel is rebuilt from the view on every pass, so NC
    // blocking would re-run the patch sampling per block instead of once.
    // The panel stays bounded by KC rows either way. Plain matrices keep
    // the cache-sized NC.
    let nc_blk = match b {
        BSrc::Mat { .. } => kernel.nc(),
        BSrc::Cols { .. } => (j1 - j0).max(1),
    };
    let lda = if a_trans { m } else { k };
    // Exact panel capacities so repeat leases hit the pool's free list.
    let kc_cap = KC.min(k);
    let mut a_pack = pool::lease(round_up(m.min(mc_blk), mr) * kc_cap);
    let mut b_pack = pool::lease(round_up((j1 - j0).min(nc_blk), nr) * kc_cap);
    for jc in (j0..j1).step_by(nc_blk) {
        let nc = nc_blk.min(j1 - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(
                &mut b_pack[..round_up(nc, nr) * kc],
                b,
                k,
                n,
                pc,
                kc,
                jc,
                nc,
                nr,
            );
            for ic in (0..m).step_by(mc_blk) {
                let mc = mc_blk.min(m - ic);
                pack_a(
                    &mut a_pack[..round_up(mc, mr) * kc],
                    a,
                    a_trans,
                    lda,
                    ic,
                    mc,
                    pc,
                    kc,
                    mr,
                );
                for jr in (0..nc).step_by(nr) {
                    let nrr = nr.min(nc - jr);
                    let bp = &b_pack[(jr / nr) * kc * nr..][..kc * nr];
                    for ir in (0..mc).step_by(mr) {
                        let mrr = mr.min(mc - ir);
                        let ap = &a_pack[(ir / mr) * kc * mr..][..kc * mr];
                        let ct = c.add((ic + ir) * n + jc + jr);
                        match kernel {
                            GemmKernel::Scalar => {
                                micro_kernel_scalar(kc, ap, bp, ct, n, mrr, nrr);
                            }
                            #[cfg(target_arch = "x86_64")]
                            GemmKernel::Avx2Fma => avx2::micro_kernel(kc, ap, bp, ct, n, mrr, nrr),
                            #[cfg(not(target_arch = "x86_64"))]
                            GemmKernel::Avx2Fma => unreachable!("SIMD kernel on non-x86_64"),
                        }
                    }
                }
            }
        }
    }
    pool::recycle(a_pack);
    pool::recycle(b_pack);
}

/// Computes `C += op(A) · op(B)` where `op` is transpose when the matching
/// flag is set and B may be a fused im2col view: logical shapes
/// `(m, k) × (k, n) → (m, n)`, all row-major.
///
/// `c` must hold exactly `m * n` elements and is accumulated into (callers
/// lease it zeroed from the pool). Transposition and patch extraction are
/// absorbed by the packing routines, so every variant shares the same
/// micro-kernel. Dispatches to the AVX2/FMA kernel when available and to
/// the worker pool for large products (both controllable: see
/// [`force_gemm_kernel`], [`set_gemm_threads`], and `HERO_NO_SIMD`).
pub(crate) fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_trans: bool,
    b: BSrc<'_>,
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(c.len(), m * n);
    b.debug_check(k, n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let kernel = active_gemm_kernel();
    let _obs = hero_obs::span(kernel.span_name());
    hero_obs::counters::GEMM_CALLS.incr();
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    hero_obs::counters::GEMM_FLOPS.add(flops);
    if kernel == GemmKernel::Avx2Fma {
        hero_obs::counters::GEMM_SIMD_HITS.incr();
    }
    let threads = gemm_threads();
    if threads >= 2
        && flops >= PAR_MIN_FLOPS
        && n >= 2 * kernel.nr()
        && gemm_parallel(kernel, threads, m, n, k, a, a_trans, &b, c)
    {
        return;
    }
    // SAFETY: `c` is an exclusive `m × n` slice and the whole column range
    // is handled by this thread.
    unsafe { gemm_range(kernel, m, n, k, a, a_trans, &b, c.as_mut_ptr(), 0, n) }
}

/// The process-wide worker pool backing the parallel macro-kernel. Workers
/// carry no state (`S = ()`); determinism comes from the column partition,
/// not from which worker runs which chunk.
static GEMM_POOL: Mutex<Option<WorkerPool<(), ()>>> = Mutex::new(None);

/// A raw, `Send`-able copy of a [`BSrc`] for shipping to workers.
#[derive(Clone, Copy)]
enum RawBSrc {
    Mat {
        ptr: *const f32,
        len: usize,
        trans: bool,
    },
    Cols {
        ptr: *const f32,
        len: usize,
        meta: Im2colMeta,
        trans: bool,
    },
}

impl RawBSrc {
    fn from_bsrc(b: &BSrc<'_>) -> RawBSrc {
        match b {
            BSrc::Mat { data, trans } => RawBSrc::Mat {
                ptr: data.as_ptr(),
                len: data.len(),
                trans: *trans,
            },
            BSrc::Cols { view, trans } => RawBSrc::Cols {
                ptr: view.data.as_ptr(),
                len: view.data.len(),
                meta: view.meta,
                trans: *trans,
            },
        }
    }

    /// # Safety
    ///
    /// The pointed-to data must outlive the returned view — guaranteed by
    /// [`WorkerPool::scatter`] blocking until every job completes while
    /// the caller's borrows are held.
    unsafe fn as_bsrc<'a>(&self) -> BSrc<'a> {
        match *self {
            RawBSrc::Mat { ptr, len, trans } => BSrc::Mat {
                data: std::slice::from_raw_parts(ptr, len),
                trans,
            },
            RawBSrc::Cols {
                ptr,
                len,
                meta,
                trans,
            } => BSrc::Cols {
                view: Im2colView {
                    meta,
                    data: std::slice::from_raw_parts(ptr, len),
                },
                trans,
            },
        }
    }
}

/// One worker's share of a parallel GEMM: the full loop nest over C
/// columns `[j0, j1)`.
#[derive(Clone, Copy)]
struct PanelTask {
    kernel: GemmKernel,
    m: usize,
    n: usize,
    k: usize,
    a: *const f32,
    a_len: usize,
    a_trans: bool,
    b: RawBSrc,
    c: *mut f32,
    j0: usize,
    j1: usize,
}

// SAFETY: the raw pointers reference the caller's borrows, which stay
// alive for the whole scatter (it blocks until all jobs finish), and each
// task writes only its own disjoint `[j0, j1)` column range of C.
unsafe impl Send for PanelTask {}

/// # Safety
///
/// See [`PanelTask`]'s `Send` rationale: caller borrows outlive the
/// scatter, and column ranges across tasks are disjoint.
unsafe fn run_panel_task(t: &PanelTask) {
    let a = std::slice::from_raw_parts(t.a, t.a_len);
    let b = t.b.as_bsrc();
    gemm_range(t.kernel, t.m, t.n, t.k, a, t.a_trans, &b, t.c, t.j0, t.j1);
}

/// Fans the jc loop out over the worker pool: contiguous NR-aligned column
/// chunks, one per worker. Returns `false` (caller runs serially) when the
/// pool is busy — e.g. a shard worker's GEMM racing the trainer's — which
/// is always safe because parallel and serial output are bitwise
/// identical.
#[allow(clippy::too_many_arguments)]
fn gemm_parallel(
    kernel: GemmKernel,
    threads: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_trans: bool,
    b: &BSrc<'_>,
    c: &mut [f32],
) -> bool {
    let Ok(mut guard) = GEMM_POOL.try_lock() else {
        return false;
    };
    let nr = kernel.nr();
    let panels = n.div_ceil(nr);
    let workers = threads.min(panels);
    if workers < 2 {
        return false;
    }
    let slot = &mut *guard;
    if slot.as_ref().is_none_or(|p| p.threads() != threads) {
        *slot = Some(WorkerPool::new(vec![(); threads]));
    }
    let pool = slot.as_mut().expect("pool just installed");
    let raw_b = RawBSrc::from_bsrc(b);
    // Chunk boundaries land on NR multiples so no packing strip straddles
    // two workers; each C element's summation order is exactly the serial
    // order, which is what makes parallel ≡ serial bitwise.
    let (base, extra) = (panels / workers, panels % workers);
    let mut jobs: Vec<Job<(), ()>> = Vec::with_capacity(workers);
    let mut j0 = 0;
    for w in 0..workers {
        let j1 = (j0 + (base + usize::from(w < extra)) * nr).min(n);
        let task = PanelTask {
            kernel,
            m,
            n,
            k,
            a: a.as_ptr(),
            a_len: a.len(),
            a_trans,
            b: raw_b,
            c: c.as_mut_ptr(),
            j0,
            j1,
        };
        // SAFETY: scatter blocks until all jobs run; column ranges are
        // disjoint across tasks (see `PanelTask`).
        jobs.push(Box::new(move |_: &mut ()| unsafe { run_panel_task(&task) }));
        j0 = j1;
    }
    debug_assert_eq!(j0, n);
    match pool.scatter(jobs) {
        Ok(_) => {
            hero_obs::counters::GEMM_PANELS_PARALLEL.add(workers as u64);
            true
        }
        // C columns may be partially accumulated by the time a job fails,
        // so there is no serial fallback from here — surface the fault.
        Err(e) => panic!("parallel GEMM failed: {e}"),
    }
}

/// Runs `f` once on every GEMM worker thread (a barrier keeps any single
/// worker from draining several jobs) and collects the results in
/// arbitrary worker order. Returns an empty vec if the pool was never
/// spun up.
fn on_each_gemm_worker<R: Send + 'static>(f: fn() -> R) -> Vec<R> {
    let mut guard = GEMM_POOL.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(pool) = guard.as_mut() else {
        return Vec::new();
    };
    let threads = pool.threads();
    let barrier = Arc::new(Barrier::new(threads));
    let (tx, rx) = std::sync::mpsc::channel();
    let jobs: Vec<Job<(), ()>> = (0..threads)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let tx = tx.clone();
            Box::new(move |_: &mut ()| {
                barrier.wait();
                let _ = tx.send(f());
            }) as Job<(), ()>
        })
        .collect();
    pool.scatter(jobs).expect("gemm worker round failed");
    drop(tx);
    rx.iter().collect()
}

/// Scratch-pool statistics of every GEMM worker thread (one entry per
/// worker, arbitrary order; empty if the parallel macro-kernel has never
/// run). Steady state shows zero `fresh_allocs` and zero
/// `foreign_recycles`: each worker packs exclusively out of its own
/// thread-local pool.
pub fn gemm_pool_stats() -> Vec<pool::PoolStats> {
    on_each_gemm_worker(pool::stats)
}

/// Resets every GEMM worker's scratch-pool statistics (start of a
/// steady-state measurement window).
pub fn gemm_pool_reset_stats() {
    let _ = on_each_gemm_worker(pool::reset_stats);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive triple loop over logical (possibly transposed) operands.
    fn naive(m: usize, n: usize, k: usize, a: &[f32], at: bool, b: &[f32], bt: bool) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    let av = if at { a[kk * m + i] } else { a[i * k + kk] };
                    let bv = if bt { b[j * k + kk] } else { b[kk * n + j] };
                    acc += av * bv;
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn fill(len: usize, salt: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 31 + salt * 17) % 23) as f32 / 11.0 - 1.0)
            .collect()
    }

    #[test]
    fn packed_matches_naive_across_shape_grid_and_transposes() {
        // Shapes chosen to hit every edge case: unit dims, primes straddling
        // MR/NR (both kernels'), tall/skinny, wide, and sizes crossing the
        // MC/NC/KC blocks.
        let shapes = [
            (1, 1, 1),
            (1, 9, 5),
            (4, 8, 16),
            (5, 7, 3),
            (6, 16, 8),
            (7, 17, 9),
            (13, 11, 17),
            (3, 100, 2),
            (100, 3, 2),
            (129, 9, 257),
            (9, 513, 5),
            (33, 47, 300),
        ];
        for &(m, n, k) in &shapes {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            for (at, bt) in [(false, false), (true, false), (false, true), (true, true)] {
                // Re-layout the operands for the transposed storage orders.
                let a_store = if at {
                    let mut s = vec![0.0; m * k];
                    for i in 0..m {
                        for kk in 0..k {
                            s[kk * m + i] = a[i * k + kk];
                        }
                    }
                    s
                } else {
                    a.clone()
                };
                let b_store = if bt {
                    let mut s = vec![0.0; k * n];
                    for kk in 0..k {
                        for j in 0..n {
                            s[j * k + kk] = b[kk * n + j];
                        }
                    }
                    s
                } else {
                    b.clone()
                };
                let mut c = vec![0.0f32; m * n];
                let src = BSrc::Mat {
                    data: &b_store,
                    trans: bt,
                };
                gemm(m, n, k, &a_store, at, src, &mut c);
                let want = naive(m, n, k, &a_store, at, &b_store, bt);
                for (idx, (&got, &exp)) in c.iter().zip(&want).enumerate() {
                    assert!(
                        (got - exp).abs() <= 1e-5 * exp.abs().max(1.0),
                        "({m},{n},{k}) trans=({at},{bt}) idx {idx}: {got} vs {exp}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = vec![1.0; 6];
        let b = vec![2.0; 6];
        let mut c = vec![10.0f32; 4];
        let src = BSrc::Mat {
            data: &b,
            trans: false,
        };
        gemm(2, 2, 3, &a, false, src, &mut c);
        assert_eq!(c, vec![16.0; 4]);
    }

    #[test]
    fn zero_k_leaves_c_untouched() {
        let mut c = vec![3.0f32; 4];
        let src = BSrc::Mat {
            data: &[],
            trans: false,
        };
        gemm(2, 2, 0, &[], false, src, &mut c);
        assert_eq!(c, vec![3.0; 4]);
    }

    #[test]
    fn forcing_unsupported_kernel_falls_back_to_scalar() {
        // Exercises the override decode paths without touching the global
        // in a way that could race other tests: auto and re-auto only.
        force_gemm_kernel(None);
        let auto = active_gemm_kernel();
        assert_eq!(auto, detected_kernel());
        assert!(!auto.name().is_empty());
    }
}
