//! Post-training quantization of a whole network.

use crate::quantizer::{quant_error, quantize_tensor, QuantError};
use crate::scheme::QuantScheme;
use hero_nn::Network;
use hero_tensor::{Result, Tensor};

/// Summary of quantizing one network snapshot.
#[derive(Debug, Clone)]
pub struct ModelQuantReport {
    /// The scheme applied.
    pub scheme: QuantScheme,
    /// Number of weight tensors quantized.
    pub quantized_tensors: usize,
    /// Number of tensors left full-precision (biases, batch-norm params).
    pub skipped_tensors: usize,
    /// The worst per-tensor ℓ∞ perturbation — Theorem 2's ‖δ‖∞.
    pub worst_linf: f32,
    /// The largest bin width Δ across layers (`2ρ` in Theorem 2).
    pub max_bin_width: f32,
    /// Mean of per-tensor MSEs.
    pub mean_mse: f32,
}

/// Returns a quantized copy of the network's parameters: weight tensors
/// are fake-quantized under `scheme`, everything else passes through.
///
/// This is the paper's post-training setting — no finetuning, weights only,
/// per-layer ranges.
///
/// # Errors
///
/// Propagates quantizer errors (invalid scheme).
pub fn quantize_params(
    net: &Network,
    scheme: &QuantScheme,
) -> Result<(Vec<Tensor>, ModelQuantReport)> {
    let _obs = hero_obs::span("quantize");
    let params = net.params();
    let infos = net.param_infos();
    let mut out = Vec::with_capacity(params.len());
    let mut report = ModelQuantReport {
        scheme: *scheme,
        quantized_tensors: 0,
        skipped_tensors: 0,
        worst_linf: 0.0,
        max_bin_width: 0.0,
        mean_mse: 0.0,
    };
    let mut mse_acc = 0.0;
    for (p, info) in params.iter().zip(&infos) {
        if info.kind.is_quantizable() {
            let q = quantize_tensor(p, scheme)?;
            let err: QuantError = quant_error(p, &q.values)?;
            hero_obs::counters::QUANT_TENSORS.incr();
            report.quantized_tensors += 1;
            report.worst_linf = report.worst_linf.max(err.linf);
            report.max_bin_width = report.max_bin_width.max(q.max_bin_width());
            mse_acc += err.mse;
            out.push(q.values);
        } else {
            report.skipped_tensors += 1;
            out.push(p.clone());
        }
    }
    if report.quantized_tensors > 0 {
        report.mean_mse = mse_acc / report.quantized_tensors as f32;
    }
    Ok((out, report))
}

/// Applies post-training quantization to the network in place and returns
/// the report. Use [`quantize_params`] plus [`Network::set_params`] to keep
/// the original weights around.
///
/// # Errors
///
/// Propagates quantizer and shape errors.
pub fn quantize_network(net: &mut Network, scheme: &QuantScheme) -> Result<ModelQuantReport> {
    let (params, report) = quantize_params(net, scheme)?;
    net.set_params(&params)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_nn::models::{mini_resnet, mlp, ModelConfig};
    use hero_tensor::rng::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn quantize_params_touches_only_weights() {
        let net = mini_resnet(ModelConfig::default(), 1, &mut rng());
        let (qp, report) = quantize_params(&net, &QuantScheme::symmetric(4).unwrap()).unwrap();
        let infos = net.param_infos();
        let orig = net.params();
        assert_eq!(qp.len(), orig.len());
        for ((q, o), info) in qp.iter().zip(&orig).zip(&infos) {
            if info.kind.is_quantizable() {
                // 4-bit quantization of random weights changes something.
                continue;
            }
            assert_eq!(q, o, "non-weight {} was modified", info.name);
        }
        assert!(report.quantized_tensors > 0);
        assert!(report.skipped_tensors > 0);
        assert_eq!(
            report.quantized_tensors + report.skipped_tensors,
            orig.len()
        );
    }

    #[test]
    fn theorem2_premise_holds_on_a_network() {
        let net = mini_resnet(ModelConfig::default(), 1, &mut rng());
        for bits in [2u8, 4, 8] {
            let (_, report) =
                quantize_params(&net, &QuantScheme::symmetric(bits).unwrap()).unwrap();
            assert!(
                report.worst_linf <= report.max_bin_width / 2.0 + 1e-6,
                "{bits}-bit: ‖δ‖∞ {} exceeds Δ/2 {}",
                report.worst_linf,
                report.max_bin_width / 2.0
            );
        }
    }

    #[test]
    fn lower_precision_means_larger_perturbation() {
        let net = mini_resnet(ModelConfig::default(), 1, &mut rng());
        let (_, r8) = quantize_params(&net, &QuantScheme::symmetric(8).unwrap()).unwrap();
        let (_, r4) = quantize_params(&net, &QuantScheme::symmetric(4).unwrap()).unwrap();
        let (_, r2) = quantize_params(&net, &QuantScheme::symmetric(2).unwrap()).unwrap();
        assert!(r2.worst_linf > r4.worst_linf);
        assert!(r4.worst_linf > r8.worst_linf);
        assert!(r2.mean_mse > r4.mean_mse);
    }

    #[test]
    fn quantize_network_installs_quantized_weights() {
        let cfg = ModelConfig {
            classes: 3,
            in_channels: 1,
            input_hw: 4,
            width: 4,
        };
        let mut net = mlp(cfg, &[8], &mut rng());
        let before = net.params();
        let report = quantize_network(&mut net, &QuantScheme::symmetric(3).unwrap()).unwrap();
        let after = net.params();
        assert_ne!(before, after);
        assert!(report.worst_linf > 0.0);
        // Quantizing again is a no-op (idempotence at network level).
        let again = quantize_network(&mut net, &QuantScheme::symmetric(3).unwrap()).unwrap();
        assert!(again.worst_linf < 1e-5);
    }

    #[test]
    fn predictions_survive_8bit_quantization() {
        let cfg = ModelConfig {
            classes: 4,
            in_channels: 1,
            input_hw: 4,
            width: 4,
        };
        let mut net = mlp(cfg, &[16], &mut StdRng::seed_from_u64(12));
        let x = Tensor::from_fn([6, 1, 4, 4], |i| (i.iter().sum::<usize>() % 5) as f32 - 2.0);
        let before = net.predict(&x).unwrap();
        quantize_network(&mut net, &QuantScheme::symmetric(8).unwrap()).unwrap();
        let after = net.predict(&x).unwrap();
        let drift = before.sub(&after).unwrap().norm_linf();
        assert!(drift < 0.05, "8-bit drift {drift}");
    }
}
