//! Seeded fuzzing of the artifact decoder: every corruption of a valid
//! artifact — truncation, bit flips, bad magic/version, and lying length
//! fields — must come back as a clean typed [`ArtifactError`], never a
//! panic and never an allocation the input bytes could not justify.
//!
//! The crate is zero-dependency, so the generator is a local SplitMix64
//! (same algorithm as the workspace RNG): every run is deterministic and
//! a failure reproduces from the case number alone.

use hero_artifact::{
    Artifact, ArtifactError, Estimate, LayerTraceRow, MetaValue, MetricsRow, QuantEntry,
    ResumeState, SpectrumRow, StateEntry, TensorEntry,
};

const TRUNCATION_CASES: u64 = 200;
const BITFLIP_CASES: u64 = 200;
const LENGTH_LIE_CASES: u64 = 100;
const HEADER_CASES: u64 = 50;

/// SplitMix64 — embedded so the fuzz harness adds no dependency edge.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A representative artifact exercising every section and value type.
fn sample(rng: &mut Rng) -> Artifact {
    let mut art = Artifact::new();
    art.set_meta("format", MetaValue::Str("hero-artifact".into()));
    art.set_meta("train.seed", MetaValue::U64(rng.next()));
    art.set_meta("train.lr", MetaValue::F64(0.1));
    art.set_meta("train.augment.hflip", MetaValue::Bool(rng.below(2) == 1));
    let n = 4 + rng.below(12) as usize;
    art.tensors.push(TensorEntry {
        name: "stem.conv.weight".into(),
        kind: 0,
        dims: vec![n as u64, 2],
        data: (0..n * 2).map(|i| i as f32 * 0.25 - 1.0).collect(),
    });
    art.tensors.push(TensorEntry {
        name: "head.bias".into(),
        kind: 1,
        dims: vec![3],
        data: vec![0.0, f32::NAN, -2.5],
    });
    art.state.push(StateEntry {
        name: "stem.bn.running_mean".into(),
        data: vec![0.5; n],
    });
    art.quant.push(QuantEntry {
        name: "stem.conv.weight".into(),
        bits: 4,
        per_channel: true,
        bin_widths: vec![0.125; n],
    });
    if rng.below(2) == 1 {
        art.resume = Some(ResumeState {
            next_epoch: rng.below(10),
            step: rng.next(),
            grad_evals: rng.next(),
            loader_rng: rng.next(),
            aug_rng: rng.next(),
            momentum: vec![TensorEntry {
                name: "stem.conv.weight".into(),
                kind: 0,
                dims: vec![n as u64, 2],
                data: vec![0.01; n * 2],
            }],
            metrics: vec![MetricsRow {
                epoch: 0,
                train_loss: 1.2,
                train_acc: 0.5,
                test_acc: f32::NAN,
                hessian_norm: f32::NAN,
                regularizer: 0.0,
            }],
            final_train_acc: 0.5,
            final_test_acc: 0.4,
            spectra: vec![SpectrumRow {
                epoch: 0,
                lambda_max: est(2.0),
                lambda_min: est(-0.1),
                mean_eigenvalue: est(0.3),
                second_moment: est(1.0),
                layers: vec![LayerTraceRow {
                    name: "stem.conv.weight".into(),
                    quantizable: true,
                    trace: est(0.7),
                }],
            }],
        });
    }
    art
}

fn est(mean: f32) -> Estimate {
    Estimate {
        mean,
        std_error: f32::NAN,
        samples: 1,
    }
}

/// Decode must terminate with Ok or a typed error — the `match` is
/// exhaustive over [`ArtifactError`], so an unexpected panic (the only
/// other way out) fails the test by unwinding.
fn decode_must_be_clean(bytes: &[u8], case: u64, what: &str) {
    match Artifact::from_bytes(bytes) {
        Ok(_) => {}
        Err(
            ArtifactError::Io(_)
            | ArtifactError::BadMagic
            | ArtifactError::UnsupportedVersion(_)
            | ArtifactError::Truncated { .. }
            | ArtifactError::ChecksumMismatch { .. }
            | ArtifactError::Malformed { .. },
        ) => {}
    }
    let _ = (case, what);
}

#[test]
fn truncation_at_every_random_cut_is_typed() {
    for case in 0..TRUNCATION_CASES {
        let mut rng = Rng(0xF00D ^ case);
        let bytes = sample(&mut rng).to_bytes();
        let cut = rng.below(bytes.len() as u64) as usize;
        let err = Artifact::from_bytes(&bytes[..cut]);
        assert!(
            matches!(
                err,
                Err(ArtifactError::Truncated { .. }) | Err(ArtifactError::BadMagic)
            ),
            "case {case}: cut at {cut}/{} gave {err:?}",
            bytes.len()
        );
    }
}

#[test]
fn random_bit_flips_never_panic_and_never_pass_silently() {
    for case in 0..BITFLIP_CASES {
        let mut rng = Rng(0xBAD_5EED ^ case);
        let art = sample(&mut rng);
        let clean = art.to_bytes();
        let mut bytes = clean.clone();
        let pos = rng.below(bytes.len() as u64) as usize;
        let bit = 1u8 << rng.below(8);
        bytes[pos] ^= bit;
        decode_must_be_clean(&bytes, case, "bit flip");
        // A flip in the body must be caught by the checksum; a flip in
        // the 28-byte header must be caught by its own validation. Either
        // way, a corrupted artifact must never decode to the clean bytes.
        if let Ok(decoded) = Artifact::from_bytes(&bytes) {
            assert_ne!(
                decoded.to_bytes(),
                clean,
                "case {case}: flip of bit {bit:#04x} at byte {pos} vanished"
            );
        }
    }
}

#[test]
fn body_bit_flips_specifically_fail_the_checksum() {
    for case in 0..BITFLIP_CASES {
        let mut rng = Rng(0xC0FFEE ^ case);
        let mut bytes = sample(&mut rng).to_bytes();
        let body_len = bytes.len() - 28;
        let pos = 28 + rng.below(body_len as u64) as usize;
        bytes[pos] ^= 1u8 << rng.below(8);
        assert!(
            matches!(
                Artifact::from_bytes(&bytes),
                Err(ArtifactError::ChecksumMismatch { .. })
            ),
            "case {case}: body flip at {pos} escaped the checksum"
        );
    }
}

#[test]
fn length_field_lies_fail_without_huge_allocation() {
    // Overwrite a random aligned 4- or 8-byte window in the body with a
    // huge count/length and fix up the checksum so the lie is the first
    // thing the decoder can trip on. The decoder validates every claimed
    // count against the bytes remaining BEFORE allocating, so a claim of
    // ~u64::MAX elements must come back Malformed/Truncated instantly
    // instead of attempting an exabyte Vec (an OOM would abort the test
    // process — surviving all cases is the assertion).
    for case in 0..LENGTH_LIE_CASES {
        let mut rng = Rng(0x11E5 ^ case);
        let art = sample(&mut rng);
        let mut bytes = art.to_bytes();
        let body_len = bytes.len() - 28;
        let pos = 28 + rng.below(body_len.saturating_sub(8) as u64) as usize;
        let lie: u64 = match rng.below(3) {
            0 => u64::MAX,
            1 => u64::MAX / 2,
            _ => 0x0001_0000_0000 + rng.below(1 << 30),
        };
        if rng.below(2) == 0 {
            bytes[pos..pos + 4].copy_from_slice(&(lie as u32).to_le_bytes());
        } else {
            bytes[pos..pos + 8].copy_from_slice(&lie.to_le_bytes());
        }
        let fixed = hero_artifact::fnv1a64(&bytes[28..]);
        bytes[20..28].copy_from_slice(&fixed.to_le_bytes());
        let res = Artifact::from_bytes(&bytes);
        assert!(
            !matches!(res, Err(ArtifactError::ChecksumMismatch { .. })),
            "case {case}: checksum fixup failed"
        );
        decode_must_be_clean(&bytes, case, "length lie");
    }
}

#[test]
fn header_corruptions_are_the_right_variant() {
    for case in 0..HEADER_CASES {
        let mut rng = Rng(0x44EAD ^ case);
        let clean = sample(&mut rng).to_bytes();

        // Magic.
        let mut bad = clean.clone();
        let pos = rng.below(8) as usize;
        bad[pos] = bad[pos].wrapping_add(1 + rng.below(255) as u8);
        assert_eq!(
            Artifact::from_bytes(&bad),
            Err(ArtifactError::BadMagic),
            "case {case}: magic corruption misclassified"
        );

        // Version.
        let mut bad = clean.clone();
        let v = 2 + rng.below(u64::from(u32::MAX) - 2) as u32;
        bad[8..12].copy_from_slice(&v.to_le_bytes());
        assert_eq!(
            Artifact::from_bytes(&bad),
            Err(ArtifactError::UnsupportedVersion(v)),
            "case {case}: version corruption misclassified"
        );

        // Declared body length larger than the file: truncated.
        let mut bad = clean.clone();
        let body_len = (clean.len() - 28) as u64;
        bad[12..20].copy_from_slice(&(body_len + 1 + rng.below(1 << 40)).to_le_bytes());
        assert!(
            matches!(
                Artifact::from_bytes(&bad),
                Err(ArtifactError::Truncated { .. })
            ),
            "case {case}: oversized body_len misclassified"
        );

        // Declared body length smaller than the file: trailing garbage.
        if body_len > 1 {
            let mut bad = clean.clone();
            bad[12..20].copy_from_slice(&(body_len - 1 - rng.below(body_len - 1)).to_le_bytes());
            assert!(
                matches!(
                    Artifact::from_bytes(&bad),
                    Err(ArtifactError::Malformed { .. })
                ),
                "case {case}: undersized body_len misclassified"
            );
        }

        // Checksum.
        let mut bad = clean;
        bad[20] ^= 0xFF;
        assert!(
            matches!(
                Artifact::from_bytes(&bad),
                Err(ArtifactError::ChecksumMismatch { .. })
            ),
            "case {case}: checksum corruption misclassified"
        );
    }
}

#[test]
fn valid_artifacts_always_round_trip() {
    for case in 0..100u64 {
        let mut rng = Rng(0x900D ^ case);
        let art = sample(&mut rng);
        let bytes = art.to_bytes();
        let back = Artifact::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: valid artifact rejected: {e}"));
        assert_eq!(
            back.to_bytes(),
            bytes,
            "case {case}: round trip not byte-stable"
        );
    }
}
