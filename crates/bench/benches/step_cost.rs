//! Per-step cost of each training method (the paper's implicit §5.1 cost
//! claim: SAM-style methods cost one extra backprop, HERO two).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hero_core::experiment::{model_config, MethodKind};
use hero_data::Preset;
use hero_nn::models::ModelKind;
use hero_optim::{train_step, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_step_cost(c: &mut Criterion) {
    let preset = Preset::C10;
    let (train_set, _) = preset.load(0.2);
    let images = train_set.images.narrow(0, 16).unwrap();
    let labels = train_set.labels[..16].to_vec();
    let mut group = c.benchmark_group("step_cost");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for method in [
        MethodKind::Sgd,
        MethodKind::GradL1,
        MethodKind::FirstOrder,
        MethodKind::Hero,
    ] {
        let mut net =
            ModelKind::Resnet.build(model_config(preset), &mut StdRng::seed_from_u64(0));
        let mut opt = Optimizer::new(method.tuned());
        group.bench_function(BenchmarkId::from_parameter(method.paper_name()), |b| {
            b.iter(|| {
                train_step(&mut net, &mut opt, &images, &labels, 0.01).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step_cost);
criterion_main!(benches);
