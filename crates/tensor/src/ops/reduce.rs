//! Reductions: sums, means, extrema, argmax, softmax helpers.

use crate::error::Result;
use crate::pool;
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for empty tensors).
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Flat index of the maximum element (first occurrence).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data().iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Sums along `axis`, dropping that axis.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        let out_shape = self.shape().remove_axis(axis)?;
        let mut out = pool::lease_raw(out_shape.numel());
        // Row-major: elements split into `outer` blocks of `dim * inner`,
        // with the reduced axis striding by `inner` inside each block.
        let dim = self.dims()[axis];
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let outer = if self.numel() == 0 {
            0
        } else {
            self.numel() / (dim * inner)
        };
        for o in 0..outer {
            let block = &self.data()[o * dim * inner..][..dim * inner];
            for i in 0..inner {
                let mut acc = 0.0;
                for j in 0..dim {
                    acc += block[j * inner + i];
                }
                out.push(acc);
            }
        }
        Tensor::from_vec(out, out_shape)
    }

    /// Means along `axis`, dropping that axis.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        let dim = self.shape().dim(axis)? as f32;
        Ok(self.sum_axis(axis)?.scale(1.0 / dim))
    }

    /// Row-wise argmax of a 2-D tensor: returns the class index per row.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::RankMismatch`] unless the rank is 2.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(crate::TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data()[r * cols..(r + 1) * cols];
            let mut best = 0;
            let mut best_v = f32::NEG_INFINITY;
            for (i, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Row-wise softmax of a 2-D tensor, numerically stabilized by
    /// subtracting each row's max.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::RankMismatch`] unless the rank is 2.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(crate::TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = pool::lease(rows * cols);
        for r in 0..rows {
            let row = &self.data()[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (i, &v) in row.iter().enumerate() {
                let e = (v - m).exp();
                out[r * cols + i] = e;
                denom += e;
            }
            for v in &mut out[r * cols..(r + 1) * cols] {
                *v /= denom;
            }
        }
        Tensor::from_vec(out, [rows, cols])
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.numel() == 0 {
            return 0.0;
        }
        let m = self.mean();
        self.data().iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / self.numel() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], [2, 2]).unwrap();
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.mean(), 0.625);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
    }

    #[test]
    fn sum_axis_matches_manual() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        let s0 = t.sum_axis(0).unwrap();
        assert_eq!(s0.dims(), &[3]);
        assert_eq!(s0.data(), &[3.0, 5.0, 7.0]);
        let s1 = t.sum_axis(1).unwrap();
        assert_eq!(s1.dims(), &[2]);
        assert_eq!(s1.data(), &[3.0, 12.0]);
        assert!(t.sum_axis(2).is_err());
    }

    #[test]
    fn sum_axis_rank3_middle() {
        let t = Tensor::arange(24).reshape([2, 3, 4]).unwrap();
        let s = t.sum_axis(1).unwrap();
        assert_eq!(s.dims(), &[2, 4]);
        // s[0,0] = t[0,0,0]+t[0,1,0]+t[0,2,0] = 0+4+8
        assert_eq!(s.get(&[0, 0]).unwrap(), 12.0);
        assert_eq!(s.get(&[1, 3]).unwrap(), (15 + 19 + 23) as f32);
    }

    #[test]
    fn mean_axis_scales() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        assert_eq!(t.mean_axis(0).unwrap().data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn argmax_rows_picks_per_row() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], [2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
        assert!(Tensor::zeros([3]).argmax_rows().is_err());
    }

    #[test]
    fn softmax_rows_sums_to_one_and_is_stable() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0, -1000.0, 0.0, 0.0, 0.0], [2, 3]).unwrap();
        let s = t.softmax_rows().unwrap();
        assert!(s.is_finite());
        for r in 0..2 {
            let row_sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // Uniform logits -> uniform probabilities.
        assert!((s.get(&[1, 0]).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(Tensor::full([5], 3.0).variance(), 0.0);
        let t = Tensor::from_vec(vec![1.0, 3.0], [2]).unwrap();
        assert_eq!(t.variance(), 1.0);
    }
}
