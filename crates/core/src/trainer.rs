//! The epoch training loop.

use crate::config::TrainConfig;
use crate::metrics::{EpochMetrics, TrainRecord};
use crate::spectrum::{probe_spectrum, SpectrumOptions};
use hero_analyze::{Report, VerifyOptions};
use hero_data::{Dataset, Loader};
use hero_hessian::hessian_norm_probe;
use hero_nn::{evaluate_accuracy, Network};
use hero_optim::{train_step, BatchOracle, Optimizer};
use hero_parallel::{train_step_parallel, ParallelCtx};
use hero_tensor::rng::StdRng;
use hero_tensor::{Result, Tensor, TensorError};

/// Number of samples used for the ‖Hz‖ curvature probe (kept small — the
/// probe costs two gradient evaluations).
const PROBE_SAMPLES: usize = 64;

/// Mid-training snapshot: everything beyond the network weights and
/// batch-norm statistics that a bitwise-exact resume needs. Produced for
/// checkpoint hooks by [`train_resumable`] and fed back in to resume.
///
/// The snapshot is taken at an epoch boundary: `next_epoch` is the first
/// epoch the resumed run will execute, and the RNG states are captured
/// *after* the completed epoch consumed its draws, so the resumed loop
/// continues the exact same random streams.
#[derive(Debug, Clone)]
pub struct TrainerState {
    /// First epoch the resumed run executes.
    pub next_epoch: usize,
    /// Global step counter (drives the cosine schedule).
    pub step: usize,
    /// Gradient evaluations spent so far.
    pub grad_evals: usize,
    /// Data-loader shuffle RNG state.
    pub loader_rng: u64,
    /// Augmentation RNG state.
    pub aug_rng: u64,
    /// SGD momentum buffers in canonical parameter order (empty when the
    /// optimizer has not materialized them).
    pub momentum: Vec<Tensor>,
    /// Per-epoch metrics accumulated so far.
    pub epochs: Vec<EpochMetrics>,
    /// Last evaluated training accuracy (NaN if never evaluated).
    pub final_train_acc: f32,
    /// Last evaluated test accuracy (NaN if never evaluated).
    pub final_test_acc: f32,
    /// Spectrum probes accumulated so far.
    pub spectra: Vec<crate::spectrum::SpectrumProbe>,
}

/// Trains `net` on `train`, evaluating on `test`, according to `config`.
///
/// Implements the paper's §5.1 recipe on the synthetic substrate: shuffled
/// mini-batches, pad-crop/flip augmentation, cosine learning rate,
/// SGD-with-momentum under the configured method's gradient rule.
///
/// # Errors
///
/// Returns shape errors if the datasets are incompatible with the network.
pub fn train(
    net: &mut Network,
    train_set: &Dataset,
    test_set: &Dataset,
    config: &TrainConfig,
) -> Result<TrainRecord> {
    let (record, _) =
        train_resumable(
            net,
            train_set,
            test_set,
            config,
            None,
            0,
            &mut |_, _| Ok(()),
        )?;
    Ok(record)
}

/// [`train`] with epoch-boundary checkpointing and bitwise-exact resume.
///
/// When `resume` is given, the loop continues from the snapshot: the
/// caller must already have restored the network's parameters and
/// batch-norm statistics to the checkpointed values (the snapshot only
/// carries trainer-side state). When `checkpoint_every > 0`,
/// `on_checkpoint` is invoked with the network and a fresh snapshot after
/// every `checkpoint_every`-th completed epoch (except the last — the
/// final model is the caller's return value, not a checkpoint).
///
/// Resumed runs reproduce the uninterrupted trajectory exactly: weights,
/// metrics, RNG streams and the final [`TrainRecord`] are bitwise equal
/// (proven in `tests/artifact_pipeline.rs`).
///
/// Returns the record together with the end-of-run [`TrainerState`] —
/// which is what a final model artifact embeds so the training history
/// survives serialization.
///
/// # Errors
///
/// Returns shape errors if the datasets are incompatible with the network
/// or whatever error `on_checkpoint` surfaces.
pub fn train_resumable(
    net: &mut Network,
    train_set: &Dataset,
    test_set: &Dataset,
    config: &TrainConfig,
    resume: Option<TrainerState>,
    checkpoint_every: usize,
    on_checkpoint: &mut dyn FnMut(&mut Network, &TrainerState) -> Result<()>,
) -> Result<(TrainRecord, TrainerState)> {
    let mut loader = Loader::new(config.batch_size, config.seed);
    let batches_per_epoch = train_set.len().div_ceil(config.batch_size);
    let schedule = config.schedule(batches_per_epoch);
    let mut optimizer = Optimizer::new(config.method)
        .with_momentum(config.momentum)
        .with_weight_decay(config.weight_decay);
    // Statically verify the tape this model records — once per build,
    // before spending epochs on it. A malformed tape fails here with a
    // structured report instead of corrupting λmax estimates silently.
    // BN statistics are frozen around the probe, so re-running it on
    // resume does not perturb the restored trajectory.
    let probe = train_set.len().min(config.batch_size);
    if probe > 0 {
        let images = train_set.images.narrow(0, probe)?;
        verify_network_tape(net, &images, &train_set.labels[..probe])?;
    }

    // Persistent data-parallel context (config.threads ≥ 1): workers with
    // network replicas live across the whole run. With the shard count
    // fixed, the trajectory is bitwise identical for any worker count ≥ 1
    // — see DESIGN.md §11 and the parallel_equiv test suite — which is
    // what makes saved model artifacts byte-equal across HERO_THREADS
    // settings. 0 selects the serial in-process path (a distinct, equally
    // deterministic trajectory: batch-norm statistics advance inside the
    // first gradient evaluation rather than in a post-step refresh);
    // GEMM-level parallelism (DESIGN.md §13) needs no shard context.
    let mut pctx = (config.threads > 0)
        .then(|| ParallelCtx::new(net, config.threads))
        .transpose()?;

    let mut aug_rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xA06));
    let mut epochs = Vec::with_capacity(config.epochs);
    let mut spectra = Vec::new();
    let mut grad_evals = 0usize;
    let mut step = 0usize;
    let mut final_test_acc = f32::NAN;
    let mut final_train_acc = f32::NAN;
    let mut start_epoch = 0usize;

    if let Some(state) = resume {
        loader.set_rng_state(state.loader_rng);
        aug_rng = StdRng::seed_from_u64(state.aug_rng);
        if !state.momentum.is_empty() {
            optimizer.set_momentum_buffers(state.momentum);
        }
        epochs = state.epochs;
        spectra = state.spectra;
        grad_evals = state.grad_evals;
        step = state.step;
        final_train_acc = state.final_train_acc;
        final_test_acc = state.final_test_acc;
        start_epoch = state.next_epoch;
    }

    for epoch in start_epoch..config.epochs {
        let _epoch_span = hero_obs::span("epoch");
        let mut loss_acc = 0.0;
        let mut reg_acc = 0.0;
        let mut batches = 0usize;
        for batch in loader.epoch(train_set) {
            let aug = hero_obs::span("augment");
            let images = config.augment.apply(&batch.images, &mut aug_rng)?;
            drop(aug);
            let lr = schedule.at(step);
            let stats = match pctx.as_mut() {
                Some(ctx) => {
                    train_step_parallel(ctx, net, &mut optimizer, &images, &batch.labels, lr)?
                }
                None => train_step(net, &mut optimizer, &images, &batch.labels, lr)?,
            };
            loss_acc += stats.loss;
            reg_acc += stats.regularizer;
            grad_evals += stats.grad_evals;
            step += 1;
            batches += 1;
        }
        let train_loss = loss_acc / batches.max(1) as f32;
        let regularizer = reg_acc / batches.max(1) as f32;

        let evaluate =
            config.eval_every > 0 && (epoch % config.eval_every == 0 || epoch + 1 == config.epochs);
        let (train_acc, test_acc) = if evaluate {
            let _eval = hero_obs::span("eval");
            let tr =
                evaluate_accuracy(net, &train_set.images, &train_set.labels, config.batch_size)?;
            let te = evaluate_accuracy(net, &test_set.images, &test_set.labels, config.batch_size)?;
            final_train_acc = tr;
            final_test_acc = te;
            (tr, te)
        } else {
            (f32::NAN, f32::NAN)
        };

        let hessian_norm = if config.probe_every > 0
            && (epoch % config.probe_every == 0 || epoch + 1 == config.epochs)
        {
            probe_hessian_norm(net, train_set, config)?
        } else {
            f32::NAN
        };

        if config.spectrum_every > 0
            && (epoch % config.spectrum_every == 0 || epoch + 1 == config.epochs)
        {
            // One independent probe stream per epoch, derived from the run
            // seed so trajectories and probes reproduce together.
            let opts =
                SpectrumOptions::default().with_seed(hero_hessian::probe_seed(config.seed, epoch));
            let probe = probe_spectrum(net, train_set, epoch, &opts)?;
            probe.emit();
            spectra.push(probe);
        }

        let metrics = EpochMetrics {
            epoch,
            train_loss,
            train_acc,
            test_acc,
            hessian_norm,
            regularizer,
        };
        if hero_obs::run_active() {
            metrics.to_event().emit();
        }
        epochs.push(metrics);

        if checkpoint_every > 0 && (epoch + 1) % checkpoint_every == 0 && epoch + 1 < config.epochs
        {
            let state = TrainerState {
                next_epoch: epoch + 1,
                step,
                grad_evals,
                loader_rng: loader.rng_state(),
                aug_rng: aug_rng.state(),
                momentum: optimizer
                    .momentum_buffers()
                    .map(<[Tensor]>::to_vec)
                    .unwrap_or_default(),
                epochs: epochs.clone(),
                final_train_acc,
                final_test_acc,
                spectra: spectra.clone(),
            };
            on_checkpoint(net, &state)?;
        }
    }

    let final_state = TrainerState {
        next_epoch: config.epochs,
        step,
        grad_evals,
        loader_rng: loader.rng_state(),
        aug_rng: aug_rng.state(),
        momentum: optimizer
            .momentum_buffers()
            .map(<[Tensor]>::to_vec)
            .unwrap_or_default(),
        epochs: epochs.clone(),
        final_train_acc,
        final_test_acc,
        spectra: spectra.clone(),
    };
    let record = TrainRecord {
        method: config.method.name().to_string(),
        epochs,
        final_test_acc,
        final_train_acc,
        grad_evals,
        spectra,
    };
    Ok((record, final_state))
}

/// Records one train-mode forward/loss tape for `net` on the given batch
/// and runs the `hero-analyze` static verifier over it (structure, shapes,
/// conv/pool geometry, liveness).
///
/// Batch-norm running statistics are frozen around the probe forward so
/// verification never contaminates eval-time behaviour; the tape and its
/// buffers are recycled into the scratch pool afterwards.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] carrying the rendered report if
/// any error-severity diagnostic is found, or shape errors if the batch is
/// incompatible with the network.
pub fn verify_network_tape(net: &mut Network, images: &Tensor, labels: &[usize]) -> Result<Report> {
    verify_network_tape_with(net, images, labels, &VerifyOptions::default())
}

/// [`verify_network_tape`] with explicit value-lint options (e.g. the bit
/// widths an upcoming quantization sweep will use). The report is also
/// published through `hero-obs` (`analyze_diags_*` counters and, on
/// traced runs, an `analyze_report` event).
///
/// # Errors
///
/// Same contract as [`verify_network_tape`].
pub fn verify_network_tape_with(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    opts: &VerifyOptions,
) -> Result<Report> {
    let (report, _dot) = preflight_report(net, images, labels, opts, false)?;
    if report.has_errors() {
        return Err(TensorError::InvalidArgument(format!(
            "static tape verification failed for `{}`:\n{report}",
            net.name()
        )));
    }
    Ok(report)
}

/// Records one train-mode probe tape, runs the full analyzer suite over
/// it, and (when `render_dot` is set) renders the interval-colored
/// Graphviz view — the building block behind [`verify_network_tape_with`]
/// and the CLI `preflight` subcommand. Never errors on diagnostics; the
/// caller decides what gates.
///
/// # Errors
///
/// Returns shape errors if the batch is incompatible with the network.
pub fn preflight_report(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    opts: &VerifyOptions,
    render_dot: bool,
) -> Result<(Report, Option<String>)> {
    crate::preflight::preflight_report_with_noise(net, images, labels, opts, None, render_dot)
}

/// Evaluates the paper's Fig. 2(a) probe ‖Hz‖ on a fixed training
/// subsample.
///
/// # Errors
///
/// Returns shape errors if the probe batch is incompatible.
pub fn probe_hessian_norm(
    net: &mut Network,
    train_set: &Dataset,
    config: &TrainConfig,
) -> Result<f32> {
    let n = train_set.len().min(PROBE_SAMPLES);
    let images = train_set.images.narrow(0, n)?;
    let labels = &train_set.labels[..n];
    let params = net.params();
    let mut oracle = BatchOracle::new(net, &images, labels);
    let (hz, _) = hessian_norm_probe(&mut oracle, &params, 1e-3)?;
    // Restore the unperturbed parameters (the oracle installs whatever it
    // evaluated last).
    net.set_params(&params)?;
    let _ = config;
    Ok(hz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_data::{SynthGenerator, SynthSpec};
    use hero_nn::models::{mlp, ModelConfig};
    use hero_optim::Method;
    use hero_tensor::rng::StdRng;

    fn setup() -> (Network, Dataset, Dataset) {
        let spec = SynthSpec {
            classes: 4,
            hw: 4,
            noise_std: 0.2,
            ..SynthSpec::default()
        };
        let gen = SynthGenerator::new(spec);
        let (train_set, test_set) = gen.train_test(64, 32);
        let cfg = ModelConfig {
            classes: 4,
            in_channels: 3,
            input_hw: 4,
            width: 4,
        };
        let net = mlp(cfg, &[24], &mut StdRng::seed_from_u64(2));
        (net, train_set, test_set)
    }

    #[test]
    fn training_improves_over_initialization() {
        let (mut net, train_set, test_set) = setup();
        let config = TrainConfig::new(Method::Sgd, 8)
            .with_batch_size(16)
            .with_lr(0.05)
            .without_augment();
        let rec = train(&mut net, &train_set, &test_set, &config).unwrap();
        assert_eq!(rec.epochs.len(), 8);
        assert!(rec.final_test_acc > 0.5, "test acc {}", rec.final_test_acc);
        assert!(rec.epochs.last().unwrap().train_loss < rec.epochs[0].train_loss);
        assert_eq!(rec.method, "SGD");
        // 64 samples / batch 16 = 4 batches * 8 epochs = 32 steps, 1 eval each.
        assert_eq!(rec.grad_evals, 32);
    }

    #[test]
    fn hero_training_works_and_costs_three_evals() {
        let (mut net, train_set, test_set) = setup();
        let config = TrainConfig::new(
            Method::Hero {
                h: 0.2,
                gamma: 0.01,
            },
            3,
        )
        .with_batch_size(16)
        .with_lr(0.05)
        .without_augment();
        let rec = train(&mut net, &train_set, &test_set, &config).unwrap();
        assert_eq!(rec.grad_evals, 3 * 4 * 3);
        assert!(rec.final_test_acc > 0.25);
        assert!(rec.epochs.iter().all(|e| e.regularizer >= 0.0));
    }

    #[test]
    fn probe_interval_fills_hessian_series() {
        let (mut net, train_set, test_set) = setup();
        let config = TrainConfig::new(Method::Sgd, 4)
            .with_batch_size(16)
            .with_probe_every(2);
        let rec = train(&mut net, &train_set, &test_set, &config).unwrap();
        let series = rec.hessian_series();
        // Epochs 0, 2 and the final epoch 3.
        assert_eq!(series.len(), 3);
        assert!(series.iter().all(|(_, v)| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn spectrum_interval_collects_probes() {
        let (mut net, train_set, test_set) = setup();
        let config = TrainConfig::new(Method::Sgd, 4)
            .with_batch_size(16)
            .with_spectrum_every(2);
        let rec = train(&mut net, &train_set, &test_set, &config).unwrap();
        // Epochs 0, 2 and the final epoch 3.
        assert_eq!(
            rec.spectra.iter().map(|s| s.epoch).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        for s in &rec.spectra {
            assert!(s.lambda_max.mean.is_finite());
            assert_eq!(s.layers.len(), net.params().len());
            assert!(s.global_trace().is_finite());
        }
        // Disabled by default: no probes, no probe cost.
        let (mut net2, train_set2, test_set2) = setup();
        let plain = TrainConfig::new(Method::Sgd, 2).with_batch_size(16);
        let rec2 = train(&mut net2, &train_set2, &test_set2, &plain).unwrap();
        assert!(rec2.spectra.is_empty());
    }

    #[test]
    fn probe_preserves_parameters() {
        let (mut net, train_set, _) = setup();
        let config = TrainConfig::new(Method::Sgd, 1);
        let before = net.params();
        probe_hessian_norm(&mut net, &train_set, &config).unwrap();
        assert_eq!(net.params(), before);
    }

    #[test]
    fn network_tapes_pass_static_verification() {
        let (mut net, train_set, _) = setup();
        let labels = &train_set.labels[..8];
        let images = train_set.images.narrow(0, 8).unwrap();
        let report = verify_network_tape(&mut net, &images, labels).unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.nodes > 0);
    }

    #[test]
    fn frozen_bn_stats_are_not_flagged_unused() {
        // Data-parallel shard workers (and perturbed-gradient evaluations)
        // run train-mode forwards with BN running-stat updates frozen.
        // Freezing only skips the EMA update — gamma/beta are still graph
        // inputs consumed by `batch_norm` — so the analyzer must not
        // report UnusedParameter for any BN parameter, and verification
        // must not move the running statistics.
        let cfg = ModelConfig {
            classes: 4,
            in_channels: 3,
            input_hw: 8,
            width: 4,
        };
        let mut net = hero_nn::models::mini_resnet(cfg, 1, &mut StdRng::seed_from_u64(3));
        let spec = SynthSpec {
            classes: 4,
            hw: 8,
            noise_std: 0.2,
            ..SynthSpec::default()
        };
        let (train_set, _) = SynthGenerator::new(spec).train_test(16, 8);
        let images = train_set.images.narrow(0, 8).unwrap();
        let params_before = net.params();
        let prev = hero_nn::norm::set_bn_running_stat_updates(false);
        let report = verify_network_tape(&mut net, &images, &train_set.labels[..8]).unwrap();
        hero_nn::norm::set_bn_running_stat_updates(prev);
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == hero_analyze::DiagCode::UnusedParameter),
            "{report}"
        );
        assert!(report.is_clean(), "{report}");
        assert_eq!(net.params(), params_before);
    }

    #[test]
    fn verification_rejects_mismatched_batches() {
        let (mut net, train_set, _) = setup();
        // 8 images but only 3 labels: the tape cannot be built cleanly.
        let images = train_set.images.narrow(0, 8).unwrap();
        assert!(verify_network_tape(&mut net, &images, &train_set.labels[..3]).is_err());
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let (mut net1, train_set, test_set) = setup();
        let (mut net2, _, _) = setup();
        let config = TrainConfig::new(Method::Sgd, 3)
            .with_batch_size(16)
            .with_seed(5);
        let r1 = train(&mut net1, &train_set, &test_set, &config).unwrap();
        let r2 = train(&mut net2, &train_set, &test_set, &config).unwrap();
        assert_eq!(r1.final_test_acc, r2.final_test_acc);
        assert_eq!(net1.params(), net2.params());
    }
}
