//! Edge-deployment scenario: a model must survive *on-the-fly* precision
//! changes (the paper's §1 motivation — power/memory availability on edge
//! devices changes at run time, and retraining per precision is not an
//! option).
//!
//! This example trains the MobileNetV2 stand-in once per method and then
//! walks it through a simulated deployment schedule of precision switches,
//! reporting accuracy at every switch plus the Theorem 2 diagnostics
//! (worst ℓ∞ weight perturbation vs the bin width Δ).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p hero-core --example edge_quantization
//! ```

use hero_core::experiment::{model_config, MethodKind};
use hero_core::{train, TrainConfig};
use hero_data::Preset;
use hero_nn::evaluate_accuracy;
use hero_nn::models::ModelKind;
use hero_quant::{quantize_params, QuantScheme};
use hero_tensor::rng::StdRng;
use hero_tensor::TensorError;

fn main() -> Result<(), TensorError> {
    let preset = Preset::C10;
    let (train_set, test_set) = preset.load(0.5);
    let epochs = 25;

    // A day in the life of an edge device: precision follows the power budget.
    let schedule = [
        ("battery full", 8u8),
        ("power saver", 4),
        ("thermal throttling", 3),
        ("recovered", 6),
    ];

    for method in [MethodKind::Hero, MethodKind::GradL1, MethodKind::Sgd] {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = ModelKind::Mobilenet.build(model_config(preset), &mut rng);
        let record = train(
            &mut net,
            &train_set,
            &test_set,
            &TrainConfig::new(method.tuned(), epochs),
        )?;
        println!(
            "{} (full-precision test acc {:.1}%):",
            method.paper_name(),
            100.0 * record.final_test_acc
        );
        let full = net.params();
        for (phase, bits) in schedule {
            let (qp, report) = quantize_params(&net, &QuantScheme::symmetric(bits)?)?;
            net.set_params(&qp)?;
            let acc = evaluate_accuracy(&mut net, &test_set.images, &test_set.labels, 64)?;
            println!(
                "  {phase:18} -> {bits}-bit: acc {:5.1}%  (‖δ‖∞ {:.4} ≤ Δ/2 {:.4})",
                100.0 * acc,
                report.worst_linf,
                report.max_bin_width / 2.0
            );
            // Switching precision means re-quantizing the *stored* full-
            // precision weights, not stacking quantizations.
            net.set_params(&full)?;
        }
        println!();
    }
    println!("expect: HERO holds accuracy through the 3-4 bit phases where SGD collapses.");
    Ok(())
}
