//! The run-summary table: aggregated span rows, console rendering and the
//! phase-attribution metric.

use crate::json::JsonObj;

/// One aggregated span in the summary table (one node of the merged
/// self/total-time tree, identified by its slash-separated path).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Slash-separated span path, e.g. `train_step/hvp/forward`.
    pub path: String,
    /// Leaf span name.
    pub name: String,
    /// Nesting depth (0 = top-level span).
    pub depth: usize,
    /// Times the span closed.
    pub calls: u64,
    /// Nanoseconds spent in the span excluding named children.
    pub self_ns: u64,
    /// Nanoseconds spent in the span including children.
    pub total_ns: u64,
    /// Total nanoseconds of the parent span (0 for top-level spans).
    pub parent_total_ns: u64,
}

impl SummaryRow {
    /// The span's share of its parent's total time, in percent (`NaN` for
    /// top-level spans).
    pub fn pct_of_parent(&self) -> f64 {
        if self.parent_total_ns == 0 {
            f64::NAN
        } else {
            100.0 * self.total_ns as f64 / self.parent_total_ns as f64
        }
    }

    /// Serializes the row with the shared JSON writer (the same schema
    /// `results/SUMMARY_<run>.json` stores).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("phase", &self.path)
            .u64("calls", self.calls)
            .f64("self_ms", self.self_ns as f64 / 1e6)
            .f64("total_ms", self.total_ns as f64 / 1e6)
            .f64("pct_of_parent", self.pct_of_parent());
        o.finish()
    }
}

/// Renders rows as an aligned console table (phase, calls, self ms, total
/// ms, % of parent), indented by depth.
pub fn render(rows: &[SummaryRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>9} {:>12} {:>12} {:>7}\n",
        "phase", "calls", "self ms", "total ms", "%parent"
    ));
    for r in rows {
        let label = format!("{}{}", "  ".repeat(r.depth), r.name);
        let pct = r.pct_of_parent();
        let pct = if pct.is_nan() {
            "-".to_string()
        } else {
            format!("{pct:.1}")
        };
        out.push_str(&format!(
            "{:<44} {:>9} {:>12.3} {:>12.3} {:>7}\n",
            label,
            r.calls,
            r.self_ns as f64 / 1e6,
            r.total_ns as f64 / 1e6,
            pct
        ));
    }
    out
}

/// Fraction of wall-clock time inside spans named `name` that is covered
/// by *named child spans* — the acceptance metric "≥ 90% of step
/// wall-clock attributed to named phases" with `name = "train_step"`.
///
/// Aggregates over every occurrence of `name` in the tree (any path) and
/// returns `NaN` when the span never ran.
pub fn child_coverage(rows: &[SummaryRow], name: &str) -> f64 {
    let mut own = 0u64;
    let mut covered = 0u64;
    for r in rows.iter().filter(|r| r.name == name) {
        own += r.total_ns;
        let prefix = format!("{}/", r.path);
        covered += rows
            .iter()
            .filter(|c| c.depth == r.depth + 1 && c.path.starts_with(&prefix))
            .map(|c| c.total_ns)
            .sum::<u64>();
    }
    if own == 0 {
        f64::NAN
    } else {
        covered as f64 / own as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(path: &str, depth: usize, total_ns: u64, parent_total_ns: u64) -> SummaryRow {
        SummaryRow {
            path: path.to_string(),
            name: path.rsplit('/').next().unwrap_or(path).to_string(),
            depth,
            calls: 1,
            self_ns: total_ns / 2,
            total_ns,
            parent_total_ns,
        }
    }

    #[test]
    fn coverage_sums_direct_children_only() {
        let rows = vec![
            row("train_step", 0, 100, 0),
            row("train_step/forward", 1, 40, 100),
            row("train_step/hvp", 1, 50, 100),
            row("train_step/hvp/forward", 2, 45, 50),
        ];
        let c = child_coverage(&rows, "train_step");
        assert!((c - 0.9).abs() < 1e-9, "coverage {c}");
        // The nested forward does not double count.
        assert!(child_coverage(&rows, "hvp") > 0.89);
        assert!(child_coverage(&rows, "absent").is_nan());
    }

    #[test]
    fn render_contains_all_phases() {
        let rows = vec![
            row("a", 0, 2_000_000, 0),
            row("a/b", 1, 1_000_000, 2_000_000),
        ];
        let table = render(&rows);
        assert!(table.contains("phase"));
        assert!(table.contains("a"));
        assert!(table.contains("  b"));
        assert!(table.contains("50.0"));
    }

    #[test]
    fn row_json_uses_shared_writer() {
        let r = row("train_step/apply", 1, 3_000_000, 6_000_000);
        let v = crate::json::parse(&r.to_json()).expect("parse");
        assert_eq!(
            v.get("phase").and_then(crate::json::Value::as_str),
            Some("train_step/apply")
        );
        assert_eq!(
            v.get("total_ms").and_then(crate::json::Value::as_f64),
            Some(3.0)
        );
        assert_eq!(
            v.get("pct_of_parent").and_then(crate::json::Value::as_f64),
            Some(50.0)
        );
    }
}
