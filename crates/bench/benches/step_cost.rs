//! Per-step cost of each training method (the paper's implicit §5.1 cost
//! claim: SAM-style methods cost one extra backprop, HERO two) plus the
//! raw GEMM that dominates it. Writes `results/BENCH_step.json` (override
//! the destination with `HERO_BENCH_OUT`).
//!
//! Timing runs with tracing *disabled* — the steady-state configuration —
//! then each operation is replayed briefly with counters enabled to attach
//! pool-hit-rate, GEMM-flops and gradient-evaluation extras to its row.

use hero_bench::timing::{bench_out_path, default_budget, time_op, write_json, BenchRow};
use hero_core::experiment::{model_config, MethodKind};
use hero_data::Preset;
use hero_nn::models::ModelKind;
use hero_obs::counters;
use hero_optim::{train_step, Optimizer};
use hero_parallel::{threads_from_env, train_step_parallel, ParallelCtx};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::Tensor;

/// Replays `f` a few times with counters enabled and attaches the mean
/// per-iteration counter readings to the row.
fn with_counter_extras(row: BenchRow, mut f: impl FnMut()) -> BenchRow {
    const SAMPLE_ITERS: u64 = 5;
    hero_obs::enable();
    counters::reset_all();
    for _ in 0..SAMPLE_ITERS {
        f();
    }
    let hits = counters::POOL_HITS.get() as f64;
    let fresh = counters::POOL_FRESH_ALLOCS.get() as f64;
    let flops = counters::GEMM_FLOPS.get() as f64 / SAMPLE_ITERS as f64;
    let evals = counters::GRAD_EVALS.get() as f64 / SAMPLE_ITERS as f64;
    hero_obs::disable();
    let mut row = row.with_extra("gemm_flops_per_iter", flops);
    if hits + fresh > 0.0 {
        row = row.with_extra("pool_hit_rate", hits / (hits + fresh));
    }
    if evals > 0.0 {
        row = row.with_extra("grad_evals_per_iter", evals);
    }
    row
}

fn main() {
    hero_obs::disable();
    let budget = default_budget();
    let mut rows = Vec::new();

    // Raw kernel: the 256x256x256 product named in the bench methodology
    // (DESIGN.md). `matmul` is the packed micro-kernel path; the
    // `_reference` row is the pre-packing blocked kernel kept as oracle.
    let mut rng = StdRng::seed_from_u64(7);
    let a = Tensor::from_fn([256, 256], |_| rng.gen::<f32>() - 0.5);
    let b = Tensor::from_fn([256, 256], |_| rng.gen::<f32>() - 0.5);
    let row = time_op("matmul_256x256x256", budget, || {
        std::hint::black_box(a.matmul(&b).unwrap());
    });
    rows.push(with_counter_extras(row, || {
        std::hint::black_box(a.matmul(&b).unwrap());
    }));
    rows.push(time_op("matmul_256x256x256_reference", budget, || {
        std::hint::black_box(hero_tensor::matmul_reference(&a, &b).unwrap());
    }));

    // Full training steps on the ResNet stand-in, batch 16 (matches the
    // EXPERIMENTS.md training configuration).
    let preset = Preset::C10;
    let (train_set, _) = preset.load(0.2);
    let images = train_set.images.narrow(0, 16).unwrap();
    let labels = train_set.labels[..16].to_vec();
    for method in [
        MethodKind::Sgd,
        MethodKind::GradL1,
        MethodKind::FirstOrder,
        MethodKind::Hero,
    ] {
        let mut net = ModelKind::Resnet.build(model_config(preset), &mut StdRng::seed_from_u64(0));
        let mut opt = Optimizer::new(method.tuned());
        let name = format!("step_{}", method.paper_name());
        let row = time_op(&name, budget, || {
            train_step(&mut net, &mut opt, &images, &labels, 0.01).unwrap();
        });
        rows.push(with_counter_extras(row, || {
            train_step(&mut net, &mut opt, &images, &labels, 0.01).unwrap();
        }));
    }

    // The same HERO step through the sharded data-parallel executor, with
    // the worker count taken from HERO_THREADS (1 when unset). verify.sh
    // runs this bench at 1 and 4 threads and diffs the two rows.
    let threads = threads_from_env().max(1);
    {
        let mut net = ModelKind::Resnet.build(model_config(preset), &mut StdRng::seed_from_u64(0));
        let mut ctx = ParallelCtx::new(&net, threads).unwrap();
        let mut opt = Optimizer::new(MethodKind::Hero.tuned());
        let row = time_op("step_HERO_parallel", budget, || {
            train_step_parallel(&mut ctx, &mut net, &mut opt, &images, &labels, 0.01).unwrap();
        });
        let row = with_counter_extras(row, || {
            train_step_parallel(&mut ctx, &mut net, &mut opt, &images, &labels, 0.01).unwrap();
        });
        rows.push(
            row.with_extra("threads", threads as f64)
                .with_extra("shards", ctx.shards() as f64),
        );
    }

    // Anchor at the workspace root so `cargo bench` (which runs with the
    // package dir as CWD) writes next to the repro_* outputs.
    let out = bench_out_path(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_step.json"
    ));
    write_json(out, &rows).expect("write results");
}
