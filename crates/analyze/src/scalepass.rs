//! Backward scale-factor dataflow: per-node upper bounds on the gradient
//! magnitude `|∂loss/∂node|`, propagated from the loss roots through
//! per-op Jacobian-magnitude multipliers.
//!
//! The bound at a root is `1` (the seed adjoint `backward` injects); each
//! op contributes `bound(parent) += bound(node) · mult(op, slot)`, where
//! `mult` bounds the largest entry of `|∂node/∂parent|` times the fan-in
//! a single parent element can receive (broadcast reduction sums
//! `numel(node)/numel(parent)` adjoint terms into one slot). Element
//! ranges come from the forward interval pass, so e.g. `mul`'s multiplier
//! is the co-operand's `abs_max`.
//!
//! Bounds are computed in `f64` with a small multiplicative headroom for
//! `f32` rounding in the real backward pass. They are *upper* bounds:
//! [`DiagCode::ScaleVanishing`] (bound below threshold) is a sound claim
//! that gradients are small, while [`DiagCode::ScaleExplosion`] (bound
//! above threshold) is advisory — the bound may be loose. Both report at
//! the first node whose bound crosses the threshold walking backward from
//! the roots, not at every node past it.

use crate::diag::{DiagCode, Diagnostic};
use crate::interval::Interval;
use crate::verify::provenance;
use hero_autodiff::{NodeTrace, TraceDetail};

/// Multiplicative headroom covering `f32` rounding of the concrete
/// backward products the bounds model.
const HEADROOM: f64 = 1.0 + 1e-6;

fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Upper bounds on the per-parent Jacobian-magnitude multipliers of node
/// `i`, aligned with its parent slots.
fn parent_multipliers(tape: &[NodeTrace], i: usize, intervals: &[Interval]) -> Vec<f64> {
    let node = &tape[i];
    let iv = |slot: usize| -> Interval {
        node.parents
            .get(slot)
            .filter(|&&p| p < i)
            .map_or(Interval::TOP, |&p| intervals[p])
    };
    let pshape = |slot: usize| -> &[usize] {
        node.parents
            .get(slot)
            .filter(|&&p| p < i)
            .map_or(&[][..], |&p| &tape[p].shape)
    };
    // Broadcast fan-in: adjoint terms summed into one element of `slot`.
    let fan = |slot: usize| -> f64 {
        let np = numel(pshape(slot)).max(1);
        (numel(&node.shape).max(1) as f64 / np as f64).max(1.0)
    };
    let scalar_c = match node.detail {
        TraceDetail::Scalar { c } => Some(c as f64),
        _ => None,
    };
    let raw: Vec<f64> = match node.op {
        "input" => vec![],
        "add" | "sub" => vec![fan(0), fan(1)],
        "mul" => vec![
            fan(0) * iv(1).abs_max() as f64,
            fan(1) * iv(0).abs_max() as f64,
        ],
        "scale" => vec![scalar_c.map_or(f64::INFINITY, f64::abs)],
        "add_scalar" | "reshape" | "sum" | "max_pool2d" => vec![1.0],
        "matmul" => {
            // dA = dC B^T sums over B's columns; dB = A^T dC over A's rows.
            let n = pshape(1).get(1).copied().unwrap_or(0).max(1) as f64;
            let m = pshape(0).first().copied().unwrap_or(0).max(1) as f64;
            vec![n * iv(1).abs_max() as f64, m * iv(0).abs_max() as f64]
        }
        "relu" => {
            let x = iv(0);
            vec![if !x.maybe_nan && x.hi <= 0.0 {
                0.0
            } else {
                1.0
            }]
        }
        "relu6" => {
            let x = iv(0);
            let dead = !x.maybe_nan && (x.hi <= 0.0 || x.lo >= 6.0);
            vec![if dead { 0.0 } else { 1.0 }]
        }
        "square" => vec![2.0 * iv(0).abs_max() as f64],
        "mean" => vec![1.0 / numel(pshape(0)).max(1) as f64],
        "conv2d" => {
            let (k, out_c) = match node.detail {
                TraceDetail::Conv { geom } => (
                    geom.kernel as f64,
                    node.shape.get(1).copied().unwrap_or(1) as f64,
                ),
                _ => return vec![f64::INFINITY; node.parents.len()],
            };
            let positions = node.shape.first().copied().unwrap_or(1) as f64
                * node.shape.get(2).copied().unwrap_or(1) as f64
                * node.shape.get(3).copied().unwrap_or(1) as f64;
            vec![
                out_c * k * k * iv(1).abs_max() as f64,
                positions * iv(0).abs_max() as f64,
            ]
        }
        "depthwise_conv2d" => {
            let k = match node.detail {
                TraceDetail::Conv { geom } => geom.kernel as f64,
                _ => return vec![f64::INFINITY; node.parents.len()],
            };
            let positions = node.shape.first().copied().unwrap_or(1) as f64
                * node.shape.get(2).copied().unwrap_or(1) as f64
                * node.shape.get(3).copied().unwrap_or(1) as f64;
            vec![
                k * k * iv(1).abs_max() as f64,
                positions * iv(0).abs_max() as f64,
            ]
        }
        "batch_norm" => {
            // dx = γ·inv_std·(dy − mean(dy) − xhat·mean(dy·xhat)); with
            // rms(xhat) <= 1 and |xhat| <= sqrt(M): |dx| <= γ·s·(2+√M)·g.
            // dγ = Σ dy·xhat <= M·g (Cauchy-Schwarz); dβ = Σ dy <= M·g.
            let xs = pshape(0);
            let m = if xs.len() == 4 {
                (xs[0] * xs[2] * xs[3]) as f64
            } else {
                1.0
            };
            let inv_std_max = match node.detail {
                TraceDetail::BatchNorm { inv_std_max, .. } => inv_std_max as f64,
                _ => f64::INFINITY,
            };
            let gmax = iv(1).abs_max() as f64;
            vec![gmax * inv_std_max * (2.0 + m.sqrt()), m, m]
        }
        "avg_pool2d" => match node.detail {
            TraceDetail::AvgPool { k } => vec![1.0 / ((k * k).max(1) as f64)],
            _ => vec![f64::INFINITY],
        },
        "global_avg_pool2d" => {
            let xs = pshape(0);
            let hw = if xs.len() == 4 { xs[2] * xs[3] } else { 1 };
            vec![1.0 / hw.max(1) as f64]
        }
        "cross_entropy" | "cross_entropy_smoothed" => {
            // dlogits = (softmax − target)/batch; |softmax − target| <= 1.
            let batch = pshape(0).first().copied().unwrap_or(1).max(1) as f64;
            vec![1.0 / batch]
        }
        "sigmoid" => {
            let x = iv(0);
            let d = if x.maybe_nan || (x.lo <= 0.0 && x.hi >= 0.0) {
                0.25
            } else {
                let at = if x.lo > 0.0 { x.lo } else { x.hi } as f64;
                let s = 1.0 / (1.0 + (-at).exp());
                s * (1.0 - s)
            };
            vec![d]
        }
        "tanh" => {
            let x = iv(0);
            let d = if x.maybe_nan || (x.lo <= 0.0 && x.hi >= 0.0) {
                1.0
            } else {
                let at = if x.lo > 0.0 { x.lo } else { x.hi } as f64;
                let t = at.tanh();
                1.0 - t * t
            };
            vec![d]
        }
        "leaky_relu" => {
            let s = scalar_c.map_or(f64::INFINITY, f64::abs);
            let x = iv(0);
            if x.maybe_nan {
                vec![s.max(1.0)]
            } else if x.hi <= 0.0 {
                vec![s]
            } else if x.lo >= 0.0 {
                vec![1.0]
            } else {
                vec![s.max(1.0)]
            }
        }
        "ln" => {
            let x = iv(0);
            let d = if x.lo > 0.0 {
                1.0 / x.lo as f64
            } else if x.hi < 0.0 {
                1.0 / x.hi.abs() as f64
            } else {
                f64::INFINITY
            };
            vec![d]
        }
        "dropout" => match node.detail {
            TraceDetail::Dropout { max_scale } => vec![max_scale as f64],
            _ => vec![f64::INFINITY],
        },
        "mse_loss" => {
            let d = match node.detail {
                TraceDetail::Mse {
                    target_lo,
                    target_hi,
                } => {
                    let t = Interval::of(target_lo, target_hi);
                    let lo = iv(0).lo - t.hi;
                    let hi = iv(0).hi - t.lo;
                    if iv(0).maybe_nan {
                        f64::INFINITY
                    } else {
                        lo.abs().max(hi.abs()) as f64
                    }
                }
                _ => f64::INFINITY,
            };
            vec![2.0 * d / numel(pshape(0)).max(1) as f64]
        }
        // Unknown op: no Jacobian model; propagate "unbounded".
        _ => vec![f64::INFINITY; node.parents.len()],
    };
    raw.into_iter().map(|m| m * HEADROOM).collect()
}

/// Runs the backward scale pass. Returns `(bounds, reachable)`: the
/// per-node gradient-magnitude upper bound (0 for unreached nodes) and
/// whether each node can reach a root.
pub(crate) fn scale_pass(
    tape: &[NodeTrace],
    intervals: &[Interval],
    roots: &[usize],
) -> (Vec<f64>, Vec<bool>) {
    let mut bounds = vec![0.0f64; tape.len()];
    let mut reachable = vec![false; tape.len()];
    for &r in roots {
        if r < tape.len() {
            bounds[r] += 1.0;
            reachable[r] = true;
        }
    }
    for i in (0..tape.len()).rev() {
        if !reachable[i] {
            continue;
        }
        let mults = parent_multipliers(tape, i, intervals);
        for (slot, &p) in tape[i].parents.iter().enumerate() {
            if p >= i {
                continue; // malformed edge; structural pass reports it
            }
            reachable[p] = true;
            let mult = mults.get(slot).copied().unwrap_or(f64::INFINITY);
            // 0·inf (no incoming gradient × unbounded Jacobian, or the
            // reverse) contributes nothing through this edge.
            let contrib = bounds[i] * mult;
            bounds[p] += if contrib.is_nan() { 0.0 } else { contrib };
        }
    }
    (bounds, reachable)
}

/// Emits threshold-crossing lints over computed bounds. A node is flagged
/// when its own bound crosses the threshold but the bounds of the
/// (reachable) consumers it received gradient from do not — the boundary
/// of the crossing, not the whole chain past it.
pub(crate) fn scale_diags(
    tape: &[NodeTrace],
    bounds: &[f64],
    reachable: &[bool],
    consumers: &[Vec<usize>],
    roots: &[usize],
    explode: f32,
    vanish: f32,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let exploded = |i: usize| reachable[i] && bounds[i] > explode as f64;
    let vanished = |i: usize| reachable[i] && bounds[i] < vanish as f64;
    for (i, node) in tape.iter().enumerate() {
        if !reachable[i] || roots.contains(&i) {
            continue;
        }
        let feeders = || {
            consumers[i]
                .iter()
                .copied()
                .filter(|&c| reachable[c])
                .collect::<Vec<_>>()
        };
        if exploded(i) && !feeders().iter().any(|&c| exploded(c)) {
            out.push(Diagnostic {
                node: i,
                op: node.op.to_string(),
                code: DiagCode::ScaleExplosion,
                message: format!(
                    "gradient-magnitude bound {:e} crosses the explosion threshold {:e} here",
                    bounds[i], explode
                ),
                provenance: provenance(tape, i),
            });
        }
        if vanished(i) && !feeders().iter().any(|&c| vanished(c)) {
            out.push(Diagnostic {
                node: i,
                op: node.op.to_string(),
                code: DiagCode::ScaleVanishing,
                message: format!(
                    "gradient-magnitude bound {:e} falls below the vanishing threshold {:e} here",
                    bounds[i], vanish
                ),
                provenance: provenance(tape, i),
            });
        }
    }
    out
}
