//! Cost of one spectrum-observatory probe. Writes
//! `results/BENCH_spectrum.json` (override with `HERO_BENCH_OUT`).
//!
//! Three rows, from estimator to trainer-facing aggregate:
//!
//! * `slq_density_*` — the stochastic Lanczos quadrature density alone;
//! * `layer_traces_*` — the per-layer Hutchinson trace sweep alone;
//! * `probe_spectrum_*` — the full [`hero_core::probe_spectrum`] call the
//!   trainer takes every `spectrum_every` epochs, including parameter
//!   restore.
//!
//! Each row carries a `grad_evals` extra — the number of gradient
//! evaluations the operation spends — so the JSON documents the probe's
//! cost model (`slq_probes·steps + trace_probes·n_layers + shared base
//! gradient`) next to its wall-clock price.

use hero_bench::timing::{bench_out_path, default_budget, time_op, write_json};
use hero_core::experiment::model_config;
use hero_core::SpectrumOptions;
use hero_data::Preset;
use hero_hessian::{layer_traces, slq_density, SlqConfig};
use hero_nn::models::ModelKind;
use hero_optim::BatchOracle;
use hero_tensor::rng::StdRng;

const STEPS: usize = 6;
const PROBES: usize = 2;

fn main() {
    hero_obs::disable();
    let budget = default_budget();
    let mut rows = Vec::new();

    let preset = Preset::C10;
    let (train_set, _) = preset.load(0.2);
    let images = train_set.images.narrow(0, 16).unwrap();
    let labels = train_set.labels[..16].to_vec();
    let mut net = ModelKind::Resnet.build(model_config(preset), &mut StdRng::seed_from_u64(0));
    let params = net.params();
    let n_layers = params.len();

    let row = time_op("slq_density_resnet_b16", budget, || {
        let mut oracle = BatchOracle::new(&mut net, &images, &labels);
        let cfg = SlqConfig {
            steps: STEPS,
            probes: PROBES,
            seed: 7,
            ..SlqConfig::default()
        };
        std::hint::black_box(slq_density(&mut oracle, &params, cfg).unwrap());
    })
    .with_extra("grad_evals", (1 + PROBES * STEPS) as f64);
    rows.push(row);

    let row = time_op("layer_traces_resnet_b16", budget, || {
        let mut oracle = BatchOracle::new(&mut net, &images, &labels);
        std::hint::black_box(layer_traces(&mut oracle, &params, PROBES, 1e-3, 7).unwrap());
    })
    .with_extra("grad_evals", (1 + PROBES * n_layers) as f64);
    rows.push(row);

    net.set_params(&params).unwrap();
    let opts = SpectrumOptions {
        steps: STEPS,
        slq_probes: PROBES,
        trace_probes: PROBES,
        samples: 16,
        ..SpectrumOptions::default()
    };
    let row = time_op("probe_spectrum_resnet_b16", budget, || {
        std::hint::black_box(hero_core::probe_spectrum(&mut net, &train_set, 0, &opts).unwrap());
    })
    .with_extra(
        "grad_evals",
        (2 + PROBES * STEPS + PROBES * n_layers) as f64,
    );
    rows.push(row);

    let out = bench_out_path(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_spectrum.json"
    ));
    write_json(out, &rows).expect("write results");
}
