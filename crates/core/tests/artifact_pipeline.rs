//! The model-artifact regression suite (DESIGN.md §16): checkpoint/resume
//! bitwise equality, save→load→save byte identity, loaded-artifact
//! inference equivalence, HERO_THREADS invariance of saved bytes,
//! quantize-from-artifact exactness, and the committed golden artifact's
//! byte pin.

use hero_core::experiment::{quant_sweep, MethodKind, TrainedModel};
use hero_core::{
    golden_recipe, load_artifact, network_from_artifact, record_from_artifact,
    resume_from_artifact, save_artifact, train_to_artifact, ModelSpec, RunMeta, TrainConfig,
    TrainRecord,
};
use hero_data::{Dataset, SynthGenerator, SynthSpec};
use hero_nn::models::ModelConfig;
use hero_nn::Network;
use hero_optim::Method;
use std::path::PathBuf;

fn setup() -> (Dataset, Dataset) {
    let spec = SynthSpec {
        classes: 4,
        hw: 4,
        noise_std: 0.2,
        ..SynthSpec::default()
    };
    SynthGenerator::new(spec).train_test(48, 24)
}

fn run_meta(method: Method, threads: usize, epochs: usize) -> RunMeta {
    let model_cfg = ModelConfig {
        classes: 4,
        in_channels: 3,
        input_hw: 4,
        width: 4,
    };
    RunMeta {
        model: ModelSpec::Mlp(vec![20]),
        model_cfg,
        config: TrainConfig::new(method, epochs)
            .with_batch_size(16)
            .with_lr(0.05)
            .with_seed(9)
            .with_threads(threads),
        git_rev: "test".to_string(),
        preflight_hash: None,
    }
}

fn param_bits(net: &Network) -> Vec<u32> {
    net.params()
        .iter()
        .flat_map(|t| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

/// Bit-exact fingerprint of a record: every float via `to_bits` so NaN
/// placeholders compare equal too.
fn record_bits(rec: &TrainRecord) -> Vec<u64> {
    let mut out = vec![rec.grad_evals as u64, rec.epochs.len() as u64];
    out.push(u64::from(rec.final_train_acc.to_bits()));
    out.push(u64::from(rec.final_test_acc.to_bits()));
    for e in &rec.epochs {
        out.push(e.epoch as u64);
        for v in [
            e.train_loss,
            e.train_acc,
            e.test_acc,
            e.hessian_norm,
            e.regularizer,
        ] {
            out.push(u64::from(v.to_bits()));
        }
    }
    for s in &rec.spectra {
        out.push(s.epoch as u64);
        for est in [
            &s.lambda_max,
            &s.lambda_min,
            &s.mean_eigenvalue,
            &s.second_moment,
        ] {
            out.push(u64::from(est.mean.to_bits()));
            out.push(u64::from(est.std_error.to_bits()));
            out.push(est.samples as u64);
        }
        for l in &s.layers {
            out.push(u64::from(l.trace.mean.to_bits()));
        }
    }
    out
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hero_artifact_pipeline_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

// --- checkpoint / resume (satellite: interrupt at epoch k, resume) --------

fn checkpoint_resume_case(method: Method, threads: usize, tag: &str) {
    let (train_set, test_set) = setup();
    let meta = run_meta(method, threads, 5);

    // Uninterrupted reference run.
    let mut ref_net = meta.model.build(meta.model_cfg);
    let (ref_record, ref_art) =
        train_to_artifact(&mut ref_net, &train_set, &test_set, &meta, 0, None).unwrap();

    // Interrupted run: checkpoint every 2 epochs, stop after the one at
    // epoch 2 (next_epoch = 2 means epochs 0..2 ran), resume to the end.
    let ckpt_path = temp_path(&format!("ckpt_{tag}.ha"));
    let mut net = meta.model.build(meta.model_cfg);
    let (_, _) =
        train_to_artifact(&mut net, &train_set, &test_set, &meta, 2, Some(&ckpt_path)).unwrap();
    let ckpt = load_artifact(&ckpt_path).unwrap();
    let resume_state = ckpt.resume.as_ref().expect("checkpoint has RESUME section");
    assert!(
        resume_state.next_epoch < 5,
        "{tag}: checkpoint should be mid-run, next_epoch={}",
        resume_state.next_epoch
    );
    let (resumed_record, resumed_art, resumed_net) =
        resume_from_artifact(&ckpt, &train_set, &test_set, 0, None).unwrap();

    assert_eq!(
        param_bits(&resumed_net),
        param_bits(&ref_net),
        "{tag}: resumed weights diverge from the uninterrupted run"
    );
    assert_eq!(
        record_bits(&resumed_record),
        record_bits(&ref_record),
        "{tag}: resumed TrainRecord diverges from the uninterrupted run"
    );
    assert_eq!(
        resumed_art.to_bytes(),
        ref_art.to_bytes(),
        "{tag}: resumed final artifact bytes diverge"
    );
    std::fs::remove_file(&ckpt_path).ok();
}

#[test]
fn checkpoint_resume_is_bitwise_exact_sgd_serial() {
    checkpoint_resume_case(Method::Sgd, 0, "sgd_serial");
}

#[test]
fn checkpoint_resume_is_bitwise_exact_sgd_threads4() {
    checkpoint_resume_case(Method::Sgd, 4, "sgd_t4");
}

#[test]
fn checkpoint_resume_is_bitwise_exact_hero_serial() {
    checkpoint_resume_case(
        Method::Hero {
            h: 0.05,
            gamma: 0.1,
        },
        0,
        "hero_serial",
    );
}

#[test]
fn checkpoint_resume_is_bitwise_exact_hero_threads4() {
    checkpoint_resume_case(
        Method::Hero {
            h: 0.05,
            gamma: 0.1,
        },
        4,
        "hero_t4",
    );
}

// --- save → load → save byte identity + inference equivalence -------------

#[test]
fn save_load_save_is_byte_identical_and_inference_equivalent() {
    let (train_set, test_set) = setup();
    let meta = run_meta(
        Method::Hero {
            h: 0.05,
            gamma: 0.1,
        },
        0,
        3,
    );
    let mut net = meta.model.build(meta.model_cfg);
    let (record, art) = train_to_artifact(&mut net, &train_set, &test_set, &meta, 0, None).unwrap();

    let path = temp_path("round_trip.ha");
    save_artifact(&art, &path).unwrap();
    let loaded = load_artifact(&path).unwrap();
    let path2 = temp_path("round_trip2.ha");
    save_artifact(&loaded, &path2).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&path2).unwrap(),
        "save→load→save changed the bytes"
    );

    // The loaded network is the trained network, bit for bit: same
    // parameters, same BN statistics, same logits on a fixed batch.
    let mut loaded_net = network_from_artifact(&loaded).unwrap();
    assert_eq!(param_bits(&loaded_net), param_bits(&net));
    assert_eq!(loaded_net.state(), net.state());
    let reference = net.predict(&test_set.images).unwrap();
    let reloaded = loaded_net.predict(&test_set.images).unwrap();
    assert_eq!(
        reference.data(),
        reloaded.data(),
        "loaded-artifact logits differ from the in-memory model"
    );

    // The training history survives serialization exactly.
    let rec2 = record_from_artifact(&loaded).unwrap();
    assert_eq!(record_bits(&rec2), record_bits(&record));
    assert_eq!(rec2.method, record.method);

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path2).ok();
}

// --- HERO_THREADS invariance of saved bytes -------------------------------

#[test]
fn artifact_bytes_are_identical_across_worker_counts() {
    let (train_set, test_set) = setup();
    let mut reference = None;
    for threads in 1..=4usize {
        let meta = run_meta(
            Method::Hero {
                h: 0.05,
                gamma: 0.1,
            },
            threads,
            3,
        );
        let mut net = meta.model.build(meta.model_cfg);
        let (_, art) = train_to_artifact(&mut net, &train_set, &test_set, &meta, 0, None).unwrap();
        let bytes = art.to_bytes();
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(
                &bytes, r,
                "artifact bytes diverge at {threads} worker threads"
            ),
        }
    }
}

// --- quantize from artifact == in-memory quant_sweep ----------------------

#[test]
fn quant_sweep_from_loaded_artifact_matches_in_memory() {
    let (train_set, test_set) = setup();
    let meta = run_meta(Method::Sgd, 0, 3);
    let mut net = meta.model.build(meta.model_cfg);
    let (record, art) = train_to_artifact(&mut net, &train_set, &test_set, &meta, 0, None).unwrap();

    let bits = [3u8, 4, 8];
    let mut in_memory = TrainedModel {
        net,
        record,
        method: MethodKind::Sgd,
    };
    let curve_mem = quant_sweep(&mut in_memory, &test_set, &bits).unwrap();

    let loaded_net = network_from_artifact(&art).unwrap();
    let loaded_record = record_from_artifact(&art).unwrap();
    let mut from_artifact = TrainedModel {
        net: loaded_net,
        record: loaded_record,
        method: MethodKind::Sgd,
    };
    let curve_art = quant_sweep(&mut from_artifact, &test_set, &bits).unwrap();

    assert_eq!(
        curve_art.full_acc.to_bits(),
        curve_mem.full_acc.to_bits(),
        "full-precision accuracy differs"
    );
    for ((b1, a1), (b2, a2)) in curve_mem.points.iter().zip(&curve_art.points) {
        assert_eq!(b1, b2);
        assert_eq!(
            a1.to_bits(),
            a2.to_bits(),
            "quantized accuracy at {b1} bits differs between in-memory and artifact"
        );
    }
}

// --- checkpoints land in the same format ----------------------------------

#[test]
fn checkpoint_artifacts_reload_as_networks_too() {
    let (train_set, test_set) = setup();
    let meta = run_meta(Method::Sgd, 0, 4);
    let ckpt_path = temp_path("inspectable_ckpt.ha");
    let mut net = meta.model.build(meta.model_cfg);
    train_to_artifact(&mut net, &train_set, &test_set, &meta, 3, Some(&ckpt_path)).unwrap();
    let ckpt = load_artifact(&ckpt_path).unwrap();
    // A checkpoint is a full model artifact: same sections, plus RESUME.
    let mid_net = network_from_artifact(&ckpt).unwrap();
    assert_eq!(mid_net.params().len(), net.params().len());
    assert!(ckpt.resume.is_some());
    let described = ckpt.describe();
    assert!(described.contains("resume: next_epoch=3"), "{described}");
    std::fs::remove_file(&ckpt_path).ok();
}

#[test]
fn train_cell_cache_hit_is_bitwise_equal_to_the_fresh_run() {
    use hero_core::experiment::{train_cell_cached, Scale};
    use hero_data::Preset;
    use hero_nn::models::ModelKind;

    let scale = Scale {
        data: 0.05,
        epochs_small: 2,
        epochs_large: 1,
    };
    let dir = temp_path("cell_cache");
    std::fs::remove_dir_all(&dir).ok();
    let mut fresh = train_cell_cached(
        Preset::C10,
        ModelKind::Resnet,
        MethodKind::Sgd,
        scale,
        0,
        &dir,
    )
    .expect("cold cache trains and saves");
    let mut cached = train_cell_cached(
        Preset::C10,
        ModelKind::Resnet,
        MethodKind::Sgd,
        scale,
        0,
        &dir,
    )
    .expect("warm cache loads");
    assert_eq!(param_bits(&fresh.net), param_bits(&cached.net));
    assert_eq!(record_bits(&fresh.record), record_bits(&cached.record));
    assert_eq!(cached.method, MethodKind::Sgd);
    // Batch-norm running stats ride along too, so inference matches
    // bitwise, not just the learned parameters.
    let (_, test_set) = Preset::C10.load(scale.data);
    let a = fresh.net.predict(&test_set.images).unwrap();
    let b = cached.net.predict(&test_set.images).unwrap();
    let a_bits: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
    let b_bits: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(a_bits, b_bits);
    std::fs::remove_dir_all(&dir).ok();
}

// --- the committed golden artifact ----------------------------------------

/// Byte-pin of the committed golden artifact. The golden file is
/// generated with scalar GEMM (`HERO_NO_SIMD=1`) as the canonical
/// kernel, so the pin only runs under that environment — verify.sh
/// exercises it in its scalar pass with both HERO_THREADS=1 and =4.
#[test]
fn golden_artifact_bytes_are_pinned() {
    if std::env::var("HERO_NO_SIMD").is_err() {
        eprintln!("skipping golden byte-pin: HERO_NO_SIMD not set (SIMD kernels differ bitwise)");
        return;
    }
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/c10_resnet_hero_smoke.ha");
    let committed = std::fs::read(&golden_path)
        .unwrap_or_else(|e| panic!("golden artifact missing at {}: {e}", golden_path.display()));

    let (train_set, test_set, mut net, meta) = golden_recipe();
    let (_, art) = train_to_artifact(&mut net, &train_set, &test_set, &meta, 0, None).unwrap();
    let fresh = art.to_bytes();
    assert_eq!(
        hero_artifact::fnv1a64(&fresh),
        hero_artifact::fnv1a64(&committed),
        "golden artifact hash changed — the training trajectory is no longer \
         byte-stable (or the recipe/format changed; regenerate tests/golden/ \
         deliberately if so)"
    );
    assert_eq!(fresh, committed, "golden artifact bytes changed");

    // And the committed file itself decodes into a working model.
    let decoded = hero_artifact::Artifact::from_bytes(&committed).unwrap();
    let mut golden_net = network_from_artifact(&decoded).unwrap();
    let logits = golden_net.predict(&test_set.images).unwrap();
    assert!(logits.data().iter().all(|v| v.is_finite()));
}
