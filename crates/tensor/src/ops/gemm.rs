//! Packed register-blocked GEMM micro-kernel.
//!
//! All three matmul variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) route through one
//! [`gemm`] entry point that handles transposition during packing, so the
//! inner loop is always the same branch-free MR×NR micro-kernel over
//! contiguous panels:
//!
//! * **Packing** — for each KC-deep slice of the reduction dimension, a
//!   block of A is repacked into MR-row strips (`strip·kc·MR + kk·MR + r`)
//!   and a block of B into NR-column strips (`strip·kc·NR + kk·NR + j`),
//!   both zero-padded to full strip width. The micro-kernel then streams
//!   both panels sequentially — unit stride, no index arithmetic per
//!   element, and edge handling is hoisted out of the hot loop.
//! * **Micro-kernel** — an MR×NR accumulator block held in locals, with
//!   the k-loop unrolled 4×. Each k-step is `acc[r][j] += a[r] * b[j]`,
//!   which the compiler auto-vectorizes to FMA over the NR lanes.
//! * **Blocking** — loops are ordered jc → pc → ic → jr → ir with cache
//!   blocks NC/KC/MC, so the B panel stays in L2/L3 across the ic loop and
//!   each A strip stays in L1 across the jr loop (the BLIS / GotoBLAS
//!   loop nest).
//!
//! Pack buffers are leased from the thread-local [`crate::pool`], so a
//! steady-state training step performs no fresh pack allocations.

use crate::pool;

/// Micro-kernel rows: C rows accumulated per inner call.
pub(crate) const MR: usize = 4;
/// Micro-kernel columns: C columns accumulated per inner call.
pub(crate) const NR: usize = 8;
/// Reduction-dimension cache block (sizes the packed panels).
const KC: usize = 256;
/// Row cache block — a multiple of `MR`.
const MC: usize = 128;
/// Column cache block — a multiple of `NR`.
const NC: usize = 512;

#[inline]
fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

/// Packs the `mc × kc` block of A at `(ic, pc)` into MR-row strips.
///
/// `lda` is the leading dimension of the stored matrix (`k` for row-major
/// A, `m` when `trans` reads the stored `k × m` matrix as Aᵀ). The final
/// partial strip is zero-padded so the micro-kernel never needs a row
/// bounds check.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    trans: bool,
    lda: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let strips = mc.div_ceil(MR);
    for s in 0..strips {
        let base = s * kc * MR;
        let rows = MR.min(mc - s * MR);
        for kk in 0..kc {
            let at = base + kk * MR;
            for r in 0..rows {
                let (gi, gk) = (ic + s * MR + r, pc + kk);
                dst[at + r] = if trans {
                    a[gk * lda + gi]
                } else {
                    a[gi * lda + gk]
                };
            }
            for r in rows..MR {
                dst[at + r] = 0.0;
            }
        }
    }
}

/// Packs the `kc × nc` block of B at `(pc, jc)` into NR-column strips.
///
/// `ldb` is the leading dimension of the stored matrix (`n` for row-major
/// B, `k` when `trans` reads the stored `n × k` matrix as Bᵀ). The final
/// partial strip is zero-padded.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    dst: &mut [f32],
    b: &[f32],
    trans: bool,
    ldb: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let strips = nc.div_ceil(NR);
    for s in 0..strips {
        let base = s * kc * NR;
        let cols = NR.min(nc - s * NR);
        for kk in 0..kc {
            let at = base + kk * NR;
            let gk = pc + kk;
            for j in 0..cols {
                let gj = jc + s * NR + j;
                dst[at + j] = if trans {
                    b[gj * ldb + gk]
                } else {
                    b[gk * ldb + gj]
                };
            }
            for j in cols..NR {
                dst[at + j] = 0.0;
            }
        }
    }
}

/// The MR×NR register-blocked inner kernel: `acc += Ap · Bp` over `kc`
/// packed k-steps, unrolled 4×.
#[inline(always)]
fn micro_kernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    let mut kk = 0;
    while kk + 4 <= kc {
        for u in 0..4 {
            let a = &ap[(kk + u) * MR..(kk + u) * MR + MR];
            let b = &bp[(kk + u) * NR..(kk + u) * NR + NR];
            for r in 0..MR {
                let ar = a[r];
                for j in 0..NR {
                    acc[r][j] += ar * b[j];
                }
            }
        }
        kk += 4;
    }
    while kk < kc {
        let a = &ap[kk * MR..kk * MR + MR];
        let b = &bp[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let ar = a[r];
            for j in 0..NR {
                acc[r][j] += ar * b[j];
            }
        }
        kk += 1;
    }
}

/// Computes `C += op(A) · op(B)` where `op` is transpose when the matching
/// flag is set: logical shapes `(m, k) × (k, n) → (m, n)`, all row-major.
///
/// `c` must hold exactly `m * n` elements and is accumulated into (callers
/// lease it zeroed from the pool). Transposition is absorbed by the packing
/// routines, so every variant shares the same micro-kernel.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let _obs = hero_obs::span("gemm");
    hero_obs::counters::GEMM_CALLS.incr();
    hero_obs::counters::GEMM_FLOPS.add(2 * (m as u64) * (n as u64) * (k as u64));
    let lda = if a_trans { m } else { k };
    let ldb = if b_trans { k } else { n };
    // Exact panel capacities so repeat leases hit the pool's free list.
    let kc_cap = KC.min(k);
    let mut a_pack = pool::lease(round_up(m.min(MC), MR) * kc_cap);
    let mut b_pack = pool::lease(round_up(n.min(NC), NR) * kc_cap);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(
                &mut b_pack[..round_up(nc, NR) * kc],
                b,
                b_trans,
                ldb,
                pc,
                kc,
                jc,
                nc,
            );
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(
                    &mut a_pack[..round_up(mc, MR) * kc],
                    a,
                    a_trans,
                    lda,
                    ic,
                    mc,
                    pc,
                    kc,
                );
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bp = &b_pack[(jr / NR) * kc * NR..][..kc * NR];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let ap = &a_pack[(ir / MR) * kc * MR..][..kc * MR];
                        let mut acc = [[0.0f32; NR]; MR];
                        micro_kernel(kc, ap, bp, &mut acc);
                        for (r, acc_row) in acc.iter().enumerate().take(mr) {
                            let crow = &mut c[(ic + ir + r) * n + jc + jr..][..nr];
                            for (cv, &av) in crow.iter_mut().zip(acc_row) {
                                *cv += av;
                            }
                        }
                    }
                }
            }
        }
    }
    pool::recycle(a_pack);
    pool::recycle(b_pack);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive triple loop over logical (possibly transposed) operands.
    fn naive(m: usize, n: usize, k: usize, a: &[f32], at: bool, b: &[f32], bt: bool) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    let av = if at { a[kk * m + i] } else { a[i * k + kk] };
                    let bv = if bt { b[j * k + kk] } else { b[kk * n + j] };
                    acc += av * bv;
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn fill(len: usize, salt: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 31 + salt * 17) % 23) as f32 / 11.0 - 1.0)
            .collect()
    }

    #[test]
    fn packed_matches_naive_across_shape_grid_and_transposes() {
        // Shapes chosen to hit every edge case: unit dims, primes straddling
        // MR/NR, tall/skinny, wide, and sizes crossing the MC/NC/KC blocks.
        let shapes = [
            (1, 1, 1),
            (1, 9, 5),
            (4, 8, 16),
            (5, 7, 3),
            (13, 11, 17),
            (3, 100, 2),
            (100, 3, 2),
            (129, 9, 257),
            (9, 513, 5),
            (33, 47, 300),
        ];
        for &(m, n, k) in &shapes {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            for (at, bt) in [(false, false), (true, false), (false, true), (true, true)] {
                // Re-layout the operands for the transposed storage orders.
                let a_store = if at {
                    let mut s = vec![0.0; m * k];
                    for i in 0..m {
                        for kk in 0..k {
                            s[kk * m + i] = a[i * k + kk];
                        }
                    }
                    s
                } else {
                    a.clone()
                };
                let b_store = if bt {
                    let mut s = vec![0.0; k * n];
                    for kk in 0..k {
                        for j in 0..n {
                            s[j * k + kk] = b[kk * n + j];
                        }
                    }
                    s
                } else {
                    b.clone()
                };
                let mut c = vec![0.0f32; m * n];
                gemm(m, n, k, &a_store, at, &b_store, bt, &mut c);
                let want = naive(m, n, k, &a_store, at, &b_store, bt);
                for (idx, (&got, &exp)) in c.iter().zip(&want).enumerate() {
                    assert!(
                        (got - exp).abs() <= 1e-5 * exp.abs().max(1.0),
                        "({m},{n},{k}) trans=({at},{bt}) idx {idx}: {got} vs {exp}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = vec![1.0; 6];
        let b = vec![2.0; 6];
        let mut c = vec![10.0f32; 4];
        gemm(2, 2, 3, &a, false, &b, false, &mut c);
        assert_eq!(c, vec![16.0; 4]);
    }

    #[test]
    fn zero_k_leaves_c_untouched() {
        let mut c = vec![3.0f32; 4];
        gemm(2, 2, 0, &[], false, &[], false, &mut c);
        assert_eq!(c, vec![3.0; 4]);
    }
}
