//! Seeded fuzzing of the analyzer: random well-formed tapes must come
//! back without error-severity findings (and without panicking), and
//! tapes with one random structural corruption must always produce at
//! least one error-severity diagnostic.
//!
//! Uses the workspace's in-tree SplitMix64 generator, so every run is
//! deterministic and a failure reproduces from the case number alone.

use hero_analyze::{analyze, AnalyzeOptions, RangeSeed, Severity, ValueOptions};
use hero_autodiff::{NodeTrace, TraceDetail};
use hero_tensor::rng::{Rng, StdRng};

const VALID_CASES: u64 = 250;
const CORRUPT_CASES: u64 = 250;

/// Ops producing a tensor of the same shape as their single operand.
const UNARY_ELEMENTWISE: &[&str] = &["relu", "relu6", "square", "sigmoid", "tanh"];

fn push(tape: &mut Vec<NodeTrace>, op: &'static str, parents: &[usize], shape: &[usize]) {
    push_detail(tape, op, parents, shape, TraceDetail::None);
}

fn push_detail(
    tape: &mut Vec<NodeTrace>,
    op: &'static str,
    parents: &[usize],
    shape: &[usize],
    detail: TraceDetail,
) {
    let index = tape.len();
    tape.push(NodeTrace {
        index,
        op,
        parents: parents.to_vec(),
        shape: shape.to_vec(),
        detail,
    });
}

/// Builds a random structurally and shape-wise valid tape: a pool of
/// `[r, c]` tensors grown by elementwise/scalar/binary ops, with
/// occasional matmuls, reshapes and scalar reductions hanging off it.
fn gen_valid_tape(rng: &mut StdRng) -> Vec<NodeTrace> {
    let r = rng.gen_range(1..5usize);
    let c = rng.gen_range(1..5usize);
    let shape = [r, c];
    let mut tape = Vec::new();
    let mut pool = Vec::new();
    for _ in 0..rng.gen_range(1..4usize) {
        pool.push(tape.len());
        push(&mut tape, "input", &[], &shape);
    }
    for _ in 0..rng.gen_range(2..12usize) {
        let a = pool[rng.gen_range(0..pool.len())];
        match rng.gen_range(0..10usize) {
            0..=2 => {
                let op = UNARY_ELEMENTWISE[rng.gen_range(0..UNARY_ELEMENTWISE.len())];
                pool.push(tape.len());
                push(&mut tape, op, &[a], &shape);
            }
            3 | 4 => {
                let op = if rng.gen::<bool>() {
                    "scale"
                } else {
                    "add_scalar"
                };
                let k = rng.gen_range(-2.0f32..=2.0);
                pool.push(tape.len());
                push_detail(&mut tape, op, &[a], &shape, TraceDetail::Scalar { c: k });
            }
            5 | 6 => {
                let b = pool[rng.gen_range(0..pool.len())];
                let op = ["add", "sub", "mul"][rng.gen_range(0..3usize)];
                pool.push(tape.len());
                push(&mut tape, op, &[a, b], &shape);
            }
            7 => {
                // Fresh right operand so the inner dimensions agree.
                let m = rng.gen_range(1..4usize);
                let b = tape.len();
                push(&mut tape, "input", &[], &[c, m]);
                push(&mut tape, "matmul", &[a, b], &[r, m]);
            }
            8 => {
                push_detail(
                    &mut tape,
                    "reshape",
                    &[a],
                    &[r * c],
                    TraceDetail::Reshape { from: vec![r, c] },
                );
            }
            _ => {
                let op = if rng.gen::<bool>() { "sum" } else { "mean" };
                push(&mut tape, op, &[a], &[]);
            }
        }
    }
    tape
}

/// Random seeds (occasionally degenerate) for the value passes, one per
/// input leaf.
fn gen_seeds(rng: &mut StdRng, tape: &[NodeTrace]) -> Vec<RangeSeed> {
    tape.iter()
        .filter(|n| n.op == "input")
        .map(|n| {
            let a = rng.gen_range(-4.0f32..=4.0);
            let b = rng.gen_range(-4.0f32..=4.0);
            RangeSeed {
                node: n.index,
                lo: a.min(b),
                hi: a.max(b),
            }
        })
        .collect()
}

/// Applies one random structural corruption guaranteed to be an error.
fn corrupt(rng: &mut StdRng, tape: &mut [NodeTrace]) {
    let non_inputs: Vec<usize> = tape
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.parents.is_empty())
        .map(|(i, _)| i)
        .collect();
    let victim = non_inputs[rng.gen_range(0..non_inputs.len())];
    match rng.gen_range(0..5usize) {
        0 => tape[victim].parents[0] = tape.len() + 5, // ParentOutOfRange
        1 => tape[victim].parents[0] = victim,         // ForwardReference
        2 => tape[victim].index = victim + 7,          // IndexMismatch
        3 => tape[victim].shape.push(2),               // Shape/geometry mismatch
        4 => {
            let p = tape[victim].parents[0];
            tape[victim].parents.push(p); // ArityMismatch
        }
        _ => unreachable!(),
    }
}

fn value_opts(seeds: Vec<RangeSeed>) -> AnalyzeOptions {
    AnalyzeOptions {
        roots: vec![],
        variable_inputs: None,
        value: Some(ValueOptions {
            seeds,
            quant_bits: vec![3, 4, 8],
            ..ValueOptions::default()
        }),
    }
}

#[test]
fn random_valid_tapes_have_no_structural_errors() {
    for case in 0..VALID_CASES {
        let mut rng = StdRng::seed_from_u64(0xF00D + case);
        let tape = gen_valid_tape(&mut rng);
        let report = analyze(&tape, &AnalyzeOptions::default());
        assert!(
            !report.has_errors(),
            "case {case}: valid tape produced errors\n{report}\ntape: {tape:#?}"
        );
        // Value passes over the same tape must never panic; they may emit
        // value lints (e.g. a squared activation outgrowing the 3-bit
        // grid), but structural soundness keeps NonFiniteRange away from
        // the seeded leaves.
        let seeds = gen_seeds(&mut rng, &tape);
        let vreport = analyze(&tape, &value_opts(seeds));
        for d in &vreport.diagnostics {
            assert!(
                tape[d.node].op != "input" || d.severity() != Severity::Error,
                "case {case}: seeded input flagged\n{vreport}"
            );
        }
    }
}

#[test]
fn corrupted_tapes_always_produce_an_error() {
    for case in 0..CORRUPT_CASES {
        let mut rng = StdRng::seed_from_u64(0xBAD_5EED + case);
        let mut tape = gen_valid_tape(&mut rng);
        corrupt(&mut rng, &mut tape);
        let seeds = gen_seeds(&mut rng, &tape);
        let report = analyze(&tape, &value_opts(seeds));
        assert!(
            report.has_errors(),
            "case {case}: corruption went undetected\n{report}\ntape: {tape:#?}"
        );
    }
}
