//! Fake-quantization (quantize→dequantize) of weight tensors.

use crate::scheme::{Calibration, Granularity, QuantMode, QuantScheme};
use hero_tensor::{Result, Tensor, TensorError};

/// Result of quantizing one tensor: the dequantized values plus the grid
/// parameters, exposing the bin width Theorem 2 reasons about.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    /// Dequantized (fake-quantized) values, same shape as the input.
    pub values: Tensor,
    /// Bin width Δ per range group (one entry per tensor, or per channel).
    pub bin_widths: Vec<f32>,
    /// The scheme used.
    pub scheme: QuantScheme,
}

impl QuantizedTensor {
    /// The largest bin width Δ across groups — the `2ρ` of Theorem 2.
    pub fn max_bin_width(&self) -> f32 {
        self.bin_widths.iter().copied().fold(0.0, f32::max)
    }
}

/// Calibrated clipping range for a slice of values.
fn calibrate_range(values: &[f32], calibration: Calibration) -> (f32, f32) {
    match calibration {
        Calibration::MinMax => {
            let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            (lo.min(0.0).min(hi), hi.max(0.0).max(lo))
        }
        Calibration::Percentile(q) => {
            let mut sorted: Vec<f32> = values.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let n = sorted.len();
            if n == 0 {
                return (0.0, 0.0);
            }
            let lo_idx = (((1.0 - q) * n as f32) as usize).min(n - 1);
            let hi_idx = ((q * n as f32) as usize).min(n - 1);
            (sorted[lo_idx].min(0.0), sorted[hi_idx].max(0.0))
        }
    }
}

/// Quantizes one contiguous group of values in place into `out`.
/// Returns the bin width Δ.
fn quantize_group(values: &[f32], out: &mut [f32], scheme: &QuantScheme) -> f32 {
    let (lo, hi) = calibrate_range(values, scheme.calibration);
    match scheme.mode {
        QuantMode::Symmetric => {
            let max_abs = lo.abs().max(hi.abs());
            let half_levels = QuantScheme::half_levels(scheme.bits) as f32; // 2^(n-1) - 1
            if max_abs <= f32::MIN_POSITIVE {
                out.fill(0.0);
                return 0.0;
            }
            let scale = max_abs / half_levels;
            for (o, &v) in out.iter_mut().zip(values) {
                let q = (v / scale).round().clamp(-half_levels, half_levels);
                *o = q * scale;
            }
            scale
        }
        QuantMode::Asymmetric => {
            let levels = (scheme.levels() - 1).max(1) as f32;
            let span = hi - lo;
            if span <= f32::MIN_POSITIVE {
                out.fill(lo);
                return 0.0;
            }
            let scale = span / levels;
            let zp = (-lo / scale).round();
            for (o, &v) in out.iter_mut().zip(values) {
                let q = ((v / scale) + zp).round().clamp(0.0, levels) - zp;
                *o = q * scale;
            }
            scale
        }
    }
}

/// Fake-quantizes a weight tensor under `scheme`.
///
/// Per-channel granularity treats the leading axis as the channel axis
/// (rows of a flattened convolution weight, rows of `(out,in)` layouts are
/// columns — for the `(in, out)` dense layout the per-tensor path is the
/// sensible choice; per-channel is primarily for conv weights).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for a zero bit width or a
/// per-channel request on a rank-0 tensor.
pub fn quantize_tensor(t: &Tensor, scheme: &QuantScheme) -> Result<QuantizedTensor> {
    if scheme.bits == 0 || scheme.bits > 16 {
        return Err(TensorError::InvalidArgument(format!(
            "bit width {} out of supported range 1..=16",
            scheme.bits
        )));
    }
    if let Calibration::Percentile(q) = scheme.calibration {
        if !(0.5..=1.0).contains(&q) {
            return Err(TensorError::InvalidArgument(format!(
                "percentile {q} must lie in [0.5, 1.0]"
            )));
        }
    }
    let mut out = vec![0.0f32; t.numel()];
    let mut bin_widths = Vec::new();
    match scheme.granularity {
        Granularity::PerTensor => {
            let delta = quantize_group(t.data(), &mut out, scheme);
            bin_widths.push(delta);
        }
        Granularity::PerChannel => {
            if t.rank() == 0 {
                return Err(TensorError::InvalidArgument(
                    "per-channel quantization needs rank >= 1".into(),
                ));
            }
            let channels = t.dims()[0];
            let chunk = t.numel() / channels.max(1);
            for c in 0..channels {
                let range = c * chunk..(c + 1) * chunk;
                let delta = quantize_group(&t.data()[range.clone()], &mut out[range], scheme);
                bin_widths.push(delta);
            }
        }
    }
    Ok(QuantizedTensor {
        values: Tensor::from_vec(out, t.shape().clone())?,
        bin_widths,
        scheme: *scheme,
    })
}

/// Quantization error statistics between an original and its quantized
/// version.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantError {
    /// ‖W_q − W‖∞ — the quantity Theorem 2 bounds by Δ/2.
    pub linf: f32,
    /// Mean squared error.
    pub mse: f32,
    /// ‖W_q − W‖₂.
    pub l2: f32,
}

/// Computes error statistics for a quantization.
///
/// # Errors
///
/// Returns a shape error if the tensors differ in shape.
pub fn quant_error(original: &Tensor, quantized: &Tensor) -> Result<QuantError> {
    let diff = quantized.sub(original)?;
    Ok(QuantError {
        linf: diff.norm_linf(),
        mse: diff.norm_l2_sq() / diff.numel().max(1) as f32,
        l2: diff.norm_l2(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), [v.len()]).unwrap()
    }

    #[test]
    fn symmetric_error_bounded_by_half_bin() {
        // Theorem 2 premise: min-max symmetric quantization perturbs each
        // weight by at most Δ/2.
        let w = t(&[-1.0, -0.33, 0.0, 0.4, 0.77, 1.0]);
        for bits in 2..=8 {
            let q = quantize_tensor(&w, &QuantScheme::symmetric(bits).unwrap()).unwrap();
            let err = quant_error(&w, &q.values).unwrap();
            assert!(
                err.linf <= q.max_bin_width() / 2.0 + 1e-6,
                "{bits}-bit: linf {} > Δ/2 {}",
                err.linf,
                q.max_bin_width() / 2.0
            );
        }
    }

    #[test]
    fn asymmetric_error_bounded_by_half_bin() {
        let w = t(&[0.1, 0.5, 0.9, 1.3, 2.0]); // strictly positive range
        for bits in 2..=8 {
            let q = quantize_tensor(&w, &QuantScheme::asymmetric(bits).unwrap()).unwrap();
            let err = quant_error(&w, &q.values).unwrap();
            assert!(err.linf <= q.max_bin_width() / 2.0 + 1e-6);
        }
    }

    #[test]
    fn more_bits_reduce_error() {
        let w = Tensor::from_fn([64], |i| ((i[0] * 37 % 64) as f32 / 32.0) - 1.0);
        let mut prev = f32::INFINITY;
        for bits in [2u8, 3, 4, 6, 8] {
            let q = quantize_tensor(&w, &QuantScheme::symmetric(bits).unwrap()).unwrap();
            let err = quant_error(&w, &q.values).unwrap();
            assert!(
                err.mse <= prev + 1e-9,
                "{bits}-bit mse {} > previous {prev}",
                err.mse
            );
            prev = err.mse;
        }
    }

    #[test]
    fn high_precision_is_nearly_lossless() {
        let w = Tensor::from_fn([32], |i| (i[0] as f32 / 16.0) - 1.0);
        let q = quantize_tensor(&w, &QuantScheme::symmetric(16).unwrap()).unwrap();
        let err = quant_error(&w, &q.values).unwrap();
        assert!(err.linf < 1e-4);
    }

    #[test]
    fn symmetric_preserves_exact_zero() {
        let w = t(&[-1.0, 0.0, 1.0]);
        let q = quantize_tensor(&w, &QuantScheme::symmetric(3).unwrap()).unwrap();
        assert_eq!(q.values.data()[1], 0.0);
    }

    #[test]
    fn quantization_is_idempotent() {
        let w = Tensor::from_fn([40], |i| (i[0] as f32 * 0.37).sin());
        let scheme = QuantScheme::symmetric(4).unwrap();
        let q1 = quantize_tensor(&w, &scheme).unwrap();
        let q2 = quantize_tensor(&q1.values, &scheme).unwrap();
        for (a, b) in q1.values.data().iter().zip(q2.values.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn values_lie_on_the_grid() {
        let w = Tensor::from_fn([30], |i| (i[0] as f32 * 0.21).cos() * 2.0);
        let q = quantize_tensor(&w, &QuantScheme::symmetric(3).unwrap()).unwrap();
        let delta = q.bin_widths[0];
        for &v in q.values.data() {
            let steps = v / delta;
            assert!(
                (steps - steps.round()).abs() < 1e-4,
                "{v} not on grid Δ={delta}"
            );
        }
    }

    #[test]
    fn constant_tensor_quantizes_cleanly() {
        let w = Tensor::zeros([8]);
        let q = quantize_tensor(&w, &QuantScheme::symmetric(4).unwrap()).unwrap();
        assert_eq!(q.values.data(), w.data());
        assert_eq!(q.max_bin_width(), 0.0);
        let c = Tensor::full([8], 3.0);
        let qa = quantize_tensor(&c, &QuantScheme::asymmetric(4).unwrap()).unwrap();
        // Range [0, 3]: representable, error within Δ/2.
        let err = quant_error(&c, &qa.values).unwrap();
        assert!(err.linf <= qa.max_bin_width() / 2.0 + 1e-6);
    }

    #[test]
    fn per_channel_gives_one_bin_per_row() {
        let w = Tensor::from_vec(vec![0.1, -0.1, 10.0, -10.0], [2, 2]).unwrap();
        let q = quantize_tensor(&w, &QuantScheme::symmetric(4).unwrap().per_channel()).unwrap();
        assert_eq!(q.bin_widths.len(), 2);
        // Small-range channel gets a much finer grid.
        assert!(q.bin_widths[0] < q.bin_widths[1] / 50.0);
        // Per-channel is at least as accurate as per-tensor here.
        let qt = quantize_tensor(&w, &QuantScheme::symmetric(4).unwrap()).unwrap();
        let err_c = quant_error(&w, &q.values).unwrap();
        let err_t = quant_error(&w, &qt.values).unwrap();
        assert!(err_c.mse <= err_t.mse + 1e-9);
    }

    #[test]
    fn percentile_calibration_clips_outliers() {
        let mut vals = vec![0.0f32; 99];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = (i as f32 / 99.0) - 0.5;
        }
        vals.push(100.0); // one huge outlier
        let w = t(&vals);
        let clipped = quantize_tensor(
            &w,
            &QuantScheme::symmetric(4).unwrap().with_percentile(0.95),
        )
        .unwrap();
        let minmax = quantize_tensor(&w, &QuantScheme::symmetric(4).unwrap()).unwrap();
        // The percentile grid is far finer than the outlier-dominated one.
        assert!(clipped.bin_widths[0] < minmax.bin_widths[0] / 10.0);
        // But the outlier itself is clipped hard.
        let outlier_err = (clipped.values.data()[99] - 100.0).abs();
        assert!(outlier_err > 50.0);
    }

    #[test]
    fn validates_arguments() {
        let w = t(&[1.0]);
        // Out-of-range widths are rejected at construction now…
        assert!(QuantScheme::symmetric(0).is_err());
        assert!(QuantScheme::symmetric(17).is_err());
        assert!(QuantScheme::asymmetric(32).is_err());
        // …but quantize_tensor still validates a hand-built scheme.
        let zero_bits = QuantScheme {
            bits: 0,
            ..QuantScheme::symmetric(4).unwrap()
        };
        assert!(quantize_tensor(&w, &zero_bits).is_err());
        assert!(
            quantize_tensor(&w, &QuantScheme::symmetric(4).unwrap().with_percentile(0.3)).is_err()
        );
        assert!(quantize_tensor(
            &Tensor::scalar(1.0),
            &QuantScheme::symmetric(4).unwrap().per_channel()
        )
        .is_err());
        assert!(quant_error(&w, &t(&[1.0, 2.0])).is_err());
    }
}
