//! Parameter-free layers: activations, pooling, flatten.

use crate::module::{Layer, ParamInfo, ParamSource};
use hero_autodiff::{Graph, Var};
use hero_tensor::{Result, Tensor};

/// Activation functions used by the paper's architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(x, 0)` — ResNet/VGG.
    Relu,
    /// `min(max(x, 0), 6)` — MobileNetV2.
    Relu6,
}

impl Layer for Activation {
    fn forward(
        &mut self,
        g: &mut Graph,
        x: Var,
        _train: bool,
        _vars: &mut Vec<Var>,
    ) -> Result<Var> {
        Ok(match self {
            Activation::Relu => g.relu(x),
            Activation::Relu6 => g.relu6(x),
        })
    }

    fn collect_params(&self, _out: &mut Vec<Tensor>) {}

    fn assign_params(&mut self, _src: &mut ParamSource<'_>) -> Result<()> {
        Ok(())
    }

    fn param_infos(&self, _prefix: &str, _out: &mut Vec<ParamInfo>) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(*self)
    }
}

/// Non-overlapping max pooling with a square window.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    /// Window side length.
    pub k: usize,
}

impl Layer for MaxPool2d {
    fn forward(
        &mut self,
        g: &mut Graph,
        x: Var,
        _train: bool,
        _vars: &mut Vec<Var>,
    ) -> Result<Var> {
        g.max_pool2d(x, self.k)
    }

    fn collect_params(&self, _out: &mut Vec<Tensor>) {}

    fn assign_params(&mut self, _src: &mut ParamSource<'_>) -> Result<()> {
        Ok(())
    }

    fn param_infos(&self, _prefix: &str, _out: &mut Vec<ParamInfo>) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(*self)
    }
}

/// Non-overlapping average pooling with a square window.
#[derive(Debug, Clone, Copy)]
pub struct AvgPool2d {
    /// Window side length.
    pub k: usize,
}

impl Layer for AvgPool2d {
    fn forward(
        &mut self,
        g: &mut Graph,
        x: Var,
        _train: bool,
        _vars: &mut Vec<Var>,
    ) -> Result<Var> {
        g.avg_pool2d(x, self.k)
    }

    fn collect_params(&self, _out: &mut Vec<Tensor>) {}

    fn assign_params(&mut self, _src: &mut ParamSource<'_>) -> Result<()> {
        Ok(())
    }

    fn param_infos(&self, _prefix: &str, _out: &mut Vec<ParamInfo>) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(*self)
    }
}

/// Global average pooling `(n, c, h, w) -> (n, c)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool2d;

impl Layer for GlobalAvgPool2d {
    fn forward(
        &mut self,
        g: &mut Graph,
        x: Var,
        _train: bool,
        _vars: &mut Vec<Var>,
    ) -> Result<Var> {
        g.global_avg_pool2d(x)
    }

    fn collect_params(&self, _out: &mut Vec<Tensor>) {}

    fn assign_params(&mut self, _src: &mut ParamSource<'_>) -> Result<()> {
        Ok(())
    }

    fn param_infos(&self, _prefix: &str, _out: &mut Vec<ParamInfo>) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(*self)
    }
}

/// Flattens all trailing axes: `(n, ...) -> (n, prod(...))`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flatten;

impl Layer for Flatten {
    fn forward(
        &mut self,
        g: &mut Graph,
        x: Var,
        _train: bool,
        _vars: &mut Vec<Var>,
    ) -> Result<Var> {
        let dims = g.value(x).dims().to_vec();
        let n = dims[0];
        let rest: usize = dims[1..].iter().product();
        g.reshape(x, [n, rest])
    }

    fn collect_params(&self, _out: &mut Vec<Tensor>) {}

    fn assign_params(&mut self, _src: &mut ParamSource<'_>) -> Result<()> {
        Ok(())
    }

    fn param_infos(&self, _prefix: &str, _out: &mut Vec<ParamInfo>) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_layers_apply_nonlinearity() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![-1.0, 3.0, 8.0], [3]).unwrap());
        let mut vars = Vec::new();
        let y = Activation::Relu
            .forward(&mut g, x, true, &mut vars)
            .unwrap();
        assert_eq!(g.value(y).data(), &[0.0, 3.0, 8.0]);
        let y6 = Activation::Relu6
            .forward(&mut g, x, true, &mut vars)
            .unwrap();
        assert_eq!(g.value(y6).data(), &[0.0, 3.0, 6.0]);
        assert!(vars.is_empty());
    }

    #[test]
    fn pooling_layers_reduce_spatial() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(16).reshape([1, 1, 4, 4]).unwrap());
        let mut vars = Vec::new();
        let m = MaxPool2d { k: 2 }
            .forward(&mut g, x, true, &mut vars)
            .unwrap();
        assert_eq!(g.value(m).dims(), &[1, 1, 2, 2]);
        let a = AvgPool2d { k: 2 }
            .forward(&mut g, x, true, &mut vars)
            .unwrap();
        assert_eq!(g.value(a).data(), &[2.5, 4.5, 10.5, 12.5]);
        let gp = GlobalAvgPool2d.forward(&mut g, x, true, &mut vars).unwrap();
        assert_eq!(g.value(gp).dims(), &[1, 1]);
    }

    #[test]
    fn flatten_collapses_trailing_axes() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([2, 3, 4, 4]));
        let mut vars = Vec::new();
        let y = Flatten.forward(&mut g, x, true, &mut vars).unwrap();
        assert_eq!(g.value(y).dims(), &[2, 48]);
    }

    #[test]
    fn stateless_layers_have_no_params() {
        let mut out = Vec::new();
        Activation::Relu.collect_params(&mut out);
        Flatten.collect_params(&mut out);
        MaxPool2d { k: 2 }.collect_params(&mut out);
        assert!(out.is_empty());
        let mut infos = Vec::new();
        GlobalAvgPool2d.param_infos("x", &mut infos);
        assert!(infos.is_empty());
    }
}
