//! Per-epoch metrics and whole-run records.

use crate::spectrum::SpectrumProbe;

/// Metrics collected at the end of one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f32,
    /// Training-set accuracy (evaluated when the test set is evaluated).
    pub train_acc: f32,
    /// Test-set accuracy (NaN when not evaluated this epoch).
    pub test_acc: f32,
    /// ‖Hz‖ curvature probe (NaN when not probed this epoch).
    pub hessian_norm: f32,
    /// Mean of the method's regularizer statistic over the epoch.
    pub regularizer: f32,
}

impl EpochMetrics {
    /// Generalization gap `train_acc − test_acc` (NaN when the test set was
    /// not evaluated).
    pub fn generalization_gap(&self) -> f32 {
        self.train_acc - self.test_acc
    }

    /// True when both accuracies were actually measured this epoch, so the
    /// gap is a number rather than NaN arithmetic.
    pub fn gap_is_measured(&self) -> bool {
        self.train_acc.is_finite() && self.test_acc.is_finite()
    }

    /// Packages the metrics as a structured `epoch` telemetry event (NaN
    /// fields serialize as `null` in the JSONL stream).
    pub fn to_event(&self) -> hero_obs::Event {
        hero_obs::Event::new("epoch")
            .u64("epoch", self.epoch as u64)
            .f64("train_loss", f64::from(self.train_loss))
            .f64("train_acc", f64::from(self.train_acc))
            .f64("test_acc", f64::from(self.test_acc))
            .f64("hessian_norm", f64::from(self.hessian_norm))
            .f64("regularizer", f64::from(self.regularizer))
    }
}

/// The full record of one training run.
#[derive(Debug, Clone)]
pub struct TrainRecord {
    /// Method name (for reports).
    pub method: String,
    /// Per-epoch metrics.
    pub epochs: Vec<EpochMetrics>,
    /// Final test accuracy.
    pub final_test_acc: f32,
    /// Final training accuracy.
    pub final_train_acc: f32,
    /// Total gradient evaluations spent.
    pub grad_evals: usize,
    /// Spectrum probes taken over training (empty unless
    /// [`crate::TrainConfig::spectrum_every`] was enabled).
    pub spectra: Vec<SpectrumProbe>,
}

impl TrainRecord {
    /// Final generalization gap.
    pub fn final_gap(&self) -> f32 {
        self.final_train_acc - self.final_test_acc
    }

    /// Mean generalization gap over the last `k` evaluated epochs — the
    /// paper's Fig. 2(b) statistic ("final 50 training epochs").
    ///
    /// Only epochs where *both* accuracies are finite contribute (a NaN
    /// train accuracy — e.g. an epoch whose training eval was skipped or
    /// diverged — would otherwise poison the whole mean). `k == 0` asks
    /// for the mean of nothing and returns NaN explicitly rather than via
    /// a 0/0.
    pub fn mean_late_gap(&self, k: usize) -> f32 {
        if k == 0 {
            return f32::NAN;
        }
        let evaluated: Vec<&EpochMetrics> =
            self.epochs.iter().filter(|e| e.gap_is_measured()).collect();
        if evaluated.is_empty() {
            return f32::NAN;
        }
        let tail = &evaluated[evaluated.len().saturating_sub(k)..];
        tail.iter().map(|e| e.generalization_gap()).sum::<f32>() / tail.len() as f32
    }

    /// The ‖Hz‖ probe series as `(epoch, value)` pairs — Fig. 2(a).
    /// Non-finite probes (unprobed epochs, diverged estimates) are
    /// filtered.
    pub fn hessian_series(&self) -> Vec<(usize, f32)> {
        self.epochs
            .iter()
            .filter(|e| e.hessian_norm.is_finite())
            .map(|e| (e.epoch, e.hessian_norm))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(e: usize, train: f32, test: f32, hz: f32) -> EpochMetrics {
        EpochMetrics {
            epoch: e,
            train_loss: 1.0,
            train_acc: train,
            test_acc: test,
            hessian_norm: hz,
            regularizer: 0.0,
        }
    }

    #[test]
    fn gap_is_train_minus_test() {
        let m = epoch(0, 0.9, 0.8, f32::NAN);
        assert!((m.generalization_gap() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn mean_late_gap_uses_evaluated_tail() {
        let rec = TrainRecord {
            method: "SGD".into(),
            epochs: vec![
                epoch(0, 0.5, 0.5, f32::NAN),
                epoch(1, 0.8, f32::NAN, f32::NAN), // skipped eval
                epoch(2, 0.9, 0.7, f32::NAN),
                epoch(3, 1.0, 0.7, f32::NAN),
            ],
            final_test_acc: 0.7,
            final_train_acc: 1.0,
            grad_evals: 0,
            spectra: vec![],
        };
        assert!((rec.mean_late_gap(2) - 0.25).abs() < 1e-6);
        assert!((rec.final_gap() - 0.3).abs() < 1e-6);
        // Asking for more than exist averages everything evaluated.
        assert!((rec.mean_late_gap(10) - (0.0 + 0.2 + 0.3) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn hessian_series_skips_unprobed_epochs() {
        let rec = TrainRecord {
            method: "HERO".into(),
            epochs: vec![
                epoch(0, 0.5, 0.5, 2.0),
                epoch(1, 0.6, 0.5, f32::NAN),
                epoch(2, 0.7, 0.6, 1.0),
            ],
            final_test_acc: 0.6,
            final_train_acc: 0.7,
            grad_evals: 0,
            spectra: vec![],
        };
        assert_eq!(rec.hessian_series(), vec![(0, 2.0), (2, 1.0)]);
    }

    #[test]
    fn empty_record_gap_is_nan() {
        let rec = TrainRecord {
            method: "x".into(),
            epochs: vec![],
            final_test_acc: 0.0,
            final_train_acc: 0.0,
            grad_evals: 0,
            spectra: vec![],
        };
        assert!(rec.mean_late_gap(5).is_nan());
    }

    #[test]
    fn mean_late_gap_of_zero_epochs_is_nan() {
        let rec = TrainRecord {
            method: "x".into(),
            epochs: vec![epoch(0, 0.9, 0.8, f32::NAN)],
            final_test_acc: 0.8,
            final_train_acc: 0.9,
            grad_evals: 0,
            spectra: vec![],
        };
        assert!(rec.mean_late_gap(0).is_nan());
    }

    #[test]
    fn mean_late_gap_skips_nan_train_accuracy() {
        // An epoch with a measured test accuracy but NaN train accuracy
        // must not poison the mean.
        let mut bad = epoch(1, f32::NAN, 0.6, f32::NAN);
        bad.train_acc = f32::NAN;
        let rec = TrainRecord {
            method: "x".into(),
            epochs: vec![
                epoch(0, 0.9, 0.8, f32::NAN),
                bad,
                epoch(2, 1.0, 0.7, f32::NAN),
            ],
            final_test_acc: 0.7,
            final_train_acc: 1.0,
            grad_evals: 0,
            spectra: vec![],
        };
        let g = rec.mean_late_gap(10);
        assert!((g - (0.1 + 0.3) / 2.0).abs() < 1e-6, "gap {g}");
    }

    #[test]
    fn all_nan_test_accuracy_yields_nan_gap() {
        let rec = TrainRecord {
            method: "x".into(),
            epochs: vec![
                epoch(0, 0.9, f32::NAN, f32::NAN),
                epoch(1, 1.0, f32::NAN, f32::NAN),
            ],
            final_test_acc: f32::NAN,
            final_train_acc: 1.0,
            grad_evals: 0,
            spectra: vec![],
        };
        assert!(rec.mean_late_gap(2).is_nan());
        assert!(!rec.epochs[0].gap_is_measured());
    }

    #[test]
    fn hessian_series_filters_non_finite_probes() {
        let rec = TrainRecord {
            method: "x".into(),
            epochs: vec![
                epoch(0, 0.5, 0.5, 2.0),
                epoch(1, 0.6, 0.5, f32::INFINITY), // diverged probe
                epoch(2, 0.7, 0.6, f32::NAN),      // unprobed
                epoch(3, 0.8, 0.6, 1.0),
            ],
            final_test_acc: 0.6,
            final_train_acc: 0.8,
            grad_evals: 0,
            spectra: vec![],
        };
        assert_eq!(rec.hessian_series(), vec![(0, 2.0), (3, 1.0)]);
    }

    #[test]
    fn epoch_event_serializes_nan_as_null() {
        let v = hero_obs::json::parse(&epoch(3, 0.9, f32::NAN, 1.5).to_event().to_json())
            .expect("valid json");
        use hero_obs::json::Value;
        assert_eq!(v.get("ev").and_then(Value::as_str), Some("epoch"));
        assert_eq!(v.get("epoch").and_then(Value::as_f64), Some(3.0));
        assert!(v.get("test_acc").is_some_and(Value::is_null));
        let hz = v.get("hessian_norm").and_then(Value::as_f64).expect("hz");
        assert!((hz - 1.5).abs() < 1e-9);
    }
}
