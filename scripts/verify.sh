#!/usr/bin/env bash
# Tier-1 verification gate: build, full test suite, sanitizer test suite,
# formatting, lints, and a quick bench smoke run. Everything runs offline.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo test -q (sanitize feature: pool + tape sanitizers)"
cargo test -q -p hero-tensor --features sanitize
cargo test -q -p hero-autodiff --features sanitize

echo "==> cargo test -q (obs-off feature: instrumentation compiled out)"
cargo test -q -p hero-obs --features obs-off
cargo test -q -p hero-bench --features obs-off

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> scripts/lint.sh"
scripts/lint.sh

echo "==> bench smoke (step_cost --quick)"
cargo bench -p hero-bench --bench step_cost -- --quick

echo "==> observability overhead gate (disabled tracer vs obs-off build)"
on_json="$(mktemp)"
off_json="$(mktemp)"
trap 'rm -f "$on_json" "$off_json"' EXIT
HERO_BENCH_OUT="$on_json" cargo bench -p hero-bench --bench overhead
HERO_BENCH_OUT="$off_json" cargo bench -p hero-bench --features obs-off --bench overhead
on_ns="$(grep overhead_step_HERO "$on_json" | sed 's/.*"ns_per_iter": \([0-9.eE+-]*\).*/\1/')"
off_ns="$(grep overhead_step_HERO "$off_json" | sed 's/.*"ns_per_iter": \([0-9.eE+-]*\).*/\1/')"
awk -v on="$on_ns" -v off="$off_ns" 'BEGIN {
  ratio = on / off
  printf "overhead_step_HERO: instrumented %.3f ms/iter, obs-off %.3f ms/iter (ratio %.4f)\n", on / 1e6, off / 1e6, ratio
  if (ratio > 1.03) { print "FAIL: disabled instrumentation costs more than 3%"; exit 1 }
}'

echo "verify.sh: all gates passed"
