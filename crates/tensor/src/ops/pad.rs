//! Spatial zero-padding and cropping for NCHW image tensors.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

impl Tensor {
    /// Zero-pads the two trailing (spatial) axes of an NCHW tensor by `pad`
    /// on every side.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the rank is 4.
    pub fn pad2d(&self, pad: usize) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: self.rank(),
            });
        }
        if pad == 0 {
            return Ok(self.clone());
        }
        let (n, c, h, w) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        let (ho, wo) = (h + 2 * pad, w + 2 * pad);
        let mut out = Tensor::zeros([n, c, ho, wo]);
        for in_ in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    let src = (((in_ * c) + ch) * h + y) * w;
                    let dst = (((in_ * c) + ch) * ho + y + pad) * wo + pad;
                    out.data_mut()[dst..dst + w].copy_from_slice(&self.data()[src..src + w]);
                }
            }
        }
        Ok(out)
    }

    /// Adjoint of [`Tensor::pad2d`]: crops `pad` pixels from every side of
    /// the two trailing axes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the rank is 4, or
    /// [`TensorError::InvalidGeometry`] if the crop exceeds the extent.
    pub fn crop2d(&self, pad: usize) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: self.rank(),
            });
        }
        if pad == 0 {
            return Ok(self.clone());
        }
        let (n, c, h, w) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        if 2 * pad >= h || 2 * pad >= w {
            return Err(TensorError::InvalidGeometry(format!(
                "crop of {pad} exceeds spatial extent {h}x{w}"
            )));
        }
        let (ho, wo) = (h - 2 * pad, w - 2 * pad);
        let mut out = Tensor::zeros([n, c, ho, wo]);
        for in_ in 0..n {
            for ch in 0..c {
                for y in 0..ho {
                    let src = (((in_ * c) + ch) * h + y + pad) * w + pad;
                    let dst = (((in_ * c) + ch) * ho + y) * wo;
                    out.data_mut()[dst..dst + wo].copy_from_slice(&self.data()[src..src + wo]);
                }
            }
        }
        Ok(out)
    }

    /// Extracts the window starting at `(top, left)` with size `(h, w)` from
    /// the spatial axes of an NCHW tensor (used for random-crop
    /// augmentation).
    ///
    /// # Errors
    ///
    /// Returns rank/geometry errors if the window exceeds the extent.
    pub fn crop_window2d(&self, top: usize, left: usize, h: usize, w: usize) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: self.rank(),
            });
        }
        let (n, c, hin, win) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        if top + h > hin || left + w > win {
            return Err(TensorError::InvalidGeometry(format!(
                "window {h}x{w} at ({top},{left}) exceeds input {hin}x{win}"
            )));
        }
        let mut out = Tensor::zeros([n, c, h, w]);
        for in_ in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    let src = (((in_ * c) + ch) * hin + y + top) * win + left;
                    let dst = (((in_ * c) + ch) * h + y) * w;
                    out.data_mut()[dst..dst + w].copy_from_slice(&self.data()[src..src + w]);
                }
            }
        }
        Ok(out)
    }

    /// Flips an NCHW tensor along its width axis (horizontal mirror).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the rank is 4.
    pub fn flip_horizontal(&self) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: self.rank(),
            });
        }
        let (n, c, h, w) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        let mut out = Tensor::zeros([n, c, h, w]);
        for in_ in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    let base = (((in_ * c) + ch) * h + y) * w;
                    for x in 0..w {
                        out.data_mut()[base + x] = self.data()[base + (w - 1 - x)];
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_then_crop_is_identity() {
        let t = Tensor::arange(2 * 3 * 4 * 4).reshape([2, 3, 4, 4]).unwrap();
        let padded = t.pad2d(2).unwrap();
        assert_eq!(padded.dims(), &[2, 3, 8, 8]);
        assert_eq!(padded.crop2d(2).unwrap(), t);
    }

    #[test]
    fn pad_zero_is_identity() {
        let t = Tensor::arange(2 * 2).reshape([1, 1, 2, 2]).unwrap();
        assert_eq!(t.pad2d(0).unwrap(), t);
        assert_eq!(t.crop2d(0).unwrap(), t);
    }

    #[test]
    fn padding_borders_are_zero() {
        let t = Tensor::ones([1, 1, 2, 2]);
        let p = t.pad2d(1).unwrap();
        assert_eq!(p.get(&[0, 0, 0, 0]).unwrap(), 0.0);
        assert_eq!(p.get(&[0, 0, 3, 3]).unwrap(), 0.0);
        assert_eq!(p.get(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(p.sum(), 4.0);
    }

    #[test]
    fn crop_window_extracts_expected_region() {
        let t = Tensor::arange(16).reshape([1, 1, 4, 4]).unwrap();
        let win = t.crop_window2d(1, 2, 2, 2).unwrap();
        assert_eq!(win.dims(), &[1, 1, 2, 2]);
        assert_eq!(win.data(), &[6.0, 7.0, 10.0, 11.0]);
        assert!(t.crop_window2d(3, 3, 2, 2).is_err());
    }

    #[test]
    fn flip_horizontal_mirrors_rows() {
        let t = Tensor::arange(4).reshape([1, 1, 1, 4]).unwrap();
        let f = t.flip_horizontal().unwrap();
        assert_eq!(f.data(), &[3.0, 2.0, 1.0, 0.0]);
        assert_eq!(f.flip_horizontal().unwrap(), t);
    }

    #[test]
    fn rank_validation() {
        let t = Tensor::zeros([2, 2]);
        assert!(t.pad2d(1).is_err());
        assert!(t.crop2d(1).is_err());
        assert!(t.flip_horizontal().is_err());
        assert!(t.crop_window2d(0, 0, 1, 1).is_err());
        // crop larger than extent
        let img = Tensor::zeros([1, 1, 2, 2]);
        assert!(img.crop2d(1).is_err());
    }
}
