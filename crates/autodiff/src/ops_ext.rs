//! Extended differentiable operations: smooth activations, dropout, and
//! regression losses. Each op carries a hand-written backward rule and a
//! finite-difference gradcheck.

use crate::graph::{Graph, Op, Var};
use hero_tensor::{Result, Tensor, TensorError};

impl Graph {
    /// Logistic sigmoid `1 / (1 + e^(-x))`.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(value, Op::Sigmoid(a.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        self.push(value, Op::Tanh(a.0))
    }

    /// Leaky ReLU: `x` for `x > 0`, `slope * x` otherwise.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let value = self.value(a).map(|v| if v > 0.0 { v } else { slope * v });
        self.push(value, Op::LeakyRelu(a.0, slope))
    }

    /// Element-wise natural logarithm (inputs must be positive for finite
    /// output; no clamping is applied).
    pub fn ln(&mut self, a: Var) -> Var {
        let value = self.value(a).ln();
        self.push(value, Op::Ln(a.0))
    }

    /// Dropout with the given keep mask: multiplies by `mask / keep_prob`
    /// (inverted dropout). The caller supplies the mask so training loops
    /// control the randomness; at eval time simply skip the op.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `mask` does not match the input shape.
    pub fn dropout(&mut self, a: Var, mask: &Tensor, keep_prob: f32) -> Result<Var> {
        if mask.shape() != self.value(a).shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.value(a).dims().to_vec(),
                right: mask.dims().to_vec(),
            });
        }
        if !(0.0..=1.0).contains(&keep_prob) || keep_prob == 0.0 {
            return Err(TensorError::InvalidArgument(format!(
                "keep probability {keep_prob} must lie in (0, 1]"
            )));
        }
        let scaled_mask = mask.scale(1.0 / keep_prob);
        let value = self.value(a).mul(&scaled_mask)?;
        Ok(self.push(
            value,
            Op::Dropout {
                x: a.0,
                scaled_mask,
            },
        ))
    }

    /// Mean-squared-error loss against a constant target, producing a
    /// scalar node: `mean((x - target)^2)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the target shape differs.
    pub fn mse_loss(&mut self, a: Var, target: &Tensor) -> Result<Var> {
        if target.shape() != self.value(a).shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.value(a).dims().to_vec(),
                right: target.dims().to_vec(),
            });
        }
        let diff = self.value(a).sub(target)?;
        let value = Tensor::scalar(diff.norm_l2_sq() / diff.numel().max(1) as f32);
        let target_lo = target.data().iter().copied().fold(f32::INFINITY, f32::min);
        let target_hi = target
            .data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        Ok(self.push(
            value,
            Op::MseLoss {
                x: a.0,
                diff,
                target_lo,
                target_hi,
            },
        ))
    }

    /// Softmax cross-entropy with label smoothing `eps`: the target
    /// distribution mixes `1 - eps` on the true class with `eps / K`
    /// uniform mass, averaged over the batch.
    ///
    /// # Errors
    ///
    /// Returns shape/label errors mirroring [`Graph::cross_entropy`], or an
    /// invalid-argument error when `eps` is outside `[0, 1)`.
    pub fn cross_entropy_smoothed(
        &mut self,
        logits: Var,
        labels: &[usize],
        eps: f32,
    ) -> Result<Var> {
        if !(0.0..1.0).contains(&eps) {
            return Err(TensorError::InvalidArgument(format!(
                "label smoothing {eps} must lie in [0, 1)"
            )));
        }
        let lv = self.value(logits);
        if lv.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: lv.rank(),
            });
        }
        let (batch, classes) = (lv.dims()[0], lv.dims()[1]);
        if labels.len() != batch {
            return Err(TensorError::InvalidArgument(format!(
                "{} labels for batch of {batch}",
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(TensorError::IndexOutOfRange {
                index: bad,
                size: classes,
            });
        }
        let softmax = lv.softmax_rows()?;
        // loss = -Σ_k q_k log p_k with q = smoothed one-hot.
        let uniform = eps / classes as f32;
        let mut loss = 0.0;
        for (row, &label) in labels.iter().enumerate() {
            for k in 0..classes {
                let q = if k == label {
                    1.0 - eps + uniform
                } else {
                    uniform
                };
                let p = softmax.data()[row * classes + k].max(1e-12);
                loss -= q * p.ln();
            }
        }
        loss /= batch as f32;
        Ok(self.push(
            Tensor::scalar(loss),
            Op::CrossEntropySmoothed {
                logits: logits.0,
                softmax,
                labels: labels.to_vec(),
                eps,
            },
        ))
    }

    /// Backward routing for the extended ops.
    pub(crate) fn accumulate_ext_parents(
        &self,
        op: &Op,
        grad: &Tensor,
        grads: &mut [Option<Tensor>],
    ) -> Result<()> {
        let add_grad = |idx: usize, g: Tensor, grads: &mut [Option<Tensor>]| -> Result<()> {
            match &mut grads[idx] {
                Some(acc) => acc.axpy(1.0, &g)?,
                slot @ None => *slot = Some(g),
            }
            Ok(())
        };
        match op {
            Op::Sigmoid(a) => {
                // dy/dx = y (1 - y), where y is this node's value. We
                // recompute from the input to avoid storing a self-index.
                let y = self.nodes[*a].value.map(|v| 1.0 / (1.0 + (-v).exp()));
                let local = y.map(|s| s * (1.0 - s));
                add_grad(*a, grad.mul(&local)?, grads)?;
            }
            Op::Tanh(a) => {
                let local = self.nodes[*a].value.map(|v| 1.0 - v.tanh() * v.tanh());
                add_grad(*a, grad.mul(&local)?, grads)?;
            }
            Op::LeakyRelu(a, slope) => {
                let s = *slope;
                let local = self.nodes[*a].value.map(|v| if v > 0.0 { 1.0 } else { s });
                add_grad(*a, grad.mul(&local)?, grads)?;
            }
            Op::Ln(a) => {
                let local = self.nodes[*a].value.recip();
                add_grad(*a, grad.mul(&local)?, grads)?;
            }
            Op::Dropout { x, scaled_mask } => {
                add_grad(*x, grad.mul(scaled_mask)?, grads)?;
            }
            Op::MseLoss { x, diff, .. } => {
                let scale = 2.0 * grad.data()[0] / diff.numel().max(1) as f32;
                add_grad(*x, diff.scale(scale), grads)?;
            }
            Op::CrossEntropySmoothed {
                logits,
                softmax,
                labels,
                eps,
            } => {
                let batch = labels.len();
                let classes = softmax.dims()[1];
                let upstream = grad.data()[0] / batch as f32;
                let uniform = eps / classes as f32;
                // d loss / d logits = softmax - q.
                let mut dl = softmax.scale(upstream);
                for (row, &label) in labels.iter().enumerate() {
                    for k in 0..classes {
                        let q = if k == label {
                            1.0 - eps + uniform
                        } else {
                            uniform
                        };
                        dl.data_mut()[row * classes + k] -= upstream * q;
                    }
                }
                add_grad(*logits, dl, grads)?;
            }
            _ => unreachable!("non-extended op routed to accumulate_ext_parents"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_scalar_fn;

    fn probe(shape: &[usize], salt: usize) -> Tensor {
        Tensor::from_fn(shape.to_vec(), |i| {
            let h = i
                .iter()
                .fold(salt, |a, &v| a.wrapping_mul(37).wrapping_add(v + 3));
            ((h % 19) as f32 / 19.0) * 2.0 - 1.0
        })
    }

    #[test]
    fn sigmoid_forward_and_gradcheck() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![0.0, 100.0, -100.0], [3]).unwrap());
        let y = g.sigmoid(x);
        let v = g.value(y).data();
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert!(v[1] > 0.999 && v[2] < 1e-3);
        let x0 = probe(&[6], 1);
        check_scalar_fn(&x0, 1e-3, 1e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = g.sigmoid(xv);
            let sq = g.square(y);
            let loss = g.sum(sq);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn tanh_gradcheck() {
        let x0 = probe(&[6], 2);
        check_scalar_fn(&x0, 1e-3, 1e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = g.tanh(xv);
            let sq = g.square(y);
            let loss = g.sum(sq);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn leaky_relu_forward_and_gradcheck() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![-2.0, 3.0], [2]).unwrap());
        let y = g.leaky_relu(x, 0.1);
        assert_eq!(g.value(y).data(), &[-0.2, 3.0]);
        // Gradcheck away from the kink.
        let x0 = Tensor::from_vec(vec![-1.5, -0.4, 0.6, 2.0], [4]).unwrap();
        check_scalar_fn(&x0, 1e-3, 1e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = g.leaky_relu(xv, 0.1);
            let sq = g.square(y);
            let loss = g.sum(sq);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn ln_gradcheck_on_positive_inputs() {
        let x0 = Tensor::from_vec(vec![0.5, 1.0, 2.5, 4.0], [4]).unwrap();
        check_scalar_fn(&x0, 1e-3, 1e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = g.ln(xv);
            let loss = g.sum(y);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn dropout_masks_and_scales() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]).unwrap());
        let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], [4]).unwrap();
        let y = g.dropout(x, &mask, 0.5).unwrap();
        assert_eq!(g.value(y).data(), &[2.0, 0.0, 6.0, 0.0]);
        // Gradient is routed only through kept elements.
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().data(), &[2.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn dropout_validates_arguments() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([3]));
        assert!(g.dropout(x, &Tensor::ones([2]), 0.5).is_err());
        assert!(g.dropout(x, &Tensor::ones([3]), 0.0).is_err());
        assert!(g.dropout(x, &Tensor::ones([3]), 1.5).is_err());
    }

    #[test]
    fn mse_loss_value_and_gradcheck() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 3.0], [2]).unwrap());
        let target = Tensor::from_vec(vec![0.0, 1.0], [2]).unwrap();
        let loss = g.mse_loss(x, &target).unwrap();
        // ((1)^2 + (2)^2) / 2 = 2.5
        assert!((g.value(loss).item().unwrap() - 2.5).abs() < 1e-6);
        let x0 = probe(&[5], 3);
        let tgt = probe(&[5], 4);
        check_scalar_fn(&x0, 1e-3, 1e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let loss = g.mse_loss(xv, &tgt).unwrap();
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
        let mut g2 = Graph::new();
        let x2 = g2.input(Tensor::zeros([2]));
        assert!(g2.mse_loss(x2, &Tensor::zeros([3])).is_err());
    }

    #[test]
    fn smoothed_ce_reduces_to_plain_ce_at_zero_eps() {
        let logits = probe(&[3, 5], 5);
        let labels = [0usize, 2, 4];
        let mut g1 = Graph::new();
        let l1 = g1.input(logits.clone());
        let plain = g1.cross_entropy(l1, &labels).unwrap();
        let mut g2 = Graph::new();
        let l2 = g2.input(logits);
        let smoothed = g2.cross_entropy_smoothed(l2, &labels, 0.0).unwrap();
        assert!(
            (g1.value(plain).item().unwrap() - g2.value(smoothed).item().unwrap()).abs() < 1e-5
        );
    }

    #[test]
    fn smoothed_ce_gradcheck() {
        let l0 = probe(&[3, 4], 7);
        let labels = vec![1usize, 0, 3];
        check_scalar_fn(&l0, 1e-2, 2e-2, |l| {
            let mut g = Graph::new();
            let lv = g.input(l.clone());
            let loss = g.cross_entropy_smoothed(lv, &labels, 0.1).unwrap();
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(lv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn smoothed_ce_validates_arguments() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::zeros([2, 3]));
        assert!(g.cross_entropy_smoothed(logits, &[0, 1], 1.0).is_err());
        assert!(g.cross_entropy_smoothed(logits, &[0], 0.1).is_err());
        assert!(g.cross_entropy_smoothed(logits, &[0, 5], 0.1).is_err());
    }

    #[test]
    fn smoothed_ce_gradient_rows_sum_to_zero() {
        let mut g = Graph::new();
        let logits = g.input(probe(&[4, 6], 9));
        let loss = g
            .cross_entropy_smoothed(logits, &[0, 1, 2, 3], 0.2)
            .unwrap();
        let grads = g.backward(loss).unwrap();
        let gl = grads.get(logits).unwrap();
        for row in 0..4 {
            let s: f32 = gl.data()[row * 6..(row + 1) * 6].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }
}
