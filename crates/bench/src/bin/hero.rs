//! `hero` — command-line front end for the HERO reproduction.
//!
//! ```text
//! hero train     --preset c10 --model resnet --method hero --epochs 30 [--out net.ckpt]
//! hero quantize  --preset c10 --model resnet --ckpt net.ckpt --bits 3,4,6,8 [--mixed 5.0]
//! hero analyze   --preset c10 --model resnet --ckpt net.ckpt
//! hero preflight --preset c10 --model resnet [--bits 3,4,8] [--out-dir results/analyze]
//! ```
//!
//! `train` trains and optionally checkpoints a model; `quantize` sweeps
//! post-training precision on a checkpoint (or a uniform/mixed allocation);
//! `analyze` reports curvature (λ_max via Lanczos, ‖Hz‖) and the Theorem 3
//! robustness bounds at the checkpoint; `preflight` runs the static
//! analyzer suite (structure, shapes, liveness, value intervals,
//! gradient-scale bounds) over the model's tape without training and
//! writes the report plus an interval-colored Graphviz view.

use hero_core::experiment::{model_config, MethodKind};
use hero_core::{train, TrainConfig};
use hero_data::Preset;
use hero_hessian::{hessian_norm_probe, lanczos_spectrum, BoundInputs, GradOracle};
use hero_nn::models::ModelKind;
use hero_nn::{evaluate_accuracy, load_params_from_file, save_params_to_file, Network};
use hero_optim::BatchOracle;
use hero_quant::{
    allocate_bits, network_sensitivities, quantize_params, quantize_params_mixed, QuantScheme,
};
use hero_tensor::rng::StdRng;
use hero_tensor::{global_norm_l1, global_norm_l2};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    hero_obs::init_from_env(&format!("hero_{cmd}"));
    let result = match cmd.as_str() {
        "train" => cmd_train(&opts),
        "quantize" => cmd_quantize(&opts),
        "analyze" => cmd_analyze(&opts),
        "preflight" => cmd_preflight(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    hero_obs::finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
hero — HERO (DAC 2022) reproduction CLI

USAGE:
  hero train    --preset <c10|c100|in50> --model <resnet|mobilenet|vgg>
                --method <hero|sam|gradl1|sgd> [--epochs N] [--scale F]
                [--seed N] [--out FILE]
  hero quantize --preset ... --model ... (--ckpt FILE | --method ... [--epochs N])
                [--bits 3,4,6,8] [--mixed AVG_BITS]
  hero analyze  --preset ... --model ... (--ckpt FILE | --method ... [--epochs N])
  hero preflight --preset ... --model ... [--ckpt FILE] [--scale F] [--seed N]
                 [--bits 3,4,8] [--out-dir DIR]";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_string(), value.clone());
    }
    Ok(out)
}

fn preset_of(opts: &HashMap<String, String>) -> Result<Preset, String> {
    match opts.get("preset").map(String::as_str) {
        Some("c10") | None => Ok(Preset::C10),
        Some("c100") => Ok(Preset::C100),
        Some("in50") => Ok(Preset::In50),
        Some(other) => Err(format!("unknown preset `{other}`")),
    }
}

fn model_of(opts: &HashMap<String, String>) -> Result<ModelKind, String> {
    match opts.get("model").map(String::as_str) {
        Some("resnet") | None => Ok(ModelKind::Resnet),
        Some("mobilenet") => Ok(ModelKind::Mobilenet),
        Some("vgg") => Ok(ModelKind::Vgg),
        Some(other) => Err(format!("unknown model `{other}`")),
    }
}

fn method_of(opts: &HashMap<String, String>) -> Result<MethodKind, String> {
    match opts.get("method").map(String::as_str) {
        Some("hero") | None => Ok(MethodKind::Hero),
        Some("sam") | Some("first-order") => Ok(MethodKind::FirstOrder),
        Some("gradl1") => Ok(MethodKind::GradL1),
        Some("sgd") => Ok(MethodKind::Sgd),
        Some(other) => Err(format!("unknown method `{other}`")),
    }
}

fn num<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

/// Obtains a trained network: from a checkpoint if `--ckpt` is given,
/// otherwise by training with `--method` for `--epochs`.
fn obtain_model(
    opts: &HashMap<String, String>,
) -> Result<(Network, Preset, hero_data::Dataset, hero_data::Dataset), String> {
    let preset = preset_of(opts)?;
    let model = model_of(opts)?;
    let scale: f32 = num(opts, "scale", 0.5)?;
    let seed: u64 = num(opts, "seed", 42)?;
    let (train_set, test_set) = preset.load(scale);
    let mut net = model.build(model_config(preset), &mut StdRng::seed_from_u64(seed));
    if let Some(ckpt) = opts.get("ckpt") {
        load_params_from_file(&mut net, &PathBuf::from(ckpt)).map_err(|e| e.to_string())?;
        hero_obs::Event::new("checkpoint_loaded")
            .str("path", ckpt)
            .human(format!("loaded checkpoint {ckpt}"))
            .emit();
    } else {
        let method = method_of(opts)?;
        let epochs: usize = num(opts, "epochs", 20)?;
        hero_obs::Event::new("train_start")
            .str("model", model.paper_name())
            .str("method", method.paper_name())
            .str("preset", preset.paper_name())
            .u64("epochs", epochs as u64)
            .human(format!(
                "training {} with {} for {epochs} epochs on {} ...",
                model.paper_name(),
                method.paper_name(),
                preset.paper_name()
            ))
            .emit();
        let config = TrainConfig::new(method.tuned(), epochs).with_seed(seed);
        let rec = train(&mut net, &train_set, &test_set, &config).map_err(|e| e.to_string())?;
        hero_obs::Event::new("train_result")
            .f64("train_acc", f64::from(rec.final_train_acc))
            .f64("test_acc", f64::from(rec.final_test_acc))
            .human(format!(
                "trained: train acc {:.2}%, test acc {:.2}%",
                100.0 * rec.final_train_acc,
                100.0 * rec.final_test_acc
            ))
            .emit();
    }
    Ok((net, preset, train_set, test_set))
}

fn cmd_train(opts: &HashMap<String, String>) -> Result<(), String> {
    let (net, _, _, _) = obtain_model(opts)?;
    if let Some(out) = opts.get("out") {
        save_params_to_file(&net, &PathBuf::from(out)).map_err(|e| e.to_string())?;
        hero_obs::Event::new("checkpoint_written")
            .str("path", out)
            .human(format!("checkpoint written to {out}"))
            .emit();
    }
    Ok(())
}

fn cmd_quantize(opts: &HashMap<String, String>) -> Result<(), String> {
    let (mut net, _, _, test_set) = obtain_model(opts)?;
    let full_params = net.params();
    let full_acc = evaluate_accuracy(&mut net, &test_set.images, &test_set.labels, 64)
        .map_err(|e| e.to_string())?;
    hero_obs::Event::new("quant_eval")
        .str("scheme", "full_precision")
        .f64("accuracy", f64::from(full_acc))
        .human(format!("full precision: test acc {:.2}%", 100.0 * full_acc))
        .emit();

    if let Some(avg) = opts.get("mixed") {
        let avg: f32 = avg
            .parse()
            .map_err(|_| "--mixed: cannot parse".to_string())?;
        let sens = network_sensitivities(&net);
        let bits = allocate_bits(&sens, avg, 2, 8).map_err(|e| e.to_string())?;
        println!("mixed-precision allocation (avg {avg} bits):");
        for (s, b) in sens.iter().zip(&bits) {
            hero_obs::Event::new("bit_allocation")
                .str("tensor", &s.name)
                .u64("bits", u64::from(*b))
                .u64("weights", s.numel as u64)
                .human(format!("  {:40} {} bits ({} weights)", s.name, b, s.numel))
                .emit();
        }
        let (qp, report) = quantize_params_mixed(&net, &bits).map_err(|e| e.to_string())?;
        net.set_params(&qp).map_err(|e| e.to_string())?;
        let acc = evaluate_accuracy(&mut net, &test_set.images, &test_set.labels, 64)
            .map_err(|e| e.to_string())?;
        hero_obs::Event::new("quant_eval")
            .str("scheme", "mixed")
            .f64("avg_bits", f64::from(avg))
            .f64("accuracy", f64::from(acc))
            .f64("worst_linf", f64::from(report.worst_linf))
            .human(format!(
                "mixed {avg}-bit: test acc {:.2}%  (‖δ‖∞ {:.4})",
                100.0 * acc,
                report.worst_linf
            ))
            .emit();
        net.set_params(&full_params).map_err(|e| e.to_string())?;
    }

    let bits_arg = opts
        .get("bits")
        .cloned()
        .unwrap_or_else(|| "3,4,6,8".into());
    for token in bits_arg.split(',') {
        let b: u8 = token
            .trim()
            .parse()
            .map_err(|_| format!("--bits: cannot parse `{token}`"))?;
        let (qp, report) =
            quantize_params(&net, &QuantScheme::symmetric(b)).map_err(|e| e.to_string())?;
        net.set_params(&qp).map_err(|e| e.to_string())?;
        let acc = evaluate_accuracy(&mut net, &test_set.images, &test_set.labels, 64)
            .map_err(|e| e.to_string())?;
        hero_obs::Event::new("quant_eval")
            .str("scheme", "uniform")
            .u64("bits", u64::from(b))
            .f64("accuracy", f64::from(acc))
            .f64("worst_linf", f64::from(report.worst_linf))
            .f64("max_bin_width", f64::from(report.max_bin_width))
            .human(format!(
                "{b}-bit uniform: test acc {:.2}%  (‖δ‖∞ {:.4} ≤ Δ/2 {:.4})",
                100.0 * acc,
                report.worst_linf,
                report.max_bin_width / 2.0
            ))
            .emit();
        net.set_params(&full_params).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_preflight(opts: &HashMap<String, String>) -> Result<(), String> {
    let preset = preset_of(opts)?;
    let model = model_of(opts)?;
    let scale: f32 = num(opts, "scale", 0.5)?;
    let seed: u64 = num(opts, "seed", 42)?;
    let (train_set, _) = preset.load(scale);
    let mut net = model.build(model_config(preset), &mut StdRng::seed_from_u64(seed));
    if let Some(ckpt) = opts.get("ckpt") {
        load_params_from_file(&mut net, &PathBuf::from(ckpt)).map_err(|e| e.to_string())?;
    }
    let bits_arg = opts.get("bits").cloned().unwrap_or_else(|| "3,4,8".into());
    let mut bits = Vec::new();
    for token in bits_arg.split(',') {
        let b: u8 = token
            .trim()
            .parse()
            .map_err(|_| format!("--bits: cannot parse `{token}`"))?;
        bits.push(b);
    }
    let probe = train_set.len().min(64);
    if probe == 0 {
        return Err("preflight needs at least one sample".into());
    }
    let images = train_set
        .images
        .narrow(0, probe)
        .map_err(|e| e.to_string())?;
    let vopts = hero_analyze::VerifyOptions {
        quant_bits: bits,
        ..hero_analyze::VerifyOptions::default()
    };
    let (report, dot) =
        hero_core::preflight_report(&mut net, &images, &train_set.labels[..probe], &vopts, true)
            .map_err(|e| e.to_string())?;

    let out_dir = PathBuf::from(
        opts.get("out-dir")
            .cloned()
            .unwrap_or_else(|| "results/analyze".into()),
    );
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let stem = format!("{}_{}", model.paper_name(), preset.paper_name())
        .to_lowercase()
        .replace(['/', ' ', '-'], "_");
    let txt_path = out_dir.join(format!("{stem}.txt"));
    std::fs::write(&txt_path, format!("{report}\n")).map_err(|e| e.to_string())?;
    if let Some(dot) = dot {
        let dot_path = out_dir.join(format!("{stem}.dot"));
        std::fs::write(&dot_path, dot).map_err(|e| e.to_string())?;
    }

    let errors = report.errors().count();
    let warnings = report.warnings().count();
    println!(
        "preflight {}: {} nodes, {errors} errors, {warnings} warnings -> {}",
        net.name(),
        report.nodes,
        txt_path.display()
    );
    if errors > 0 || warnings > 0 {
        print!("{report}");
    }
    if errors > 0 {
        return Err(format!(
            "preflight found {errors} error-severity diagnostics for `{}`",
            net.name()
        ));
    }
    Ok(())
}

fn cmd_analyze(opts: &HashMap<String, String>) -> Result<(), String> {
    let (mut net, _, train_set, _) = obtain_model(opts)?;
    let n = train_set.len().min(128);
    let images = train_set.images.narrow(0, n).map_err(|e| e.to_string())?;
    let labels = train_set.labels[..n].to_vec();
    let params = net.params();
    let nonzeros: usize = params.iter().map(|p| p.norm_l0()).sum();
    let mut oracle = BatchOracle::new(&mut net, &images, &labels);
    let (loss, grads) = oracle.grad(&params).map_err(|e| e.to_string())?;
    let (hz, _) = hessian_norm_probe(&mut oracle, &params, 1e-3).map_err(|e| e.to_string())?;
    let spectrum = lanczos_spectrum(
        &mut oracle,
        &params,
        10,
        1e-3,
        &mut StdRng::seed_from_u64(0),
    )
    .map_err(|e| e.to_string())?;
    let bounds = BoundInputs {
        grad_l2: global_norm_l2(&grads),
        grad_l1: global_norm_l1(&grads),
        eigenvalue: spectrum.lambda_max(),
        nonzeros,
        tolerance: 0.1,
    };
    let report = format!(
        "curvature analysis on {n} training samples:\n\
         \x20 loss                      {loss:.4}\n\
         \x20 ‖g‖₂ / ‖g‖₁               {:.4} / {:.4}\n\
         \x20 ‖Hz‖ (Fig. 2 probe)       {hz:.4}\n\
         \x20 λ_max / λ_min (Lanczos)   {:.4} / {:.4}\n\
         \x20 theorem 3 ‖δ*‖₂ bound     {:.5}\n\
         \x20 theorem 3 ‖δ*‖∞ bound     {:.6}\n\
         \x20 max safe bin width Δ      {:.6}",
        bounds.grad_l2,
        bounds.grad_l1,
        spectrum.lambda_max(),
        spectrum.lambda_min(),
        bounds.l2_bound(),
        bounds.linf_bound(),
        bounds.max_safe_bin_width()
    );
    hero_obs::Event::new("analysis")
        .u64("samples", n as u64)
        .f64("loss", f64::from(loss))
        .f64("grad_l2", f64::from(bounds.grad_l2))
        .f64("grad_l1", f64::from(bounds.grad_l1))
        .f64("hz_norm", f64::from(hz))
        .f64("lambda_max", f64::from(spectrum.lambda_max()))
        .f64("lambda_min", f64::from(spectrum.lambda_min()))
        .f64("l2_bound", f64::from(bounds.l2_bound()))
        .f64("linf_bound", f64::from(bounds.linf_bound()))
        .f64("max_safe_bin_width", f64::from(bounds.max_safe_bin_width()))
        .human(report)
        .emit();
    Ok(())
}
