//! Matrix multiplication kernels.
//!
//! All three product variants route through the packed micro-kernel in
//! [`super::gemm`]; the previous cache-blocked triple loop survives as
//! [`matmul_reference`], the correctness oracle and bench baseline.

use crate::error::{Result, TensorError};
use crate::ops::gemm::{gemm, BSrc};
use crate::ops::im2col::{ConvGeometry, Im2colView};
use crate::pool;
use crate::tensor::Tensor;

/// Blocking factor for the reference matmul kernel.
const BLOCK: usize = 32;

/// The pre-packing cache-blocked i-k-j kernel, kept as the correctness
/// oracle for the packed GEMM's shape-grid tests and as the baseline the
/// `step_cost` bench compares against.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not 2-D, or
/// [`TensorError::MatmulDims`] if the inner dimensions disagree.
pub fn matmul_reference(lhs: &Tensor, rhs: &Tensor) -> Result<Tensor> {
    let (m, n, k) = check_dims(lhs, rhs, false, false)?;
    let a = lhs.data();
    let b = rhs.data();
    let mut c = vec![0.0f32; m * n];
    for ib in (0..m).step_by(BLOCK) {
        for kb in (0..k).step_by(BLOCK) {
            for jb in (0..n).step_by(BLOCK) {
                let i_end = (ib + BLOCK).min(m);
                let k_end = (kb + BLOCK).min(k);
                let j_end = (jb + BLOCK).min(n);
                for i in ib..i_end {
                    for kk in kb..k_end {
                        let aik = a[i * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + jb..kk * n + j_end];
                        let crow = &mut c[i * n + jb..i * n + j_end];
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(c, [m, n])
}

/// Validates ranks/inner dims and returns the logical `(m, n, k)` of
/// `op(lhs) · op(rhs)` under the given transpose flags.
fn check_dims(lhs: &Tensor, rhs: &Tensor, lt: bool, rt: bool) -> Result<(usize, usize, usize)> {
    if lhs.rank() != 2 || rhs.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: if lhs.rank() != 2 {
                lhs.rank()
            } else {
                rhs.rank()
            },
        });
    }
    let (m, k) = if lt {
        (lhs.dims()[1], lhs.dims()[0])
    } else {
        (lhs.dims()[0], lhs.dims()[1])
    };
    let (k2, n) = if rt {
        (rhs.dims()[1], rhs.dims()[0])
    } else {
        (rhs.dims()[0], rhs.dims()[1])
    };
    if k != k2 {
        return Err(TensorError::MatmulDims {
            left_cols: k,
            right_rows: k2,
        });
    }
    Ok((m, n, k))
}

/// Shared entry: validates, leases the output from the scratch pool, and
/// runs the packed kernel with transposition handled during packing.
fn gemm_tensor(lhs: &Tensor, rhs: &Tensor, lt: bool, rt: bool) -> Result<Tensor> {
    let (m, n, k) = check_dims(lhs, rhs, lt, rt)?;
    let mut c = pool::lease(m * n);
    let b = BSrc::Mat {
        data: rhs.data(),
        trans: rt,
    };
    gemm(m, n, k, lhs.data(), lt, b, &mut c);
    Tensor::from_vec(c, [m, n])
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `(m, k) x (k, n) -> (m, n)`.
    ///
    /// Runs the packed register-blocked micro-kernel GEMM (see
    /// `ops::gemm`); the output buffer is leased from the thread-local
    /// scratch pool.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not 2-D,
    /// or [`TensorError::MatmulDims`] if the inner dimensions disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use hero_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), hero_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
    /// let id = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2])?;
    /// assert_eq!(a.matmul(&id)?, a);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        gemm_tensor(self, other, false, false)
    }

    /// `self^T x other` without materializing the transpose:
    /// `(k, m)^T x (k, n) -> (m, n)`.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Tensor::matmul`].
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        gemm_tensor(self, other, true, false)
    }

    /// `self x other^T` without materializing the transpose:
    /// `(m, k) x (n, k)^T -> (m, n)`.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Tensor::matmul`].
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        gemm_tensor(self, other, false, true)
    }

    /// Fused convolution forward: `self · im2col(x)` where `self` is a
    /// `(out_c, C·k·k)` weight matrix and `x` a 4-D NCHW input, yielding
    /// `(out_c, N·oh·ow)`.
    ///
    /// Patch columns are packed straight out of `x` inside the GEMM's
    /// B-packing loop, so the `(C·k·k, N·oh·ow)` patch matrix is never
    /// materialized; the result is bitwise identical to
    /// `self.matmul(&x.im2col(geom)?)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless `self` is 2-D and `x`
    /// is 4-D, a geometry error if `geom` disagrees with `x`'s spatial
    /// size, or [`TensorError::MatmulDims`] if `self`'s columns differ
    /// from `C·k·k`.
    pub fn matmul_im2col(&self, x: &Tensor, geom: &ConvGeometry) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let view = Im2colView::new(x, geom)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        if k != view.rows() {
            return Err(TensorError::MatmulDims {
                left_cols: k,
                right_rows: view.rows(),
            });
        }
        let n = view.cols();
        let mut c = pool::lease(m * n);
        gemm(
            m,
            n,
            k,
            self.data(),
            false,
            BSrc::Cols { view, trans: false },
            &mut c,
        );
        Tensor::from_vec(c, [m, n])
    }

    /// Fused convolution weight gradient: `self · im2col(x)ᵀ` where
    /// `self` is the `(out_c, N·oh·ow)` output gradient and `x` the 4-D
    /// NCHW forward input, yielding `(out_c, C·k·k)` — the dW product —
    /// without materializing the patch matrix. Bitwise identical to
    /// `self.matmul_nt(&x.im2col(geom)?)`.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Tensor::matmul_im2col`], with the
    /// inner-dimension check against `N·oh·ow`.
    pub fn matmul_nt_im2col(&self, x: &Tensor, geom: &ConvGeometry) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let view = Im2colView::new(x, geom)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        if k != view.cols() {
            return Err(TensorError::MatmulDims {
                left_cols: k,
                right_rows: view.cols(),
            });
        }
        let n = view.rows();
        let mut c = pool::lease(m * n);
        gemm(
            m,
            n,
            k,
            self.data(),
            false,
            BSrc::Cols { view, trans: true },
            &mut c,
        );
        Tensor::from_vec(c, [m, n])
    }

    /// Matrix-vector product: `(m, k) x (k,) -> (m,)`.
    ///
    /// # Errors
    ///
    /// Returns rank/dimension errors mirroring [`Tensor::matmul`].
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        if v.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: v.rank(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        if v.dims()[0] != k {
            return Err(TensorError::MatmulDims {
                left_cols: k,
                right_rows: v.dims()[0],
            });
        }
        let mut out = pool::lease_raw(m);
        for i in 0..m {
            let row = &self.data()[i * k..(i + 1) * k];
            out.push(row.iter().zip(v.data()).map(|(&a, &b)| a * b).sum());
        }
        Tensor::from_vec(out, [m])
    }

    /// Outer product of two vectors: `(m,) x (n,) -> (m, n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are 1-D.
    pub fn outer(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 1 || other.rank() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: if self.rank() != 1 {
                    self.rank()
                } else {
                    other.rank()
                },
            });
        }
        let (m, n) = (self.numel(), other.numel());
        let mut out = pool::lease_raw(m * n);
        for &a in self.data() {
            for &b in other.data() {
                out.push(a * b);
            }
        }
        Tensor::from_vec(out, [m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_result() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_validates_dims() {
        let a = Tensor::zeros([2, 3]);
        assert!(a.matmul(&Tensor::zeros([4, 2])).is_err());
        assert!(a.matmul(&Tensor::zeros([3])).is_err());
        assert!(Tensor::zeros([3]).matmul(&a).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::arange(9).reshape([3, 3]).unwrap();
        let id = Tensor::from_fn([3, 3], |idx| if idx[0] == idx[1] { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id).unwrap(), a);
        assert_eq!(id.matmul(&a).unwrap(), a);
    }

    fn assert_close(got: &Tensor, want: &Tensor) {
        assert_eq!(got.dims(), want.dims());
        for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
            assert!(
                (g - w).abs() <= 1e-5 * w.abs().max(1.0),
                "idx {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn packed_kernel_matches_reference_across_shape_grid() {
        // 1x1, primes straddling MR/NR, tall/skinny, wide, and block-edge
        // sizes — the acceptance grid for the packed kernel.
        let shapes = [
            (1, 1, 1),
            (1, 8, 3),
            (5, 7, 3),
            (13, 11, 17),
            (37, 41, 35),
            (3, 200, 2),
            (200, 3, 2),
            (64, 96, 300),
        ];
        for &(m, n, k) in &shapes {
            let a = Tensor::from_fn([m, k], |i| ((i[0] * 7 + i[1] * 3) % 11) as f32 - 5.0);
            let b = Tensor::from_fn([k, n], |i| ((i[0] * 5 + i[1] * 2) % 13) as f32 - 6.0);
            let packed = a.matmul(&b).unwrap();
            let reference = matmul_reference(&a, &b).unwrap();
            assert_close(&packed, &reference);
        }
    }

    #[test]
    fn reference_kernel_validates_dims() {
        let a = Tensor::zeros([2, 3]);
        assert!(matmul_reference(&a, &Tensor::zeros([4, 2])).is_err());
        assert!(matmul_reference(&a, &Tensor::zeros([3])).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        for (k, m, n) in [(4, 3, 5), (17, 13, 9), (33, 2, 70)] {
            let a = Tensor::from_fn([k, m], |i| (i[0] + 2 * i[1]) as f32);
            let b = Tensor::from_fn([k, n], |i| (2 * i[0] + i[1]) as f32);
            let expected = a.transpose().unwrap().matmul(&b).unwrap();
            assert_close(&a.matmul_tn(&b).unwrap(), &expected);
        }
        let a = Tensor::from_fn([4, 3], |i| (i[0] + 2 * i[1]) as f32);
        assert!(a.matmul_tn(&Tensor::zeros([3, 5])).is_err());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        for (m, k, n) in [(4, 3, 5), (13, 17, 9), (2, 33, 70)] {
            let a = Tensor::from_fn([m, k], |i| (i[0] + 2 * i[1]) as f32);
            let b = Tensor::from_fn([n, k], |i| (2 * i[0] + i[1]) as f32);
            let expected = a.matmul(&b.transpose().unwrap()).unwrap();
            assert_close(&a.matmul_nt(&b).unwrap(), &expected);
        }
        let a = Tensor::from_fn([4, 3], |i| (i[0] + 2 * i[1]) as f32);
        assert!(a.matmul_nt(&Tensor::zeros([5, 4])).is_err());
    }

    #[test]
    fn fused_im2col_products_match_materialized_bitwise() {
        let x = Tensor::from_fn([2, 3, 6, 6], |i| {
            ((i[0] * 7 + i[1] * 5 + i[2] * 3 + i[3]) % 9) as f32 / 4.0 - 1.0
        });
        let geom = ConvGeometry::new(6, 6, 3, 1, 1).unwrap();
        let cols = x.im2col(&geom).unwrap();
        let w = Tensor::from_fn([5, 27], |i| {
            ((i[0] * 11 + i[1] * 2) % 13) as f32 / 6.0 - 1.0
        });
        let fused = w.matmul_im2col(&x, &geom).unwrap();
        let materialized = w.matmul(&cols).unwrap();
        assert_eq!(fused.dims(), materialized.dims());
        for (i, (&f, &m)) in fused.data().iter().zip(materialized.data()).enumerate() {
            assert_eq!(f.to_bits(), m.to_bits(), "forward idx {i}: {f} vs {m}");
        }
        let dy = Tensor::from_fn([5, cols.dims()[1]], |i| {
            ((i[0] * 3 + i[1] * 7) % 11) as f32 / 5.0 - 1.0
        });
        let fused_dw = dy.matmul_nt_im2col(&x, &geom).unwrap();
        let materialized_dw = dy.matmul_nt(&cols).unwrap();
        assert_eq!(fused_dw.dims(), materialized_dw.dims());
        for (i, (&f, &m)) in fused_dw
            .data()
            .iter()
            .zip(materialized_dw.data())
            .enumerate()
        {
            assert_eq!(f.to_bits(), m.to_bits(), "grad_w idx {i}: {f} vs {m}");
        }
    }

    #[test]
    fn fused_im2col_products_validate_shapes() {
        let geom = ConvGeometry::new(4, 4, 3, 1, 1).unwrap();
        let x = Tensor::zeros([1, 2, 4, 4]);
        // Wrong inner dim: weight columns must be C*k*k = 18.
        assert!(Tensor::zeros([3, 17]).matmul_im2col(&x, &geom).is_err());
        // Non-2D weight, non-4D input, geometry mismatch.
        assert!(Tensor::zeros([18]).matmul_im2col(&x, &geom).is_err());
        assert!(Tensor::zeros([3, 18])
            .matmul_im2col(&Tensor::zeros([2, 4, 4]), &geom)
            .is_err());
        assert!(Tensor::zeros([3, 18])
            .matmul_im2col(&Tensor::zeros([1, 2, 5, 5]), &geom)
            .is_err());
        // dW orientation: inner dim must be N*oh*ow = 16.
        assert!(Tensor::zeros([3, 15]).matmul_nt_im2col(&x, &geom).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_fn([3, 4], |i| (i[0] * 4 + i[1]) as f32);
        let v = Tensor::arange(4);
        let got = a.matvec(&v).unwrap();
        let expected = a.matmul(&v.reshape([4, 1]).unwrap()).unwrap();
        assert_eq!(got.data(), expected.data());
        assert!(a.matvec(&Tensor::arange(3)).is_err());
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], [3]).unwrap();
        let o = a.outer(&b).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        assert!(a.outer(&Tensor::zeros([2, 2])).is_err());
    }
}
