//! Vector norms over flattened tensors.
//!
//! These are the quantities HERO's theory is written in: the ℓ2 norm for the
//! generalization bound (Theorem 1), the ℓ∞ norm for the quantization bound
//! (Theorem 2), the ℓ1 norm for the GRAD-L1 baseline and the ℓ0 count `n`
//! appearing in Theorem 3.

use crate::tensor::Tensor;

impl Tensor {
    /// ℓ1 norm: sum of absolute values.
    pub fn norm_l1(&self) -> f32 {
        self.data().iter().map(|v| v.abs()).sum()
    }

    /// ℓ2 (Euclidean) norm.
    pub fn norm_l2(&self) -> f32 {
        self.data().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Squared ℓ2 norm (avoids the square root when only comparing).
    pub fn norm_l2_sq(&self) -> f32 {
        self.data().iter().map(|v| v * v).sum()
    }

    /// ℓ∞ norm: maximum absolute value.
    pub fn norm_linf(&self) -> f32 {
        self.data().iter().map(|v| v.abs()).fold(0.0, f32::max)
    }

    /// ℓ0 "norm": number of non-zero elements (the `n` in Theorem 3).
    pub fn norm_l0(&self) -> usize {
        self.data().iter().filter(|&&v| v != 0.0).count()
    }

    /// Normalizes to unit ℓ2 norm. Returns a zero tensor unchanged (rather
    /// than dividing by zero) when the norm underflows.
    pub fn normalized_l2(&self) -> Tensor {
        let n = self.norm_l2();
        if n <= f32::MIN_POSITIVE {
            self.clone()
        } else {
            self.scale(1.0 / n)
        }
    }
}

/// ℓ2 norm across a list of tensors viewed as one concatenated vector.
///
/// Optimizer code treats a model's parameters as a single flattened vector;
/// this helper avoids materializing the concatenation.
pub fn global_norm_l2(tensors: &[Tensor]) -> f32 {
    tensors.iter().map(Tensor::norm_l2_sq).sum::<f32>().sqrt()
}

/// ℓ1 norm across a list of tensors viewed as one concatenated vector.
pub fn global_norm_l1(tensors: &[Tensor]) -> f32 {
    tensors.iter().map(Tensor::norm_l1).sum()
}

/// ℓ∞ norm across a list of tensors viewed as one concatenated vector.
pub fn global_norm_linf(tensors: &[Tensor]) -> f32 {
    tensors.iter().map(Tensor::norm_linf).fold(0.0, f32::max)
}

/// Dot product across two equally-shaped lists of tensors.
///
/// # Panics
///
/// Panics if the lists have different lengths or mismatched shapes (these
/// lists always come from the same parameter registry, so a mismatch is a
/// programming error).
pub fn global_dot(a: &[Tensor], b: &[Tensor]) -> f32 {
    assert_eq!(a.len(), b.len(), "global_dot requires equal-length lists");
    a.iter()
        .zip(b)
        .map(|(x, y)| x.dot(y).expect("global_dot shape mismatch"))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), [v.len()]).unwrap()
    }

    #[test]
    fn norms_of_a_known_vector() {
        let v = t(&[3.0, -4.0, 0.0]);
        assert_eq!(v.norm_l1(), 7.0);
        assert_eq!(v.norm_l2(), 5.0);
        assert_eq!(v.norm_l2_sq(), 25.0);
        assert_eq!(v.norm_linf(), 4.0);
        assert_eq!(v.norm_l0(), 2);
    }

    #[test]
    fn norm_inequalities_hold() {
        // ||x||_inf <= ||x||_2 <= ||x||_1 <= sqrt(n)*||x||_2
        let v = t(&[1.0, -2.5, 0.3, 4.0]);
        let (l1, l2, linf) = (v.norm_l1(), v.norm_l2(), v.norm_linf());
        assert!(linf <= l2 + 1e-6);
        assert!(l2 <= l1 + 1e-6);
        assert!(l1 <= (v.numel() as f32).sqrt() * l2 + 1e-6);
    }

    #[test]
    fn normalized_l2_has_unit_norm() {
        let v = t(&[3.0, 4.0]);
        assert!((v.normalized_l2().norm_l2() - 1.0).abs() < 1e-6);
        // Zero vector stays zero instead of becoming NaN.
        let z = Tensor::zeros([3]);
        assert_eq!(z.normalized_l2(), z);
    }

    #[test]
    fn global_norms_match_concatenation() {
        let a = t(&[3.0, 0.0]);
        let b = t(&[0.0, 4.0]);
        assert_eq!(global_norm_l2(&[a.clone(), b.clone()]), 5.0);
        assert_eq!(global_norm_l1(&[a.clone(), b.clone()]), 7.0);
        assert_eq!(global_norm_linf(&[a.clone(), b.clone()]), 4.0);
        assert_eq!(global_dot(&[a.clone(), b.clone()], &[a, b]), 25.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn global_dot_panics_on_length_mismatch() {
        global_dot(&[Tensor::zeros([2])], &[]);
    }
}
