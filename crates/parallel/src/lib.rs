//! # hero-parallel
//!
//! Deterministic data-parallel training for the HERO reproduction.
//!
//! HERO's step cost is dominated by its three gradient evaluations (clean,
//! SAM-perturbed, FD-HVP probe — DESIGN.md §1); each is a batch-mean
//! reduction, so it shards cleanly across cores. This crate supplies:
//!
//! - [`WorkerPool`]: a persistent `std::thread` worker pool with
//!   job-index result slotting and panic containment (re-exported from
//!   `hero_tensor::workers`, where the multicore GEMM macro-kernel also
//!   uses it);
//! - [`tree_reduce`]: a fixed-shape pairwise reduction whose f32 result
//!   depends only on the shard count — never on worker count, scheduling,
//!   or completion order;
//! - [`ShardedOracle`] / [`train_step_parallel`]: a drop-in
//!   `GradOracle` that shards each batch across network replicas, letting
//!   the existing optimizer run unchanged.
//!
//! Determinism contract: with the shard count fixed (see
//! [`DEFAULT_SHARDS`]), running the same seeded training under
//! `HERO_THREADS=1..=N` produces **bitwise identical** weight
//! trajectories — proven by the `parallel_equiv` test suites here and in
//! `hero-core`. Models with dropout layers are excluded from the contract
//! (per-replica RNG state depends on job scheduling). Batch-norm running
//! statistics are frozen inside workers; after each step the canonical
//! network refreshes them with one deterministic full-batch forward on
//! the calling thread, see DESIGN.md §11.
//!
//! # Examples
//!
//! ```
//! use hero_nn::models::{mlp, ModelConfig};
//! use hero_optim::{Method, Optimizer};
//! use hero_parallel::{train_step_parallel, ParallelCtx};
//! use hero_tensor::rng::StdRng;
//! use hero_tensor::Tensor;
//!
//! # fn main() -> Result<(), hero_tensor::TensorError> {
//! let cfg = ModelConfig { classes: 2, in_channels: 1, input_hw: 2, width: 4 };
//! let mut net = mlp(cfg, &[8], &mut StdRng::seed_from_u64(0));
//! let x = Tensor::from_fn([8, 1, 2, 2], |i| i[0] as f32 * 0.1);
//! let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
//! let mut ctx = ParallelCtx::new(&net, 2)?;
//! let mut opt = Optimizer::new(Method::Sgd);
//! let stats = train_step_parallel(&mut ctx, &mut net, &mut opt, &x, &labels, 0.1)?;
//! assert!(stats.loss.is_finite());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod executor;
mod reduce;

pub use executor::{
    threads_from_env, train_step_parallel, ParallelCtx, ShardedOracle, DEFAULT_SHARDS,
};
pub use hero_tensor::workers::{Job, PoolError, WorkerPool};
pub use reduce::{combine_shard_grads, tree_reduce, ShardGrad};
