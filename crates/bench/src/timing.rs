//! Minimal wall-clock benchmarking: warm-up, a time-budgeted measurement
//! loop, and JSON output.
//!
//! In-tree replacement for the Criterion dependency so the bench targets
//! build with no network access. Each measurement runs the closure until a
//! wall-clock budget is exhausted and reports the mean iteration time; the
//! per-run variance machinery of a full bench framework is intentionally
//! out of scope — the numbers feed coarse before/after comparisons
//! (`results/BENCH_step.json`), not statistical regression gates.

use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// One measured operation: the schema of a `results/BENCH_*.json` row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Identifier for the operation (stable across PRs so trajectories can
    /// be compared).
    pub name: String,
    /// Number of timed iterations.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
}

impl fmt::Display for BenchRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let per = self.ns_per_iter;
        let human = if per >= 1e9 {
            format!("{:.3} s", per / 1e9)
        } else if per >= 1e6 {
            format!("{:.3} ms", per / 1e6)
        } else if per >= 1e3 {
            format!("{:.3} µs", per / 1e3)
        } else {
            format!("{per:.1} ns")
        };
        write!(
            f,
            "{:<40} {:>12}/iter  ({} iters)",
            self.name, human, self.iters
        )
    }
}

/// True when the process was invoked with `--quick` (used by
/// `scripts/verify.sh` to keep bench smoke runs under a few minutes).
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The per-operation measurement budget: 2 s normally, 200 ms under
/// `--quick`.
pub fn default_budget() -> Duration {
    if quick_requested() {
        Duration::from_millis(200)
    } else {
        Duration::from_secs(2)
    }
}

/// Times `f` under `budget`: one untimed call plus ~10% of the budget as
/// warm-up, then repeated calls until the budget elapses.
///
/// The row is printed to stdout as a side effect so every bench shows
/// progress as it runs.
pub fn time_op(name: &str, budget: Duration, mut f: impl FnMut()) -> BenchRow {
    f();
    let warm_end = Instant::now() + budget / 10;
    while Instant::now() < warm_end {
        f();
    }
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let row = BenchRow {
        name: name.to_string(),
        iters,
        ns_per_iter: start.elapsed().as_nanos() as f64 / iters as f64,
    };
    println!("{row}");
    row
}

/// Serializes rows as a JSON array of `{name, iters, ns_per_iter}` objects
/// (written by hand — the workspace carries no serde dependency).
pub fn to_json(rows: &[BenchRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"iters\": {}, \"ns_per_iter\": {:.1}}}{}\n",
            r.name,
            r.iters,
            r.ns_per_iter,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Writes rows to `path` as JSON, creating parent directories as needed.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn write_json(path: impl AsRef<Path>, rows: &[BenchRow]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_json(rows).as_bytes())?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_op_counts_iterations() {
        let mut calls = 0u64;
        let row = time_op("noop", Duration::from_millis(5), || calls += 1);
        // warm-up calls + timed calls; the row only counts the timed ones.
        assert!(calls > row.iters);
        assert!(row.iters >= 1);
        assert!(row.ns_per_iter > 0.0);
    }

    #[test]
    fn json_is_well_formed() {
        let rows = vec![
            BenchRow {
                name: "a".into(),
                iters: 10,
                ns_per_iter: 123.4,
            },
            BenchRow {
                name: "b".into(),
                iters: 2,
                ns_per_iter: 5e6,
            },
        ];
        let json = to_json(&rows);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"name\"").count(), 2);
        // Exactly one comma between the two objects.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn display_scales_units() {
        let ns = BenchRow {
            name: "x".into(),
            iters: 1,
            ns_per_iter: 12.0,
        };
        let ms = BenchRow {
            name: "x".into(),
            iters: 1,
            ns_per_iter: 3.2e6,
        };
        assert!(format!("{ns}").contains("ns"));
        assert!(format!("{ms}").contains("ms"));
    }
}
