//! Random tensor initialization schemes.
//!
//! All initializers draw from a caller-supplied [`crate::rng::Rng`] so every
//! experiment in the HERO reproduction is seedable and deterministic.

use crate::rng::Rng;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Weight initialization schemes for network parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All elements set to the given constant.
    Constant(f32),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f32,
        /// Upper bound (exclusive).
        hi: f32,
    },
    /// Gaussian with the given mean and standard deviation.
    Normal {
        /// Mean of the distribution.
        mean: f32,
        /// Standard deviation of the distribution.
        std: f32,
    },
    /// Kaiming (He) normal: `std = sqrt(2 / fan_in)` — the standard choice
    /// for ReLU networks like the paper's ResNet/VGG/MobileNet models.
    KaimingNormal {
        /// Number of input connections per output unit.
        fan_in: usize,
    },
    /// Xavier (Glorot) uniform: `bound = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform {
        /// Number of input connections.
        fan_in: usize,
        /// Number of output connections.
        fan_out: usize,
    },
}

impl Init {
    /// Materializes a tensor of the given shape using this scheme.
    pub fn tensor(&self, shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let data: Vec<f32> = match *self {
            Init::Constant(c) => vec![c; n],
            Init::Uniform { lo, hi } => (0..n).map(|_| rng.gen_range(lo..hi)).collect(),
            Init::Normal { mean, std } => (0..n)
                .map(|_| mean + std * sample_standard_normal(rng))
                .collect(),
            Init::KaimingNormal { fan_in } => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                (0..n).map(|_| std * sample_standard_normal(rng)).collect()
            }
            Init::XavierUniform { fan_in, fan_out } => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                (0..n).map(|_| rng.gen_range(-bound..bound)).collect()
            }
        };
        Tensor::from_vec(data, shape).expect("volume matches by construction")
    }
}

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// Implemented locally so the crate only needs `rand`'s core `Rng` trait and
/// stays reproducible across `rand` minor versions.
fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let mag = (-2.0 * u1.ln()).sqrt();
        let z = mag * (2.0 * std::f32::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Fills an existing tensor in place with standard-normal samples — the
/// workhorse for Hutchinson probes and random landscape directions.
pub fn fill_standard_normal(t: &mut Tensor, rng: &mut impl Rng) {
    for v in t.data_mut() {
        *v = sample_standard_normal(rng);
    }
}

/// Samples a random unit vector (ℓ2) of the given shape.
pub fn random_unit_vector(shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
    let mut t = Tensor::zeros(shape);
    fill_standard_normal(&mut t, rng);
    t.normalized_l2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn constant_fills() {
        let t = Init::Constant(3.0).tensor([4], &mut rng());
        assert_eq!(t.data(), &[3.0; 4]);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor([1000], &mut rng());
        assert!(t.data().iter().all(|&v| (-1.0..1.0).contains(&v)));
        // Mean should be near 0 for a large sample.
        assert!(t.mean().abs() < 0.1);
    }

    #[test]
    fn normal_has_requested_moments() {
        let t = Init::Normal {
            mean: 2.0,
            std: 0.5,
        }
        .tensor([4000], &mut rng());
        assert!((t.mean() - 2.0).abs() < 0.05);
        assert!((t.variance().sqrt() - 0.5).abs() < 0.05);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let t = Init::KaimingNormal { fan_in: 8 }.tensor([4000], &mut rng());
        let expected = (2.0f32 / 8.0).sqrt();
        assert!((t.variance().sqrt() - expected).abs() < 0.05);
    }

    #[test]
    fn xavier_respects_bound() {
        let fan_in = 10;
        let fan_out = 20;
        let bound = (6.0f32 / 30.0).sqrt();
        let t = Init::XavierUniform { fan_in, fan_out }.tensor([1000], &mut rng());
        assert!(t.norm_linf() <= bound);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = Init::Normal {
            mean: 0.0,
            std: 1.0,
        }
        .tensor([16], &mut rng());
        let b = Init::Normal {
            mean: 0.0,
            std: 1.0,
        }
        .tensor([16], &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn random_unit_vector_has_unit_norm() {
        let v = random_unit_vector([32], &mut rng());
        assert!((v.norm_l2() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn fill_standard_normal_replaces_contents() {
        let mut t = Tensor::zeros([64]);
        fill_standard_normal(&mut t, &mut rng());
        assert!(t.norm_l2() > 0.0);
        assert!(t.is_finite());
    }
}
