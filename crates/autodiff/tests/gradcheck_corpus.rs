//! Seeded randomized gradcheck corpus: every registered graph op is
//! checked against central finite differences at three reproducible
//! random test points each, including broadcast shapes for the
//! element-wise ops and the im2col (conv) paths. Runs as a tier-1 test.
//!
//! Non-scalar ops are scalarized as `sum(square(op(..)))` so every output
//! coordinate contributes a distinct, input-dependent weight to the loss
//! (a plain `sum` would let an op with a wrong-but-constant Jacobian
//! column slip through).

use hero_autodiff::gradcheck::{check_graph_fn, seeded_signed, seeded_uniform};
use hero_autodiff::{Graph, Var};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::{ConvGeometry, Result, Tensor};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// A seeded tensor whose entries are a shuffled signed ladder
/// `±(0.1 + 0.05·rank)`: any two entries differ by at least 0.05, far
/// more than the `2·eps` finite-difference stencil, making argmax-style
/// ops (max-pool) stable under the probes.
fn well_separated(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    let mut vals: Vec<f32> = (0..n)
        .map(|i| {
            let mag = 0.1 + 0.05 * i as f32;
            if rng.gen::<f32>() < 0.5 {
                mag
            } else {
                -mag
            }
        })
        .collect();
    for i in (1..n).rev() {
        let j = (rng.gen::<f32>() * (i as f32 + 1.0)) as usize % (i + 1);
        vals.swap(i, j);
    }
    Tensor::from_vec(vals, shape).unwrap()
}

/// Mixes a non-scalar node into a scalar loss: `sum(square(v))`.
fn scalarize(g: &mut Graph, v: Var) -> Var {
    let sq = g.square(v);
    g.sum(sq)
}

/// Runs a single-input op at three seeded shapes.
fn sweep_unary(
    shapes: [&[usize]; 3],
    mk: impl Fn(u64, &[usize]) -> Tensor,
    op: impl Fn(&mut Graph, Var) -> Result<Var> + Copy,
) {
    for (seed, shape) in shapes.into_iter().enumerate() {
        let x = mk(seed as u64 + 100, shape);
        check_graph_fn(&[x], EPS, TOL, |g, v| {
            let y = op(g, v[0])?;
            Ok(scalarize(g, y))
        });
    }
}

#[test]
fn corpus_add_sub_mul_with_broadcasting() {
    // Same-shape, trailing-axis broadcast, and stretched-axis broadcast.
    let cases: [(&[usize], &[usize]); 3] =
        [(&[2, 3], &[2, 3]), (&[2, 3], &[3]), (&[2, 3], &[2, 1])];
    for (seed, (sa, sb)) in cases.into_iter().enumerate() {
        let a = seeded_uniform(sa, seed as u64, -1.0, 1.0);
        let b = seeded_uniform(sb, seed as u64 + 50, -1.0, 1.0);
        for op in [Graph::add, Graph::sub, Graph::mul] {
            check_graph_fn(&[a.clone(), b.clone()], EPS, TOL, |g, v| {
                let y = op(g, v[0], v[1])?;
                Ok(scalarize(g, y))
            });
        }
    }
}

#[test]
fn corpus_scale_and_add_scalar() {
    sweep_unary(
        [&[4], &[2, 3], &[2, 2, 2]],
        |s, sh| seeded_uniform(sh, s, -1.0, 1.0),
        |g, v| Ok(g.scale(v, -1.7)),
    );
    sweep_unary(
        [&[4], &[2, 3], &[2, 2, 2]],
        |s, sh| seeded_uniform(sh, s, -1.0, 1.0),
        |g, v| Ok(g.add_scalar(v, 0.4)),
    );
}

#[test]
fn corpus_matmul() {
    let cases: [(&[usize], &[usize]); 3] =
        [(&[2, 3], &[3, 4]), (&[1, 5], &[5, 1]), (&[4, 2], &[2, 3])];
    for (seed, (sa, sb)) in cases.into_iter().enumerate() {
        let a = seeded_uniform(sa, seed as u64 + 10, -1.0, 1.0);
        let b = seeded_uniform(sb, seed as u64 + 60, -1.0, 1.0);
        check_graph_fn(&[a, b], EPS, TOL, |g, v| {
            let y = g.matmul(v[0], v[1])?;
            Ok(scalarize(g, y))
        });
    }
}

#[test]
fn corpus_kinked_activations() {
    // Inputs bounded away from the kink at 0 so the ±eps probes stay on
    // one side (relu6's second kink at 6 is out of range entirely).
    let mk = |s: u64, sh: &[usize]| seeded_signed(sh, s, 0.15, 1.0);
    sweep_unary([&[5], &[2, 3], &[2, 2, 2]], mk, |g, v| Ok(g.relu(v)));
    sweep_unary([&[5], &[2, 3], &[2, 2, 2]], mk, |g, v| Ok(g.relu6(v)));
    sweep_unary([&[5], &[2, 3], &[2, 2, 2]], mk, |g, v| {
        Ok(g.leaky_relu(v, 0.1))
    });
}

#[test]
fn corpus_smooth_activations_and_square() {
    let mk = |s: u64, sh: &[usize]| seeded_uniform(sh, s, -1.5, 1.5);
    sweep_unary([&[5], &[2, 3], &[2, 2, 2]], mk, |g, v| Ok(g.sigmoid(v)));
    sweep_unary([&[5], &[2, 3], &[2, 2, 2]], mk, |g, v| Ok(g.tanh(v)));
    sweep_unary([&[5], &[2, 3], &[2, 2, 2]], mk, |g, v| Ok(g.square(v)));
    // ln needs strictly positive inputs with headroom for the ±eps probe.
    sweep_unary(
        [&[5], &[2, 3], &[2, 2, 2]],
        |s, sh| seeded_uniform(sh, s, 0.5, 2.0),
        |g, v| Ok(g.ln(v)),
    );
}

#[test]
fn corpus_shape_and_reductions() {
    let shapes: [(&[usize], &[usize]); 3] =
        [(&[2, 3], &[6]), (&[2, 2, 2], &[4, 2]), (&[6], &[2, 3])];
    for (seed, (from, to)) in shapes.into_iter().enumerate() {
        let x = seeded_uniform(from, seed as u64 + 20, -1.0, 1.0);
        let to = to.to_vec();
        check_graph_fn(&[x], EPS, TOL, |g, v| {
            let y = g.reshape(v[0], to.clone())?;
            Ok(scalarize(g, y))
        });
    }
    // sum and mean are themselves scalar: compose square *inside* so each
    // coordinate still carries a distinct weight.
    for (seed, shape) in [&[4][..], &[2, 3][..], &[2, 2, 2][..]]
        .into_iter()
        .enumerate()
    {
        let x = seeded_uniform(shape, seed as u64 + 30, -1.0, 1.0);
        check_graph_fn(std::slice::from_ref(&x), EPS, TOL, |g, v| {
            let sq = g.square(v[0]);
            Ok(g.sum(sq))
        });
        check_graph_fn(&[x], EPS, TOL, |g, v| {
            let sq = g.square(v[0]);
            Ok(g.mean(sq))
        });
    }
}

#[test]
fn corpus_conv2d_im2col_paths() {
    // (input shape, kernel, stride, pad): unit geometry, padded 3x3, and a
    // strided+padded case — all three exercise distinct im2col layouts.
    let cases: [(&[usize], usize, usize, usize); 3] = [
        (&[1, 2, 3, 3], 2, 1, 0),
        (&[2, 1, 4, 4], 3, 1, 1),
        (&[1, 2, 4, 4], 3, 2, 1),
    ];
    for (seed, (xs, k, stride, pad)) in cases.into_iter().enumerate() {
        let (in_c, h, w) = (xs[1], xs[2], xs[3]);
        let geom = ConvGeometry::new(h, w, k, stride, pad).unwrap();
        let out_c = 3;
        let x = seeded_uniform(xs, seed as u64 + 40, -1.0, 1.0);
        let wt = seeded_uniform([out_c, in_c * k * k], seed as u64 + 90, -0.5, 0.5);
        check_graph_fn(&[x, wt], EPS, TOL, move |g, v| {
            let y = g.conv2d(v[0], v[1], geom)?;
            Ok(scalarize(g, y))
        });
    }
}

#[test]
fn corpus_depthwise_conv2d() {
    let cases: [(&[usize], usize, usize, usize); 3] = [
        (&[1, 2, 3, 3], 2, 1, 0),
        (&[2, 3, 4, 4], 3, 1, 1),
        (&[1, 2, 4, 4], 3, 2, 1),
    ];
    for (seed, (xs, k, stride, pad)) in cases.into_iter().enumerate() {
        let (c, h, w) = (xs[1], xs[2], xs[3]);
        let geom = ConvGeometry::new(h, w, k, stride, pad).unwrap();
        let x = seeded_uniform(xs, seed as u64 + 45, -1.0, 1.0);
        let wt = seeded_uniform([c, k, k], seed as u64 + 95, -0.5, 0.5);
        check_graph_fn(&[x, wt], EPS, TOL, move |g, v| {
            let y = g.depthwise_conv2d(v[0], v[1], geom)?;
            Ok(scalarize(g, y))
        });
    }
}

#[test]
fn corpus_batch_norm() {
    let shapes: [&[usize]; 3] = [&[2, 2, 2, 2], &[3, 1, 2, 2], &[2, 3, 1, 2]];
    for (seed, shape) in shapes.into_iter().enumerate() {
        let c = shape[1];
        let x = seeded_uniform(shape, seed as u64 + 70, -1.0, 1.0);
        // Gamma away from zero so the normalized-input gradient is not
        // spuriously tiny; beta unconstrained.
        let gamma = seeded_signed([c], seed as u64 + 71, 0.5, 0.5);
        let beta = seeded_uniform([c], seed as u64 + 72, -0.3, 0.3);
        check_graph_fn(&[x, gamma, beta], EPS, TOL, |g, v| {
            let (y, _stats) = g.batch_norm(v[0], v[1], v[2], 1e-3)?;
            Ok(scalarize(g, y))
        });
    }
}

#[test]
fn corpus_pooling() {
    let shapes: [&[usize]; 3] = [&[1, 2, 4, 4], &[2, 1, 2, 2], &[1, 3, 4, 4]];
    for (seed, shape) in shapes.into_iter().enumerate() {
        // Every pair of entries differs by at least 0.05 > 2·eps, so the
        // ±eps probes can never flip the argmax inside a max-pool window.
        let x = well_separated(shape, seed as u64 + 80);
        check_graph_fn(std::slice::from_ref(&x), EPS, TOL, |g, v| {
            let y = g.max_pool2d(v[0], 2)?;
            Ok(scalarize(g, y))
        });
        check_graph_fn(std::slice::from_ref(&x), EPS, TOL, |g, v| {
            let y = g.avg_pool2d(v[0], 2)?;
            Ok(scalarize(g, y))
        });
        check_graph_fn(&[x], EPS, TOL, |g, v| {
            let y = g.global_avg_pool2d(v[0])?;
            Ok(scalarize(g, y))
        });
    }
}

#[test]
fn corpus_losses() {
    let cases: [(usize, usize); 3] = [(2, 3), (4, 2), (3, 5)];
    for (seed, (batch, classes)) in cases.into_iter().enumerate() {
        let logits = seeded_uniform([batch, classes], seed as u64 + 110, -1.0, 1.0);
        let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
        let l1 = labels.clone();
        check_graph_fn(std::slice::from_ref(&logits), EPS, TOL, move |g, v| {
            g.cross_entropy(v[0], &l1)
        });
        let l2 = labels.clone();
        check_graph_fn(&[logits], EPS, TOL, move |g, v| {
            g.cross_entropy_smoothed(v[0], &l2, 0.1)
        });
        let x = seeded_uniform([batch, classes], seed as u64 + 120, -1.0, 1.0);
        let target = seeded_uniform([batch, classes], seed as u64 + 130, -1.0, 1.0);
        check_graph_fn(&[x], EPS, TOL, move |g, v| g.mse_loss(v[0], &target));
    }
}

#[test]
fn corpus_dropout() {
    let shapes: [&[usize]; 3] = [&[4], &[2, 3], &[2, 2, 2]];
    for (seed, shape) in shapes.into_iter().enumerate() {
        let x = seeded_uniform(shape, seed as u64 + 140, -1.0, 1.0);
        // A fixed 0/1 keep mask derived from the same in-tree rng.
        let mut mask = seeded_uniform(shape, seed as u64 + 150, 0.0, 1.0);
        for v in mask.data_mut() {
            *v = if *v < 0.75 { 1.0 } else { 0.0 };
        }
        check_graph_fn(&[x], EPS, TOL, move |g, v| {
            let y = g.dropout(v[0], &mask, 0.75)?;
            Ok(scalarize(g, y))
        });
    }
}
