//! The four training methods the paper evaluates: SGD, first-order-only
//! (SAM), GRAD-L1 and HERO (Algorithm 1).

use crate::sgd::SgdState;
use hero_hessian::{fd_hvp_into, layer_scaled_direction_into, perturbed_into, GradOracle};
use hero_tensor::{global_norm_l1, global_norm_l2, pool, Result, Tensor, TensorError};

/// Which gradient rule to use for each training step.
///
/// All methods share SGD-with-momentum, weight decay and the learning-rate
/// schedule; they differ only in the gradient they feed the update — the
/// exact framing of the paper's Table 3 ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Plain empirical-risk gradient: `∇ = ∇L(W) + αW`.
    Sgd,
    /// First-order-only / SAM-style (paper Table 3): the gradient is taken
    /// at the perturbed point, `∇ = ∇L(W + h·z) + αW`, with `z` the
    /// layer-scaled gradient direction of Eq. 15.
    FirstOrderOnly {
        /// Perturbation step size `h`.
        h: f32,
    },
    /// Gradient-ℓ1 regularization [Alizadeh et al. 2020]:
    /// `∇ = ∇L(W) + λ·H·sign(g) + αW` (the `H·sign(g)` term is the gradient
    /// of `λ‖g‖₁`, computed by finite-difference HVP).
    GradL1 {
        /// Regularization strength λ.
        lambda: f32,
    },
    /// HERO (Eq. 17 / Algorithm 1):
    /// `∇ = ∇L(W+hz) + αW + γ·∇G(W+hz)` where `G = ‖∇L(W+hz) − g‖²` and
    /// `∇G(W′) = 2·H(W′)(∇L(W′) − g)`.
    Hero {
        /// Perturbation step size `h`.
        h: f32,
        /// Hessian-regularization strength γ.
        gamma: f32,
    },
}

impl Method {
    /// Short name used in reports (matching the paper's tables).
    pub fn name(&self) -> &'static str {
        match self {
            Method::Sgd => "SGD",
            Method::FirstOrderOnly { .. } => "First-order only",
            Method::GradL1 { .. } => "GRAD L1",
            Method::Hero { .. } => "HERO",
        }
    }

    /// Gradient evaluations (forward+backward passes) one step costs.
    pub fn grad_evals_per_step(&self) -> usize {
        match self {
            Method::Sgd => 1,
            Method::FirstOrderOnly { .. } | Method::GradL1 { .. } => 2,
            Method::Hero { .. } => 3,
        }
    }
}

/// Diagnostics from one optimization step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Batch loss at the unperturbed weights.
    pub loss: f32,
    /// ℓ2 norm of the raw gradient `g = ∇L(W)`.
    pub grad_norm: f32,
    /// Method-specific regularizer value: HERO's `G = ‖∇L(W+hz) − g‖²`,
    /// GRAD-L1's `‖g‖₁`, 0 otherwise.
    pub regularizer: f32,
    /// Gradient evaluations spent this step.
    pub grad_evals: usize,
}

/// One training method bound to SGD-with-momentum state and shared
/// hyper-parameters.
///
/// The optimizer is model-agnostic: it works against any
/// [`GradOracle`], which is how the unit tests validate it on quadratics
/// with known Hessians before it ever touches a network.
#[derive(Debug, Clone)]
pub struct Optimizer {
    method: Method,
    sgd: SgdState,
    /// Weight decay α (applied to entries where the decay mask is true).
    weight_decay: f32,
    /// Step size for the finite-difference HVPs inside HERO and GRAD-L1.
    fd_eps: f32,
    /// Reusable per-step workspaces (sized on the first step).
    scratch: StepScratch,
}

/// Workspaces for one optimization step. Each vector keeps its tensors
/// across steps, so the HERO three-gradient step materializes no fresh
/// parameter-sized vectors after warm-up; buffers absorbed from the oracle
/// are recycled into the thread-local scratch pool when replaced.
#[derive(Debug, Clone, Default)]
struct StepScratch {
    /// Clean gradient `g = ∇L(W)`.
    g: Vec<Tensor>,
    /// Layer-scaled direction `z` (Eq. 15); doubles as `sign(g)` for GRAD-L1.
    z: Vec<Tensor>,
    /// Perturbed parameters `W* = W + h·z`.
    w_star: Vec<Tensor>,
    /// Gradient at the perturbed point `∇L(W*)`.
    g_star: Vec<Tensor>,
    /// Gradient difference `d = ∇L(W*) − g`.
    d: Vec<Tensor>,
    /// Hessian-vector product `H·d` (or `H·sign(g)`).
    hvp: Vec<Tensor>,
    /// `fd_hvp_into`'s internal perturbation workspace.
    fd_shift: Vec<Tensor>,
    /// The gradient finally handed to the SGD update.
    total: Vec<Tensor>,
}

/// Replaces `ws`'s contents with `new`, recycling the displaced tensors
/// into the scratch pool so the next gradient evaluation re-leases them.
fn absorb(ws: &mut Vec<Tensor>, new: Vec<Tensor>) {
    for t in ws.drain(..) {
        pool::recycle_tensor(t);
    }
    ws.extend(new);
}

/// Writes `a − b` element-wise into `out`, reusing its buffers when the
/// shapes already match.
fn diff_into(a: &[Tensor], b: &[Tensor], out: &mut Vec<Tensor>) -> Result<()> {
    let reuse = out.len() == a.len() && out.iter().zip(a).all(|(o, t)| o.shape() == t.shape());
    if reuse {
        for (o, t) in out.iter_mut().zip(a) {
            o.copy_from(t)?;
        }
    } else {
        out.clear();
        out.extend(a.iter().cloned());
    }
    for (o, t) in out.iter_mut().zip(b) {
        o.axpy(-1.0, t)?;
    }
    Ok(())
}

/// Writes `sign(g)` element-wise into `out`, reusing its buffers when the
/// shapes already match.
fn sign_into(g: &[Tensor], out: &mut Vec<Tensor>) {
    let reuse = out.len() == g.len() && out.iter().zip(g).all(|(o, t)| o.shape() == t.shape());
    if !reuse {
        out.clear();
        out.extend(g.iter().map(Tensor::signum));
        return;
    }
    for (o, t) in out.iter_mut().zip(g) {
        for (od, &gd) in o.data_mut().iter_mut().zip(t.data()) {
            *od = gd.signum();
        }
    }
}

impl Optimizer {
    /// Creates an optimizer with the paper's defaults: momentum 0.9 and
    /// weight decay 1e-4 (§5.1).
    pub fn new(method: Method) -> Self {
        Optimizer {
            method,
            sgd: SgdState::new(0.9),
            weight_decay: 1e-4,
            fd_eps: 1e-3,
            scratch: StepScratch::default(),
        }
    }

    /// Overrides the momentum coefficient.
    #[must_use]
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.sgd = SgdState::new(momentum);
        self
    }

    /// Overrides the weight decay α.
    #[must_use]
    pub fn with_weight_decay(mut self, alpha: f32) -> Self {
        self.weight_decay = alpha;
        self
    }

    /// Overrides the finite-difference step used for HVPs.
    #[must_use]
    pub fn with_fd_eps(mut self, eps: f32) -> Self {
        self.fd_eps = eps;
        self
    }

    /// The configured method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Momentum buffers of the inner SGD state, if materialized.
    /// Checkpointing serializes these; everything else the optimizer
    /// holds is per-step scratch that is overwritten before use.
    pub fn momentum_buffers(&self) -> Option<&[Tensor]> {
        self.sgd.buffers()
    }

    /// Restores momentum buffers captured by [`Optimizer::momentum_buffers`]
    /// so a resumed run continues the exact velocity trajectory.
    pub fn set_momentum_buffers(&mut self, buffers: Vec<Tensor>) {
        self.sgd.set_buffers(buffers);
    }

    /// Runs one optimization step in place on `params`.
    ///
    /// `decay_mask[i]` selects which parameter tensors receive weight decay
    /// (weights yes; biases and batch-norm affine parameters no).
    ///
    /// # Errors
    ///
    /// Returns an error if the mask is misaligned with `params` or the
    /// oracle fails.
    pub fn step(
        &mut self,
        oracle: &mut dyn GradOracle,
        params: &mut [Tensor],
        decay_mask: &[bool],
        lr: f32,
    ) -> Result<StepStats> {
        if decay_mask.len() != params.len() {
            return Err(TensorError::InvalidArgument(format!(
                "decay mask has {} entries for {} params",
                decay_mask.len(),
                params.len()
            )));
        }
        let ws = &mut self.scratch;
        let (loss, g_new) = oracle.grad(params)?;
        absorb(&mut ws.g, g_new);
        let reduce = hero_obs::span("reduce");
        let grad_norm = global_norm_l2(&ws.g);
        drop(reduce);
        let mut regularizer = 0.0;
        let mut grad_evals = 1;

        // Each arm leaves the method's gradient in `ws.total` by swapping
        // it with the workspace that holds it (a pointer swap, no copies).
        match self.method {
            Method::Sgd => {
                std::mem::swap(&mut ws.total, &mut ws.g);
            }
            Method::FirstOrderOnly { h } => {
                let perturb = hero_obs::span("perturb");
                layer_scaled_direction_into(params, &ws.g, &mut ws.z);
                perturbed_into(params, &ws.z, h, &mut ws.w_star)?;
                drop(perturb);
                let (_, g_star) = oracle.grad(&ws.w_star)?;
                grad_evals += 1;
                absorb(&mut ws.total, g_star);
            }
            Method::GradL1 { lambda } => {
                let perturb = hero_obs::span("perturb");
                regularizer = global_norm_l1(&ws.g);
                sign_into(&ws.g, &mut ws.z);
                drop(perturb);
                fd_hvp_into(
                    oracle,
                    params,
                    &ws.g,
                    &ws.z,
                    self.fd_eps,
                    &mut ws.fd_shift,
                    &mut ws.hvp,
                )?;
                grad_evals += 1;
                let apply = hero_obs::span("apply");
                for (t, hs) in ws.g.iter_mut().zip(&ws.hvp) {
                    t.axpy(lambda, hs)?;
                }
                std::mem::swap(&mut ws.total, &mut ws.g);
                drop(apply);
            }
            Method::Hero { h, gamma } => {
                // Algorithm 1, lines 6-11.
                let perturb = hero_obs::span("perturb");
                layer_scaled_direction_into(params, &ws.g, &mut ws.z);
                perturbed_into(params, &ws.z, h, &mut ws.w_star)?;
                drop(perturb);
                let (_, g_star) = oracle.grad(&ws.w_star)?;
                grad_evals += 1;
                absorb(&mut ws.g_star, g_star);
                // d = ∇L(W*) - g ; G = Σ_i ‖d_i‖²
                let reduce = hero_obs::span("reduce");
                diff_into(&ws.g_star, &ws.g, &mut ws.d)?;
                regularizer = ws.d.iter().map(Tensor::norm_l2_sq).sum();
                drop(reduce);
                // ∇G(W*) = 2 H(W*) d, via FD-HVP around W*.
                fd_hvp_into(
                    oracle,
                    &ws.w_star,
                    &ws.g_star,
                    &ws.d,
                    self.fd_eps,
                    &mut ws.fd_shift,
                    &mut ws.hvp,
                )?;
                grad_evals += 1;
                let apply = hero_obs::span("apply");
                for (t, hdi) in ws.g_star.iter_mut().zip(&ws.hvp) {
                    t.axpy(2.0 * gamma, hdi)?;
                }
                std::mem::swap(&mut ws.total, &mut ws.g_star);
                drop(apply);
            }
        };

        // Weight decay αW on decayed tensors (Eq. 17's αW term), fused into
        // the same buffer the SGD update reads.
        let _apply = hero_obs::span("apply");
        if self.weight_decay != 0.0 {
            for ((t, p), &decay) in ws.total.iter_mut().zip(params.iter()).zip(decay_mask) {
                if decay {
                    t.axpy(self.weight_decay, p)?;
                }
            }
        }

        self.sgd.update(params, &ws.total, lr)?;
        Ok(StepStats {
            loss,
            grad_norm,
            regularizer,
            grad_evals,
        })
    }

    /// Clears the momentum state (e.g. between independent runs).
    pub fn reset(&mut self) {
        self.sgd.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_hessian::Quadratic;

    fn run_steps(
        method: Method,
        q: &Quadratic,
        x0: Vec<f32>,
        steps: usize,
        lr: f32,
    ) -> (Vec<Tensor>, StepStats) {
        let n = x0.len();
        let mut params = vec![Tensor::from_vec(x0, [n]).unwrap()];
        let mut opt = Optimizer::new(method)
            .with_weight_decay(0.0)
            .with_momentum(0.0);
        let mut oracle = q.oracle();
        let mask = vec![false];
        let mut last = StepStats {
            loss: 0.0,
            grad_norm: 0.0,
            regularizer: 0.0,
            grad_evals: 0,
        };
        for _ in 0..steps {
            last = opt.step(&mut oracle, &mut params, &mask, lr).unwrap();
        }
        (params, last)
    }

    #[test]
    fn every_method_minimizes_a_convex_quadratic() {
        let q = Quadratic::diag(&[1.0, 2.0]);
        for method in [
            Method::Sgd,
            Method::FirstOrderOnly { h: 0.05 },
            Method::GradL1 { lambda: 0.01 },
            Method::Hero {
                h: 0.05,
                gamma: 0.05,
            },
        ] {
            let (params, stats) = run_steps(method, &q, vec![1.0, -1.0], 150, 0.1);
            let final_loss = q.loss(&params[0]).unwrap();
            assert!(
                final_loss < 1e-3,
                "{} did not converge: loss {final_loss}",
                method.name()
            );
            assert_eq!(stats.grad_evals, method.grad_evals_per_step());
        }
    }

    #[test]
    fn method_names_and_costs() {
        assert_eq!(Method::Sgd.name(), "SGD");
        assert_eq!(Method::Hero { h: 0.1, gamma: 1.0 }.name(), "HERO");
        assert_eq!(Method::Sgd.grad_evals_per_step(), 1);
        assert_eq!(Method::FirstOrderOnly { h: 0.1 }.grad_evals_per_step(), 2);
        assert_eq!(Method::GradL1 { lambda: 0.1 }.grad_evals_per_step(), 2);
        assert_eq!(Method::Hero { h: 0.1, gamma: 1.0 }.grad_evals_per_step(), 3);
    }

    #[test]
    fn sgd_step_matches_closed_form() {
        // One plain step on f = 0.5 x^T diag(2,4) x from (1,1), lr 0.1:
        // g = (2,4), x' = (0.8, 0.6).
        let q = Quadratic::diag(&[2.0, 4.0]);
        let (params, stats) = run_steps(Method::Sgd, &q, vec![1.0, 1.0], 1, 0.1);
        assert!((params[0].data()[0] - 0.8).abs() < 1e-6);
        assert!((params[0].data()[1] - 0.6).abs() < 1e-6);
        assert!((stats.loss - 3.0).abs() < 1e-6);
        assert!((stats.grad_norm - (4.0f32 + 16.0).sqrt()).abs() < 1e-5);
    }

    #[test]
    fn weight_decay_respects_mask() {
        // Zero objective: only decay moves the weights.
        let mut oracle = |ps: &[Tensor]| {
            Ok((
                0.0,
                ps.iter()
                    .map(|p| Tensor::zeros(p.shape().clone()))
                    .collect(),
            ))
        };
        let mut params = vec![Tensor::ones([2]), Tensor::ones([2])];
        let mut opt = Optimizer::new(Method::Sgd)
            .with_weight_decay(0.5)
            .with_momentum(0.0);
        opt.step(&mut oracle, &mut params, &[true, false], 1.0)
            .unwrap();
        assert_eq!(params[0].data(), &[0.5, 0.5]); // decayed
        assert_eq!(params[1].data(), &[1.0, 1.0]); // untouched
    }

    #[test]
    fn step_validates_mask_length() {
        let q = Quadratic::diag(&[1.0]);
        let mut opt = Optimizer::new(Method::Sgd);
        let mut params = vec![Tensor::ones([1])];
        assert!(opt.step(&mut q.oracle(), &mut params, &[], 0.1).is_err());
    }

    #[test]
    fn hero_regularizer_reflects_curvature() {
        // On a sharp quadratic the gradient difference G is large; on a
        // flat one it is small. Same starting point and h.
        let sharp = Quadratic::diag(&[50.0, 50.0]);
        let flat = Quadratic::diag(&[0.1, 0.1]);
        let (_, s_sharp) = run_steps(
            Method::Hero { h: 0.1, gamma: 0.0 },
            &sharp,
            vec![1.0, 1.0],
            1,
            1e-6,
        );
        let (_, s_flat) = run_steps(
            Method::Hero { h: 0.1, gamma: 0.0 },
            &flat,
            vec![1.0, 1.0],
            1,
            1e-6,
        );
        assert!(
            s_sharp.regularizer > 100.0 * s_flat.regularizer,
            "sharp G {} vs flat G {}",
            s_sharp.regularizer,
            s_flat.regularizer
        );
    }

    #[test]
    fn grad_l1_regularizer_is_gradient_l1_norm() {
        let q = Quadratic::diag(&[2.0, 4.0]);
        let (_, stats) = run_steps(Method::GradL1 { lambda: 0.0 }, &q, vec![1.0, 1.0], 1, 1e-6);
        // g = (2,4) -> ||g||_1 = 6.
        assert!((stats.regularizer - 6.0).abs() < 1e-4);
    }

    #[test]
    fn hero_prefers_flat_minima_on_a_two_valley_objective() {
        // 1-D objective with a sharp global-equal valley at x=-1 (curvature
        // 100) and a flat valley at x=+1 (curvature 1), equal depth:
        //   f(x) = min valley model via smooth blend. We model it directly:
        //   f(x) = 0.5 * k(x) * (x - m(x))^2 with k,m selected by sign.
        // Gradient oracle implements the piecewise quadratic.
        let mut oracle = |ps: &[Tensor]| {
            let x = ps[0].data()[0];
            let (k, m) = if x < 0.0 { (100.0, -1.0) } else { (1.0, 1.0) };
            let loss = 0.5 * k * (x - m) * (x - m);
            let grad = Tensor::from_vec(vec![k * (x - m)], [1])?;
            Ok((loss, vec![grad]))
        };
        // Start in the sharp valley. HERO's regularizer pushes uphill out of
        // sharp regions when gamma is large enough.
        let mut params = vec![Tensor::from_vec(vec![-0.9], [1]).unwrap()];
        let mut opt = Optimizer::new(Method::Hero {
            h: 0.02,
            gamma: 0.5,
        })
        .with_weight_decay(0.0)
        .with_momentum(0.9);
        let mask = [false];
        for _ in 0..400 {
            opt.step(&mut oracle, &mut params, &mask, 0.01).unwrap();
        }
        let x_hero = params[0].data()[0];
        // Plain SGD stays in the sharp valley.
        let mut params_sgd = vec![Tensor::from_vec(vec![-0.9], [1]).unwrap()];
        let mut sgd = Optimizer::new(Method::Sgd)
            .with_weight_decay(0.0)
            .with_momentum(0.9);
        for _ in 0..400 {
            sgd.step(&mut oracle, &mut params_sgd, &mask, 0.01).unwrap();
        }
        let x_sgd = params_sgd.first().unwrap().data()[0];
        assert!(
            x_sgd < 0.0,
            "SGD should remain in the sharp valley, got {x_sgd}"
        );
        assert!(
            x_hero > 0.0,
            "HERO should escape to the flat valley, got {x_hero}"
        );
    }

    #[test]
    fn momentum_state_survives_across_steps_and_resets() {
        let q = Quadratic::diag(&[1.0]);
        let mut opt = Optimizer::new(Method::Sgd).with_weight_decay(0.0);
        let mut params = vec![Tensor::from_vec(vec![1.0], [1]).unwrap()];
        let mask = [false];
        opt.step(&mut q.oracle(), &mut params, &mask, 0.1).unwrap();
        let after_one = params[0].data()[0];
        opt.reset();
        assert!(after_one < 1.0);
        assert_eq!(opt.method(), Method::Sgd);
    }
}
