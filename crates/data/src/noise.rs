//! Symmetric label-noise injection (the paper's §5.2 noisy-label setting,
//! following DivideMix's symmetric noise model).

use crate::synth::Dataset;
use hero_tensor::rng::Rng;
use hero_tensor::rng::StdRng;

/// Replaces the labels of a uniformly-sampled `ratio` fraction of the
/// dataset with uniform random classes (symmetric noise).
///
/// Following [Li et al. 2020], the replacement label is drawn from *all*
/// classes, so a corrupted sample keeps its true label with probability
/// `1/classes`. Returns the indices that were selected for corruption.
///
/// # Panics
///
/// Panics if `ratio` is outside `[0, 1]` — noise ratios come from the
/// experiment grid, so an invalid value is a programming error.
pub fn inject_symmetric_noise(data: &mut Dataset, ratio: f32, seed: u64) -> Vec<usize> {
    assert!(
        (0.0..=1.0).contains(&ratio),
        "noise ratio {ratio} must lie in [0, 1]"
    );
    let n = data.len();
    let k = (ratio * n as f32).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher-Yates: pick k distinct indices.
    let mut indices: Vec<usize> = (0..n).collect();
    for i in 0..k.min(n) {
        let j = rng.gen_range(i..n);
        indices.swap(i, j);
    }
    let chosen: Vec<usize> = indices[..k.min(n)].to_vec();
    for &idx in &chosen {
        data.labels[idx] = rng.gen_range(0..data.classes);
    }
    chosen
}

/// Fraction of labels that differ from a reference labelling.
pub fn label_disagreement(reference: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(reference.len(), labels.len(), "label lists must align");
    if reference.is_empty() {
        return 0.0;
    }
    let diff = reference.iter().zip(labels).filter(|(a, b)| a != b).count();
    diff as f32 / reference.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthGenerator, SynthSpec};

    fn dataset(n: usize) -> Dataset {
        SynthGenerator::new(SynthSpec::default()).generate(n, 1)
    }

    #[test]
    fn corrupts_exactly_the_requested_count() {
        let mut d = dataset(200);
        let chosen = inject_symmetric_noise(&mut d, 0.4, 7);
        assert_eq!(chosen.len(), 80);
        // Chosen indices are distinct.
        let mut sorted = chosen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 80);
    }

    #[test]
    fn disagreement_is_close_to_ratio() {
        let mut d = dataset(1000);
        let clean = d.labels.clone();
        inject_symmetric_noise(&mut d, 0.6, 3);
        let dis = label_disagreement(&clean, &d.labels);
        // Symmetric noise keeps the true label with prob 1/classes, so the
        // observed disagreement is ratio * (1 - 1/10) = 0.54 on average.
        assert!((dis - 0.54).abs() < 0.06, "disagreement {dis}");
    }

    #[test]
    fn zero_ratio_changes_nothing() {
        let mut d = dataset(100);
        let before = d.labels.clone();
        let chosen = inject_symmetric_noise(&mut d, 0.0, 1);
        assert!(chosen.is_empty());
        assert_eq!(d.labels, before);
    }

    #[test]
    fn full_ratio_touches_every_label() {
        let mut d = dataset(100);
        let chosen = inject_symmetric_noise(&mut d, 1.0, 1);
        assert_eq!(chosen.len(), 100);
        // Labels stay within range.
        assert!(d.labels.iter().all(|&l| l < d.classes));
    }

    #[test]
    fn noise_is_deterministic_in_seed() {
        let mut a = dataset(100);
        let mut b = dataset(100);
        inject_symmetric_noise(&mut a, 0.5, 42);
        inject_symmetric_noise(&mut b, 0.5, 42);
        assert_eq!(a.labels, b.labels);
        let mut c = dataset(100);
        inject_symmetric_noise(&mut c, 0.5, 43);
        assert_ne!(a.labels, c.labels);
    }

    #[test]
    #[should_panic(expected = "must lie in")]
    fn rejects_invalid_ratio() {
        let mut d = dataset(10);
        inject_symmetric_noise(&mut d, 1.5, 0);
    }

    #[test]
    fn disagreement_of_identical_lists_is_zero() {
        assert_eq!(label_disagreement(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert_eq!(label_disagreement(&[], &[]), 0.0);
        assert!((label_disagreement(&[1, 2], &[1, 3]) - 0.5).abs() < 1e-6);
    }
}
