//! Deterministic seeded-loop tests for schedules and optimizer behaviour on
//! random convex quadratics (formerly a proptest suite; rewritten against
//! the in-tree RNG so the workspace builds offline).

use hero_hessian::Quadratic;
use hero_optim::{LrSchedule, Method, Optimizer, SgdState};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::Tensor;

#[test]
fn cosine_schedule_stays_in_range() {
    let mut rng = StdRng::seed_from_u64(0x0971);
    for _ in 0..64 {
        let lr = rng.gen_range(0.001f32..1.0);
        let min_frac = rng.gen_range(0.0f32..1.0);
        let total = rng.gen_range(1..500usize);
        let step = rng.gen_range(0..1000usize);
        let min_lr = lr * min_frac;
        let s = LrSchedule::Cosine {
            lr,
            min_lr,
            total_steps: total,
        };
        let v = s.at(step);
        assert!(v <= lr + 1e-6);
        assert!(v >= min_lr - 1e-6);
    }
}

#[test]
fn cosine_is_monotone_nonincreasing() {
    let mut rng = StdRng::seed_from_u64(0x0972);
    for _ in 0..32 {
        let lr = rng.gen_range(0.01f32..1.0);
        let total = rng.gen_range(2..100usize);
        let s = LrSchedule::Cosine {
            lr,
            min_lr: 0.0,
            total_steps: total,
        };
        let mut prev = f32::INFINITY;
        for step in 0..=total {
            let v = s.at(step);
            assert!(v <= prev + 1e-6);
            prev = v;
        }
    }
}

#[test]
fn step_schedule_decays_geometrically() {
    let mut rng = StdRng::seed_from_u64(0x0973);
    for _ in 0..64 {
        let lr = rng.gen_range(0.01f32..1.0);
        let gamma = rng.gen_range(0.1f32..0.9);
        let period = rng.gen_range(1..50usize);
        let k = rng.gen_range(0..5usize);
        let s = LrSchedule::Step { lr, gamma, period };
        let expected = lr * gamma.powi(k as i32);
        let v = s.at(k * period);
        assert!((v - expected).abs() <= 1e-4 * expected.max(1e-9));
    }
}

/// Gradient descent with a stable learning rate contracts toward the
/// minimizer of any well-conditioned diagonal quadratic.
#[test]
fn sgd_contracts_on_random_quadratics() {
    let mut rng = StdRng::seed_from_u64(0x0974);
    for _ in 0..16 {
        let n = rng.gen_range(1..6usize);
        let eigs: Vec<f32> = (0..n).map(|_| rng.gen_range(0.1f32..4.0)).collect();
        let seed = rng.gen_range(0..100u64);
        let q = Quadratic::diag(&eigs);
        let x0: Vec<f32> = (0..n)
            .map(|i| (((seed + i as u64) % 17) as f32 / 8.5) - 1.0)
            .collect();
        let mut params = vec![Tensor::from_vec(x0, [n]).unwrap()];
        let loss0 = q.loss(&params[0]).unwrap();
        let mut opt = Optimizer::new(Method::Sgd)
            .with_weight_decay(0.0)
            .with_momentum(0.0);
        // lr < 2/λ_max = 0.5 guarantees contraction.
        for _ in 0..60 {
            opt.step(&mut q.oracle(), &mut params, &[false], 0.2)
                .unwrap();
        }
        let loss1 = q.loss(&params[0]).unwrap();
        assert!(loss1 <= loss0 + 1e-6);
        assert!(loss1 < 0.5 * loss0.max(1e-6) + 1e-4);
    }
}

/// HERO and SAM reach the same unique minimizer as SGD on convex quadratics
/// (regularization must not move the optimum of a quadratic whose curvature
/// is constant).
#[test]
fn regularized_methods_share_quadratic_minimizer() {
    let mut rng = StdRng::seed_from_u64(0x0975);
    for _ in 0..8 {
        let eig = rng.gen_range(0.2f32..2.0);
        let b = rng.gen_range(-1.0f32..1.0);
        let a = Tensor::from_vec(vec![eig], [1])
            .unwrap()
            .reshape([1, 1])
            .unwrap();
        let q = Quadratic::new(a, Tensor::from_vec(vec![b], [1]).unwrap()).unwrap();
        let x_star = -b / eig;
        for method in [
            Method::Sgd,
            Method::FirstOrderOnly { h: 0.05 },
            Method::Hero {
                h: 0.05,
                gamma: 0.02,
            },
        ] {
            let mut params = vec![Tensor::from_vec(vec![1.0], [1]).unwrap()];
            let mut opt = Optimizer::new(method)
                .with_weight_decay(0.0)
                .with_momentum(0.0);
            for _ in 0..300 {
                opt.step(&mut q.oracle(), &mut params, &[false], 0.3)
                    .unwrap();
            }
            let x = params[0].data()[0];
            assert!(
                (x - x_star).abs() < 0.05,
                "{} converged to {x}, optimum {x_star}",
                method.name()
            );
        }
    }
}

/// Momentum buffers keep parameter and buffer shapes aligned for any mix of
/// tensor shapes.
#[test]
fn sgd_state_handles_heterogeneous_shapes() {
    let mut rng = StdRng::seed_from_u64(0x0976);
    for _ in 0..32 {
        let count = rng.gen_range(1..5usize);
        let dims: Vec<usize> = (0..count).map(|_| rng.gen_range(1..6usize)).collect();
        let momentum = rng.gen_range(0.0f32..0.99);
        let mut params: Vec<Tensor> = dims.iter().map(|&d| Tensor::ones([d])).collect();
        let grads: Vec<Tensor> = dims.iter().map(|&d| Tensor::full([d], 0.5)).collect();
        let mut s = SgdState::new(momentum);
        for _ in 0..3 {
            s.update(&mut params, &grads, 0.1).unwrap();
        }
        for (p, &d) in params.iter().zip(&dims) {
            assert_eq!(p.numel(), d);
            assert!(p.data().iter().all(|v| *v < 1.0));
        }
    }
}
