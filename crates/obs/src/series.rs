//! Time-series metrics and fixed-bin histograms — the data model behind
//! the spectrum observatory's training telemetry.
//!
//! A *series* is a named stream of `(step, value)` samples recorded with
//! [`record`] — per-epoch λ_max, per-layer Hessian traces, density
//! moments. Samples accumulate in a global registry (like the counter
//! registry: always available, no handles to thread through call sites)
//! and are rolled up into `SUMMARY_<run>.json` when [`crate::finish`]
//! closes the run, each series contributing one summary row alongside the
//! span rows. A [`Histogram`] is a fixed-bin counting sink with an ASCII
//! rendering used for spectral-density plots.
//!
//! Under the `obs-off` feature [`record`] compiles to an inline no-op and
//! snapshots are empty, matching the tracer's zero-cost contract.

use crate::json::JsonObj;

/// Per-series sample cap: recording is epoch-cadenced, so this is far
/// above any real run; it bounds memory if a hot loop misuses the sink.
const SERIES_CAP: usize = 100_000;

#[cfg(not(feature = "obs-off"))]
mod store {
    use std::sync::{Mutex, PoisonError};

    pub(super) struct SeriesData {
        pub name: String,
        pub samples: Vec<(u64, f64)>,
        pub dropped: u64,
    }

    pub(super) static SERIES: Mutex<Vec<SeriesData>> = Mutex::new(Vec::new());

    pub(super) fn with<R>(f: impl FnOnce(&mut Vec<SeriesData>) -> R) -> R {
        f(&mut SERIES.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Records one `(step, value)` sample into the named series.
///
/// Cheap (one mutex lock + push) but not free: call it at probe cadence,
/// not per-element. Series persist until [`take_series`] drains them
/// (which [`crate::finish`] does when closing a run).
pub fn record(name: &str, step: u64, value: f64) {
    #[cfg(feature = "obs-off")]
    {
        let _ = (name, step, value);
    }
    #[cfg(not(feature = "obs-off"))]
    store::with(|all| {
        let entry = match all.iter_mut().find(|s| s.name == name) {
            Some(s) => s,
            None => {
                all.push(store::SeriesData {
                    name: name.to_string(),
                    samples: Vec::new(),
                    dropped: 0,
                });
                all.last_mut().expect("just pushed")
            }
        };
        if entry.samples.len() < SERIES_CAP {
            entry.samples.push((step, value));
        } else {
            entry.dropped += 1;
        }
    });
}

/// An immutable snapshot of one recorded series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Series name as passed to [`record`].
    pub name: String,
    /// `(step, value)` samples in recording order.
    pub samples: Vec<(u64, f64)>,
    /// Samples discarded after the per-series cap was hit (0 in any sane
    /// run; nonzero values are surfaced in the summary row).
    pub dropped: u64,
}

impl SeriesSnapshot {
    /// Latest recorded value (`NaN` when empty).
    pub fn last(&self) -> f64 {
        self.samples.last().map_or(f64::NAN, |&(_, v)| v)
    }

    /// Smallest finite recorded value (`NaN` when none).
    pub fn min(&self) -> f64 {
        self.finite().fold(f64::NAN, f64::min)
    }

    /// Largest finite recorded value (`NaN` when none).
    pub fn max(&self) -> f64 {
        self.finite().fold(f64::NAN, f64::max)
    }

    /// Mean of the finite recorded values (`NaN` when none).
    pub fn mean(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0u64);
        for v in self.finite() {
            sum += v;
            n += 1;
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    fn finite(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .filter(|v| v.is_finite())
    }

    /// One summary row for `SUMMARY_<run>.json`: series rows carry a
    /// `series` key where span rows carry `phase`, so readers distinguish
    /// the two shapes inside the one array.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("series", &self.name)
            .u64("count", self.samples.len() as u64)
            .u64("first_step", self.samples.first().map_or(0, |&(s, _)| s))
            .u64("last_step", self.samples.last().map_or(0, |&(s, _)| s))
            .f64("last", self.last())
            .f64("min", self.min())
            .f64("max", self.max())
            .f64("mean", self.mean());
        if self.dropped > 0 {
            o.u64("dropped", self.dropped);
        }
        o.finish()
    }
}

/// Snapshots every recorded series without clearing the registry.
pub fn series_snapshot() -> Vec<SeriesSnapshot> {
    #[cfg(feature = "obs-off")]
    {
        Vec::new()
    }
    #[cfg(not(feature = "obs-off"))]
    store::with(|all| {
        all.iter()
            .map(|s| SeriesSnapshot {
                name: s.name.clone(),
                samples: s.samples.clone(),
                dropped: s.dropped,
            })
            .collect()
    })
}

/// Drains every recorded series, leaving the registry empty (what
/// [`crate::finish`] calls so the next run starts clean).
pub fn take_series() -> Vec<SeriesSnapshot> {
    #[cfg(feature = "obs-off")]
    {
        Vec::new()
    }
    #[cfg(not(feature = "obs-off"))]
    store::with(|all| {
        std::mem::take(all)
            .into_iter()
            .map(|s| SeriesSnapshot {
                name: s.name,
                samples: s.samples,
                dropped: s.dropped,
            })
            .collect()
    })
}

/// A fixed-bin counting histogram over `[lo, hi)` with explicit under- and
/// overflow bins; non-finite samples are counted separately and never
/// poison the bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    non_finite: u64,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins spanning `[lo, hi)`.
    /// Degenerate ranges are widened symmetrically so every histogram has
    /// positive bin width; `bins` is clamped to at least 1.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        let (mut lo, mut hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        if !(hi - lo).is_normal() {
            let pad = lo.abs().max(1.0) * 0.5;
            lo -= pad;
            hi += pad;
        }
        Histogram {
            lo,
            hi,
            counts: vec![0; bins.max(1)],
            underflow: 0,
            overflow: 0,
            non_finite: 0,
        }
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Adds one sample.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
        } else if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let last = self.counts.len() - 1;
            let i = ((v - self.lo) / self.bin_width()) as usize;
            self.counts[i.min(last)] += 1;
        }
    }

    /// Adds every sample from the iterator.
    pub fn record_all(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.record(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded, including under/overflow and non-finite.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow + self.non_finite
    }

    /// Serializes the histogram as one JSON object (bins, edges, counts).
    pub fn to_json(&self) -> String {
        let counts: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        let mut o = JsonObj::new();
        o.f64("lo", self.lo)
            .f64("hi", self.hi)
            .u64("bins", self.counts.len() as u64)
            .u64("underflow", self.underflow)
            .u64("overflow", self.overflow)
            .u64("non_finite", self.non_finite)
            .raw("counts", &format!("[{}]", counts.join(", ")));
        o.finish()
    }
}

/// Renders `values` as horizontal ASCII bars of at most `width` cells,
/// one line per value, each prefixed by its label. Negative and
/// non-finite values render as empty bars; all bars share one scale
/// (the largest value spans the full width). This is the plot the
/// `hero spectrum` CLI prints for the eigenvalue density.
pub fn ascii_bars(labeled: &[(String, f64)], width: usize) -> String {
    let width = width.max(1);
    let peak = labeled
        .iter()
        .map(|&(_, v)| if v.is_finite() { v } else { 0.0 })
        .fold(0.0f64, f64::max);
    let label_w = labeled.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in labeled {
        let cells = if peak > 0.0 && v.is_finite() && *v > 0.0 {
            ((v / peak) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} |{}\n",
            "#".repeat(cells.min(width))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn series_record_snapshot_and_drain() {
        let _l = crate::testutil::locked();
        let _ = take_series();
        record("trace/layer0", 1, 2.0);
        record("trace/layer0", 2, 4.0);
        record("lambda_max", 1, 9.0);
        record("lambda_max", 2, f64::NAN);
        let snap = series_snapshot();
        assert_eq!(snap.len(), 2);
        let s0 = snap.iter().find(|s| s.name == "trace/layer0").unwrap();
        assert_eq!(s0.samples, vec![(1, 2.0), (2, 4.0)]);
        assert_eq!(s0.last(), 4.0);
        assert_eq!(s0.min(), 2.0);
        assert_eq!(s0.mean(), 3.0);
        // NaN samples are kept in the stream but excluded from stats.
        let lm = snap.iter().find(|s| s.name == "lambda_max").unwrap();
        assert_eq!(lm.samples.len(), 2);
        assert_eq!(lm.min(), 9.0);
        assert_eq!(lm.mean(), 9.0);
        assert!(lm.last().is_nan());
        // Draining empties the registry.
        assert_eq!(take_series().len(), 2);
        assert!(series_snapshot().is_empty());
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn series_summary_row_round_trips() {
        let _l = crate::testutil::locked();
        let _ = take_series();
        record("second_moment", 3, 1.5);
        record("second_moment", 5, 2.5);
        let snap = take_series();
        let v = crate::json::parse(&snap[0].to_json()).expect("json");
        use crate::json::Value;
        assert_eq!(
            v.get("series").and_then(Value::as_str),
            Some("second_moment")
        );
        assert_eq!(v.get("count").and_then(Value::as_f64), Some(2.0));
        assert_eq!(v.get("first_step").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("last_step").and_then(Value::as_f64), Some(5.0));
        assert_eq!(v.get("mean").and_then(Value::as_f64), Some(2.0));
        assert!(v.get("dropped").is_none());
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_series_is_a_no_op() {
        record("x", 1, 1.0);
        assert!(series_snapshot().is_empty());
        assert!(take_series().is_empty());
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all([0.0, 1.9, 2.0, 9.99, -1.0, 10.0, f64::NAN]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
        assert!((h.bin_width() - 2.0).abs() < 1e-12);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        let v = crate::json::parse(&h.to_json()).expect("json");
        use crate::json::Value;
        assert_eq!(v.get("underflow").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("overflow").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("non_finite").and_then(Value::as_f64), Some(1.0));
        let counts = v.get("counts").and_then(Value::as_arr).expect("counts");
        assert_eq!(counts.len(), 5);
        assert_eq!(counts[0].as_f64(), Some(2.0));
    }

    #[test]
    fn histogram_degenerate_range_is_widened() {
        let mut h = Histogram::new(3.0, 3.0, 4);
        assert!(h.bin_width() > 0.0);
        h.record(3.0); // must land in a bin, not a flow counter
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
        // Reversed bounds are swapped, zero bins clamped to one.
        let h2 = Histogram::new(5.0, -5.0, 0);
        assert_eq!(h2.counts().len(), 1);
        assert!(h2.bin_width() > 0.0);
    }

    #[test]
    fn ascii_bars_scale_to_peak() {
        let rows = vec![
            ("a".to_string(), 1.0),
            ("bb".to_string(), 2.0),
            ("c".to_string(), 0.0),
            ("d".to_string(), f64::NAN),
        ];
        let plot = ascii_bars(&rows, 10);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with(&format!("|{}", "#".repeat(5))));
        assert!(lines[1].ends_with(&format!("|{}", "#".repeat(10))));
        assert!(lines[2].ends_with('|'));
        assert!(lines[3].ends_with('|'));
    }
}
