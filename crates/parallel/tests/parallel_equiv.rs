//! Step-level parallel≡parallel equivalence: the sharded executor must
//! produce bitwise identical weights for every worker count, because the
//! shard decomposition and reduction tree are fixed independently of the
//! thread count. Also exercises the executor's clean-error paths.

use hero_nn::models::{mlp, ModelConfig};
use hero_nn::{Dropout, Flatten, Linear, Network, Sequential};
use hero_optim::{Method, Optimizer};
use hero_parallel::{train_step_parallel, ParallelCtx, ShardedOracle};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::Tensor;

fn toy() -> (Network, Tensor, Vec<usize>) {
    let cfg = ModelConfig {
        classes: 4,
        in_channels: 3,
        input_hw: 4,
        width: 4,
    };
    let net = mlp(cfg, &[16, 8], &mut StdRng::seed_from_u64(7));
    let n = 22; // deliberately not divisible by the shard count
    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::from_fn([n, 3, 4, 4], |_| rng.gen::<f32>() - 0.5);
    let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
    (net, x, labels)
}

/// Flattens every parameter to its exact bit pattern.
fn param_bits(net: &Network) -> Vec<u32> {
    net.params()
        .iter()
        .flat_map(|t| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

fn run_steps(method: Method, threads: usize, steps: usize) -> (Vec<u32>, Vec<u32>) {
    let (mut net, x, labels) = toy();
    let mut ctx = ParallelCtx::new(&net, threads).unwrap();
    let mut opt = Optimizer::new(method)
        .with_momentum(0.9)
        .with_weight_decay(1e-4);
    let mut losses = Vec::with_capacity(steps);
    for _ in 0..steps {
        let stats = train_step_parallel(&mut ctx, &mut net, &mut opt, &x, &labels, 0.05).unwrap();
        losses.push(stats.loss.to_bits());
    }
    (param_bits(&net), losses)
}

#[test]
fn weight_trajectories_are_bitwise_identical_across_thread_counts() {
    for method in [
        Method::Sgd,
        Method::FirstOrderOnly { h: 0.05 },
        Method::Hero {
            h: 0.05,
            gamma: 0.1,
        },
    ] {
        let (ref_bits, ref_losses) = run_steps(method, 1, 6);
        for threads in 2..=4 {
            let (bits, losses) = run_steps(method, threads, 6);
            assert_eq!(
                losses,
                ref_losses,
                "{}: loss trajectory diverged at {threads} threads",
                method.name()
            );
            assert_eq!(
                bits,
                ref_bits,
                "{}: weights diverged at {threads} threads",
                method.name()
            );
        }
    }
}

#[test]
fn parallel_training_reduces_loss() {
    let (mut net, x, labels) = toy();
    let mut ctx = ParallelCtx::new(&net, 3).unwrap();
    let mut opt = Optimizer::new(Method::Hero {
        h: 0.05,
        gamma: 0.1,
    });
    let first = train_step_parallel(&mut ctx, &mut net, &mut opt, &x, &labels, 0.05).unwrap();
    let mut last = first;
    for _ in 0..25 {
        last = train_step_parallel(&mut ctx, &mut net, &mut opt, &x, &labels, 0.05).unwrap();
    }
    assert!(
        last.loss < first.loss,
        "loss {} !< {}",
        last.loss,
        first.loss
    );
}

#[test]
fn shard_count_override_changes_plan_but_stays_deterministic() {
    let (net, x, labels) = toy();
    let run = |threads: usize| {
        let (mut net, x, labels) = (net.clone(), x.clone(), labels.clone());
        let mut ctx = ParallelCtx::new(&net, threads).unwrap().with_shards(3);
        let mut opt = Optimizer::new(Method::Sgd);
        for _ in 0..4 {
            train_step_parallel(&mut ctx, &mut net, &mut opt, &x, &labels, 0.1).unwrap();
        }
        param_bits(&net)
    };
    assert_eq!(run(1), run(4));
    let _ = (x, labels);
}

#[test]
fn mismatched_labels_surface_as_clean_error() {
    let (mut net, x, _) = toy();
    let mut ctx = ParallelCtx::new(&net, 2).unwrap();
    let short_labels = vec![0usize; 3];
    let err = ShardedOracle::new(&mut ctx, &x, &short_labels).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("labels"), "{msg}");
    // The context is still usable afterwards.
    let labels: Vec<usize> = (0..22).map(|i| i % 4).collect();
    let mut opt = Optimizer::new(Method::Sgd);
    train_step_parallel(&mut ctx, &mut net, &mut opt, &x, &labels, 0.1).unwrap();
}

#[test]
fn empty_batch_is_rejected() {
    let (mut net, _, _) = toy();
    let mut ctx = ParallelCtx::new(&net, 1).unwrap();
    let x = Tensor::zeros([0, 3, 4, 4]);
    assert!(ShardedOracle::new(&mut ctx, &x, &[]).is_err());
    let _ = &mut net;
}

#[test]
fn stateful_rng_network_is_rejected() {
    // A masking dropout layer owns an RNG that advances per forward pass;
    // replicas would advance their copies on whichever worker runs them,
    // so the executor must refuse to build a context for such a network.
    let body = Sequential::new()
        .push("flatten", Flatten)
        .push("fc", Linear::new(48, 4, &mut StdRng::seed_from_u64(3)))
        .push("drop", Dropout::new(0.5, 9));
    let net = Network::new("dropout-net", body);
    let err = ParallelCtx::new(&net, 2).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("stateful-RNG"), "{msg}");

    // keep_prob == 1.0 never draws from the RNG, so it stays eligible.
    let inert = Sequential::new()
        .push("flatten", Flatten)
        .push("fc", Linear::new(48, 4, &mut StdRng::seed_from_u64(3)))
        .push("drop", Dropout::new(1.0, 9));
    let net = Network::new("inert-dropout-net", inert);
    assert!(ParallelCtx::new(&net, 2).is_ok());
}
