//! Input-corruption robustness: does the flat minimum HERO finds also
//! tolerate harder *inputs* (the paper's "data gathered in the wild"
//! motivation), not just perturbed weights?
//!
//! Trains HERO and SGD models from the same initialization, then evaluates
//! both on progressively corrupted copies of the test set and reports the
//! scalar sharpness metrics alongside.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p hero-core --example corruption_robustness
//! ```

use hero_core::experiment::{model_config, MethodKind};
use hero_core::{train, TrainConfig};
use hero_data::{Corruption, Preset};
use hero_landscape::epsilon_sharpness;
use hero_nn::evaluate_accuracy;
use hero_nn::models::ModelKind;
use hero_tensor::rng::StdRng;
use hero_tensor::TensorError;

fn main() -> Result<(), TensorError> {
    let preset = Preset::C10;
    let (train_set, test_set) = preset.load(0.5);
    let epochs = 25;

    let severities = [0.0f32, 0.2, 0.4, 0.6];
    println!("test-set Gaussian-noise severity sweep: {severities:?}\n");

    for method in [MethodKind::Hero, MethodKind::Sgd] {
        let mut rng = StdRng::seed_from_u64(123);
        let mut net = ModelKind::Resnet.build(model_config(preset), &mut rng);
        let record = train(
            &mut net,
            &train_set,
            &test_set,
            &TrainConfig::new(method.tuned(), epochs),
        )?;
        print!(
            "{:8} (clean test {:5.1}%):",
            method.paper_name(),
            100.0 * record.final_test_acc
        );
        for &std in &severities {
            let corrupted = Corruption::GaussianNoise(std).apply(&test_set, 9);
            let acc = evaluate_accuracy(&mut net, &corrupted.images, &corrupted.labels, 64)?;
            print!("  σ={std}: {:5.1}%", 100.0 * acc);
        }
        println!();

        // Scalar sharpness at the converged weights (Keskar ε-sharpness on
        // a training subsample).
        let n = train_set.len().min(128);
        let images = train_set.images.narrow(0, n)?;
        let labels = train_set.labels[..n].to_vec();
        let params = net.params();
        let netref = &mut net;
        let mut oracle = |ps: &[hero_tensor::Tensor]| -> hero_tensor::Result<f32> {
            netref.set_params(ps)?;
            hero_nn::eval_loss(netref, &images, &labels)
        };
        let sharp = epsilon_sharpness(
            &mut oracle,
            &params,
            0.02,
            16,
            &mut StdRng::seed_from_u64(5),
        )?;
        println!("         ε-sharpness (Keskar, ε=0.02): {sharp:.3}\n");
        net.set_params(&params)?;
    }
    println!("expect: HERO's accuracy decays more slowly with severity, and its");
    println!("ε-sharpness is markedly smaller than SGD's.");
    Ok(())
}
