//! Quantization throughput: per-tensor and whole-network fake quantization
//! across bit widths and schemes (the machinery behind Fig. 1 / Tables 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hero_core::experiment::model_config;
use hero_data::Preset;
use hero_nn::models::ModelKind;
use hero_quant::{quantize_params, quantize_tensor, QuantScheme};
use hero_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tensor_quantization(c: &mut Criterion) {
    let w = Tensor::from_fn([64, 256], |i| ((i[0] * 31 + i[1] * 7) % 97) as f32 / 48.0 - 1.0);
    let mut group = c.benchmark_group("quantize_tensor_16k");
    for bits in [2u8, 4, 8] {
        group.bench_function(BenchmarkId::new("symmetric", bits), |b| {
            let scheme = QuantScheme::symmetric(bits);
            b.iter(|| quantize_tensor(&w, &scheme).unwrap())
        });
    }
    group.bench_function("asymmetric_8", |b| {
        let scheme = QuantScheme::asymmetric(8);
        b.iter(|| quantize_tensor(&w, &scheme).unwrap())
    });
    group.bench_function("per_channel_4", |b| {
        let scheme = QuantScheme::symmetric(4).per_channel();
        b.iter(|| quantize_tensor(&w, &scheme).unwrap())
    });
    group.bench_function("percentile_4", |b| {
        let scheme = QuantScheme::symmetric(4).with_percentile(0.999);
        b.iter(|| quantize_tensor(&w, &scheme).unwrap())
    });
    group.finish();
}

fn bench_network_quantization(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize_network");
    group.sample_size(20);
    for model in [ModelKind::Resnet, ModelKind::Mobilenet, ModelKind::Vgg] {
        let net = model.build(model_config(Preset::C10), &mut StdRng::seed_from_u64(0));
        group.bench_function(BenchmarkId::from_parameter(model.paper_name()), |b| {
            let scheme = QuantScheme::symmetric(4);
            b.iter(|| quantize_params(&net, &scheme).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tensor_quantization, bench_network_quantization);
criterion_main!(benches);
