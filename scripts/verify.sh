#!/usr/bin/env bash
# Tier-1 verification gate: build, full test suite, sanitizer test suite,
# formatting, lints, and a quick bench smoke run. Everything runs offline.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo test -q (sanitize feature: pool + tape sanitizers)"
cargo test -q -p hero-tensor --features sanitize
cargo test -q -p hero-autodiff --features sanitize

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> scripts/lint.sh"
scripts/lint.sh

echo "==> bench smoke (step_cost --quick)"
cargo bench -p hero-bench --bench step_cost -- --quick

echo "verify.sh: all gates passed"
