//! The data-parallel gradient executor: shard plan, network replicas, and
//! the sharded [`GradOracle`] that plugs into the unchanged optimizer.

use crate::reduce::{combine_shard_grads, tree_reduce, ShardGrad};
use hero_hessian::GradOracle;
use hero_nn::{Network, ParamKind};
use hero_optim::{Optimizer, StepStats};
use hero_tensor::workers::{Job, PoolError, WorkerPool};
use hero_tensor::{Result, Tensor, TensorError};
use std::sync::Arc;
use std::time::Instant;

/// Number of shards a batch is split into, independent of the worker
/// count. Fixing this (rather than deriving it from `HERO_THREADS`) is
/// what makes trajectories bitwise identical across thread counts: the
/// per-shard f32 math and the reduction tree shape depend only on the
/// batch size and this constant.
pub const DEFAULT_SHARDS: usize = 4;

/// Per-worker private state: a full replica of the network. Parameters are
/// re-synchronized from the optimizer's canonical copy at every gradient
/// evaluation, so replicas never drift.
#[derive(Debug)]
struct WorkerState {
    net: Network,
}

/// One shard of the current batch, precomputed once per step.
#[derive(Debug)]
struct ShardTask {
    /// Images `(len, c, h, w)` copied out of the batch.
    images: Tensor,
    /// Labels aligned with `images`.
    labels: Vec<usize>,
    /// `len / batch_len`: scaling that turns the shard-mean loss/gradients
    /// into this shard's contribution to the batch mean.
    weight: f32,
}

/// Reads the worker count from the `HERO_THREADS` environment variable.
///
/// Returns 0 (serial in-process path) when the variable is unset, empty,
/// or unparsable; any positive value selects the sharded executor with
/// that many persistent workers.
pub fn threads_from_env() -> usize {
    std::env::var("HERO_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0)
}

/// The persistent data-parallel execution context for one training run:
/// a worker pool whose workers each own a network replica.
#[derive(Debug)]
pub struct ParallelCtx {
    pool: WorkerPool<WorkerState, Result<ShardGrad>>,
    shards: usize,
}

impl ParallelCtx {
    /// Spawns `threads` persistent workers, each with a replica of `net`.
    ///
    /// # Errors
    ///
    /// Returns an error when the network contains a stateful-RNG layer
    /// (e.g. masking dropout): replica RNG copies would advance on
    /// whichever worker runs each shard job, making the trajectory depend
    /// on scheduling and breaking the bitwise-determinism contract.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(net: &Network, threads: usize) -> Result<Self> {
        assert!(threads > 0, "parallel context needs at least one worker");
        if net.rng_stateful() {
            return Err(TensorError::InvalidArgument(format!(
                "network '{}' contains a stateful-RNG layer (e.g. dropout); \
                 the data-parallel executor cannot replicate it deterministically",
                net.name()
            )));
        }
        let states = (0..threads)
            .map(|_| WorkerState { net: net.clone() })
            .collect();
        Ok(ParallelCtx {
            pool: WorkerPool::new(states),
            shards: DEFAULT_SHARDS,
        })
    }

    /// Builds a context from `HERO_THREADS`; `Ok(None)` when the variable
    /// does not select the parallel path.
    ///
    /// # Errors
    ///
    /// Propagates [`ParallelCtx::new`] errors (stateful-RNG networks).
    pub fn from_env(net: &Network) -> Result<Option<Self>> {
        match threads_from_env() {
            0 => Ok(None),
            t => ParallelCtx::new(net, t).map(Some),
        }
    }

    /// Builder: overrides the shard count. Changing it changes the f32
    /// result (a different reduction tree), so every run being compared
    /// must use the same value.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Number of shards each batch is split into.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

/// Converts a pool failure into the workspace error type.
fn pool_error(e: PoolError) -> TensorError {
    TensorError::InvalidArgument(format!("parallel executor: {e}"))
}

/// A [`GradOracle`] that evaluates the batch gradient by sharding the
/// batch across the context's workers and tree-reducing the shard
/// contributions.
///
/// Each [`GradOracle::grad`] call broadcasts the parameter point to every
/// shard job; workers install it into their replica, run the shard's
/// forward/backward with batch-norm running-stat updates frozen (replica
/// statistics never feed back into the canonical network), and return
/// shard-weighted loss and gradients. Results are slotted by shard index
/// and combined with the fixed-shape tree in [`crate::reduce`].
#[derive(Debug)]
pub struct ShardedOracle<'a> {
    ctx: &'a mut ParallelCtx,
    shards: Arc<Vec<ShardTask>>,
}

impl<'a> ShardedOracle<'a> {
    /// Binds the context to one mini-batch, precomputing the shard views.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty batch or misaligned labels.
    pub fn new(ctx: &'a mut ParallelCtx, x: &Tensor, labels: &[usize]) -> Result<Self> {
        let n = *x.dims().first().unwrap_or(&0);
        if n == 0 || n != labels.len() {
            return Err(TensorError::InvalidArgument(format!(
                "batch of {n} images with {} labels",
                labels.len()
            )));
        }
        let shards = hero_data::shard_bounds(n, ctx.shards)
            .into_iter()
            .map(|(start, len)| {
                Ok(ShardTask {
                    images: x.narrow(start, len)?,
                    labels: labels[start..start + len].to_vec(),
                    weight: len as f32 / n as f32,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedOracle {
            ctx,
            shards: Arc::new(shards),
        })
    }
}

impl GradOracle for ShardedOracle<'_> {
    fn grad(&mut self, params: &[Tensor]) -> Result<(f32, Vec<Tensor>)> {
        hero_obs::counters::GRAD_EVALS.incr();
        // One parameter snapshot shared read-only by every shard job.
        let params: Arc<Vec<Tensor>> = Arc::new(params.to_vec());
        let jobs: Vec<Job<WorkerState, Result<ShardGrad>>> = (0..self.shards.len())
            .map(|s| {
                let params = Arc::clone(&params);
                let shards = Arc::clone(&self.shards);
                Box::new(move |st: &mut WorkerState| -> Result<ShardGrad> {
                    let _span = hero_obs::span("shard_grad");
                    let task = &shards[s];
                    st.net.set_params(&params)?;
                    // Replica batch-norm statistics are never merged back,
                    // and updating them per-replica would make results
                    // depend on job→worker scheduling; freeze them.
                    let prev = hero_nn::norm::set_bn_running_stat_updates(false);
                    let out = hero_nn::loss_and_grads(&mut st.net, &task.images, &task.labels);
                    hero_nn::norm::set_bn_running_stat_updates(prev);
                    let out = out?;
                    let mut grads = out.grads;
                    for g in &mut grads {
                        for v in g.data_mut() {
                            *v *= task.weight;
                        }
                    }
                    Ok((out.loss * task.weight, grads))
                }) as Job<WorkerState, Result<ShardGrad>>
            })
            .collect();

        // The calling thread blocks here while workers run; the span keeps
        // that time attributed to a named `train_step` child (the workers'
        // own forward/backward spans root in their threads' trees).
        let scatter = hero_obs::span("scatter");
        let wait = Instant::now();
        let results = self.ctx.pool.scatter(jobs).map_err(pool_error)?;
        hero_obs::counters::REDUCE_WAIT_NS.add(wait.elapsed().as_nanos() as u64);
        drop(scatter);

        let _reduce = hero_obs::span("reduce");
        let shard_grads = results.into_iter().collect::<Result<Vec<ShardGrad>>>()?;
        tree_reduce(shard_grads, combine_shard_grads)?
            .ok_or_else(|| TensorError::InvalidArgument("no shards produced gradients".to_string()))
    }
}

/// Runs one optimization step through the sharded executor, leaving the
/// updated parameters installed in `net`. Drop-in parallel counterpart of
/// `hero_optim::train_step` — the optimizer itself is reused unchanged,
/// only its gradient oracle differs.
///
/// # Errors
///
/// Returns shape errors if the batch is incompatible with the network, or
/// an error describing a worker panic.
pub fn train_step_parallel(
    ctx: &mut ParallelCtx,
    net: &mut Network,
    optimizer: &mut Optimizer,
    x: &Tensor,
    labels: &[usize],
    lr: f32,
) -> Result<StepStats> {
    let _step = hero_obs::span("train_step");
    let sync = hero_obs::span("sync");
    let mut params = net.params();
    let decay_mask: Vec<bool> = net
        .param_infos()
        .iter()
        .map(|i| i.kind.is_decayed())
        .collect();
    drop(sync);
    let stats = {
        let mut oracle = ShardedOracle::new(ctx, x, labels)?;
        optimizer.step(&mut oracle, &mut params, &decay_mask, lr)?
    };
    let sync = hero_obs::span("sync");
    net.set_params(&params)?;
    drop(sync);
    // Worker replicas keep their batch-norm running statistics frozen (a
    // per-replica update order would depend on job scheduling), so the
    // canonical network must refresh its own: one training-mode forward
    // over the full batch on this thread. The refresh depends only on the
    // batch and the just-updated parameters — never on the worker count —
    // so it preserves the bitwise-equivalence contract while keeping
    // eval-time normalization statistics in sync with training.
    if has_batch_norm(net) {
        let _bn = hero_obs::span("bn_refresh");
        refresh_bn_stats(net, x)?;
    }
    Ok(stats)
}

/// True when the network owns batch-norm parameters.
fn has_batch_norm(net: &Network) -> bool {
    net.param_infos()
        .iter()
        .any(|i| matches!(i.kind, ParamKind::BnGamma | ParamKind::BnBeta))
}

/// One training-mode forward over `x` so every batch-norm layer folds the
/// batch statistics into its running estimates; the tape is discarded.
fn refresh_bn_stats(net: &mut Network, x: &Tensor) -> Result<()> {
    let mut g = hero_autodiff::Graph::new();
    net.forward(&mut g, x, true)?;
    g.reset();
    Ok(())
}
