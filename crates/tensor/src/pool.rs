//! Scratch-buffer pooling for the training hot path.
//!
//! Every HERO step costs three gradient evaluations, and the naive
//! implementation re-`vec![0.0; …]`-allocated every matmul output, packed
//! GEMM panel, im2col column matrix and gradient tensor on every one of
//! them. [`ScratchPool`] is a free-list of `Vec<f32>` buffers that lets
//! those allocations be *leased* and *recycled* instead: after one warm-up
//! step the same buffers cycle through the graph forever and the pool
//! performs zero new heap allocations ([`PoolStats::fresh_allocs`] is the
//! proof — see `crates/autodiff/tests/pool_reuse.rs`).
//!
//! A thread-local default pool backs the tensor kernels and the autodiff
//! graph so no `&mut pool` needs to be threaded through every op signature
//! (the same pattern the batch-norm running-stat switch uses). All
//! accounting is per-thread.
//!
//! # Examples
//!
//! ```
//! use hero_tensor::pool;
//!
//! pool::reset_stats();
//! let buf = pool::lease(1024);            // fresh allocation
//! pool::recycle(buf);
//! let again = pool::lease(1024);          // served from the free list
//! assert_eq!(pool::stats().fresh_allocs, 1);
//! assert_eq!(again.len(), 1024);
//! pool::recycle(again);
//! ```

use std::cell::RefCell;

/// Upper bound on buffers the free list retains; recycles beyond this are
/// dropped so donated one-off buffers cannot grow the pool without bound.
const MAX_HELD: usize = 1024;

/// Number of canary words placed past each lease's live region under the
/// `sanitize` feature.
#[cfg(feature = "sanitize")]
const CANARY_WORDS: usize = 4;

/// Bit pattern written into canary words at lease time.
#[cfg(feature = "sanitize")]
const CANARY: u32 = 0xCAFE_F00D;

/// Bit pattern every recycled buffer is filled with; a free-list buffer
/// whose contents deviate from it was written through a stale pointer.
#[cfg(feature = "sanitize")]
const POISON: u32 = 0xDEAD_BEEF;

/// Bookkeeping for one outstanding lease (sanitize builds only), keyed by
/// the buffer's base address.
#[cfg(feature = "sanitize")]
#[derive(Debug, Clone, Copy)]
struct LeaseRecord {
    /// Requested element count (the live region is `[0, len)`).
    len: usize,
    /// Capacity at lease time; a capacity change means the lessee grew the
    /// buffer, which relocates it and invalidates the canary region.
    cap: usize,
    /// Pool generation when the lease was issued.
    gen: u64,
}

/// Counters describing a pool's lifetime activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Leases that had to perform a fresh heap allocation (or grow a
    /// recycled buffer, which reallocates). Zero across a steady-state
    /// training step is the "O(1) allocations after warm-up" proof.
    pub fresh_allocs: usize,
    /// Total buffers handed out.
    pub leases: usize,
    /// Total buffers returned.
    pub recycles: usize,
    /// Buffers currently sitting in the free list.
    pub held: usize,
    /// Recycles rejected because they arrived from a thread other than the
    /// pool's owner (the buffer is dropped instead of pooled, so free lists
    /// can never exchange buffers across workers).
    pub foreign_recycles: usize,
}

/// A free-list recycler for `Vec<f32>` scratch buffers.
///
/// Capacity-class reuse is keyed to the thread that created the pool: a
/// pool only accepts recycles from its owner thread. A buffer returned
/// from any other thread — e.g. a gradient tensor produced by a shard
/// worker and dropped on the reducing thread after the pool moved — is
/// dropped to the allocator instead, so two threads' free lists can never
/// alias or exchange storage under the data-parallel executor.
#[derive(Debug)]
pub struct ScratchPool {
    /// Thread the pool was created on; the only thread recycles are
    /// accepted from.
    owner: std::thread::ThreadId,
    free: Vec<Vec<f32>>,
    fresh_allocs: usize,
    leases: usize,
    recycles: usize,
    foreign_recycles: usize,
    /// Generation stamped on each free-list entry, parallel to `free`.
    #[cfg(feature = "sanitize")]
    free_gens: Vec<u64>,
    /// Monotonic recycle counter used to label sanitizer reports.
    #[cfg(feature = "sanitize")]
    generation: u64,
    /// Outstanding leases by base address. Entries for buffers that never
    /// return (e.g. leases that become long-lived tensor storage) are
    /// overwritten when the allocator reuses the address.
    #[cfg(feature = "sanitize")]
    outstanding: std::collections::HashMap<usize, LeaseRecord>,
}

impl Default for ScratchPool {
    fn default() -> Self {
        ScratchPool {
            owner: std::thread::current().id(),
            free: Vec::new(),
            fresh_allocs: 0,
            leases: 0,
            recycles: 0,
            foreign_recycles: 0,
            #[cfg(feature = "sanitize")]
            free_gens: Vec::new(),
            #[cfg(feature = "sanitize")]
            generation: 0,
            #[cfg(feature = "sanitize")]
            outstanding: std::collections::HashMap::new(),
        }
    }
}

impl ScratchPool {
    /// Creates an empty pool owned by the calling thread.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// The thread this pool accepts recycles from.
    pub fn owner(&self) -> std::thread::ThreadId {
        self.owner
    }

    /// Leases a zeroed buffer of exactly `len` elements.
    ///
    /// Reuses the best-fitting free buffer when one exists; otherwise (or
    /// when the best fit would have to grow) counts a fresh allocation.
    pub fn lease(&mut self, len: usize) -> Vec<f32> {
        // Best fit: smallest capacity that can hold `len` without growing.
        let mut buf = self.lease_raw(len);
        buf.resize(len, 0.0);
        buf
    }

    /// Leases a buffer holding a copy of `src` (like [`ScratchPool::lease`]
    /// but skips the intermediate zeroing).
    pub fn lease_copy(&mut self, src: &[f32]) -> Vec<f32> {
        let mut buf = self.lease_raw(src.len());
        buf.extend_from_slice(src);
        buf
    }

    /// Best-fit lookup shared by [`ScratchPool::lease`] and
    /// [`ScratchPool::lease_copy`]: returns an empty buffer with capacity
    /// for at least `len` elements.
    pub(crate) fn lease_raw(&mut self, len: usize) -> Vec<f32> {
        self.leases += 1;
        // Under sanitize every lease reserves room for trailing canaries.
        #[cfg(feature = "sanitize")]
        let need = len + CANARY_WORDS;
        #[cfg(not(feature = "sanitize"))]
        let need = len;
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in self.free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= need && best.is_none_or(|(_, bc)| cap < bc) {
                best = Some((i, cap));
                if cap == need {
                    break;
                }
            }
        }
        #[allow(unused_mut)]
        let mut buf = match best {
            Some((i, _)) => {
                hero_obs::counters::POOL_HITS.incr();
                let mut buf = self.free.swap_remove(i);
                #[cfg(feature = "sanitize")]
                {
                    let gen = self.free_gens.swap_remove(i);
                    if let Some(pos) = buf.iter().position(|v| v.to_bits() != POISON) {
                        panic!(
                            "hero-tensor sanitize: use-after-recycle — free buffer {:p} \
                             (recycle generation {gen}) was written at element {pos} after \
                             being recycled (found {:#010x}, expected poison {POISON:#010x})",
                            buf.as_ptr(),
                            buf[pos].to_bits()
                        );
                    }
                }
                buf.clear();
                buf
            }
            None => {
                self.fresh_allocs += 1;
                hero_obs::counters::POOL_FRESH_ALLOCS.incr();
                Vec::with_capacity(need)
            }
        };
        #[cfg(feature = "sanitize")]
        self.arm_lease(&mut buf, len);
        buf
    }

    /// Writes canary words past the live region and records the lease
    /// (sanitize builds only).
    #[cfg(feature = "sanitize")]
    fn arm_lease(&mut self, buf: &mut Vec<f32>, len: usize) {
        buf.reserve(len + CANARY_WORDS); // no-op unless the buffer was donated small
        let spare = buf.spare_capacity_mut();
        for slot in &mut spare[len..len + CANARY_WORDS] {
            slot.write(f32::from_bits(CANARY));
        }
        self.generation += 1;
        self.outstanding.insert(
            buf.as_ptr() as usize,
            LeaseRecord {
                len,
                cap: buf.capacity(),
                gen: self.generation,
            },
        );
    }

    /// Validates a returning buffer and poisons its contents (sanitize
    /// builds only). Catches double-recycles (the address is already in the
    /// free list) and out-of-bounds writes (a canary word past the live
    /// region was overwritten). Buffers the pool never leased — donations
    /// from plain allocations — are poisoned but not checked.
    #[cfg(feature = "sanitize")]
    fn sanitize_recycle(&mut self, mut buf: Vec<f32>) -> Vec<f32> {
        let ptr = buf.as_ptr() as usize;
        if self.free.iter().any(|b| b.as_ptr() as usize == ptr) {
            panic!(
                "hero-tensor sanitize: double-recycle — buffer {ptr:#x} is already in the \
                 free list"
            );
        }
        if let Some(rec) = self.outstanding.remove(&ptr) {
            // A length or capacity change means the lessee resized the
            // buffer, relocating the canary region; skip the check then.
            if buf.len() == rec.len && buf.capacity() == rec.cap {
                let spare = buf.spare_capacity_mut();
                for (i, slot) in spare[..CANARY_WORDS].iter().enumerate() {
                    // Sound: arm_lease initialized these words and the
                    // capacity has not changed since.
                    let bits = unsafe { slot.assume_init() }.to_bits();
                    if bits != CANARY {
                        panic!(
                            "hero-tensor sanitize: out-of-bounds write — canary word {i} \
                             past the live region of buffer {ptr:#x} (lease generation {}, \
                             len {}) holds {bits:#010x}, expected {CANARY:#010x}",
                            rec.gen, rec.len
                        );
                    }
                }
            }
        }
        self.generation += 1;
        for v in buf.iter_mut() {
            *v = f32::from_bits(POISON);
        }
        buf
    }

    /// Returns a buffer to the free list (dropped if the pool is full or
    /// the buffer has no capacity).
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        if std::thread::current().id() != self.owner {
            // Cross-thread return: drop to the allocator so this pool's
            // free list never holds a buffer another thread's pool leased.
            self.foreign_recycles += 1;
            return;
        }
        #[cfg(feature = "sanitize")]
        let buf = self.sanitize_recycle(buf);
        self.recycles += 1;
        hero_obs::counters::POOL_RECYCLES.incr();
        if self.free.len() < MAX_HELD {
            #[cfg(feature = "sanitize")]
            self.free_gens.push(self.generation);
            self.free.push(buf);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh_allocs: self.fresh_allocs,
            leases: self.leases,
            recycles: self.recycles,
            held: self.free.len(),
            foreign_recycles: self.foreign_recycles,
        }
    }

    /// Zeroes the counters (the free list is kept).
    pub fn reset_stats(&mut self) {
        self.fresh_allocs = 0;
        self.leases = 0;
        self.recycles = 0;
        self.foreign_recycles = 0;
    }

    /// Drops every held buffer and zeroes the counters.
    pub fn clear(&mut self) {
        self.free.clear();
        #[cfg(feature = "sanitize")]
        {
            self.free_gens.clear();
            self.outstanding.clear();
        }
        self.reset_stats();
    }
}

thread_local! {
    static GLOBAL: RefCell<ScratchPool> = RefCell::new(ScratchPool::new());
    /// Cached id of this thread — `std::thread::current()` clones an `Arc`
    /// per call, which is too hot for per-tensor tagging.
    static TID: std::thread::ThreadId = std::thread::current().id();
}

/// The calling thread's id (cached; cheap enough for per-tensor use).
pub fn current_thread() -> std::thread::ThreadId {
    TID.with(|t| *t)
}

/// Runs `f` with exclusive access to this thread's default pool.
///
/// Keep the closure allocation-only: re-entering the pool from inside `f`
/// panics (`RefCell` double borrow).
pub fn with<R>(f: impl FnOnce(&mut ScratchPool) -> R) -> R {
    GLOBAL.with(|p| f(&mut p.borrow_mut()))
}

/// Leases a zeroed buffer from this thread's default pool.
pub fn lease(len: usize) -> Vec<f32> {
    with(|p| p.lease(len))
}

/// Leases a buffer holding a copy of `src` from this thread's default pool.
pub fn lease_copy(src: &[f32]) -> Vec<f32> {
    with(|p| p.lease_copy(src))
}

/// Leases an *empty* buffer with capacity for `len` elements — for ops that
/// fill the buffer by `extend`ing, skipping the zeroing pass of [`lease`].
pub(crate) fn lease_raw(len: usize) -> Vec<f32> {
    with(|p| p.lease_raw(len))
}

/// Recycles a buffer into this thread's default pool.
pub fn recycle(buf: Vec<f32>) {
    with(|p| p.recycle(buf));
}

/// Recycles a buffer whose storage originated on thread `home`. Pooled only
/// when `home` is the calling thread; otherwise the buffer is dropped to
/// the allocator and counted as a foreign recycle, so per-thread pools
/// never adopt another worker's storage.
pub fn recycle_from(home: std::thread::ThreadId, buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    with(|p| {
        if home == p.owner {
            p.recycle(buf);
        } else {
            p.foreign_recycles += 1;
        }
    });
}

/// Recycles a tensor's storage, keyed to the tensor's home thread.
pub fn recycle_tensor(t: crate::Tensor) {
    let home = t.home();
    recycle_from(home, t.into_vec());
}

/// Counters for this thread's default pool.
pub fn stats() -> PoolStats {
    with(|p| p.stats())
}

/// Zeroes this thread's default-pool counters (free list kept) — call at
/// the start of a measurement window.
pub fn reset_stats() {
    with(|p| p.reset_stats());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycle_round_trip_reuses_capacity() {
        let mut pool = ScratchPool::new();
        let a = pool.lease(100);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&v| v == 0.0));
        pool.recycle(a);
        let b = pool.lease(64); // smaller fits in the same buffer
        assert_eq!(b.len(), 64);
        let s = pool.stats();
        assert_eq!(s.fresh_allocs, 1);
        assert_eq!(s.leases, 2);
        assert_eq!(s.recycles, 1);
    }

    #[test]
    fn lease_zeroes_recycled_contents() {
        let mut pool = ScratchPool::new();
        let mut a = pool.lease(8);
        a.iter_mut().for_each(|v| *v = 7.0);
        pool.recycle(a);
        let b = pool.lease(8);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn growing_counts_as_fresh_alloc() {
        let mut pool = ScratchPool::new();
        let a = pool.lease(10);
        pool.recycle(a);
        let _big = pool.lease(1000); // cannot be served without growing
        assert_eq!(pool.stats().fresh_allocs, 2);
    }

    #[test]
    fn best_fit_prefers_tightest_buffer() {
        let mut pool = ScratchPool::new();
        let big = pool.lease(1000);
        let small = pool.lease(10);
        pool.recycle(big);
        pool.recycle(small);
        let b = pool.lease(10);
        assert!(b.capacity() < 1000, "picked the oversized buffer");
        assert_eq!(pool.stats().fresh_allocs, 2);
    }

    #[test]
    fn free_list_is_capped() {
        let mut pool = ScratchPool::new();
        for _ in 0..(MAX_HELD + 10) {
            pool.recycle(vec![0.0; 4]);
        }
        assert_eq!(pool.stats().held, MAX_HELD);
    }

    #[test]
    fn zero_capacity_buffers_are_dropped() {
        let mut pool = ScratchPool::new();
        pool.recycle(Vec::new());
        assert_eq!(pool.stats().held, 0);
        assert_eq!(pool.stats().recycles, 0);
    }

    #[test]
    fn global_pool_round_trips() {
        reset_stats();
        let before = stats();
        let buf = lease(32);
        recycle(buf);
        let after = stats();
        assert_eq!(after.leases, before.leases + 1);
        assert_eq!(after.recycles, before.recycles + 1);
    }

    #[test]
    fn foreign_recycle_is_rejected() {
        // A pool created here but handed a buffer from another thread must
        // drop it rather than pool it: free lists are keyed per thread id.
        let mut pool = ScratchPool::new();
        let a = pool.lease(64);
        let a = std::thread::spawn(move || a).join().unwrap(); // round-trip, same Vec
        pool.recycle(a); // still the owner thread: accepted
        assert_eq!(pool.stats().held, 1);

        let mut pool = std::thread::spawn(ScratchPool::new).join().unwrap();
        pool.recycle(vec![0.0; 64]); // now a foreign thread holds the pool
        let s = pool.stats();
        assert_eq!(s.held, 0, "foreign buffer entered the free list");
        assert_eq!(s.recycles, 0);
        assert_eq!(s.foreign_recycles, 1);
    }

    #[test]
    fn two_thread_pools_never_exchange_buffers() {
        // Tensors leased from this thread's pool and dropped on a worker
        // must NOT enter the worker's free list: their storage is keyed to
        // the home thread and gets released to the allocator instead.
        with(|p| p.clear());
        let tensors: Vec<crate::Tensor> = (0..4).map(|_| crate::Tensor::zeros([128])).collect();

        std::thread::spawn(move || {
            with(|p| p.clear());
            drop(tensors); // foreign to the worker's thread-local pool
            let s = stats();
            assert_eq!(s.held, 0, "worker pool adopted a foreign buffer");
            assert_eq!(s.foreign_recycles, 4);
            // The worker's own lease/drop cycle still pools locally.
            drop(crate::Tensor::zeros([64]));
            assert_eq!(stats().held, 1, "worker's own recycle must be pooled");
        })
        .join()
        .unwrap();
        with(|p| p.clear());
    }

    #[test]
    fn clear_empties_everything() {
        let mut pool = ScratchPool::new();
        pool.recycle(vec![0.0; 8]);
        pool.clear();
        let s = pool.stats();
        assert_eq!(s, PoolStats::default());
    }
}

/// Defect-injection tests for the sanitizer: each simulates one of the
/// memory bugs the instrumentation exists to catch and asserts the pool
/// reports it.
#[cfg(all(test, feature = "sanitize"))]
mod sanitize_tests {
    use super::*;

    #[test]
    fn clean_round_trips_pass_the_sanitizer() {
        let mut pool = ScratchPool::new();
        for _ in 0..3 {
            let a = pool.lease(32);
            let b = pool.lease_copy(&[1.0, 2.0, 3.0]);
            pool.recycle(a);
            pool.recycle(b);
        }
        assert_eq!(pool.stats().fresh_allocs, 2);
    }

    #[test]
    #[should_panic(expected = "use-after-recycle")]
    fn stale_write_after_recycle_is_caught() {
        let mut pool = ScratchPool::new();
        let mut a = pool.lease(16);
        let stale = a.as_mut_ptr();
        pool.recycle(a);
        // Defect injection: a pointer kept across the recycle writes into
        // the buffer while it sits in the free list.
        unsafe { stale.write(1.0) };
        let _ = pool.lease(16);
    }

    #[test]
    #[should_panic(expected = "out-of-bounds write")]
    fn canary_overwrite_is_caught() {
        let mut pool = ScratchPool::new();
        let mut a = pool.lease(8);
        // Defect injection: a kernel writing one element past the live
        // region (within capacity, so nothing else would ever notice).
        unsafe { a.as_mut_ptr().add(8).write(0.0) };
        pool.recycle(a);
    }

    #[test]
    #[should_panic(expected = "double-recycle")]
    fn double_recycle_is_caught() {
        // Leaked so the aliased free-list entry is never dropped: the
        // duplicate handle is freed during unwind, and freeing it again
        // from the pool's destructor would abort the test process.
        let pool: &'static mut ScratchPool = Box::leak(Box::default());
        let a = pool.lease(8);
        let (ptr, len, cap) = (a.as_ptr() as *mut f32, a.len(), a.capacity());
        pool.recycle(a);
        // Defect injection: a second handle to the same allocation.
        let dup = unsafe { Vec::from_raw_parts(ptr, len, cap) };
        pool.recycle(dup);
    }
}
