//! Minimal deterministic pseudo-random number generation.
//!
//! In-tree replacement for the external `rand` crate so the workspace
//! builds with no network access. The generator is SplitMix64 (Steele,
//! Lea & Flood 2014): a 64-bit counter passed through a finalizer — fast,
//! statistically solid for experiment seeding, and trivially reproducible.
//!
//! The API mirrors the small slice of `rand` this workspace uses:
//! [`StdRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`], so call
//! sites read identically to their `rand 0.8` counterparts.
//!
//! # Examples
//!
//! ```
//! use hero_tensor::rng::{Rng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f32 = rng.gen();             // uniform in [0, 1)
//! let c = rng.gen_range(0..10usize);  // uniform in [0, 10)
//! assert!((0.0..1.0).contains(&x));
//! assert!(c < 10);
//! // Same seed, same stream.
//! assert_eq!(StdRng::seed_from_u64(7).next_u64(), StdRng::seed_from_u64(7).next_u64());
//! ```

use std::ops::{Range, RangeInclusive};

/// The workspace's deterministic generator (SplitMix64).
///
/// Named `StdRng` so existing call sites keep the spelling they had under
/// the `rand` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

/// Alias making the algorithm explicit at sites that care.
pub type SplitMix64 = StdRng;

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Current internal state. Feeding it back through
    /// [`StdRng::seed_from_u64`] resumes the stream exactly where it
    /// left off — the hook checkpointing uses to persist RNG streams.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances the state and returns the next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Source of pseudo-random bits with convenience sampling methods.
pub trait Rng {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform over `T`'s natural domain:
    /// `[0, 1)` for floats, fair coin for `bool`, full range for integers).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // Use a high bit; the low bits of some generators are weaker.
        rng.next_u64() & (1 << 63) != 0
    }
}

impl Sample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws one value from `rng` uniformly within the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

fn uniform_usize<R: Rng>(rng: &mut R, lo: usize, span: usize) -> usize {
    debug_assert!(span > 0);
    // Modulo sampling; the bias for spans far below 2^64 is negligible for
    // experiment seeding and data shuffling.
    lo + (rng.next_u64() % span as u64) as usize
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<R: Rng>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range on empty range");
        uniform_usize(rng, self.start, self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample_from<R: Rng>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        if lo == 0 && hi == usize::MAX {
            return rng.next_u64() as usize;
        }
        uniform_usize(rng, lo, hi - lo + 1)
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample_from<R: Rng>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u: f32 = f32::sample(rng); // [0, 1)
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f32> {
    type Output = f32;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) - 1) as f32); // [0, 1]
        lo + (hi - lo) * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f32_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn usize_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(2..7usize);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..50 {
            let v = rng.gen_range(0..=3usize);
            assert!(v <= 3);
        }
        assert_eq!(rng.gen_range(5..6usize), 5);
        assert_eq!(rng.gen_range(5..=5usize), 5);
    }

    #[test]
    fn f32_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
            let w = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
        let tiny = rng.gen_range(f32::MIN_POSITIVE..1.0);
        assert!(tiny > 0.0 && tiny < 1.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(3..3usize);
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> f32 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        // &mut StdRng must itself implement Rng for nested helper calls.
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
