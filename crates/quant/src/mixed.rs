//! Mixed-precision bit allocation guided by the paper's second-order
//! analysis.
//!
//! Theorem 3 says the tolerable ℓ∞ perturbation shrinks with the Hessian
//! eigenvalue `v` and grows with the bin width Δ; under the second-order
//! model the loss impact of quantizing layer `i` at `b` bits is
//! approximately `v_i · n_i · Δ_i(b)² / 24` (uniform rounding error has
//! variance Δ²/12, halved by symmetry of the quadratic form). Allocating a
//! global bit budget to minimize the summed impact is then a classic
//! greedy marginal-gain problem — the direction the paper points at with
//! its mixed-precision citations (§2.2, BSQ).

use crate::model::ModelQuantReport;
use crate::quantizer::{quant_error, quantize_tensor};
use crate::scheme::QuantScheme;
use hero_nn::Network;
use hero_tensor::{Result, Tensor, TensorError};

/// Per-layer inputs to the bit allocator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSensitivity {
    /// Layer (parameter tensor) name, for reporting.
    pub name: String,
    /// Number of weights in the layer.
    pub numel: usize,
    /// Maximum absolute weight (determines Δ at a given bit width).
    pub max_abs: f32,
    /// Curvature proxy for the layer (e.g. λ_max of the layer-restricted
    /// Hessian, or a gradient-magnitude heuristic). Must be ≥ 0.
    pub curvature: f32,
}

impl LayerSensitivity {
    /// Bin width of a symmetric uniform quantizer at `bits` (shift-safe
    /// for any `u8` input via [`QuantScheme::half_levels`]).
    pub fn delta(&self, bits: u8) -> f32 {
        self.max_abs / QuantScheme::half_levels(bits) as f32
    }

    /// Estimated second-order loss impact of quantizing at `bits`.
    pub fn impact(&self, bits: u8) -> f32 {
        let d = self.delta(bits);
        self.curvature * self.numel as f32 * d * d / 24.0
    }
}

/// Greedy mixed-precision allocation: distributes a budget of
/// `avg_bits × Σ numel` weight-bits across layers within
/// `[min_bits, max_bits]`, minimizing the estimated total loss impact.
///
/// Returns one bit width per layer, aligned with `layers`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the bounds are inverted,
/// zero, or the budget is infeasible (below `min_bits` everywhere).
pub fn allocate_bits(
    layers: &[LayerSensitivity],
    avg_bits: f32,
    min_bits: u8,
    max_bits: u8,
) -> Result<Vec<u8>> {
    let numels: Vec<usize> = layers.iter().map(|l| l.numel).collect();
    let profiles: Vec<Vec<f32>> = layers
        .iter()
        .map(|l| {
            (min_bits..=max_bits.max(min_bits))
                .map(|b| l.impact(b))
                .collect()
        })
        .collect();
    greedy_allocate(&numels, &profiles, avg_bits, min_bits, max_bits)
}

/// Replaces `profile` with its lower convex minorant over the index, so
/// the marginal gain sequence `p[j] − p[j+1]` is non-increasing. Greedy
/// per-cost allocation over convex profiles is *monotone in the budget*
/// (a larger budget never lowers any layer's bits) — the property the
/// allocator tests pin down. Quadratic Δ²-model profiles are already
/// convex; certified noise-bound profiles need not be, so the shared
/// greedy convexifies unconditionally.
fn convex_minorant(profile: &mut [f32]) {
    let n = profile.len();
    if n < 3 {
        return;
    }
    // Lower hull of (j, p[j]) by Graham scan, then linear interpolation.
    let mut hull: Vec<usize> = Vec::with_capacity(n);
    for j in 0..n {
        while hull.len() >= 2 {
            let (a, b) = (hull[hull.len() - 2], hull[hull.len() - 1]);
            let cross = (b - a) as f64 * (f64::from(profile[j]) - f64::from(profile[a]))
                - (j - a) as f64 * (f64::from(profile[b]) - f64::from(profile[a]));
            if cross <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(j);
    }
    for w in hull.windows(2) {
        let (a, b) = (w[0], w[1]);
        let (pa, pb) = (f64::from(profile[a]), f64::from(profile[b]));
        for (j, p) in profile.iter_mut().enumerate().take(b).skip(a + 1) {
            *p = (pa + (pb - pa) * (j - a) as f64 / (b - a) as f64) as f32;
        }
    }
}

/// Shared greedy core behind [`allocate_bits`] and the certified-matrix
/// allocator: `profiles[i][j]` is layer `i`'s estimated loss impact at
/// `min_bits + j` bits. Profiles are convexified first (see
/// [`convex_minorant`]), then budget is spent on the best impact
/// reduction per weight-bit until exhausted or everything saturates.
pub(crate) fn greedy_allocate(
    numels: &[usize],
    profiles: &[Vec<f32>],
    avg_bits: f32,
    min_bits: u8,
    max_bits: u8,
) -> Result<Vec<u8>> {
    if min_bits == 0 || min_bits > max_bits || max_bits > QuantScheme::MAX_BITS {
        return Err(TensorError::InvalidArgument(format!(
            "invalid bit bounds [{min_bits}, {max_bits}] (supported range 1..={})",
            QuantScheme::MAX_BITS
        )));
    }
    let width = usize::from(max_bits - min_bits) + 1;
    if profiles.len() != numels.len() || profiles.iter().any(|p| p.len() != width) {
        return Err(TensorError::InvalidArgument(
            "impact profiles misaligned with layers or bit range".into(),
        ));
    }
    let mut profiles: Vec<Vec<f32>> = profiles.to_vec();
    for p in &mut profiles {
        convex_minorant(p);
    }
    let total_weights: usize = numels.iter().sum();
    let budget = (avg_bits * total_weights as f32).floor() as i64;
    let floor_cost: i64 = numels.iter().map(|&n| n as i64 * min_bits as i64).sum();
    if budget < floor_cost {
        return Err(TensorError::InvalidArgument(format!(
            "budget {avg_bits} avg bits is below the {min_bits}-bit floor"
        )));
    }
    let mut bits = vec![min_bits; numels.len()];
    let mut remaining = budget - floor_cost;
    // Greedy: repeatedly upgrade the layer with the best impact reduction
    // per weight-bit spent, stopping at the first unaffordable pick. The
    // upgrade *sequence* depends only on the profiles, never on the
    // budget, so a larger budget executes a strict superset of the same
    // upgrades — per-layer allocations are monotone in the budget (the
    // allocator_props invariant). Skipping an unaffordable pick to spend
    // leftovers on a cheaper layer would squeeze out a few more
    // weight-bits but breaks that monotonicity (the classic greedy
    // knapsack anomaly), so we deliberately leave at most one layer's
    // cost unspent.
    loop {
        let mut best: Option<(usize, f32)> = None;
        for (i, &numel) in numels.iter().enumerate() {
            if bits[i] >= max_bits {
                continue;
            }
            let j = usize::from(bits[i] - min_bits);
            let gain = profiles[i][j] - profiles[i][j + 1];
            let per_cost = gain / numel.max(1) as f32;
            if best.is_none_or(|(_, g)| per_cost > g) {
                best = Some((i, per_cost));
            }
        }
        let Some((i, _)) = best else { break };
        if numels[i] as i64 > remaining {
            break;
        }
        bits[i] += 1;
        remaining -= numels[i] as i64;
    }
    Ok(bits)
}

/// Builds layer sensitivities from a network snapshot using the
/// gradient-free proxy `curvature = 1` per layer (pure range/size
/// allocation). Callers with curvature estimates (e.g. from
/// `hero-hessian`) should overwrite the `curvature` fields.
pub fn network_sensitivities(net: &Network) -> Vec<LayerSensitivity> {
    let _obs = hero_obs::span("quant_sens");
    let params = net.params();
    let infos = net.param_infos();
    params
        .iter()
        .zip(&infos)
        .filter(|(_, info)| info.kind.is_quantizable())
        .map(|(p, info)| LayerSensitivity {
            name: info.name.clone(),
            numel: p.numel(),
            max_abs: p.norm_linf(),
            curvature: 1.0,
        })
        .collect()
}

/// Quantizes the network's weight tensors at per-layer bit widths (aligned
/// with the quantizable-tensor order of [`network_sensitivities`]),
/// returning the new parameter list and a report.
///
/// # Errors
///
/// Returns an error if `bits` does not match the number of quantizable
/// tensors.
pub fn quantize_params_mixed(
    net: &Network,
    bits: &[u8],
) -> Result<(Vec<Tensor>, ModelQuantReport)> {
    let _obs = hero_obs::span("quantize");
    let params = net.params();
    let infos = net.param_infos();
    let quantizable = infos.iter().filter(|i| i.kind.is_quantizable()).count();
    if bits.len() != quantizable {
        return Err(TensorError::InvalidArgument(format!(
            "{} bit widths for {quantizable} quantizable tensors",
            bits.len()
        )));
    }
    let mut out = Vec::with_capacity(params.len());
    let mut report = ModelQuantReport {
        scheme: QuantScheme::symmetric(bits.iter().copied().max().unwrap_or(8))?,
        quantized_tensors: 0,
        skipped_tensors: 0,
        worst_linf: 0.0,
        max_bin_width: 0.0,
        mean_mse: 0.0,
    };
    let mut mse_acc = 0.0;
    let mut next_bit = bits.iter();
    for (p, info) in params.iter().zip(&infos) {
        if info.kind.is_quantizable() {
            let b = *next_bit.next().expect("counted above");
            let q = quantize_tensor(p, &QuantScheme::symmetric(b)?)?;
            let err = quant_error(p, &q.values)?;
            hero_obs::counters::QUANT_TENSORS.incr();
            report.quantized_tensors += 1;
            report.worst_linf = report.worst_linf.max(err.linf);
            report.max_bin_width = report.max_bin_width.max(q.max_bin_width());
            mse_acc += err.mse;
            out.push(q.values);
        } else {
            report.skipped_tensors += 1;
            out.push(p.clone());
        }
    }
    if report.quantized_tensors > 0 {
        report.mean_mse = mse_acc / report.quantized_tensors as f32;
    }
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_nn::models::{mini_resnet, ModelConfig};
    use hero_tensor::rng::StdRng;

    fn layer(name: &str, numel: usize, max_abs: f32, curvature: f32) -> LayerSensitivity {
        LayerSensitivity {
            name: name.into(),
            numel,
            max_abs,
            curvature,
        }
    }

    #[test]
    fn uniform_layers_get_uniform_bits() {
        let layers = vec![
            layer("a", 100, 1.0, 1.0),
            layer("b", 100, 1.0, 1.0),
            layer("c", 100, 1.0, 1.0),
        ];
        let bits = allocate_bits(&layers, 6.0, 2, 8).unwrap();
        assert_eq!(bits, vec![6, 6, 6]);
    }

    #[test]
    fn sensitive_layers_get_more_bits() {
        let layers = vec![
            layer("robust", 100, 1.0, 0.01),
            layer("fragile", 100, 1.0, 100.0),
        ];
        let bits = allocate_bits(&layers, 5.0, 2, 8).unwrap();
        assert!(
            bits[1] > bits[0],
            "fragile {} should exceed robust {}",
            bits[1],
            bits[0]
        );
        // Budget respected.
        let spent: usize = layers
            .iter()
            .zip(&bits)
            .map(|(l, &b)| l.numel * b as usize)
            .sum();
        assert!(spent <= (5.0 * 200.0) as usize);
    }

    #[test]
    fn wide_range_layers_get_more_bits() {
        // Same curvature, but one layer has a 10x larger range => bigger Δ.
        let layers = vec![layer("narrow", 100, 0.1, 1.0), layer("wide", 100, 1.0, 1.0)];
        let bits = allocate_bits(&layers, 5.0, 2, 8).unwrap();
        assert!(bits[1] > bits[0]);
    }

    #[test]
    fn respects_min_and_max_bounds() {
        let layers = vec![layer("x", 10, 1.0, 1e9), layer("y", 10, 1.0, 1e-9)];
        let bits = allocate_bits(&layers, 16.0, 3, 6).unwrap();
        assert!(bits.iter().all(|&b| (3..=6).contains(&b)));
        // Huge budget saturates everything at max.
        assert_eq!(bits, vec![6, 6]);
    }

    #[test]
    fn validates_arguments() {
        let layers = vec![layer("x", 10, 1.0, 1.0)];
        assert!(allocate_bits(&layers, 4.0, 0, 8).is_err());
        assert!(allocate_bits(&layers, 4.0, 6, 4).is_err());
        assert!(allocate_bits(&layers, 1.0, 4, 8).is_err()); // below floor
                                                             // Widths past MAX_BITS would overflow u32 level arithmetic; the
                                                             // allocator rejects them instead of handing out a poisoned plan.
        assert!(allocate_bits(&layers, 20.0, 4, 32).is_err());
        assert!(allocate_bits(&layers, 20.0, 4, 255).is_err());
    }

    #[test]
    fn delta_is_shift_safe_for_wide_bits() {
        // Regression: `1u32 << bits` used to overflow (debug panic /
        // release wrap) for bits ≥ 32. Hand-built sensitivities can still
        // carry such widths; delta must stay finite and monotone.
        let l = layer("x", 10, 1.0, 1.0);
        let mut prev = f32::INFINITY;
        for bits in [1u8, 4, 16, 31, 32, 33, 64, 255] {
            let d = l.delta(bits);
            assert!(d.is_finite() && d > 0.0, "delta({bits}) = {d}");
            assert!(d <= prev, "delta not monotone at {bits}");
            prev = d;
        }
        assert!(l.impact(255).is_finite());
    }

    #[test]
    fn network_sensitivities_cover_weights_only() {
        let net = mini_resnet(ModelConfig::default(), 1, &mut StdRng::seed_from_u64(0));
        let sens = network_sensitivities(&net);
        let weights = net
            .param_infos()
            .iter()
            .filter(|i| i.kind.is_quantizable())
            .count();
        assert_eq!(sens.len(), weights);
        assert!(sens.iter().all(|s| s.numel > 0 && s.max_abs > 0.0));
        assert!(sens.iter().all(|s| s.name.ends_with("weight")));
    }

    #[test]
    fn mixed_quantization_applies_per_layer_bits() {
        let net = mini_resnet(ModelConfig::default(), 1, &mut StdRng::seed_from_u64(1));
        let sens = network_sensitivities(&net);
        let bits = allocate_bits(&sens, 5.0, 2, 8).unwrap();
        let (qp, report) = quantize_params_mixed(&net, &bits).unwrap();
        assert_eq!(qp.len(), net.params().len());
        assert_eq!(report.quantized_tensors, sens.len());
        assert!(report.worst_linf <= report.max_bin_width / 2.0 + 1e-6);
        // Wrong arity is rejected.
        assert!(quantize_params_mixed(&net, &bits[..1]).is_err());
    }

    #[test]
    fn mixed_allocation_beats_uniform_at_equal_budget() {
        // Construct a synthetic two-layer case where the error model is
        // exact: impact ~ curvature * n * Δ²/24. Greedy should beat uniform.
        let layers = vec![layer("a", 1000, 1.0, 10.0), layer("b", 1000, 1.0, 0.1)];
        let mixed = allocate_bits(&layers, 4.0, 2, 8).unwrap();
        let uniform = vec![4u8, 4];
        let impact =
            |bits: &[u8]| -> f32 { layers.iter().zip(bits).map(|(l, &b)| l.impact(b)).sum() };
        assert!(impact(&mixed) < impact(&uniform));
    }
}
