//! Multi-epoch parallel≡serial-executor equivalence: full `train()` runs
//! (shuffled loader, augmentation, cosine schedule, eval) must produce
//! byte-identical weight trajectories for every `HERO_THREADS` worker
//! count, for SGD, SAM-only, and full HERO.

use hero_core::{train, TrainConfig};
use hero_data::{Dataset, SynthGenerator, SynthSpec};
use hero_nn::models::{mlp, ModelConfig};
use hero_nn::Network;
use hero_optim::Method;
use hero_tensor::rng::StdRng;

fn setup() -> (Network, Dataset, Dataset) {
    let spec = SynthSpec {
        classes: 4,
        hw: 4,
        noise_std: 0.2,
        ..SynthSpec::default()
    };
    let (train_set, test_set) = SynthGenerator::new(spec).train_test(48, 24);
    let cfg = ModelConfig {
        classes: 4,
        in_channels: 3,
        input_hw: 4,
        width: 4,
    };
    let net = mlp(cfg, &[20], &mut StdRng::seed_from_u64(3));
    (net, train_set, test_set)
}

fn param_bits(net: &Network) -> Vec<u32> {
    net.params()
        .iter()
        .flat_map(|t| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

/// Trains a fresh clone of the seed network with the given worker count
/// and returns the exact bit patterns of the final weights and the
/// per-epoch loss trajectory.
fn run(method: Method, threads: usize) -> (Vec<u32>, Vec<u32>) {
    let (seed_net, train_set, test_set) = setup();
    let mut net = seed_net.clone();
    let config = TrainConfig::new(method, 3)
        .with_batch_size(16)
        .with_lr(0.05)
        .with_seed(9)
        .with_threads(threads);
    let rec = train(&mut net, &train_set, &test_set, &config).unwrap();
    let losses = rec.epochs.iter().map(|e| e.train_loss.to_bits()).collect();
    (param_bits(&net), losses)
}

#[test]
fn multi_epoch_trajectories_match_across_thread_counts() {
    // Every worker count ≥ 1 runs the sharded executor, so the bitwise
    // contract is anchored at a single worker — which is what makes
    // saved model artifacts byte-equal across HERO_THREADS=1..4.
    for method in [
        Method::Sgd,
        Method::FirstOrderOnly { h: 0.05 },
        Method::Hero {
            h: 0.05,
            gamma: 0.1,
        },
    ] {
        let (ref_bits, ref_losses) = run(method, 1);
        for threads in 2..=4 {
            let (bits, losses) = run(method, threads);
            assert_eq!(
                losses,
                ref_losses,
                "{}: epoch losses diverged at {threads} threads",
                method.name()
            );
            assert_eq!(
                bits,
                ref_bits,
                "{}: final weights diverged at {threads} threads",
                method.name()
            );
        }
    }
}

#[test]
fn single_thread_runs_the_sharded_trajectory() {
    // threads=1 runs the sharded executor behind one worker so that every
    // HERO_THREADS ≥ 1 setting produces the same bytes (the artifact
    // pipeline's golden-file contract). Only threads=0 takes the serial
    // path, which is a distinct deterministic trajectory (different
    // summation order and batch-norm freshness) — assert both facts so a
    // dispatch regression in either direction is caught.
    let method = Method::Hero {
        h: 0.05,
        gamma: 0.1,
    };
    let (serial_bits, _) = run(method, 0);
    let (one_bits, one_losses) = run(method, 1);
    let (two_bits, two_losses) = run(method, 2);
    assert_eq!(
        one_losses, two_losses,
        "threads=1 losses differ from the sharded executor"
    );
    assert_eq!(
        one_bits, two_bits,
        "threads=1 weights differ from the sharded executor"
    );
    assert_ne!(
        one_bits, serial_bits,
        "sharded run unexpectedly bit-equal to serial; dispatch test is vacuous"
    );
}

#[test]
fn parallel_run_matches_serial_metrics_quality() {
    // The parallel path is not bit-equal to the serial path (different
    // f32 summation order), but it must train equally well and keep the
    // same gradient-evaluation accounting.
    let (seed_net, train_set, test_set) = setup();
    let method = Method::Hero {
        h: 0.05,
        gamma: 0.1,
    };
    let mut serial_net = seed_net.clone();
    let serial = train(
        &mut serial_net,
        &train_set,
        &test_set,
        &TrainConfig::new(method, 3)
            .with_batch_size(16)
            .with_lr(0.05)
            .with_seed(9)
            .with_threads(0),
    )
    .unwrap();
    let mut par_net = seed_net.clone();
    let parallel = train(
        &mut par_net,
        &train_set,
        &test_set,
        &TrainConfig::new(method, 3)
            .with_batch_size(16)
            .with_lr(0.05)
            .with_seed(9)
            .with_threads(2),
    )
    .unwrap();
    assert_eq!(serial.grad_evals, parallel.grad_evals);
    let s = serial.epochs.last().unwrap().train_loss;
    let p = parallel.epochs.last().unwrap().train_loss;
    assert!(
        (s - p).abs() < 0.1,
        "serial loss {s} vs parallel loss {p} drifted apart"
    );
}
