//! Dropout layer (the classic generalization baseline the paper's related
//! work compares against).

use crate::module::{Layer, ParamInfo, ParamSource};
use hero_autodiff::{Graph, Var};
use hero_tensor::rng::Rng;
use hero_tensor::rng::StdRng;
use hero_tensor::{Result, Tensor};

/// Inverted dropout: at training time each activation is kept with
/// probability `keep_prob` and scaled by `1/keep_prob`; at eval time the
/// layer is the identity.
///
/// The layer owns its RNG (seeded at construction) so serial training
/// runs stay reproducible. That same owned RNG makes the layer
/// [`Layer::rng_stateful`]: cloned replicas advance their RNG copies
/// independently, so the data-parallel executor refuses networks that
/// contain a masking dropout layer.
#[derive(Debug, Clone)]
pub struct Dropout {
    keep_prob: f32,
    rng: StdRng,
}

impl Dropout {
    /// Creates a dropout layer keeping activations with `keep_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `keep_prob` is not in `(0, 1]` — the rate is a fixed
    /// architecture hyper-parameter, so an invalid value is a programming
    /// error.
    pub fn new(keep_prob: f32, seed: u64) -> Self {
        assert!(
            keep_prob > 0.0 && keep_prob <= 1.0,
            "keep probability {keep_prob} must lie in (0, 1]"
        );
        Dropout {
            keep_prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured keep probability.
    pub fn keep_prob(&self) -> f32 {
        self.keep_prob
    }
}

impl Layer for Dropout {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool, _vars: &mut Vec<Var>) -> Result<Var> {
        if !train || self.keep_prob >= 1.0 {
            return Ok(x);
        }
        let mut mask = Tensor::zeros(g.value(x).shape().clone());
        for v in mask.data_mut() {
            *v = if self.rng.gen::<f32>() < self.keep_prob {
                1.0
            } else {
                0.0
            };
        }
        g.dropout(x, &mask, self.keep_prob)
    }

    fn collect_params(&self, _out: &mut Vec<Tensor>) {}

    fn assign_params(&mut self, _src: &mut ParamSource<'_>) -> Result<()> {
        Ok(())
    }

    fn param_infos(&self, _prefix: &str, _out: &mut Vec<ParamInfo>) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn rng_stateful(&self) -> bool {
        // keep_prob == 1.0 short-circuits forward before any RNG draw, so
        // only a masking configuration carries scheduling-sensitive state.
        self.keep_prob < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones([16]));
        let mut vars = Vec::new();
        let y = d.forward(&mut g, x, false, &mut vars).unwrap();
        assert_eq!(g.value(y).data(), g.value(x).data());
    }

    #[test]
    fn keep_prob_one_is_identity_even_in_train() {
        let mut d = Dropout::new(1.0, 0);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones([8]));
        let mut vars = Vec::new();
        let y = d.forward(&mut g, x, true, &mut vars).unwrap();
        assert_eq!(g.value(y).data(), g.value(x).data());
    }

    #[test]
    fn train_mode_zeroes_roughly_the_right_fraction() {
        let mut d = Dropout::new(0.75, 1);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones([1000]));
        let mut vars = Vec::new();
        let y = d.forward(&mut g, x, true, &mut vars).unwrap();
        let kept = g.value(y).data().iter().filter(|&&v| v != 0.0).count();
        assert!((650..=850).contains(&kept), "kept {kept}/1000 at p=0.75");
        // Kept activations are scaled by 1/keep_prob.
        let nonzero = g.value(y).data().iter().find(|&&v| v != 0.0).unwrap();
        assert!((nonzero - 1.0 / 0.75).abs() < 1e-5);
    }

    #[test]
    fn expected_value_is_preserved() {
        let mut d = Dropout::new(0.5, 2);
        let mut total = 0.0;
        let runs = 200;
        for _ in 0..runs {
            let mut g = Graph::new();
            let x = g.input(Tensor::ones([64]));
            let mut vars = Vec::new();
            let y = d.forward(&mut g, x, true, &mut vars).unwrap();
            total += g.value(y).mean();
        }
        let mean = total / runs as f32;
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean}");
    }

    #[test]
    fn has_no_parameters() {
        let d = Dropout::new(0.5, 3);
        assert_eq!(d.keep_prob(), 0.5);
        let mut ps = Vec::new();
        d.collect_params(&mut ps);
        assert!(ps.is_empty());
    }

    #[test]
    #[should_panic(expected = "keep probability")]
    fn rejects_zero_keep_prob() {
        Dropout::new(0.0, 0);
    }
}
