//! End-to-end exercise of the static quantization-noise domain on the
//! conv/BN path: a briefly-trained mini ResNet must pass the
//! measurement crosscheck (zero soundness violations) and the
//! `quant_sweep` dominance gate, and the static sensitivity matrix must
//! drive a feasible mixed-precision allocation.

use hero_core::{noise_crosscheck, static_sensitivity_matrix, train, TrainConfig};
use hero_data::{Dataset, SynthGenerator, SynthSpec};
use hero_nn::models::{mini_resnet, ModelConfig};
use hero_nn::Network;
use hero_optim::Method;
use hero_tensor::rng::StdRng;

fn setup() -> (Network, Dataset, Dataset) {
    let spec = SynthSpec {
        classes: 4,
        hw: 8,
        noise_std: 0.2,
        ..SynthSpec::default()
    };
    let (train_set, test_set) = SynthGenerator::new(spec).train_test(48, 24);
    let cfg = ModelConfig {
        classes: 4,
        in_channels: 3,
        input_hw: 8,
        width: 4,
    };
    let net = mini_resnet(cfg, 1, &mut StdRng::seed_from_u64(11));
    (net, train_set, test_set)
}

#[test]
fn crosscheck_is_sound_on_trained_conv_bn_model() {
    let (mut net, train_set, test_set) = setup();
    let cfg = TrainConfig::new(Method::Sgd, 2).with_seed(7);
    train(&mut net, &train_set, &test_set, &cfg).unwrap();

    let probe = test_set.len().min(16);
    let images = test_set.images.narrow(0, probe).unwrap();
    let labels = &test_set.labels[..probe];
    let grid = [4u8, 8];
    let before = net.params();
    let report = noise_crosscheck(&mut net, &images, labels, &grid, 2, 0xC0DE).unwrap();

    assert_eq!(
        report.violations,
        0,
        "measured quantization error escaped a certified bound: {:?}",
        report
            .cells
            .iter()
            .filter(|c| c.violated)
            .collect::<Vec<_>>()
    );
    let quantizable = net
        .param_infos()
        .iter()
        .filter(|i| i.kind.is_quantizable())
        .count();
    assert_eq!(report.cells.len(), quantizable * grid.len());
    assert!(report.cells.iter().all(|c| c.certified.is_finite()));
    assert!((0.0..=1.0).contains(&report.overlap));
    // Crosscheck must leave the weights exactly as it found them.
    assert_eq!(net.params(), before);

    // The same probe feeds a feasible mixed-precision allocation.
    let matrix = static_sensitivity_matrix(&mut net, &images, labels, &grid).unwrap();
    let bits = matrix.allocate(6.0, 4, 8).unwrap();
    assert_eq!(bits.len(), quantizable);
    assert!(bits.iter().all(|&b| (4..=8).contains(&b)));
    let total: usize = matrix.layers.iter().map(|l| l.numel).sum();
    let spent: usize = matrix
        .layers
        .iter()
        .zip(&bits)
        .map(|(l, &b)| l.numel * usize::from(b))
        .sum();
    assert!(spent <= (6.0 * total as f32).floor() as usize);
}
