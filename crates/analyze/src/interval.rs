//! Forward interval-domain abstract interpretation over the trace IR.
//!
//! Every tape node gets a sound enclosure `[lo, hi]` (plus a
//! NaN-possibility flag) of the values its tensor can hold, given declared
//! ranges for the input leaves ([`RangeSeed`]). Transfer functions run in
//! `f64` and widen outward before narrowing back to `f32`, so the computed
//! interval contains the `f32` values the forward pass actually produces
//! despite rounding — contraction ops (matmul, conv, sums) widen
//! proportionally to the number of accumulated terms, covering the
//! summation error bound `γ_K ≈ K·2⁻²⁴`.
//!
//! On top of the computed intervals this module emits the value-level
//! lints: [`DiagCode::NonFiniteRange`], [`DiagCode::SaturationDeadZone`]
//! and [`DiagCode::QuantClipRisk`].

use crate::diag::{DiagCode, Diagnostic};
use crate::verify::provenance;
use crate::ValueOptions;
use hero_autodiff::{NodeTrace, TraceDetail};
use std::num::FpCategory;

/// Relative outward-widening margin applied per transfer (one op's worth
/// of `f32` rounding is ~6e-8 relative; 1e-6 leaves headroom).
pub(crate) const REL_MARGIN: f64 = 1e-6;
/// Absolute widening floor so intervals around zero still widen.
pub(crate) const ABS_MARGIN: f64 = 1e-33;
/// Per-term relative slack for K-term contractions (4x the `γ_K` bound
/// `K·2⁻²⁴` per term).
pub(crate) const CONTRACT_MARGIN: f64 = 2.4e-7;

/// Declared value range for an input leaf, seeding the interval pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeSeed {
    /// Tape index of the input node.
    pub node: usize,
    /// Smallest value the leaf can hold.
    pub lo: f32,
    /// Largest value the leaf can hold.
    pub hi: f32,
}

/// A closed value enclosure `[lo, hi]`, plus whether NaN is possible.
///
/// Invariant: `lo` and `hi` are never NaN (`lo <= hi`, both possibly
/// infinite); NaN-ness is tracked separately in `maybe_nan`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f32,
    /// Upper bound.
    pub hi: f32,
    /// True when a value in this node could be NaN.
    pub maybe_nan: bool,
}

impl Default for Interval {
    fn default() -> Self {
        Interval::TOP
    }
}

impl Interval {
    /// The unbounded interval: nothing is known about the node.
    pub const TOP: Interval = Interval {
        lo: f32::NEG_INFINITY,
        hi: f32::INFINITY,
        maybe_nan: true,
    };

    /// An interval from unordered endpoints; NaN endpoints yield
    /// [`Interval::TOP`].
    pub fn of(a: f32, b: f32) -> Self {
        if a.is_nan() || b.is_nan() {
            return Interval::TOP;
        }
        Interval {
            lo: a.min(b),
            hi: a.max(b),
            maybe_nan: false,
        }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f32) -> Self {
        Interval::of(v, v)
    }

    /// `hi - lo` (infinite for unbounded intervals).
    pub fn width(self) -> f32 {
        self.hi - self.lo
    }

    /// Largest magnitude the interval admits (infinite when NaN is
    /// possible).
    pub fn abs_max(self) -> f32 {
        if self.maybe_nan {
            return f32::INFINITY;
        }
        self.lo.abs().max(self.hi.abs())
    }

    /// True when both bounds are finite and NaN is excluded.
    pub fn is_finite(self) -> bool {
        self.lo.is_finite() && self.hi.is_finite() && !self.maybe_nan
    }

    /// Membership test; NaN is a member iff `maybe_nan`.
    pub fn contains(self, v: f32) -> bool {
        if v.is_nan() {
            return self.maybe_nan;
        }
        self.lo <= v && v <= self.hi
    }

    /// Smallest interval containing both operands.
    pub fn hull(self, o: Self) -> Self {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
            maybe_nan: self.maybe_nan || o.maybe_nan,
        }
    }

    pub(crate) fn add(self, o: Self) -> Self {
        from64(
            self.lo as f64 + o.lo as f64,
            self.hi as f64 + o.hi as f64,
            self.maybe_nan || o.maybe_nan,
        )
    }

    pub(crate) fn sub(self, o: Self) -> Self {
        from64(
            self.lo as f64 - o.hi as f64,
            self.hi as f64 - o.lo as f64,
            self.maybe_nan || o.maybe_nan,
        )
    }

    pub(crate) fn mul(self, o: Self) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &a in &[self.lo as f64, self.hi as f64] {
            for &b in &[o.lo as f64, o.hi as f64] {
                let p = a * b;
                if p.is_nan() {
                    // 0 * inf at an endpoint: the concrete products are
                    // unbounded in sign; give up on this node.
                    return Interval::TOP;
                }
                lo = lo.min(p);
                hi = hi.max(p);
            }
        }
        from64(lo, hi, self.maybe_nan || o.maybe_nan)
    }

    pub(crate) fn square(self) -> Self {
        let (l, h) = (self.lo as f64, self.hi as f64);
        let hi = (l * l).max(h * h);
        let lo = if self.lo <= 0.0 && self.hi >= 0.0 {
            0.0
        } else {
            (l * l).min(h * h)
        };
        from64(lo, hi, self.maybe_nan)
    }

    /// Transfer through a monotonically increasing `f`, optionally
    /// intersected with `f`'s exact codomain (sound because concrete
    /// outputs cannot leave the codomain regardless of rounding).
    fn monotone(self, f: impl Fn(f64) -> f64, codomain: Option<(f32, f32)>) -> Self {
        let mut out = from64(f(self.lo as f64), f(self.hi as f64), self.maybe_nan);
        if let Some((clo, chi)) = codomain {
            out.lo = out.lo.max(clo);
            out.hi = out.hi.min(chi);
        }
        out
    }

    /// Widens both bounds outward by `count` terms' worth of accumulation
    /// slack (used after mean/pool style reductions computed in `f32`).
    fn widen_by(self, count: usize) -> Self {
        let slack = count as f64 * CONTRACT_MARGIN * self.abs_max() as f64 + ABS_MARGIN;
        Interval {
            lo: (self.lo as f64 - slack) as f32,
            hi: (self.hi as f64 + slack) as f32,
            maybe_nan: self.maybe_nan,
        }
    }
}

/// Builds an interval from `f64` bounds, widening one op's rounding worth
/// outward. NaN bounds collapse to the unbounded side and set the flag.
fn from64(lo: f64, hi: f64, nan: bool) -> Interval {
    let nan = nan || lo.is_nan() || hi.is_nan();
    let lo = if lo.is_nan() { f64::NEG_INFINITY } else { lo };
    let hi = if hi.is_nan() { f64::INFINITY } else { hi };
    Interval {
        lo: (lo - lo.abs() * REL_MARGIN - ABS_MARGIN) as f32,
        hi: (hi + hi.abs() * REL_MARGIN + ABS_MARGIN) as f32,
        maybe_nan: nan,
    }
}

/// `K`-term contraction: the sum of `K` values drawn from `p`, widened by
/// the `f32` summation error bound.
fn contract(p: Interval, k: usize) -> Interval {
    let kf = (k as f64).max(1.0);
    let slack = kf * kf * CONTRACT_MARGIN * p.abs_max() as f64 + ABS_MARGIN;
    Interval {
        lo: (p.lo as f64 * kf - slack) as f32,
        hi: (p.hi as f64 * kf + slack) as f32,
        maybe_nan: p.maybe_nan,
    }
}

fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Runs the forward interval pass over a (structurally sound) tape,
/// returning one interval per node. Inputs without a seed, and ops the
/// pass cannot bound, get [`Interval::TOP`].
pub fn interval_pass(tape: &[NodeTrace], seeds: &[RangeSeed]) -> Vec<Interval> {
    let mut out: Vec<Interval> = Vec::with_capacity(tape.len());
    for (i, node) in tape.iter().enumerate() {
        // Defensive accessors: the pass only runs on tapes without
        // structural errors, but stays panic-free regardless.
        let p = |slot: usize| -> Interval {
            node.parents
                .get(slot)
                .filter(|&&idx| idx < i)
                .map_or(Interval::TOP, |&idx| out[idx])
        };
        let pshape = |slot: usize| -> &[usize] {
            node.parents
                .get(slot)
                .filter(|&&idx| idx < i)
                .map_or(&[][..], |&idx| &tape[idx].shape)
        };
        let scalar_c = match node.detail {
            TraceDetail::Scalar { c } => Some(c),
            _ => None,
        };
        let iv = match node.op {
            "input" => seeds
                .iter()
                .find(|s| s.node == i)
                .map_or(Interval::TOP, |s| Interval::of(s.lo, s.hi)),
            "add" => p(0).add(p(1)),
            "sub" => p(0).sub(p(1)),
            "mul" => p(0).mul(p(1)),
            "scale" => scalar_c.map_or(Interval::TOP, |c| p(0).mul(Interval::point(c))),
            "add_scalar" => scalar_c.map_or(Interval::TOP, |c| p(0).add(Interval::point(c))),
            "matmul" => {
                let k = pshape(0).get(1).copied().unwrap_or(0);
                contract(p(0).mul(p(1)), k)
            }
            "relu" => {
                let x = p(0);
                Interval {
                    lo: x.lo.max(0.0),
                    hi: x.hi.max(0.0),
                    maybe_nan: x.maybe_nan,
                }
            }
            "relu6" => {
                let x = p(0);
                Interval {
                    lo: x.lo.clamp(0.0, 6.0),
                    hi: x.hi.clamp(0.0, 6.0),
                    maybe_nan: x.maybe_nan,
                }
            }
            "square" => p(0).square(),
            "reshape" | "max_pool2d" => p(0),
            "sum" => contract(p(0), numel(pshape(0))),
            "mean" => p(0).widen_by(numel(pshape(0))),
            "conv2d" | "depthwise_conv2d" => {
                let k = match node.detail {
                    TraceDetail::Conv { geom } => {
                        if node.op == "conv2d" {
                            pshape(0).get(1).copied().unwrap_or(0) * geom.kernel * geom.kernel
                        } else {
                            geom.kernel * geom.kernel
                        }
                    }
                    _ => 0,
                };
                if k == 0 {
                    Interval::TOP
                } else {
                    contract(p(0).mul(p(1)), k)
                }
            }
            "batch_norm" => {
                // Per channel, sum(xhat^2) <= M = n*h*w regardless of the
                // input values (var/(var+eps) <= 1), so |xhat| <= sqrt(M).
                // This is input-independent: it holds for any batch, not
                // just the recorded one.
                let xs = pshape(0);
                if xs.len() != 4 {
                    Interval::TOP
                } else {
                    let m = xs[0] * xs[2] * xs[3];
                    let a = (m as f64).sqrt() as f32;
                    let xhat = Interval::of(-a, a).widen_by(m);
                    xhat.mul(p(1)).add(p(2))
                }
            }
            "avg_pool2d" => match node.detail {
                TraceDetail::AvgPool { k } => p(0).widen_by(k * k),
                _ => Interval::TOP,
            },
            "global_avg_pool2d" => {
                let xs = pshape(0);
                if xs.len() != 4 {
                    Interval::TOP
                } else {
                    p(0).widen_by(xs[2] * xs[3])
                }
            }
            "cross_entropy" | "cross_entropy_smoothed" => {
                // -log p_y = logsumexp(z) - z_y <= ln(C) + (hi - lo); the
                // implementation also clamps p at 1e-12, capping each term
                // at -ln(1e-12) even for non-finite logits. The lower
                // bound allows softmax rows to round slightly above 1.
                let z = p(0);
                let classes = pshape(0).get(1).copied().unwrap_or(1).max(1);
                let batch = pshape(0).first().copied().unwrap_or(1).max(1);
                let clamp_cap = 27.64; // -ln(1e-12), rounded up
                let hi = if z.is_finite() {
                    ((classes as f64).ln() + (z.hi as f64 - z.lo as f64)).min(clamp_cap)
                } else {
                    clamp_cap
                };
                Interval::of(-1e-4, hi as f32).widen_by(batch * classes)
            }
            "sigmoid" => p(0).monotone(|x| 1.0 / (1.0 + (-x).exp()), Some((0.0, 1.0))),
            "tanh" => p(0).monotone(f64::tanh, Some((-1.0, 1.0))),
            "leaky_relu" => match scalar_c {
                Some(s) => {
                    let f = |x: f64| if x > 0.0 { x } else { s as f64 * x };
                    let x = p(0);
                    let (a, b) = (f(x.lo as f64), f(x.hi as f64));
                    let mut lo = a.min(b);
                    let mut hi = a.max(b);
                    if x.lo < 0.0 && x.hi > 0.0 {
                        lo = lo.min(0.0);
                        hi = hi.max(0.0);
                    }
                    from64(lo, hi, x.maybe_nan)
                }
                None => Interval::TOP,
            },
            "ln" => {
                let x = p(0);
                if x.hi <= 0.0 {
                    // Only -inf (at exactly 0) or NaN (below 0) possible.
                    Interval {
                        lo: f32::NEG_INFINITY,
                        hi: f32::NEG_INFINITY,
                        maybe_nan: x.lo < 0.0 || x.maybe_nan,
                    }
                } else {
                    let lo = if x.lo <= 0.0 {
                        f64::NEG_INFINITY
                    } else {
                        (x.lo as f64).ln()
                    };
                    from64(lo, (x.hi as f64).ln(), x.lo < 0.0 || x.maybe_nan)
                }
            }
            "dropout" => match node.detail {
                TraceDetail::Dropout { max_scale } => p(0).mul(Interval::of(0.0, max_scale)),
                _ => Interval::TOP,
            },
            "mse_loss" => match node.detail {
                TraceDetail::Mse {
                    target_lo,
                    target_hi,
                } => {
                    let d = p(0).sub(Interval::of(target_lo, target_hi));
                    let mut m = d.square().widen_by(numel(pshape(0)));
                    // mean of f32 squares is exactly nonnegative.
                    m.lo = m.lo.max(0.0);
                    m
                }
                _ => Interval::TOP,
            },
            _ => Interval::TOP,
        };
        out.push(iv);
    }
    out
}

/// True when a tensor bounded by `iv` would clip under symmetric uniform
/// quantization at `bits` with clip range `max_abs`: some admissible value
/// lies beyond the last representable level plus half a step.
pub fn quant_clip_risk(iv: Interval, bits: u8, max_abs: f32) -> bool {
    if bits < 2 || !max_abs.is_finite() || max_abs <= 0.0 {
        return false;
    }
    let half_levels = ((1u32 << (bits - 1)) - 1) as f32;
    let delta = max_abs / half_levels;
    iv.abs_max() > max_abs + 0.5 * delta
}

/// Dead-zone test for an activation op: true when every value the parent
/// interval admits has an exactly-zero `f32` local gradient. The
/// constants are conservative for the backward rules in `hero-autodiff`:
/// sigmoid recomputes `y = 1/(1+e^-x)` and `y(1-y)` in `f32` (`y == 1`
/// for `x >= 17`, `y == 0` for `x <= -89`); `tanh(x) == ±1` in `f32`
/// well before `|x| = 10`.
fn saturation_dead(op: &str, x: Interval, slope: Option<f32>) -> bool {
    if x.maybe_nan {
        return false;
    }
    match op {
        "relu" => x.hi <= 0.0,
        "relu6" => x.hi <= 0.0 || x.lo >= 6.0,
        "sigmoid" => x.lo >= 17.0 || x.hi <= -89.0,
        "tanh" => x.lo >= 10.0 || x.hi <= -10.0,
        "leaky_relu" => slope.is_some_and(|s| s.classify() == FpCategory::Zero) && x.hi <= 0.0,
        _ => false,
    }
}

/// Emits the interval-based lints over computed intervals.
pub(crate) fn interval_diags(
    tape: &[NodeTrace],
    intervals: &[Interval],
    opts: &ValueOptions,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let diag = |node: usize, code: DiagCode, message: String| Diagnostic {
        node,
        op: tape[node].op.to_string(),
        code,
        message,
        provenance: provenance(tape, node),
    };

    // Default clip range: the largest seed magnitude (the "input grid"
    // policy — interior activations that outgrow the seeded data range
    // are the ones a shared-range quantizer would clip).
    let clip_range = opts.quant_max_abs.unwrap_or_else(|| {
        opts.seeds
            .iter()
            .map(|s| s.lo.abs().max(s.hi.abs()))
            .fold(0.0, f32::max)
    });

    for (i, node) in tape.iter().enumerate() {
        let iv = intervals[i];

        if !iv.is_finite() {
            // Report at the origin: the first node whose interval goes
            // non-finite while its parents (if any) were still finite.
            let parents_ok = node
                .parents
                .iter()
                .all(|&p| p < i && intervals[p].is_finite());
            if parents_ok {
                out.push(diag(
                    i,
                    DiagCode::NonFiniteRange,
                    format!(
                        "derived interval [{:e}, {:e}]{} is not finite{}",
                        iv.lo,
                        iv.hi,
                        if iv.maybe_nan { " (NaN possible)" } else { "" },
                        if node.op == "input" {
                            " — seed the input with a finite range"
                        } else {
                            ""
                        }
                    ),
                ));
            }
            continue;
        }

        let slope = match node.detail {
            TraceDetail::Scalar { c } => Some(c),
            _ => None,
        };
        if let Some(&x) = node
            .parents
            .first()
            .filter(|&&p| p < i)
            .map(|p| &intervals[*p])
        {
            if saturation_dead(node.op, x, slope) {
                out.push(diag(
                    i,
                    DiagCode::SaturationDeadZone,
                    format!(
                        "input interval [{:e}, {:e}] lies entirely in the zero-gradient \
                         region of `{}`; no gradient can flow through this node",
                        x.lo, x.hi, node.op
                    ),
                ));
            }
        }

        if !opts.quant_bits.is_empty() && clip_range > 0.0 && clip_range.is_finite() {
            let offending: Vec<u8> = opts
                .quant_bits
                .iter()
                .copied()
                .filter(|&b| quant_clip_risk(iv, b, clip_range))
                .collect();
            if !offending.is_empty() {
                out.push(diag(
                    i,
                    DiagCode::QuantClipRisk,
                    format!(
                        "interval [{:e}, {:e}] exceeds the representable range of \
                         {clip_range:e}-clipped symmetric quantization at bit width(s) \
                         {offending:?}",
                        iv.lo, iv.hi
                    ),
                ));
            }
        }
    }
    out
}
