//! Saving and restoring network weights.
//!
//! The format is a small self-describing binary container (magic, version,
//! tensor count, then per-tensor rank/dims/data as little-endian), so
//! trained checkpoints can be moved between the reproduction binaries, the
//! examples and downstream users without any serialization dependency.

use crate::module::Network;
use hero_tensor::{Result, Shape, Tensor, TensorError};
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"HEROCKP1";

/// Writes the network's parameters (canonical order) to `w`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] wrapping any I/O failure.
pub fn save_params<W: Write>(net: &Network, mut w: W) -> Result<()> {
    let params = net.params();
    let io = |e: std::io::Error| TensorError::InvalidArgument(format!("checkpoint write: {e}"));
    w.write_all(MAGIC).map_err(io)?;
    w.write_all(&(params.len() as u64).to_le_bytes())
        .map_err(io)?;
    for p in &params {
        w.write_all(&(p.rank() as u64).to_le_bytes()).map_err(io)?;
        for &d in p.dims() {
            w.write_all(&(d as u64).to_le_bytes()).map_err(io)?;
        }
        for &v in p.data() {
            w.write_all(&v.to_le_bytes()).map_err(io)?;
        }
    }
    Ok(())
}

/// Reads parameters from `r` and installs them into the network.
///
/// # Errors
///
/// Returns an error on I/O failure, bad magic, or a parameter mismatch
/// (count or shapes) against the target network.
pub fn load_params<R: Read>(net: &mut Network, mut r: R) -> Result<()> {
    let io = |e: std::io::Error| TensorError::InvalidArgument(format!("checkpoint read: {e}"));
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io)?;
    if &magic != MAGIC {
        return Err(TensorError::InvalidArgument(
            "not a HERO checkpoint (bad magic)".into(),
        ));
    }
    let count = read_u64(&mut r)? as usize;
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u64(&mut r)? as usize;
        if rank > 8 {
            return Err(TensorError::InvalidArgument(format!(
                "implausible tensor rank {rank} in checkpoint"
            )));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(&mut r)? as usize);
        }
        let shape = Shape::new(dims);
        let mut data = vec![0.0f32; shape.numel()];
        for v in &mut data {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf).map_err(io)?;
            *v = f32::from_le_bytes(buf);
        }
        params.push(Tensor::from_vec(data, shape)?);
    }
    net.set_params(&params)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)
        .map_err(|e| TensorError::InvalidArgument(format!("checkpoint read: {e}")))?;
    Ok(u64::from_le_bytes(buf))
}

/// Saves to a filesystem path.
///
/// # Errors
///
/// See [`save_params`].
pub fn save_params_to_file(net: &Network, path: &std::path::Path) -> Result<()> {
    let f = std::fs::File::create(path)
        .map_err(|e| TensorError::InvalidArgument(format!("create {path:?}: {e}")))?;
    save_params(net, std::io::BufWriter::new(f))
}

/// Loads from a filesystem path.
///
/// # Errors
///
/// See [`load_params`].
pub fn load_params_from_file(net: &mut Network, path: &std::path::Path) -> Result<()> {
    let f = std::fs::File::open(path)
        .map_err(|e| TensorError::InvalidArgument(format!("open {path:?}: {e}")))?;
    load_params(net, std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{mini_resnet, mlp, ModelConfig};
    use hero_tensor::rng::StdRng;

    #[test]
    fn round_trip_preserves_every_parameter() {
        let cfg = ModelConfig::default();
        let net = mini_resnet(cfg, 1, &mut StdRng::seed_from_u64(0));
        let mut buf = Vec::new();
        save_params(&net, &mut buf).unwrap();
        let mut other = mini_resnet(cfg, 1, &mut StdRng::seed_from_u64(99));
        assert_ne!(net.params(), other.params());
        load_params(&mut other, buf.as_slice()).unwrap();
        assert_eq!(net.params(), other.params());
    }

    #[test]
    fn predictions_survive_the_round_trip() {
        let cfg = ModelConfig {
            classes: 3,
            in_channels: 1,
            input_hw: 4,
            width: 4,
        };
        let mut net = mlp(cfg, &[8], &mut StdRng::seed_from_u64(1));
        let x = Tensor::from_fn([2, 1, 4, 4], |i| i.iter().sum::<usize>() as f32 * 0.1);
        let before = net.predict(&x).unwrap();
        let mut buf = Vec::new();
        save_params(&net, &mut buf).unwrap();
        let mut restored = mlp(cfg, &[8], &mut StdRng::seed_from_u64(2));
        load_params(&mut restored, buf.as_slice()).unwrap();
        assert_eq!(restored.predict(&x).unwrap(), before);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let cfg = ModelConfig {
            classes: 2,
            in_channels: 1,
            input_hw: 2,
            width: 4,
        };
        let mut net = mlp(cfg, &[4], &mut StdRng::seed_from_u64(3));
        assert!(load_params(&mut net, &b"NOTAHERO"[..]).is_err());
        let mut buf = Vec::new();
        save_params(&net, &mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        assert!(load_params(&mut net, truncated).is_err());
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let cfg = ModelConfig {
            classes: 2,
            in_channels: 1,
            input_hw: 2,
            width: 4,
        };
        let small = mlp(cfg, &[4], &mut StdRng::seed_from_u64(4));
        let mut buf = Vec::new();
        save_params(&small, &mut buf).unwrap();
        let mut big = mlp(cfg, &[8], &mut StdRng::seed_from_u64(5));
        assert!(load_params(&mut big, buf.as_slice()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let cfg = ModelConfig {
            classes: 2,
            in_channels: 1,
            input_hw: 2,
            width: 4,
        };
        let net = mlp(cfg, &[4], &mut StdRng::seed_from_u64(6));
        let dir = std::env::temp_dir().join("hero_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.ckpt");
        save_params_to_file(&net, &path).unwrap();
        let mut other = mlp(cfg, &[4], &mut StdRng::seed_from_u64(7));
        load_params_from_file(&mut other, &path).unwrap();
        assert_eq!(net.params(), other.params());
        std::fs::remove_file(&path).ok();
        // Missing file errors cleanly.
        assert!(load_params_from_file(&mut other, &path).is_err());
    }
}
