//! # hero-optim
//!
//! Training methods for the HERO (DAC 2022) reproduction: plain SGD, the
//! first-order-only / SAM rule, the GRAD-L1 baseline [Alizadeh et al.
//! 2020], and HERO itself (Eq. 17 / Algorithm 1), all sharing
//! SGD-with-momentum, weight decay and cosine learning-rate scheduling.
//!
//! The [`Optimizer`] is model-agnostic — it drives any
//! [`hero_hessian::GradOracle`] — and [`train_step`] adapts it to a
//! [`hero_nn::Network`] with one call.
//!
//! # Examples
//!
//! ```
//! use hero_optim::{Method, Optimizer};
//! use hero_hessian::Quadratic;
//! use hero_tensor::Tensor;
//!
//! # fn main() -> Result<(), hero_tensor::TensorError> {
//! let q = Quadratic::diag(&[1.0, 5.0]);
//! let mut opt = Optimizer::new(Method::Hero { h: 0.05, gamma: 0.1 })
//!     .with_weight_decay(0.0);
//! let mut params = vec![Tensor::from_vec(vec![1.0, 1.0], [2])?];
//! let mut oracle = q.oracle();
//! for _ in 0..100 {
//!     opt.step(&mut oracle, &mut params, &[false], 0.05)?;
//! }
//! assert!(q.loss(&params[0])? < 1e-3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod extras;
mod method;
mod oracle;
mod schedule;
mod sgd;

pub use extras::{clip_global_norm, NesterovState, Warmup};
pub use method::{Method, Optimizer, StepStats};
pub use oracle::{train_step, BatchOracle};
pub use schedule::LrSchedule;
pub use sgd::SgdState;
