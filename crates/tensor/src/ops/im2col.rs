//! `im2col`/`col2im` lowering used to express convolution as matmul.

use crate::error::{Result, TensorError};
use crate::pool;
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution window over an NCHW input.
///
/// # Examples
///
/// ```
/// use hero_tensor::ConvGeometry;
///
/// # fn main() -> Result<(), hero_tensor::TensorError> {
/// let g = ConvGeometry::new(8, 8, 3, 1, 1)?; // 8x8 input, 3x3 kernel, stride 1, pad 1
/// assert_eq!(g.out_hw(), (8, 8)); // "same" convolution
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding on every side.
    pub pad: usize,
}

impl ConvGeometry {
    /// Creates and validates a convolution geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] for a zero stride/kernel or
    /// a kernel larger than the padded input.
    pub fn new(in_h: usize, in_w: usize, kernel: usize, stride: usize, pad: usize) -> Result<Self> {
        if stride == 0 || kernel == 0 {
            return Err(TensorError::InvalidGeometry(
                "kernel and stride must be positive".into(),
            ));
        }
        if kernel > in_h + 2 * pad || kernel > in_w + 2 * pad {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {kernel} exceeds padded input {}x{}",
                in_h + 2 * pad,
                in_w + 2 * pad
            )));
        }
        Ok(ConvGeometry {
            in_h,
            in_w,
            kernel,
            stride,
            pad,
        })
    }

    /// Output spatial size `(out_h, out_w)`.
    pub fn out_hw(&self) -> (usize, usize) {
        let oh = (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1;
        let ow = (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1;
        (oh, ow)
    }
}

/// The plain-old-data description of an [`Im2colView`]: input layout plus
/// convolution geometry, with the output spatial size precomputed.
///
/// Split out from the view so the parallel GEMM macro-kernel can ship it
/// across worker threads by value next to a raw data pointer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Im2colMeta {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding on every side.
    pub pad: usize,
    /// Output height.
    pub oh: usize,
    /// Output width.
    pub ow: usize,
}

/// A zero-materialization view of `im2col(x)`: logically the
/// `(C·k·k, N·oh·ow)` patch matrix of [`Tensor::im2col`], but backed
/// directly by the NCHW input. The GEMM packing routine reads patch
/// elements straight out of the input while building its NR-column panels
/// (contiguous stride-1 runs become `copy_from_slice`), so convolution
/// never allocates the full patch matrix. Element values are identical to
/// the materialized lowering (padding reads as `0.0`), which keeps the
/// fused path bitwise equal to `im2col` + `matmul`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Im2colView<'a> {
    pub(crate) meta: Im2colMeta,
    pub(crate) data: &'a [f32],
}

impl<'a> Im2colView<'a> {
    /// Builds a view over a 4-D NCHW input, with the same validation as
    /// [`Tensor::im2col`].
    pub(crate) fn new(x: &'a Tensor, geom: &ConvGeometry) -> Result<Self> {
        if x.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: x.rank(),
            });
        }
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        if h != geom.in_h || w != geom.in_w {
            return Err(TensorError::InvalidGeometry(format!(
                "geometry expects {}x{}, input is {h}x{w}",
                geom.in_h, geom.in_w
            )));
        }
        let (oh, ow) = geom.out_hw();
        Ok(Im2colView {
            meta: Im2colMeta {
                n,
                c,
                h,
                w,
                kernel: geom.kernel,
                stride: geom.stride,
                pad: geom.pad,
                oh,
                ow,
            },
            data: x.data(),
        })
    }

    /// Rows of the logical patch matrix: `C·k·k`.
    pub(crate) fn rows(&self) -> usize {
        self.meta.c * self.meta.kernel * self.meta.kernel
    }

    /// Columns of the logical patch matrix: `N·oh·ow`.
    pub(crate) fn cols(&self) -> usize {
        self.meta.n * self.meta.oh * self.meta.ow
    }

    /// Decomposes a row index into its `(channel, ky, kx)` kernel tap.
    #[inline]
    pub(crate) fn row_pos(&self, row: usize) -> (usize, usize, usize) {
        let k = self.meta.kernel;
        (row / (k * k), (row / k) % k, row % k)
    }

    /// Decomposes a column index into its `(image, oy, ox)` output site.
    #[inline]
    pub(crate) fn col_pos(&self, col: usize) -> (usize, usize, usize) {
        let sp = self.meta.oh * self.meta.ow;
        (col / sp, (col % sp) / self.meta.ow, col % self.meta.ow)
    }

    /// Reads one patch-matrix element given decomposed indices; padding
    /// taps return `0.0` exactly as the materialized lowering writes them.
    /// Test-only element oracle: the GEMM packing routine reads runs
    /// directly, and `view_matches_materialized_im2col_bitwise` uses this
    /// to pin the per-element semantics both paths must agree on.
    #[cfg(test)]
    pub(crate) fn sample(
        &self,
        img: usize,
        ch: usize,
        oy: usize,
        ox: usize,
        ky: usize,
        kx: usize,
    ) -> f32 {
        let m = &self.meta;
        let y = oy * m.stride + ky;
        let x = ox * m.stride + kx;
        if y < m.pad || y >= m.h + m.pad || x < m.pad || x >= m.w + m.pad {
            return 0.0;
        }
        self.data[((img * m.c + ch) * m.h + (y - m.pad)) * m.w + (x - m.pad)]
    }
}

impl Tensor {
    /// Lowers an NCHW input into column form for convolution-as-matmul.
    ///
    /// The result has shape `(C*k*k, N*out_h*out_w)`: each column is one
    /// receptive field. A weight matrix of shape `(out_c, C*k*k)` then
    /// produces the convolution output via [`Tensor::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the input is 4-D, or a
    /// geometry error if `geom` disagrees with the input's spatial size.
    pub fn im2col(&self, geom: &ConvGeometry) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: self.rank(),
            });
        }
        let (n, c, h, w) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        if h != geom.in_h || w != geom.in_w {
            return Err(TensorError::InvalidGeometry(format!(
                "geometry expects {}x{}, input is {h}x{w}",
                geom.in_h, geom.in_w
            )));
        }
        let _obs = hero_obs::span("im2col");
        hero_obs::counters::IM2COL_CALLS.incr();
        let k = geom.kernel;
        let (oh, ow) = geom.out_hw();
        let rows = c * k * k;
        let cols = n * oh * ow;
        let mut out = pool::lease(rows * cols);
        // One (ch, ky, kx) kernel tap per output row: writes stream
        // sequentially through `out` while reads revisit the (smaller,
        // cache-resident) input. For stride 1 the in-bounds span of each
        // output row is one contiguous copy.
        let stride = geom.stride;
        let pad = geom.pad;
        for row in 0..rows {
            let (ch, ky, kx) = (row / (k * k), (row / k) % k, row % k);
            let out_row = &mut out[row * cols..][..cols];
            for in_ in 0..n {
                let img = &self.data()[(in_ * c + ch) * h * w..][..h * w];
                for oy in 0..oh {
                    let y = oy * stride + ky;
                    if y < pad || y >= h + pad {
                        continue; // leave zeros (padding)
                    }
                    let src_row = &img[(y - pad) * w..][..w];
                    let dst = &mut out_row[(in_ * oh + oy) * ow..][..ow];
                    if stride == 1 {
                        // x = ox + kx - pad must land in [0, w).
                        let ox0 = pad.saturating_sub(kx);
                        let ox1 = (w + pad).saturating_sub(kx).min(ow);
                        if ox0 < ox1 {
                            dst[ox0..ox1].copy_from_slice(&src_row[ox0 + kx - pad..ox1 + kx - pad]);
                        }
                    } else {
                        for (ox, slot) in dst.iter_mut().enumerate() {
                            let x = ox * stride + kx;
                            if x >= pad && x < w + pad {
                                *slot = src_row[x - pad];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, [rows, cols])
    }

    /// Adjoint of [`Tensor::im2col`]: scatters column-form gradients back to
    /// an NCHW tensor of shape `(n, c, geom.in_h, geom.in_w)`, accumulating
    /// overlapping windows.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `self` is not `(c*k*k, n*out_h*out_w)`.
    pub fn col2im(&self, geom: &ConvGeometry, n: usize, c: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let k = geom.kernel;
        let (oh, ow) = geom.out_hw();
        let rows = c * k * k;
        let cols = n * oh * ow;
        if self.dims() != [rows, cols] {
            return Err(TensorError::ShapeMismatch {
                left: vec![rows, cols],
                right: self.dims().to_vec(),
            });
        }
        let _obs = hero_obs::span("col2im");
        hero_obs::counters::IM2COL_CALLS.incr();
        let (h, w) = (geom.in_h, geom.in_w);
        let mut out_vec = pool::lease(n * c * h * w);
        // Mirror of im2col's loop order: each (ch, ky, kx) row of the column
        // matrix is read sequentially and accumulated into the (smaller,
        // cache-resident) image.
        let stride = geom.stride;
        let pad = geom.pad;
        for row in 0..rows {
            let (ch, ky, kx) = (row / (k * k), (row / k) % k, row % k);
            let col_row = &self.data()[row * cols..][..cols];
            for in_ in 0..n {
                let img = &mut out_vec[(in_ * c + ch) * h * w..][..h * w];
                for oy in 0..oh {
                    let y = oy * stride + ky;
                    if y < pad || y >= h + pad {
                        continue;
                    }
                    let dst_row = &mut img[(y - pad) * w..][..w];
                    let src = &col_row[(in_ * oh + oy) * ow..][..ow];
                    if stride == 1 {
                        let ox0 = pad.saturating_sub(kx);
                        let ox1 = (w + pad).saturating_sub(kx).min(ow);
                        for ox in ox0..ox1 {
                            dst_row[ox + kx - pad] += src[ox];
                        }
                    } else {
                        for (ox, &v) in src.iter().enumerate() {
                            let x = ox * stride + kx;
                            if x >= pad && x < w + pad {
                                dst_row[x - pad] += v;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out_vec, [n, c, h, w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validates() {
        assert!(ConvGeometry::new(4, 4, 3, 1, 0).is_ok());
        assert!(ConvGeometry::new(4, 4, 0, 1, 0).is_err());
        assert!(ConvGeometry::new(4, 4, 3, 0, 0).is_err());
        assert!(ConvGeometry::new(2, 2, 5, 1, 1).is_err());
    }

    #[test]
    fn out_hw_matches_formula() {
        assert_eq!(ConvGeometry::new(8, 8, 3, 1, 1).unwrap().out_hw(), (8, 8));
        assert_eq!(ConvGeometry::new(8, 8, 3, 2, 1).unwrap().out_hw(), (4, 4));
        assert_eq!(ConvGeometry::new(5, 5, 3, 1, 0).unwrap().out_hw(), (3, 3));
        assert_eq!(ConvGeometry::new(4, 4, 1, 1, 0).unwrap().out_hw(), (4, 4));
    }

    #[test]
    fn im2col_1x1_kernel_is_reshape() {
        let t = Tensor::arange(2 * 2 * 2).reshape([1, 2, 2, 2]).unwrap();
        let geom = ConvGeometry::new(2, 2, 1, 1, 0).unwrap();
        let cols = t.im2col(&geom).unwrap();
        assert_eq!(cols.dims(), &[2, 4]);
        assert_eq!(cols.data(), t.data());
    }

    #[test]
    fn im2col_extracts_receptive_fields() {
        // 1x1x3x3 input, 2x2 kernel, stride 1, no pad -> 4 windows of 4 values.
        let t = Tensor::arange(9).reshape([1, 1, 3, 3]).unwrap();
        let geom = ConvGeometry::new(3, 3, 2, 1, 0).unwrap();
        let cols = t.im2col(&geom).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // First column: window at (0,0) = [0,1,3,4]
        let col0: Vec<f32> = (0..4).map(|r| cols.get(&[r, 0]).unwrap()).collect();
        assert_eq!(col0, vec![0.0, 1.0, 3.0, 4.0]);
        // Last column: window at (1,1) = [4,5,7,8]
        let col3: Vec<f32> = (0..4).map(|r| cols.get(&[r, 3]).unwrap()).collect();
        assert_eq!(col3, vec![4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_padding_produces_zero_border() {
        let t = Tensor::ones([1, 1, 2, 2]);
        let geom = ConvGeometry::new(2, 2, 3, 1, 1).unwrap();
        let cols = t.im2col(&geom).unwrap();
        assert_eq!(cols.dims(), &[9, 4]);
        // Window centered at (0,0): top-left entries fall in padding.
        assert_eq!(cols.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(cols.get(&[4, 0]).unwrap(), 1.0); // center hits the image
    }

    #[test]
    fn conv_via_matmul_matches_direct_convolution() {
        // 2-channel input, 3 output channels, 3x3 kernel, stride 1, pad 1.
        let x = Tensor::from_fn([2, 2, 4, 4], |i| {
            ((i[0] + 2 * i[1] + i[2] * 3 + i[3]) % 7) as f32
        });
        let wgt = Tensor::from_fn([3, 2 * 3 * 3], |i| ((i[0] * 5 + i[1]) % 5) as f32 - 2.0);
        let geom = ConvGeometry::new(4, 4, 3, 1, 1).unwrap();
        let cols = x.im2col(&geom).unwrap();
        let out = wgt.matmul(&cols).unwrap(); // (3, N*oh*ow)
        let (oh, ow) = geom.out_hw();
        // Direct reference at a few positions.
        for (n_i, oc, oy, ox) in [(0usize, 0usize, 0usize, 0usize), (1, 2, 3, 1), (0, 1, 2, 2)] {
            let mut acc = 0.0;
            for ic in 0..2 {
                for ky in 0..3 {
                    for kx in 0..3 {
                        let y = oy as isize + ky as isize - 1;
                        let xx = ox as isize + kx as isize - 1;
                        if !(0..4).contains(&y) || !(0..4).contains(&xx) {
                            continue;
                        }
                        let xv = x.get(&[n_i, ic, y as usize, xx as usize]).unwrap();
                        let wv = wgt.get(&[oc, (ic * 3 + ky) * 3 + kx]).unwrap();
                        acc += xv * wv;
                    }
                }
            }
            let col = (n_i * oh + oy) * ow + ox;
            assert!((out.get(&[oc, col]).unwrap() - acc).abs() < 1e-4);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> -- the defining adjoint property.
        let x = Tensor::from_fn([2, 3, 5, 5], |i| (i.iter().sum::<usize>() % 5) as f32 - 2.0);
        let geom = ConvGeometry::new(5, 5, 3, 2, 1).unwrap();
        let cols = x.im2col(&geom).unwrap();
        let y = Tensor::from_fn([cols.dims()[0], cols.dims()[1]], |i| {
            ((i[0] * 3 + i[1]) % 7) as f32 - 3.0
        });
        let lhs = cols.dot(&y).unwrap();
        let back = y.col2im(&geom, 2, 3).unwrap();
        let rhs = x.dot(&back).unwrap();
        assert!((lhs - rhs).abs() < 1e-2, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn view_matches_materialized_im2col_bitwise() {
        let x = Tensor::from_fn([2, 3, 5, 5], |i| (i.iter().sum::<usize>() % 5) as f32 - 2.0);
        for geom in [
            ConvGeometry::new(5, 5, 3, 1, 1).unwrap(),
            ConvGeometry::new(5, 5, 3, 2, 1).unwrap(),
            ConvGeometry::new(5, 5, 1, 1, 0).unwrap(),
            ConvGeometry::new(5, 5, 5, 1, 2).unwrap(),
        ] {
            let cols = x.im2col(&geom).unwrap();
            let view = Im2colView::new(&x, &geom).unwrap();
            assert_eq!(view.rows(), cols.dims()[0]);
            assert_eq!(view.cols(), cols.dims()[1]);
            for row in 0..view.rows() {
                let (ch, ky, kx) = view.row_pos(row);
                for col in 0..view.cols() {
                    let (img, oy, ox) = view.col_pos(col);
                    assert_eq!(
                        view.sample(img, ch, oy, ox, ky, kx).to_bits(),
                        cols.get(&[row, col]).unwrap().to_bits(),
                        "row {row} col {col}"
                    );
                }
            }
        }
    }

    #[test]
    fn col2im_validates_shape() {
        let geom = ConvGeometry::new(4, 4, 3, 1, 1).unwrap();
        assert!(Tensor::zeros([5, 5]).col2im(&geom, 1, 1).is_err());
        assert!(Tensor::zeros([9]).col2im(&geom, 1, 1).is_err());
    }
}
