//! Noisy-label training scenario (the paper's §5.2): train on a dataset
//! whose labels are partially corrupted by symmetric noise and measure
//! what survives on a clean test set.
//!
//! Uses the memorization regime (identifiable samples, small batches, long
//! schedule) where the flat-vs-sharp distinction matters — see
//! EXPERIMENTS.md.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p hero-core --example noisy_labels
//! ```

use hero_core::experiment::{model_config, MethodKind};
use hero_core::{train, TrainConfig};
use hero_data::{inject_symmetric_noise, label_disagreement, Preset, SynthGenerator, SynthSpec};
use hero_nn::models::ModelKind;
use hero_tensor::rng::StdRng;
use hero_tensor::TensorError;

fn main() -> Result<(), TensorError> {
    let preset = Preset::C10;
    // Give every sample a private texture so wrong labels are memorizable,
    // as in real photographs.
    let spec = SynthSpec {
        sample_texture: 0.6,
        ..preset.spec()
    };
    let generator = SynthGenerator::new(spec);
    let (clean_train, test_set) = generator.train_test(200, 400);

    let ratio = 0.6;
    let mut noisy = clean_train.clone();
    let corrupted = inject_symmetric_noise(&mut noisy, ratio, 0xBAD);
    println!(
        "corrupted {} of {} labels (observed disagreement {:.1}%)\n",
        corrupted.len(),
        noisy.len(),
        100.0 * label_disagreement(&clean_train.labels, &noisy.labels)
    );

    for method in [MethodKind::Hero, MethodKind::Sgd] {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = ModelKind::Resnet.build(model_config(preset), &mut rng);
        let config = TrainConfig::new(method.tuned(), 80).with_batch_size(8);
        let record = train(&mut net, &noisy, &test_set, &config)?;
        println!(
            "{:5}  fit of (noisy) train set {:5.1}%   clean test acc {:5.1}%",
            method.paper_name(),
            100.0 * record.final_train_acc,
            100.0 * record.final_test_acc,
        );
    }
    println!("\nexpect: SGD fits more of the corrupted labels (memorization) yet");
    println!("transfers less to the clean test set than HERO's flat solution.");
    Ok(())
}
