//! Fixed-shape binary tree reduction.
//!
//! Floating-point addition is not associative, so the *shape* of the
//! reduction tree is part of the numeric result. [`tree_reduce`] combines
//! a slotted result vector in rounds of adjacent pairs — `(0,1), (2,3), …`
//! with an odd trailing item carried up unchanged — so the tree depends
//! only on the item *count*. Shard results are slotted by shard index
//! before reduction, which makes the reduced f32 values bitwise identical
//! regardless of worker count or completion order.

use hero_tensor::{Result, Tensor, TensorError};

/// Reduces `items` with a deterministic pairwise tree.
///
/// Combine order: round 1 pairs `(0,1), (2,3), …`; an odd last item is
/// carried to the next round unchanged; rounds repeat until one item
/// remains. Returns `None` for an empty input.
///
/// # Errors
///
/// Propagates the first error `combine` returns.
pub fn tree_reduce<T>(
    items: Vec<T>,
    mut combine: impl FnMut(T, T) -> Result<T>,
) -> Result<Option<T>> {
    let mut items = items;
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            next.push(match it.next() {
                Some(b) => combine(a, b)?,
                None => a,
            });
        }
        items = next;
    }
    Ok(items.pop())
}

/// One shard's contribution to a gradient evaluation: the shard-weighted
/// loss and shard-weighted gradients (weight = shard len / batch len, so
/// summing the shards yields the batch-mean quantities).
pub type ShardGrad = (f32, Vec<Tensor>);

/// Combines two shard contributions: losses add, gradients add
/// element-wise into the left operand's buffers.
///
/// # Errors
///
/// Returns a shape error if the gradient lists are misaligned.
pub fn combine_shard_grads(mut a: ShardGrad, b: ShardGrad) -> Result<ShardGrad> {
    if a.1.len() != b.1.len() {
        return Err(TensorError::InvalidArgument(format!(
            "shard gradient arity mismatch: {} vs {}",
            a.1.len(),
            b.1.len()
        )));
    }
    for (ga, gb) in a.1.iter_mut().zip(&b.1) {
        ga.axpy(1.0, gb)?;
    }
    Ok((a.0 + b.0, a.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_reduce_handles_all_small_counts() {
        for n in 0..9usize {
            let items: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let out = tree_reduce(items, |a, b| Ok(a + b)).unwrap();
            if n == 0 {
                assert!(out.is_none());
            } else {
                assert_eq!(out.unwrap(), (0..n).sum::<usize>() as f32);
            }
        }
    }

    #[test]
    fn tree_shape_is_fixed_by_count() {
        // Record the combine order as a bracketed expression; it must be a
        // pure function of the item count.
        let order = |n: usize| {
            let items: Vec<String> = (0..n).map(|i| i.to_string()).collect();
            tree_reduce(items, |a, b| Ok(format!("({a}+{b})")))
                .unwrap()
                .unwrap()
        };
        assert_eq!(order(4), "((0+1)+(2+3))");
        assert_eq!(order(5), "(((0+1)+(2+3))+4)");
        assert_eq!(order(6), "(((0+1)+(2+3))+(4+5))");
        assert_eq!(order(7), "(((0+1)+(2+3))+((4+5)+6))");
    }

    #[test]
    fn combine_shard_grads_adds_losses_and_grads() {
        let a = (0.5f32, vec![Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap()]);
        let b = (
            0.25f32,
            vec![Tensor::from_vec(vec![10.0, 20.0], [2]).unwrap()],
        );
        let (loss, grads) = combine_shard_grads(a, b).unwrap();
        assert_eq!(loss, 0.75);
        assert_eq!(grads[0].data(), &[11.0, 22.0]);
    }

    #[test]
    fn combine_rejects_arity_mismatch() {
        let a = (0.0f32, vec![Tensor::zeros([2])]);
        let b = (0.0f32, vec![]);
        assert!(combine_shard_grads(a, b).is_err());
    }
}
