//! Soundness proof-by-sampling for the interval transfer functions.
//!
//! For every op the forward pass can record, a case builds a small graph
//! from inputs drawn uniformly inside *declared* seed ranges, runs the
//! interval pass with those declarations, and asserts that every element
//! of every recorded forward tensor lies inside its node's computed
//! interval. Each case repeats over 120 independently seeded draws, so a
//! transfer function that under-covers its op by even one ULP pattern
//! shows up as a deterministic, reproducible failure.

use hero_analyze::{interval_pass, RangeSeed};
use hero_autodiff::{Graph, Var};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::{ConvGeometry, Shape, Tensor};

const TRIALS: u64 = 120;

/// Per-trial builder context: tracks every created node and the declared
/// range of every input so the harness can check all of them.
struct Ctx<'a> {
    g: &'a mut Graph,
    rng: &'a mut StdRng,
    seeds: Vec<RangeSeed>,
    vars: Vec<Var>,
}

impl Ctx<'_> {
    /// A fresh input whose elements are drawn uniformly from `[lo, hi]`,
    /// declared to the interval pass with exactly that range.
    fn input(&mut self, shape: impl Into<Shape>, lo: f32, hi: f32) -> Var {
        let rng = &mut *self.rng;
        let t = Tensor::from_fn(shape, |_| rng.gen_range(lo..=hi));
        let v = self.g.input(t);
        self.seeds.push(RangeSeed {
            node: v.index(),
            lo,
            hi,
        });
        self.track(v)
    }

    fn track(&mut self, v: Var) -> Var {
        self.vars.push(v);
        v
    }
}

fn run_case(name: &str, build: impl Fn(&mut Ctx)) {
    let base: u64 = name.bytes().map(u64::from).sum::<u64>() << 32;
    for trial in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(base + trial);
        let mut g = Graph::new();
        let mut ctx = Ctx {
            g: &mut g,
            rng: &mut rng,
            seeds: Vec::new(),
            vars: Vec::new(),
        };
        build(&mut ctx);
        let (seeds, vars) = (ctx.seeds, ctx.vars);
        let tape = g.trace();
        let intervals = interval_pass(&tape, &seeds);
        for v in vars {
            let iv = intervals[v.index()];
            for (j, &val) in g.value(v).data().iter().enumerate() {
                assert!(
                    iv.contains(val),
                    "{name} trial {trial}: node #{} ({}) element {j} = {val:e} \
                     escapes computed interval [{:e}, {:e}]",
                    v.index(),
                    tape[v.index()].op,
                    iv.lo,
                    iv.hi,
                );
            }
        }
        g.reset();
    }
}

#[test]
fn elementwise_core_ops_stay_inside_their_intervals() {
    run_case("elementwise_core", |c| {
        let a = c.input([3, 4], -2.0, 2.0);
        let b = c.input([3, 4], -1.5, 0.5);
        let s = c.g.add(a, b).unwrap();
        c.track(s);
        let d = c.g.sub(s, a).unwrap();
        c.track(d);
        let m = c.g.mul(d, b).unwrap();
        c.track(m);
        let sc = c.g.scale(m, -0.7);
        c.track(sc);
        let off = c.g.add_scalar(sc, 0.3);
        c.track(off);
        let sq = c.g.square(off);
        c.track(sq);
        let rs = c.g.reshape(sq, [12]).unwrap();
        c.track(rs);
        let total = c.g.sum(rs);
        c.track(total);
        let avg = c.g.mean(sq);
        c.track(avg);
    });
}

#[test]
fn clamping_activations_stay_inside_their_intervals() {
    run_case("clamps", |c| {
        let x = c.input([4, 5], -3.0, 8.0);
        let r = c.g.relu(x);
        c.track(r);
        let r6 = c.g.relu6(x);
        c.track(r6);
        let lk = c.g.leaky_relu(x, 0.01);
        c.track(lk);
        let lk_neg = c.g.leaky_relu(x, -0.5);
        c.track(lk_neg);
    });
}

#[test]
fn smooth_activations_stay_inside_their_intervals() {
    run_case("smooth", |c| {
        let x = c.input([4, 4], -6.0, 6.0);
        let sg = c.g.sigmoid(x);
        c.track(sg);
        let th = c.g.tanh(x);
        c.track(th);
        let pos = c.input([4, 4], 0.5, 3.0);
        let l = c.g.ln(pos);
        c.track(l);
    });
}

#[test]
fn dropout_and_mse_stay_inside_their_intervals() {
    run_case("dropout_mse", |c| {
        let x = c.input([3, 5], -2.0, 2.0);
        let rng = &mut *c.rng;
        let mask = Tensor::from_fn([3, 5], |_| if rng.gen::<bool>() { 1.0 } else { 0.0 });
        let dr = c.g.dropout(x, &mask, 0.8).unwrap();
        c.track(dr);
        let rng = &mut *c.rng;
        let target = Tensor::from_fn([3, 5], |_| rng.gen_range(-1.0f32..=1.0));
        let loss = c.g.mse_loss(x, &target).unwrap();
        c.track(loss);
    });
}

#[test]
fn matmul_stays_inside_its_interval() {
    run_case("matmul", |c| {
        let a = c.input([3, 6], -2.0, 2.0);
        let b = c.input([6, 4], -1.0, 3.0);
        let p = c.g.matmul(a, b).unwrap();
        c.track(p);
    });
}

#[test]
fn conv_and_pool_stack_stays_inside_its_intervals() {
    run_case("conv_pool", |c| {
        let x = c.input([2, 3, 8, 8], -1.0, 1.0);
        let w = c.input([4, 27], -0.5, 0.5);
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let y = c.g.conv2d(x, w, geom).unwrap();
        c.track(y);
        let mp = c.g.max_pool2d(y, 2).unwrap();
        c.track(mp);
        let ap = c.g.avg_pool2d(mp, 2).unwrap();
        c.track(ap);
        let gap = c.g.global_avg_pool2d(ap).unwrap();
        c.track(gap);
    });
}

#[test]
fn depthwise_conv_stays_inside_its_interval() {
    run_case("depthwise", |c| {
        let x = c.input([2, 3, 8, 8], -1.0, 1.0);
        let w = c.input([3, 3, 3], -0.5, 0.5);
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let y = c.g.depthwise_conv2d(x, w, geom).unwrap();
        c.track(y);
    });
}

#[test]
fn batch_norm_stays_inside_its_interval() {
    run_case("batch_norm", |c| {
        let x = c.input([2, 3, 4, 4], -2.0, 2.0);
        let gamma = c.input([3], 0.5, 1.5);
        let beta = c.input([3], -0.5, 0.5);
        let (y, _stats) = c.g.batch_norm(x, gamma, beta, 1e-5).unwrap();
        c.track(y);
    });
}

#[test]
fn losses_stay_inside_their_intervals() {
    run_case("losses", |c| {
        let logits = c.input([4, 6], -4.0, 4.0);
        let rng = &mut *c.rng;
        let labels: Vec<usize> = (0..4).map(|_| rng.gen_range(0..6usize)).collect();
        let ce = c.g.cross_entropy(logits, &labels).unwrap();
        c.track(ce);
        let ces = c.g.cross_entropy_smoothed(logits, &labels, 0.1).unwrap();
        c.track(ces);
    });
}

#[test]
fn whole_mlp_forward_stays_inside_its_intervals() {
    run_case("mlp", |c| {
        let x = c.input([8, 10], -1.0, 1.0);
        let w1 = c.input([10, 16], -0.4, 0.4);
        let b1 = c.input([16], -0.1, 0.1);
        let h = c.g.matmul(x, w1).unwrap();
        c.track(h);
        let z = c.g.add(h, b1).unwrap();
        c.track(z);
        let a = c.g.relu(z);
        c.track(a);
        let w2 = c.input([16, 5], -0.4, 0.4);
        let logits = c.g.matmul(a, w2).unwrap();
        c.track(logits);
        let rng = &mut *c.rng;
        let labels: Vec<usize> = (0..8).map(|_| rng.gen_range(0..5usize)).collect();
        let loss = c.g.cross_entropy(logits, &labels).unwrap();
        c.track(loss);
    });
}
