//! # hero-tensor
//!
//! Dense `f32` n-dimensional tensors: the numerical substrate for the HERO
//! (Hessian-Enhanced Robust Optimization, DAC 2022) reproduction.
//!
//! The crate provides exactly what a small CPU-trained deep-learning stack
//! needs, with validated shapes and deterministic seeded initialization:
//!
//! - [`Tensor`]: contiguous row-major storage with shape-checked ops
//! - element-wise math, broadcasting ([`Tensor::broadcast_op`]) and its
//!   adjoint ([`Tensor::reduce_to_shape`])
//! - packed micro-kernel [`Tensor::matmul`] plus transposed variants
//!   (with the old blocked kernel kept as [`matmul_reference`])
//! - convolution lowering ([`Tensor::im2col`] / [`Tensor::col2im`]) and
//!   pooling with adjoints
//! - the norms HERO's theory is stated in (ℓ1, ℓ2, ℓ∞, ℓ0)
//! - seedable initializers ([`Init`]) driven by the in-tree [`rng`] module
//! - a [`ScratchPool`] buffer recycler backing the zero-allocation
//!   training hot path
//! - a generic [`workers::WorkerPool`] used by the multicore GEMM
//!   macro-kernel here and re-exported by `hero-parallel` for the
//!   sharded trainer
//!
//! # Examples
//!
//! ```
//! use hero_tensor::{Init, Tensor};
//! use hero_tensor::rng::StdRng;
//!
//! # fn main() -> Result<(), hero_tensor::TensorError> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let w = Init::KaimingNormal { fan_in: 4 }.tensor([3, 4], &mut rng);
//! let x = Tensor::ones([4, 2]);
//! let y = w.matmul(&x)?;
//! assert_eq!(y.dims(), &[3, 2]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod init;
mod ops;
pub mod pool;
pub mod rng;
mod shape;
mod tensor;
pub mod workers;

pub use error::{Result, TensorError};
pub use init::{fill_standard_normal, random_unit_vector, Init};
pub use ops::gemm::{
    active_gemm_kernel, force_gemm_kernel, gemm_pool_reset_stats, gemm_pool_stats,
    set_gemm_threads, GemmKernel,
};
pub use ops::im2col::ConvGeometry;
pub use ops::matmul::matmul_reference;
pub use ops::norm::{global_dot, global_norm_l1, global_norm_l2, global_norm_linf};
pub use pool::{PoolStats, ScratchPool};
pub use shape::Shape;
pub use tensor::Tensor;
