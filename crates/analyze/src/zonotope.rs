//! Relational (zonotope / affine-arithmetic) quantization-noise domain.
//!
//! The fourth abstract domain of `hero-analyze`. Where the interval noise
//! pass ([`crate::noise_pass`], §14) carries one error interval per node
//! and forgets every correlation at every join, this pass threads *shared
//! noise symbols* through the tape: each node carries an affine form
//!
//! ```text
//!   e  =  Σᵢ cᵢ·εᵢ  +  [r_lo, r_hi]        εᵢ ∈ [−1, 1]
//! ```
//!
//! with one symbol family `εᵢ` minted per [`NoiseSeed`] (one per seeded
//! weight tensor) and an interval remainder absorbing nonlinear and
//! rounding slack, outward-rounded in `f64` with the same margin
//! discipline as the value and noise passes.
//!
//! # Lane-aligned symbol semantics
//!
//! A seeded tensor's elements perturb *independently*, so symbol `i`
//! is really a vector of independent symbols, one per element (lane) of
//! seed `i`'s tensor. A form is attached to a node under the invariant
//! that any node carrying a nonzero coefficient on symbol `i` has the
//! same shape as seed `i`'s tensor with the identity lane map (reshape,
//! which permutes nothing in flat order, also preserves lanes). Where
//! that alignment breaks — contractions (matmul, conv, reductions,
//! batch-norm, losses) and broadcasts — the symbolic part is
//! *delinearized*: `Σ|cᵢ|` folds into the remainder and the term list
//! empties. Cancellation (e.g. `x − x ≡ 0` up to rounding slack) is
//! therefore exact through element-wise chains and degrades soundly to
//! the interval behavior across contractions.
//!
//! # Trace-centered magnitudes
//!
//! The noise pass certifies the *two-run* difference `f(x+δ) − f(x)`
//! against one recorded tape — the crosscheck's base run is that exact
//! recorded forward (byte-reproducible by the determinism contract). So
//! this pass may soundly intersect every *base-run* value range with the
//! recorded per-node magnitude (`Graph::value_abs_max`): in the exact
//! first-order error identities (`a'b' − ab = a·e_b + e_a·b'`) the
//! unprimed factors are base-run values, and batch-norm's recorded
//! `|x̂|` replaces the worst-case `√m` for the base run. This is where
//! the bounds tighten on real conv nets — the interval pass's
//! input-range-general value intervals balloon layer over layer, while
//! the recorded trace stays small. The resulting certificate is
//! correspondingly *trace-specific*: it bounds perturbations of the
//! recorded batch, which is exactly what the static sensitivity matrix
//! and `hero noise-crosscheck` consume.
//!
//! The same argument gives *zero preservation*: a node whose parents all
//! carry exactly zero error is recomputed by the identical f32
//! instruction sequence on bit-identical inputs in both runs, so its
//! two-run difference is exactly zero (guarded by the plain pass's NaN
//! analysis — `NaN − NaN` is `NaN`). Error therefore only exists inside
//! a seed's cone of influence; the interval pass instead charges its
//! rounding margins unconditionally and lets phantom error grow from
//! unseeded regions of the tape, which is what used to pin every
//! sensitivity cell at the loss-interval ceiling.
//!
//! # Monotone tightening
//!
//! Per node the pass also keeps the plain interval-pass cell and stores
//! `tightened = concretize(form) ∩ interval`, falling back to the
//! interval cell whenever the zonotope is not strictly tighter (or the
//! intersection would be empty). `tightened[i] ⊆ interval[i]` therefore
//! holds *by construction*, so adopting this domain can never weaken a
//! previously certified bound.

use crate::interval::{Interval, ABS_MARGIN, CONTRACT_MARGIN, REL_MARGIN};
use crate::noisepass::{contract_err, elem, mean_err, noise_pass, span, NoiseSeed, CE_CAP};
use hero_autodiff::{NodeTrace, TraceDetail};

/// An affine error form `Σᵢ cᵢ·εᵢ + [rem_lo, rem_hi]`, `εᵢ ∈ [−1, 1]`.
///
/// Coefficients are signed (that is what lets `x − x` cancel); symbol
/// ids index the seed list handed to [`relational_noise_pass`]. The
/// `top` flag marks the unbounded form (no finite certificate).
#[derive(Debug, Clone, PartialEq)]
pub struct AffineNoise {
    /// `(symbol id, coefficient)`, strictly sorted by id.
    terms: Vec<(u32, f64)>,
    /// Remainder lower bound.
    rem_lo: f64,
    /// Remainder upper bound.
    rem_hi: f64,
    /// Unbounded form (analogue of [`Interval::TOP`]).
    top: bool,
}

impl AffineNoise {
    /// The exactly-zero form (unseeded leaves).
    pub fn zero() -> Self {
        AffineNoise {
            terms: Vec::new(),
            rem_lo: 0.0,
            rem_hi: 0.0,
            top: false,
        }
    }

    /// The unbounded form.
    pub fn top() -> Self {
        AffineNoise {
            terms: Vec::new(),
            rem_lo: f64::NEG_INFINITY,
            rem_hi: f64::INFINITY,
            top: true,
        }
    }

    /// A fresh symbol `c·ε` for seed `id` with magnitude `c ≥ 0`. A zero
    /// magnitude is the exactly-zero form (keeps zero preservation
    /// firing downstream of zero-magnitude seeds).
    pub fn symbol(id: u32, magnitude: f64) -> Self {
        if !magnitude.is_finite() {
            return Self::top();
        }
        if magnitude == 0.0 {
            return Self::zero();
        }
        AffineNoise {
            terms: vec![(id, magnitude)],
            rem_lo: 0.0,
            rem_hi: 0.0,
            top: false,
        }
    }

    /// A purely non-relational form: the interval goes to the remainder.
    pub fn from_interval(iv: Interval) -> Self {
        if iv.maybe_nan || !iv.is_finite() {
            return Self::top();
        }
        AffineNoise {
            terms: Vec::new(),
            rem_lo: f64::from(iv.lo),
            rem_hi: f64::from(iv.hi),
            top: false,
        }
    }

    /// Sum of coefficient magnitudes (the symbolic radius).
    fn radius(&self) -> f64 {
        self.terms.iter().map(|&(_, c)| c.abs()).sum()
    }

    /// True for the exactly-zero form: no symbols, zero remainder.
    fn is_zero(&self) -> bool {
        !self.top && self.terms.is_empty() && self.rem_lo == 0.0 && self.rem_hi == 0.0
    }

    /// Drops the symbolic part into the remainder (sound: each `εᵢ`
    /// ranges over `[−1, 1]`).
    fn delinearize(&mut self) {
        let r = self.radius();
        self.rem_lo -= r;
        self.rem_hi += r;
        self.terms.clear();
    }

    /// Self with the symbolic part folded into the remainder.
    fn delinearized(&self) -> Self {
        let mut out = self.clone();
        out.delinearize();
        out
    }

    /// The concrete enclosure `[rem_lo − Σ|cᵢ|, rem_hi + Σ|cᵢ|]`,
    /// rounded outward before narrowing to `f32`.
    pub fn concretize(&self) -> Interval {
        if self.top {
            return Interval::TOP;
        }
        let r = self.radius();
        let lo = self.rem_lo - r;
        let hi = self.rem_hi + r;
        if lo.is_nan() || hi.is_nan() {
            return Interval::TOP;
        }
        // span() narrows via round-to-nearest; pad by more than one f32
        // ulp so the narrowed interval still encloses the f64 one.
        let pad = |x: f64| x.abs() * 1.2e-7 + f64::from(f32::MIN_POSITIVE);
        span(lo - pad(lo), hi + pad(hi))
    }

    /// `self + other` with exact (signed) merging of shared symbols.
    fn add_form(&self, other: &Self) -> Self {
        if self.top || other.top {
            return Self::top();
        }
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut a, mut b) = (self.terms.iter().peekable(), other.terms.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia == ib {
                        let c = ca + cb;
                        if c != 0.0 {
                            terms.push((ia, c));
                        }
                        a.next();
                        b.next();
                    } else if ia < ib {
                        terms.push((ia, ca));
                        a.next();
                    } else {
                        terms.push((ib, cb));
                        b.next();
                    }
                }
                (Some(&&t), None) => {
                    terms.push(t);
                    a.next();
                }
                (None, Some(&&t)) => {
                    terms.push(t);
                    b.next();
                }
                (None, None) => break,
            }
        }
        AffineNoise {
            terms,
            rem_lo: self.rem_lo + other.rem_lo,
            rem_hi: self.rem_hi + other.rem_hi,
            top: false,
        }
        .checked()
    }

    /// `self − other` (exact symbol cancellation).
    fn sub_form(&self, other: &Self) -> Self {
        self.add_form(&other.neg_form())
    }

    /// `−self`.
    fn neg_form(&self) -> Self {
        if self.top {
            return Self::top();
        }
        AffineNoise {
            terms: self.terms.iter().map(|&(i, c)| (i, -c)).collect(),
            rem_lo: -self.rem_hi,
            rem_hi: -self.rem_lo,
            top: false,
        }
    }

    /// `c · self` for a known constant factor.
    fn scale_by(&self, c: f64) -> Self {
        if self.top {
            return Self::top();
        }
        if !c.is_finite() {
            return Self::top();
        }
        let (lo, hi) = if c >= 0.0 {
            (self.rem_lo * c, self.rem_hi * c)
        } else {
            (self.rem_hi * c, self.rem_lo * c)
        };
        AffineNoise {
            terms: self.terms.iter().map(|&(i, k)| (i, k * c)).collect(),
            rem_lo: lo,
            rem_hi: hi,
            top: false,
        }
        .checked()
    }

    /// `a · self` for an unknown per-lane factor `a ∈ r` (slope
    /// enclosures, first-order products): coefficients scale by `mid(r)`,
    /// the remainder takes the four-corner product hull plus the
    /// half-width excursion `½·width(r)·Σ|cᵢ|`.
    fn mul_by_range(&self, r: Interval) -> Self {
        if self.top {
            return Self::top();
        }
        if r.maybe_nan || !r.is_finite() {
            return Self::top();
        }
        let (rlo, rhi) = (f64::from(r.lo), f64::from(r.hi));
        let mid = 0.5 * (rlo + rhi);
        let half = (0.5 * (rhi - rlo)).max(0.0);
        let corners = [
            self.rem_lo * rlo,
            self.rem_lo * rhi,
            self.rem_hi * rlo,
            self.rem_hi * rhi,
        ];
        let excursion = half * self.radius();
        AffineNoise {
            terms: self.terms.iter().map(|&(i, c)| (i, c * mid)).collect(),
            rem_lo: corners.iter().copied().fold(f64::INFINITY, f64::min) - excursion,
            rem_hi: corners.iter().copied().fold(f64::NEG_INFINITY, f64::max) + excursion,
            top: false,
        }
        .checked()
    }

    /// `a · self` for an unknown per-lane factor `a ∈ r`, minting a
    /// *fresh* symbol for the excursion instead of widening the
    /// remainder. Sound because for any fixed admissible run the
    /// excursion `(a − mid)·e` is one fixed per-lane quantity — the same
    /// quantity wherever this node's output flows — so it may share a
    /// single symbol (`|(a − mid)·e| ≤ ½·width(r)·max|e|`). This is what
    /// lets activation outputs still cancel (`relu(x) − relu(x) ≈ 0`).
    ///
    /// `fresh` is the next unused symbol id; it is consumed only if the
    /// excursion is nonzero.
    fn mul_by_range_fresh(&self, r: Interval, fresh: &mut u32) -> Self {
        if self.top {
            return Self::top();
        }
        if r.maybe_nan || !r.is_finite() {
            return Self::top();
        }
        let (rlo, rhi) = (f64::from(r.lo), f64::from(r.hi));
        let mid = 0.5 * (rlo + rhi);
        let half = (0.5 * (rhi - rlo)).max(0.0);
        let e_abs = self.radius() + self.rem_lo.abs().max(self.rem_hi.abs());
        let mut out = self.scale_by(mid);
        let k = half * e_abs;
        if out.top || !k.is_finite() {
            return Self::top();
        }
        if k > 0.0 {
            // Minted ids grow monotonically in tape order, so appending
            // preserves the sorted-by-id invariant.
            out.terms.push((*fresh, k));
            *fresh += 1;
        }
        out.checked()
    }

    /// Widens the remainder symmetrically by `s ≥ 0` (rounding slack).
    fn widen_sym(&mut self, s: f64) {
        if self.top {
            return;
        }
        if !s.is_finite() {
            *self = Self::top();
            return;
        }
        self.rem_lo -= s;
        self.rem_hi += s;
    }

    /// Adds an interval straight into the remainder (e.g. a `δ²` term).
    fn add_rem(&mut self, iv: Interval) {
        if self.top {
            return;
        }
        if iv.maybe_nan || !iv.is_finite() {
            *self = Self::top();
            return;
        }
        self.rem_lo += f64::from(iv.lo);
        self.rem_hi += f64::from(iv.hi);
    }

    /// Collapses to top if any bound went non-finite.
    fn checked(self) -> Self {
        if self.top {
            return self;
        }
        if !self.rem_lo.is_finite()
            || !self.rem_hi.is_finite()
            || self.terms.iter().any(|&(_, c)| !c.is_finite())
        {
            return Self::top();
        }
        self
    }
}

/// Result of [`relational_noise_pass`], index-aligned with the tape.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationalNoise {
    /// The affine form per node (rebased to the tightened interval
    /// wherever the zonotope was not at least as tight).
    pub forms: Vec<AffineNoise>,
    /// The plain interval noise-pass result for the same tape/seeds.
    pub interval: Vec<Interval>,
    /// `concretize(form) ∩ interval` per node; `tightened[i] ⊆
    /// interval[i]` holds by construction.
    pub tightened: Vec<Interval>,
}

/// `c ∩ iv` biased toward the trusted interval cell: if the zonotope
/// enclosure is NaN-tainted or the intersection would be empty, the
/// interval cell wins outright, and `maybe_nan` is always inherited from
/// the interval cell (the relational pass never claims better
/// NaN-freedom than the plain pass).
/// True when an error cell pins the two-run difference to exactly zero.
fn exactly_zero(iv: Interval) -> bool {
    iv.lo == 0.0 && iv.hi == 0.0 && !iv.maybe_nan
}

fn intersect(c: Interval, iv: Interval) -> Interval {
    if c.maybe_nan {
        return iv;
    }
    let lo = c.lo.max(iv.lo);
    let hi = c.hi.min(iv.hi);
    if lo > hi {
        return iv;
    }
    Interval {
        lo,
        hi,
        maybe_nan: iv.maybe_nan,
    }
}

/// Batch-norm output error with the recorded `|x̂|` in every place the
/// base run appears. Mirrors the interval pass's `bn_err` derivation
/// (`x̂' − x̂ = x̂·(u−u')/u' + (δ − μ(δ))/u'`), except:
///
/// * the *base-run* `|x̂|` is bounded by `min(√m_widened, x̂_rec)` where
///   `x̂_rec` is the largest normalized value the recorded forward
///   actually produced (the perturbed run keeps the input-independent
///   `√m` bound — an adversarial in-bin `δ` can collapse a channel's
///   variance, so no recorded quantity bounds `x̂'` by itself);
/// * the trivial fallback becomes `√m + x̂_rec` instead of `2√m`;
/// * the perturbed `|x̂'|` is additionally capped by `x̂_rec + |x̂'−x̂|`.
#[allow(clippy::too_many_arguments)]
fn bn_err_rec(
    ex: Interval,
    eg: Interval,
    eb: Interval,
    vg: Interval,
    m: usize,
    inv_std_max: f32,
    xhat_rec: f64,
    out_abs: f64,
) -> Interval {
    if ex.maybe_nan || eg.maybe_nan || eb.maybe_nan {
        return Interval::TOP;
    }
    let mf = m as f64;
    let xhat_stat = mf.sqrt() * (1.0 + mf * CONTRACT_MARGIN) + 1e-6;
    let xrec = if xhat_rec.is_finite() {
        xhat_rec.min(xhat_stat)
    } else {
        xhat_stat
    };
    let g_base = f64::from(vg.abs_max());
    let g_pert = f64::from(vg.add(eg).abs_max());
    let eg_abs = f64::from(eg.abs_max());
    let w = f64::from(ex.hi) - f64::from(ex.lo);
    if !w.is_finite() || !g_pert.is_finite() || !out_abs.is_finite() {
        return Interval::TOP;
    }
    let d = w / 2.0;
    let u_min = (1.0 / f64::from(inv_std_max)) * (1.0 - 1e-5);
    let trivial = xhat_stat + xrec;
    let refined = if u_min.is_finite() && u_min > d {
        (xrec * d + w) / (u_min - d)
    } else {
        f64::INFINITY
    };
    let xdiff = refined.min(trivial);
    let xhat_pert = xhat_stat.min(xrec + xdiff);
    let core = g_base * xdiff + eg_abs * xhat_pert;
    let e = span(-core, core).add(eb);
    mean_err(e, m, out_abs.max(g_pert * xhat_pert))
}

/// Runs the relational noise pass. `values` must be the interval-pass
/// result for the same tape; `recorded_abs` is the per-node recorded
/// `max |value|` from the traced base run ([`Graph::value_abs_max`],
/// `None` or short/`∞` entries degrade gracefully to the input-range
/// bounds); `seeds` perturb input leaves exactly as in [`noise_pass`].
///
/// Internally the plain interval pass runs first; the returned
/// [`RelationalNoise::tightened`] cells are each the intersection of the
/// zonotope enclosure with the corresponding interval cell.
///
/// [`Graph::value_abs_max`]: hero_autodiff::Graph::value_abs_max
pub fn relational_noise_pass(
    tape: &[NodeTrace],
    values: &[Interval],
    recorded_abs: Option<&[f32]>,
    seeds: &[NoiseSeed],
) -> RelationalNoise {
    hero_obs::counters::ANALYZE_ZONOTOPE_PASSES.incr();
    let plain = noise_pass(tape, values, seeds);
    let mut forms: Vec<AffineNoise> = Vec::with_capacity(tape.len());
    // Symbol ids 0..seeds.len() name the seeds; nonlinear transfers mint
    // fresh ids above that for their linearization excursions.
    let mut fresh = seeds.len() as u32;
    let mut tightened: Vec<Interval> = Vec::with_capacity(tape.len());
    // Widened recorded magnitude per node: a hair of headroom over the
    // recorded bytes so re-execution noise (none, by the determinism
    // contract) can never flip soundness.
    let rec = |idx: usize| -> f64 {
        recorded_abs
            .and_then(|r| r.get(idx))
            .map_or(f64::INFINITY, |&m| {
                if m.is_finite() {
                    f64::from(m) * (1.0 + 1e-5) + 1e-9
                } else {
                    f64::INFINITY
                }
            })
    };
    // Base-run value range: interval-pass cell ∩ recorded magnitude.
    // Sound for base-run quantities only — the recorded forward IS the
    // base run of the two-run difference this pass certifies.
    let clip = |iv: Interval, idx: usize| -> Interval {
        let m = rec(idx);
        if iv.maybe_nan || !m.is_finite() {
            return iv;
        }
        let (mlo, mhi) = ((-m) as f32, m as f32);
        let lo = iv.lo.max(mlo);
        let hi = iv.hi.min(mhi);
        if lo > hi {
            // Disjoint means the interval seeds disagree with the
            // recording; trust the pass input.
            return iv;
        }
        Interval {
            lo,
            hi,
            maybe_nan: iv.maybe_nan,
        }
    };
    for (i, node) in tape.iter().enumerate() {
        let pidx = |slot: usize| -> Option<usize> {
            node.parents.get(slot).filter(|&&idx| idx < i).copied()
        };
        // Tightened error interval of a parent.
        let et = |slot: usize| -> Interval { pidx(slot).map_or(Interval::TOP, |p| tightened[p]) };
        // Recorded-clipped base-run value range of a parent.
        let vc = |slot: usize| -> Interval {
            pidx(slot).map_or(Interval::TOP, |p| {
                clip(values.get(p).copied().unwrap_or(Interval::TOP), p)
            })
        };
        let pshape = |slot: usize| -> &[usize] { pidx(slot).map_or(&[][..], |p| &tape[p].shape) };
        let numel = |shape: &[usize]| -> usize { shape.iter().product() };
        // A parent's form, delinearized unless its lanes align with this
        // node's (same shape, element-wise correspondence).
        let aligned = |slot: usize| -> AffineNoise {
            pidx(slot).map_or_else(AffineNoise::top, |p| {
                if tape[p].shape == node.shape {
                    forms[p].clone()
                } else {
                    forms[p].delinearized()
                }
            })
        };
        let ownc = clip(values.get(i).copied().unwrap_or(Interval::TOP), i);
        // Magnitude both runs' outputs stay under at this node.
        let magc = |ee: Interval| -> f64 { f64::from(ownc.abs_max()) + f64::from(ee.abs_max()) };
        // Element-wise rounding slack (both runs), mirroring `elem`.
        let with_elem_slack = |mut f: AffineNoise| -> AffineNoise {
            let ee = f.concretize();
            if ee.maybe_nan {
                return AffineNoise::top();
            }
            f.widen_sym(2.0 * (REL_MARGIN * magc(ee) + ABS_MARGIN));
            f.checked()
        };
        let scalar_c = match node.detail {
            TraceDetail::Scalar { c } => Some(c),
            _ => None,
        };
        // Trace-centered zero preservation: a node whose parents all carry
        // exactly zero error is recomputed by the identical f32 instruction
        // sequence on bit-identical inputs in both runs, so its two-run
        // difference is exactly zero — no rounding or contraction slack
        // applies. (Guarded by the plain pass's own NaN analysis: NaN−NaN
        // is NaN, not zero.) This is what confines the certificate to the
        // seed's cone of influence; the interval pass charges its margins
        // unconditionally and lets phantom error grow from unseeded nodes.
        let parents_zero = node.op != "input"
            && !node.parents.is_empty()
            && node
                .parents
                .iter()
                .all(|&p| p < i && exactly_zero(tightened[p]))
            && !plain[i].maybe_nan;
        if parents_zero {
            forms.push(AffineNoise::zero());
            tightened.push(Interval::point(0.0));
            continue;
        }
        let form = match node.op {
            "input" => seeds
                .iter()
                .position(|s| s.node == i)
                .map_or_else(AffineNoise::zero, |si| {
                    AffineNoise::symbol(si as u32, f64::from(seeds[si].magnitude.abs()))
                }),
            "add" => with_elem_slack(aligned(0).add_form(&aligned(1))),
            "sub" => with_elem_slack(aligned(0).sub_form(&aligned(1))),
            "mul" => {
                // a'b' − ab = a·e_b + e_a·b', a the base run (clipped).
                let f = aligned(1)
                    .mul_by_range(vc(0))
                    .add_form(&aligned(0).mul_by_range(vc(1).add(et(1))));
                with_elem_slack(f)
            }
            "scale" => match scalar_c {
                Some(c) => with_elem_slack(aligned(0).scale_by(f64::from(c))),
                None => AffineNoise::top(),
            },
            "add_scalar" => with_elem_slack(aligned(0)),
            "square" => {
                // (x+δ)² − x² = 2xδ + δ².
                let mut f = aligned(0).mul_by_range(vc(0).mul(Interval::point(2.0)));
                f.add_rem(et(0).square());
                with_elem_slack(f)
            }
            "matmul" => {
                let k = pshape(0).get(1).copied().unwrap_or(0);
                let eprod = vc(0).mul(et(1)).add(et(0).mul(vc(1).add(et(1))));
                let term = f64::from(vc(0).add(et(0)).mul(vc(1).add(et(1))).abs_max());
                AffineNoise::from_interval(contract_err(eprod, k, term))
            }
            "conv2d" | "depthwise_conv2d" => {
                let k = match node.detail {
                    TraceDetail::Conv { geom } => {
                        if node.op == "conv2d" {
                            pshape(0).get(1).copied().unwrap_or(0) * geom.kernel * geom.kernel
                        } else {
                            geom.kernel * geom.kernel
                        }
                    }
                    _ => 0,
                };
                if k == 0 {
                    AffineNoise::top()
                } else {
                    let eprod = vc(0).mul(et(1)).add(et(0).mul(vc(1).add(et(1))));
                    let term = f64::from(vc(0).add(et(0)).mul(vc(1).add(et(1))).abs_max());
                    AffineNoise::from_interval(contract_err(eprod, k, term))
                }
            }
            // relu(x+δ) − relu(x) = s·δ for a per-lane chord slope
            // s ∈ [0, 1]; exact in f32, so no rounding slack — and the
            // symbols survive the clamp.
            "relu" | "relu6" => aligned(0).mul_by_range_fresh(Interval::of(0.0, 1.0), &mut fresh),
            // Window max moves by at most the extreme per-element
            // perturbation, but lanes do not survive the reduction.
            "max_pool2d" => AffineNoise::from_interval(crate::noisepass::hull_zero(et(0))),
            // Flat order is untouched: lanes survive by definition.
            "reshape" => pidx(0).map_or_else(AffineNoise::top, |p| forms[p].clone()),
            "sum" => {
                let k = numel(pshape(0));
                let term = f64::from(vc(0).add(et(0)).abs_max());
                AffineNoise::from_interval(contract_err(et(0), k, term))
            }
            "mean" => {
                let k = numel(pshape(0));
                let term = f64::from(vc(0).add(et(0)).abs_max());
                AffineNoise::from_interval(mean_err(et(0), k, term))
            }
            "avg_pool2d" => match node.detail {
                TraceDetail::AvgPool { k } => {
                    let term = f64::from(vc(0).add(et(0)).abs_max());
                    AffineNoise::from_interval(mean_err(et(0), k * k, term))
                }
                _ => AffineNoise::top(),
            },
            "global_avg_pool2d" => {
                let xs = pshape(0);
                if xs.len() != 4 {
                    AffineNoise::top()
                } else {
                    let term = f64::from(vc(0).add(et(0)).abs_max());
                    AffineNoise::from_interval(mean_err(et(0), xs[2] * xs[3], term))
                }
            }
            "batch_norm" => {
                let xs = pshape(0);
                match node.detail {
                    TraceDetail::BatchNorm {
                        inv_std_max,
                        xhat_abs_max,
                    } if xs.len() == 4 => {
                        let m = xs[0] * xs[2] * xs[3];
                        let xrec = if xhat_abs_max.is_finite() {
                            f64::from(xhat_abs_max) * (1.0 + 1e-5) + 1e-9
                        } else {
                            f64::INFINITY
                        };
                        let core = bn_err_rec(
                            et(0),
                            et(1),
                            et(2),
                            vc(1),
                            m,
                            inv_std_max,
                            xrec,
                            f64::from(ownc.abs_max()),
                        );
                        AffineNoise::from_interval(elem(core, magc(core)))
                    }
                    _ => AffineNoise::top(),
                }
            }
            "cross_entropy" | "cross_entropy_smoothed" => {
                let ez = et(0);
                let z_pert = vc(0).add(ez);
                if ez.maybe_nan || !z_pert.is_finite() {
                    AffineNoise::top()
                } else {
                    let classes = pshape(0).get(1).copied().unwrap_or(1).max(1);
                    let batch = pshape(0).first().copied().unwrap_or(1).max(1);
                    let b = (2.0 * f64::from(ez.abs_max())).min(CE_CAP);
                    AffineNoise::from_interval(mean_err(span(-b, b), batch * classes, CE_CAP))
                }
            }
            "sigmoid" => {
                with_elem_slack(aligned(0).mul_by_range_fresh(Interval::of(0.0, 0.25), &mut fresh))
            }
            "tanh" => {
                with_elem_slack(aligned(0).mul_by_range_fresh(Interval::of(0.0, 1.0), &mut fresh))
            }
            "leaky_relu" => match scalar_c {
                Some(s) => with_elem_slack(
                    aligned(0).mul_by_range_fresh(Interval::of(s.min(1.0), s.max(1.0)), &mut fresh),
                ),
                None => AffineNoise::top(),
            },
            "ln" => {
                let u = vc(0).hull(vc(0).add(et(0)));
                if u.lo <= 0.0 || !u.is_finite() {
                    AffineNoise::top()
                } else {
                    let d = Interval::of(
                        (1.0 / f64::from(u.hi)) as f32,
                        (1.0 / f64::from(u.lo)) as f32,
                    );
                    with_elem_slack(aligned(0).mul_by_range_fresh(d, &mut fresh))
                }
            }
            "dropout" => match node.detail {
                TraceDetail::Dropout { max_scale } => with_elem_slack(
                    aligned(0).mul_by_range_fresh(Interval::of(0.0, max_scale), &mut fresh),
                ),
                _ => AffineNoise::top(),
            },
            "mse_loss" => match node.detail {
                TraceDetail::Mse {
                    target_lo,
                    target_hi,
                } => {
                    let d = vc(0).sub(Interval::of(target_lo, target_hi));
                    let ee = Interval::point(2.0).mul(d).mul(et(0)).add(et(0).square());
                    let term = f64::from(d.add(et(0)).square().abs_max());
                    AffineNoise::from_interval(mean_err(ee, numel(pshape(0)), term))
                }
                _ => AffineNoise::top(),
            },
            _ => AffineNoise::top(),
        };
        // Monotone reduced product with the interval cell.
        let iv = plain[i];
        let (form, tight) = if iv.maybe_nan || !iv.is_finite() {
            // The plain pass gave up here; never outdo it on NaN-ness.
            (AffineNoise::from_interval(iv), iv)
        } else if form.is_zero() {
            // An exactly-zero form (unseeded input, or a transfer that
            // provably cancels) stays exactly zero: concretize()'s
            // outward pad would otherwise break the zero-preservation
            // chain one node downstream.
            (form, Interval::point(0.0))
        } else {
            let c = form.concretize();
            let tight = intersect(c, iv);
            // Keep the symbolic form unless the interval cell is
            // meaningfully tighter than the zonotope enclosure (beyond
            // concretize()'s own outward padding): the form is a sound
            // enclosure either way, so rebasing is purely a precision
            // heuristic, and symbols are worth a sliver of width.
            let keep = f64::from(c.width()) <= f64::from(tight.width()) * (1.0 + 1e-3) + 1e-30;
            if keep && !c.maybe_nan {
                (form, tight)
            } else {
                // The interval pass won here: rebase so downstream
                // transfers start from the better cell.
                (AffineNoise::from_interval(tight), tight)
            }
        };
        forms.push(form);
        tightened.push(tight);
    }
    RelationalNoise {
        forms,
        interval: plain,
        tightened,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{interval_pass, RangeSeed};
    use hero_autodiff::Graph;
    use hero_tensor::Tensor;

    fn seeds_for(g: &Graph) -> Vec<RangeSeed> {
        g.input_ranges()
            .into_iter()
            .map(|(node, lo, hi)| RangeSeed { node, lo, hi })
            .collect()
    }

    fn run(g: &Graph, noise: &[NoiseSeed]) -> RelationalNoise {
        let tape = g.trace();
        let values = interval_pass(&tape, &seeds_for(g));
        let rec = g.value_abs_max();
        relational_noise_pass(&tape, &values, Some(&rec), noise)
    }

    #[test]
    fn tightened_is_contained_in_interval_everywhere() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([4, 8], |_| 0.5));
        let w = g.input(Tensor::from_fn([8, 3], |_| 0.1));
        let h = g.matmul(x, w).unwrap();
        let _loss = g.sum(h);
        let seed = NoiseSeed {
            node: w.index(),
            magnitude: 0.01,
        };
        let rn = run(&g, &[seed]);
        for (i, (t, iv)) in rn.tightened.iter().zip(rn.interval.iter()).enumerate() {
            assert!(
                t.lo >= iv.lo && t.hi <= iv.hi,
                "node {i}: tightened {t:?} escapes interval {iv:?}"
            );
        }
    }

    #[test]
    fn shared_symbols_cancel_through_subtraction() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([4], |_| 0.5));
        let d = g.sub(x, x).unwrap();
        let seed = NoiseSeed {
            node: x.index(),
            magnitude: 0.1,
        };
        let rn = run(&g, &[seed]);
        // Interval domain: e(x) − e(x) = [−0.2, 0.2]. Zonotope: ≈ 0.
        let zono = rn.tightened[d.index()].abs_max();
        let interval = rn.interval[d.index()].abs_max();
        assert!(zono < 1e-4, "cancellation failed: {zono}");
        assert!(interval > 0.19, "interval should not cancel: {interval}");
    }

    #[test]
    fn symbols_survive_relu_chains() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([4], |_| 0.5));
        let r = g.relu(x);
        let d = g.sub(r, r).unwrap();
        let seed = NoiseSeed {
            node: x.index(),
            magnitude: 0.1,
        };
        let rn = run(&g, &[seed]);
        assert!(
            rn.tightened[d.index()].abs_max() < 1e-4,
            "relu should preserve lanes: {:?}",
            rn.tightened[d.index()]
        );
    }

    #[test]
    fn recorded_magnitudes_tighten_a_contraction() {
        // Interval seeds say |x| ≤ 10, but the recording says |x| ≤ 0.5:
        // the zonotope contraction uses the recorded base magnitudes.
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([4, 8], |_| 0.5));
        let w = g.input(Tensor::from_fn([8, 3], |_| 0.1));
        let h = g.matmul(x, w).unwrap();
        let _loss = g.sum(h);
        let tape = g.trace();
        let mut seeds = seeds_for(&g);
        for s in &mut seeds {
            if s.node == x.index() {
                s.lo = -10.0;
                s.hi = 10.0;
            }
        }
        let values = interval_pass(&tape, &seeds);
        let noise = [NoiseSeed {
            node: w.index(),
            magnitude: 0.01,
        }];
        let rec = g.value_abs_max();
        let with_rec = relational_noise_pass(&tape, &values, Some(&rec), &noise);
        let without = relational_noise_pass(&tape, &values, None, &noise);
        let hw = with_rec.tightened[h.index()].abs_max();
        let ho = without.tightened[h.index()].abs_max();
        assert!(
            hw < ho / 5.0,
            "recorded clip should tighten: with={hw} without={ho}"
        );
    }

    #[test]
    fn unseeded_pass_certifies_zero_noise() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(4));
        let y = g.square(x);
        let loss = g.sum(y);
        let rn = run(&g, &[]);
        assert!(rn.tightened[loss.index()].abs_max() < 1e-3);
    }

    #[test]
    fn concretize_rounds_outward() {
        let f = AffineNoise {
            terms: vec![(0, 0.1)],
            rem_lo: -1e-3,
            rem_hi: 1e-3,
            top: false,
        };
        let c = f.concretize();
        assert!(f64::from(c.lo) <= -0.101 && f64::from(c.hi) >= 0.101);
        assert!(AffineNoise::top().concretize() == Interval::TOP);
    }
}
