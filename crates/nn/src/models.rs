//! Reference architectures: scaled-down stand-ins for the paper's
//! ResNet20, MobileNetV2 and VGG19BN (see DESIGN.md for the substitution
//! rationale), plus an MLP for fast tests.

use crate::act::{Activation, Flatten, GlobalAvgPool2d, MaxPool2d};
use crate::block::{BasicBlock, InvertedResidual};
use crate::conv::Conv2d;
use crate::linear::Linear;
use crate::module::{Network, Sequential};
use crate::norm::BatchNorm2d;
use hero_tensor::rng::Rng;

/// Configuration shared by the model builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Number of output classes.
    pub classes: usize,
    /// Input channel count (3 for the synthetic vision presets).
    pub in_channels: usize,
    /// Input spatial side length (8 for C10/C100 presets, 16 for IN).
    pub input_hw: usize,
    /// Base channel width; scales every stage.
    pub width: usize,
}

impl Default for ModelConfig {
    /// 10-class, 3×8×8 input, width 8 — the C10-preset default.
    fn default() -> Self {
        ModelConfig {
            classes: 10,
            in_channels: 3,
            input_hw: 8,
            width: 8,
        }
    }
}

/// Builds a plain MLP: flatten → (linear → ReLU)* → linear.
///
/// `hidden` lists the hidden-layer widths. Used for fast unit tests and the
/// optimizer fixtures.
pub fn mlp(cfg: ModelConfig, hidden: &[usize], rng: &mut impl Rng) -> Network {
    let mut seq = Sequential::new();
    seq.add("flatten", Flatten);
    let mut in_dim = cfg.in_channels * cfg.input_hw * cfg.input_hw;
    for (i, &h) in hidden.iter().enumerate() {
        seq.add(format!("fc{i}"), Linear::new(in_dim, h, rng));
        seq.add(format!("act{i}"), Activation::Relu);
        in_dim = h;
    }
    seq.add("head", Linear::new(in_dim, cfg.classes, rng));
    Network::new("mlp", seq)
}

/// Builds the MiniResNet: conv stem + three residual stages + GAP + linear
/// head. Stand-in for the paper's ResNet20 (and, with `blocks_per_stage=2`
/// and larger width, ResNet18).
///
/// Stage widths are `w, w, 2w` with stride-2 transitions, mirroring the
/// CIFAR ResNet layout at a scale where it stays the *smallest* of the
/// three families (matching the paper's 0.27M vs 2.3M vs 20M ordering).
pub fn mini_resnet(cfg: ModelConfig, blocks_per_stage: usize, rng: &mut impl Rng) -> Network {
    let w = cfg.width;
    let mut seq = Sequential::new();
    seq.add("stem.conv", Conv2d::new(cfg.in_channels, w, 3, 1, 1, rng));
    seq.add("stem.bn", BatchNorm2d::new(w));
    seq.add("stem.act", Activation::Relu);
    let widths = [w, w, 2 * w];
    let mut in_c = w;
    for (stage, &out_c) in widths.iter().enumerate() {
        for b in 0..blocks_per_stage {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            seq.add(
                format!("stage{stage}.block{b}"),
                BasicBlock::new(in_c, out_c, stride, rng),
            );
            in_c = out_c;
        }
    }
    seq.add("gap", GlobalAvgPool2d);
    seq.add("head", Linear::new(in_c, cfg.classes, rng));
    Network::new("mini_resnet", seq)
}

/// Builds the MiniVgg: plain conv-BN-ReLU stacks with max-pool reductions
/// and a deliberately large fully-connected head. Stand-in for VGG19BN —
/// the most over-parameterized of the three families, which the paper shows
/// is the most quantization-sensitive.
pub fn mini_vgg(cfg: ModelConfig, rng: &mut impl Rng) -> Network {
    let w = cfg.width * 2; // VGG is the wide model of the family
    let mut seq = Sequential::new();
    let mut in_c = cfg.in_channels;
    let mut hw = cfg.input_hw;
    for (stage, mult) in [1usize, 2].into_iter().enumerate() {
        let out_c = w * mult;
        for conv in 0..2 {
            seq.add(
                format!("stage{stage}.conv{conv}"),
                Conv2d::new(in_c, out_c, 3, 1, 1, rng),
            );
            seq.add(format!("stage{stage}.bn{conv}"), BatchNorm2d::new(out_c));
            seq.add(format!("stage{stage}.act{conv}"), Activation::Relu);
            in_c = out_c;
        }
        seq.add(format!("stage{stage}.pool"), MaxPool2d { k: 2 });
        hw /= 2;
    }
    seq.add("flatten", Flatten);
    let feat = in_c * hw * hw;
    let fc_width = feat; // square FC layer: the "heavy head" that makes VGG big
    seq.add("fc0", Linear::new(feat, fc_width, rng));
    seq.add("fc0.act", Activation::Relu);
    seq.add("head", Linear::new(fc_width, cfg.classes, rng));
    Network::new("mini_vgg", seq)
}

/// Builds the MiniMobileNet: conv stem + inverted-residual blocks
/// (expansion 4) + 1×1 head conv + GAP + linear. Stand-in for MobileNetV2.
pub fn mini_mobilenet(cfg: ModelConfig, rng: &mut impl Rng) -> Network {
    let w = cfg.width;
    let mut seq = Sequential::new();
    seq.add("stem.conv", Conv2d::new(cfg.in_channels, w, 3, 1, 1, rng));
    seq.add("stem.bn", BatchNorm2d::new(w));
    seq.add("stem.act", Activation::Relu6);
    // (out_c, stride, expansion)
    let blocks = [
        (w, 1, 1),
        (2 * w, 2, 4),
        (2 * w, 1, 4),
        (3 * w, 2, 4),
        (3 * w, 1, 4),
    ];
    let mut in_c = w;
    for (i, (out_c, stride, expansion)) in blocks.into_iter().enumerate() {
        seq.add(
            format!("ir{i}"),
            InvertedResidual::new(in_c, out_c, stride, expansion, rng),
        );
        in_c = out_c;
    }
    let head_c = 6 * w;
    seq.add("headconv", Conv2d::new(in_c, head_c, 1, 1, 0, rng));
    seq.add("headconv.bn", BatchNorm2d::new(head_c));
    seq.add("headconv.act", Activation::Relu6);
    seq.add("gap", GlobalAvgPool2d);
    seq.add("head", Linear::new(head_c, cfg.classes, rng));
    Network::new("mini_mobilenet", seq)
}

/// The three paper model families, used to parameterize experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// MiniResNet (ResNet20/ResNet18 stand-in).
    Resnet,
    /// MiniMobileNet (MobileNetV2 stand-in).
    Mobilenet,
    /// MiniVgg (VGG19BN stand-in).
    Vgg,
}

impl ModelKind {
    /// The display name used in reports (matching the paper's tables).
    pub fn paper_name(self) -> &'static str {
        match self {
            ModelKind::Resnet => "ResNet20",
            ModelKind::Mobilenet => "MobileNetV2",
            ModelKind::Vgg => "VGG19BN",
        }
    }

    /// Builds the corresponding network.
    pub fn build(self, cfg: ModelConfig, rng: &mut impl Rng) -> Network {
        match self {
            ModelKind::Resnet => mini_resnet(cfg, 1, rng),
            ModelKind::Mobilenet => mini_mobilenet(cfg, rng),
            ModelKind::Vgg => mini_vgg(cfg, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_autodiff::Graph;
    use hero_tensor::rng::StdRng;
    use hero_tensor::Tensor;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn check_model(net: &mut Network, cfg: ModelConfig) {
        let x = Tensor::from_fn([2, cfg.in_channels, cfg.input_hw, cfg.input_hw], |i| {
            (i.iter().sum::<usize>() % 7) as f32 * 0.2 - 0.6
        });
        // Train-mode forward produces logits with gradients for all params.
        let mut g = Graph::new();
        let (logits, vars) = net.forward(&mut g, &x, true).unwrap();
        assert_eq!(g.value(logits).dims(), &[2, cfg.classes]);
        let loss = g.cross_entropy(logits, &[0, 1]).unwrap();
        let grads = g.backward(loss).unwrap();
        for (i, v) in vars.iter().enumerate() {
            assert!(grads.get(*v).is_some(), "param {i} got no gradient");
        }
        assert_eq!(vars.len(), net.params().len());
        // Eval-mode predictions work and are finite.
        let pred = net.predict(&x).unwrap();
        assert_eq!(pred.dims(), &[2, cfg.classes]);
        assert!(pred.is_finite());
        // Param round trip preserves behaviour.
        let ps = net.params();
        net.set_params(&ps).unwrap();
        let infos = net.param_infos();
        assert_eq!(infos.len(), ps.len());
    }

    #[test]
    fn mlp_shapes_and_gradients() {
        let cfg = ModelConfig::default();
        let mut net = mlp(cfg, &[16, 16], &mut rng());
        check_model(&mut net, cfg);
    }

    #[test]
    fn mini_resnet_shapes_and_gradients() {
        let cfg = ModelConfig::default();
        let mut net = mini_resnet(cfg, 1, &mut rng());
        check_model(&mut net, cfg);
    }

    #[test]
    fn mini_vgg_shapes_and_gradients() {
        let cfg = ModelConfig::default();
        let mut net = mini_vgg(cfg, &mut rng());
        check_model(&mut net, cfg);
    }

    #[test]
    fn mini_mobilenet_shapes_and_gradients() {
        let cfg = ModelConfig::default();
        let mut net = mini_mobilenet(cfg, &mut rng());
        check_model(&mut net, cfg);
    }

    #[test]
    fn deeper_resnet_preset_works_on_16px() {
        let cfg = ModelConfig {
            classes: 50,
            input_hw: 16,
            width: 8,
            in_channels: 3,
        };
        let mut net = mini_resnet(cfg, 2, &mut rng());
        check_model(&mut net, cfg);
    }

    #[test]
    fn vgg_is_the_largest_model() {
        // Mirrors the paper's size ordering: VGG19BN >> MobileNetV2 > ResNet20.
        let cfg = ModelConfig::default();
        let r = mini_resnet(cfg, 1, &mut rng()).num_scalars();
        let m = mini_mobilenet(cfg, &mut rng()).num_scalars();
        let v = mini_vgg(cfg, &mut rng()).num_scalars();
        assert!(v > m, "vgg {v} should exceed mobilenet {m}");
        assert!(m > r, "mobilenet {m} should exceed resnet {r}");
    }

    #[test]
    fn model_kind_builds_all_families() {
        let cfg = ModelConfig::default();
        for kind in [ModelKind::Resnet, ModelKind::Mobilenet, ModelKind::Vgg] {
            let net = kind.build(cfg, &mut rng());
            assert!(net.num_scalars() > 0);
            assert!(!kind.paper_name().is_empty());
        }
    }

    #[test]
    fn seeded_builders_are_deterministic() {
        let cfg = ModelConfig::default();
        let a = mini_resnet(cfg, 1, &mut rng()).params();
        let b = mini_resnet(cfg, 1, &mut rng()).params();
        assert_eq!(a, b);
    }
}
