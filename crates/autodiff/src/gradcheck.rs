//! Numeric gradient checking against central finite differences.
//!
//! Every differentiable operation in this crate is validated with
//! [`check_scalar_fn`], which compares an analytic gradient against
//! `(f(x + εe_i) - f(x - εe_i)) / 2ε` at every coordinate.

use hero_tensor::Tensor;

/// Compares the analytic gradient of a scalar function against central
/// finite differences.
///
/// `f` maps an input tensor to `(loss, analytic_gradient)`. The check
/// perturbs every coordinate of `x0` by `±eps` and requires the relative
/// error of each analytic partial derivative to be below `tol` (with an
/// absolute floor for near-zero derivatives).
///
/// # Panics
///
/// Panics with a descriptive message at the first coordinate whose analytic
/// and numeric derivatives disagree — this is a test utility.
pub fn check_scalar_fn(x0: &Tensor, eps: f32, tol: f32, f: impl Fn(&Tensor) -> (f32, Tensor)) {
    let (_, analytic) = f(x0);
    assert_eq!(
        analytic.shape(),
        x0.shape(),
        "gradient shape {:?} differs from input shape {:?}",
        analytic.dims(),
        x0.dims()
    );
    for i in 0..x0.numel() {
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;
        let (lp, _) = f(&plus);
        let (lm, _) = f(&minus);
        let numeric = (lp - lm) / (2.0 * eps);
        let a = analytic.data()[i];
        let denom = a.abs().max(numeric.abs()).max(1.0);
        let rel = (a - numeric).abs() / denom;
        assert!(
            rel <= tol,
            "gradient mismatch at flat index {i}: analytic {a}, numeric {numeric}, rel err {rel} > {tol}"
        );
    }
}

/// Computes the full numeric gradient of a scalar function by central
/// differences (useful when only the value is available).
pub fn numeric_gradient(x0: &Tensor, eps: f32, f: impl Fn(&Tensor) -> f32) -> Tensor {
    let mut grad = Tensor::zeros(x0.shape().clone());
    for i in 0..x0.numel() {
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;
        grad.data_mut()[i] = (f(&plus) - f(&minus)) / (2.0 * eps);
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_gradient_of_quadratic() {
        // f(x) = sum(x^2) -> grad = 2x
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5], [3]).unwrap();
        let g = numeric_gradient(&x, 1e-2, |t| t.norm_l2_sq());
        for (gi, xi) in g.data().iter().zip(x.data()) {
            assert!((gi - 2.0 * xi).abs() < 1e-2);
        }
    }

    #[test]
    fn check_scalar_fn_accepts_correct_gradient() {
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.1], [3]).unwrap();
        check_scalar_fn(&x, 1e-3, 1e-2, |t| (t.norm_l2_sq(), t.scale(2.0)));
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn check_scalar_fn_rejects_wrong_gradient() {
        let x = Tensor::from_vec(vec![0.3, -0.7], [2]).unwrap();
        check_scalar_fn(&x, 1e-3, 1e-2, |t| (t.norm_l2_sq(), t.scale(3.0)));
    }
}
