//! # hero-analyze
//!
//! Static analysis for [`hero_autodiff`] tapes.
//!
//! HERO's training step is a long op pipeline — tape-recorded forward ops,
//! finite-difference Hessian-vector products, perturbed SAM steps — where a
//! silent shape mismatch corrupts curvature estimates without failing any
//! test. This crate walks the tape's lowered trace IR
//! ([`hero_autodiff::NodeTrace`]) *before* relying on a model and checks,
//! statically:
//!
//! * **Structure** — parent indices in range, tape topologically ordered.
//! * **Shapes** — matmul inner-dim agreement, broadcast compatibility,
//!   reshape element-count conservation, conv/pool geometry, batch-norm
//!   parameter shapes, loss label counts.
//! * **Dataflow** — dead nodes, unused parameters, constant-foldable
//!   subgraphs.
//! * **Values** (opt-in via [`ValueOptions`]) — a forward interval-domain
//!   pass propagating sound per-node value ranges from seeded input
//!   statistics, and a backward scale pass bounding gradient magnitudes
//!   from the loss roots. These feed the quantization-clip, dead-zone,
//!   gradient explosion/vanishing and non-finite-range lints.
//! * **Quantization noise** (opt-in via [`ValueOptions::noise_seeds`]) — a
//!   forward error domain seeded with per-weight perturbation magnitudes
//!   (`Δ(bits)/2` for a quantized tensor) that certifies an end-to-end
//!   output-error bound per node, feeding the noise-dominance and
//!   error-budget lints and `hero-quant`'s static sensitivity matrix.
//! * **Relational noise** (automatic whenever noise seeds are present) —
//!   a zonotope/affine-arithmetic refinement of the noise domain that
//!   threads shared noise symbols through the tape and centers value
//!   ranges on the recorded trace ([`ValueOptions::recorded_abs`]),
//!   then intersects per node with the interval result so the published
//!   bound ([`ValueAnalysis::noise`]) only ever tightens.
//!
//! Findings come back as structured [`Diagnostic`]s (node index, op name,
//! provenance chain) in a [`Report`] instead of a panic mid-step.
//!
//! # Examples
//!
//! ```
//! use hero_analyze::{verify_graph, AnalyzeOptions};
//! use hero_autodiff::Graph;
//! use hero_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.input(Tensor::arange(4));
//! let y = g.square(x);
//! let loss = g.sum(y);
//! let report = verify_graph(&g, &[loss]);
//! assert!(report.is_clean(), "{report}");
//! ```

#![warn(missing_docs)]

mod diag;
mod dot;
mod interval;
mod liveness;
mod noisepass;
mod scalepass;
mod verify;
mod zonotope;

pub use diag::{DiagCode, Diagnostic, Report, Severity, ValueAnalysis};
pub use dot::to_dot_colored;
pub use interval::{interval_pass, quant_clip_risk, Interval, RangeSeed};
pub use noisepass::{noise_pass, NoiseSeed};
pub use zonotope::{relational_noise_pass, AffineNoise, RelationalNoise};

use hero_autodiff::{Graph, NodeTrace, Var};

/// Configuration for the value-level passes (forward intervals + backward
/// gradient-scale bounds) and the lints built on them.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueOptions {
    /// Declared value ranges for input leaves. Inputs without a seed are
    /// unbounded and will be flagged [`DiagCode::NonFiniteRange`].
    pub seeds: Vec<RangeSeed>,
    /// Bit widths to check for [`DiagCode::QuantClipRisk`]; empty
    /// disables the lint.
    pub quant_bits: Vec<u8>,
    /// Symmetric clip range for the quantization lint. `None` derives it
    /// from the largest seed magnitude (the shared "input grid" policy).
    pub quant_max_abs: Option<f32>,
    /// Gradient-magnitude bound above which [`DiagCode::ScaleExplosion`]
    /// fires. The default (1e30) only trips on overflow-bound paths.
    pub explode_threshold: f32,
    /// Gradient-magnitude bound below which [`DiagCode::ScaleVanishing`]
    /// fires. The default (1e-30) only trips on statically dead paths.
    pub vanish_threshold: f32,
    /// Quantization-noise seeds for the forward noise pass; empty skips
    /// the pass (and [`ValueAnalysis::noise`] stays empty).
    pub noise_seeds: Vec<NoiseSeed>,
    /// Certified output-error budget: roots whose propagated noise bound
    /// exceeds it are flagged [`DiagCode::QuantErrorBudgetExceeded`].
    pub noise_budget: Option<f32>,
    /// Per-node recorded `max |value|` from the traced forward run
    /// ([`hero_autodiff::Graph::value_abs_max`]); empty means
    /// unavailable. When present, the relational noise pass centers its
    /// base-run value ranges on the recording, which is what makes its
    /// bounds trace-specific and tight.
    pub recorded_abs: Vec<f32>,
}

impl Default for ValueOptions {
    fn default() -> Self {
        ValueOptions {
            seeds: Vec::new(),
            quant_bits: Vec::new(),
            quant_max_abs: None,
            explode_threshold: 1e30,
            vanish_threshold: 1e-30,
            noise_seeds: Vec::new(),
            noise_budget: None,
            recorded_abs: Vec::new(),
        }
    }
}

/// What the analyzer should treat as outputs and as per-step-varying
/// inputs.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Output nodes (e.g. the loss). Empty means "every sink is an
    /// output", which disables dead-node detection for sinks.
    pub roots: Vec<usize>,
    /// Input nodes whose values change every step (batch data, trainable
    /// parameters). `None` treats every input as variable, disabling
    /// constant-folding detection; `Some(vec![])` treats every input as
    /// constant.
    pub variable_inputs: Option<Vec<usize>>,
    /// Enables the value-level passes when present. They are skipped (and
    /// [`Report::value`] stays `None`) if structural/shape errors exist,
    /// since value transfer functions assume a well-formed tape.
    pub value: Option<ValueOptions>,
}

impl AnalyzeOptions {
    /// Options with the given output nodes and all inputs variable.
    pub fn with_roots(roots: Vec<usize>) -> Self {
        AnalyzeOptions {
            roots,
            variable_inputs: None,
            value: None,
        }
    }
}

/// Options for [`verify_graph_with`]: the value-lint knobs, with seeds
/// taken from the live graph's recorded input statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyOptions {
    /// Bit widths for the quantization-clip lint; empty disables it.
    pub quant_bits: Vec<u8>,
    /// Clip range for the quantization lint (`None`: largest input
    /// magnitude).
    pub quant_max_abs: Option<f32>,
    /// Gradient explosion threshold.
    pub explode_threshold: f32,
    /// Gradient vanishing threshold.
    pub vanish_threshold: f32,
    /// Quantization-noise seeds for the forward noise pass.
    pub noise_seeds: Vec<NoiseSeed>,
    /// Certified output-error budget for the noise pass.
    pub noise_budget: Option<f32>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        let v = ValueOptions::default();
        VerifyOptions {
            quant_bits: v.quant_bits,
            quant_max_abs: v.quant_max_abs,
            explode_threshold: v.explode_threshold,
            vanish_threshold: v.vanish_threshold,
            noise_seeds: v.noise_seeds,
            noise_budget: v.noise_budget,
        }
    }
}

/// Runs every pass over a lowered tape and collects the findings.
pub fn analyze(tape: &[NodeTrace], opts: &AnalyzeOptions) -> Report {
    let mut diagnostics = verify::structural_and_shape_pass(tape);
    // The dataflow passes assume backward edges; they skip malformed ones
    // themselves, so they can run even when structure errors exist.
    diagnostics.extend(liveness::liveness_pass(tape, opts));
    let mut value = None;
    if let Some(vopts) = &opts.value {
        // Value transfer functions assume well-formed nodes; any
        // error-severity structural/shape finding blocks them.
        if !diagnostics.iter().any(|d| d.severity() == Severity::Error) {
            let intervals = interval::interval_pass(tape, &vopts.seeds);
            diagnostics.extend(interval::interval_diags(tape, &intervals, vopts));
            let consumers = liveness::consumer_lists(tape);
            let roots = liveness::roots(tape, &consumers, opts);
            let (bounds, reachable) = scalepass::scale_pass(tape, &intervals, &roots);
            diagnostics.extend(scalepass::scale_diags(
                tape,
                &bounds,
                &reachable,
                &consumers,
                &roots,
                vopts.explode_threshold,
                vopts.vanish_threshold,
            ));
            let (noise, noise_interval) = if vopts.noise_seeds.is_empty() {
                (Vec::new(), Vec::new())
            } else {
                let rec = (!vopts.recorded_abs.is_empty()).then_some(&vopts.recorded_abs[..]);
                let rn = zonotope::relational_noise_pass(tape, &intervals, rec, &vopts.noise_seeds);
                diagnostics.extend(noisepass::noise_diags(
                    tape,
                    &intervals,
                    &rn.tightened,
                    &roots,
                    vopts.noise_budget,
                ));
                (rn.tightened, rn.interval)
            };
            value = Some(ValueAnalysis {
                intervals,
                grad_bounds: bounds.iter().map(|&b| b as f32).collect(),
                noise,
                noise_interval,
            });
        }
    }
    diagnostics.sort_by_key(|d| d.node);
    Report {
        diagnostics,
        nodes: tape.len(),
        value,
    }
}

/// Verifies a live [`Graph`] with the given output variables as roots,
/// including the value-level passes seeded from the graph's recorded
/// input min/max statistics (default lint thresholds; quantization lint
/// off).
pub fn verify_graph(g: &Graph, roots: &[Var]) -> Report {
    verify_graph_with(g, roots, &VerifyOptions::default())
}

/// [`verify_graph`] with explicit value-lint options (e.g. the bit widths
/// an upcoming quantization sweep will use).
pub fn verify_graph_with(g: &Graph, roots: &[Var], opts: &VerifyOptions) -> Report {
    let seeds = g
        .input_ranges()
        .into_iter()
        .map(|(node, lo, hi)| RangeSeed { node, lo, hi })
        .collect();
    let aopts = AnalyzeOptions {
        roots: roots.iter().map(Var::index).collect(),
        variable_inputs: None,
        value: Some(ValueOptions {
            seeds,
            quant_bits: opts.quant_bits.clone(),
            quant_max_abs: opts.quant_max_abs,
            explode_threshold: opts.explode_threshold,
            vanish_threshold: opts.vanish_threshold,
            noise_seeds: opts.noise_seeds.clone(),
            noise_budget: opts.noise_budget,
            recorded_abs: g.value_abs_max(),
        }),
    };
    analyze(&g.trace(), &aopts)
}

impl Report {
    /// Publishes the report through `hero-obs`: bumps the
    /// `analyze_diags_{error,warn}` counters and, when a structured run
    /// is active, emits an `analyze_report` JSONL event tagged with
    /// `context`.
    pub fn emit_obs(&self, context: &str) {
        let errors = self.errors().count() as u64;
        let warnings = self.warnings().count() as u64;
        hero_obs::counters::ANALYZE_DIAGS_ERROR.add(errors);
        hero_obs::counters::ANALYZE_DIAGS_WARN.add(warnings);
        if hero_obs::run_active() {
            let mut codes: Vec<String> = self
                .diagnostics
                .iter()
                .map(|d| d.code.name().to_string())
                .collect();
            codes.sort();
            codes.dedup();
            hero_obs::Event::new("analyze_report")
                .str("context", context)
                .u64("nodes", self.nodes as u64)
                .u64("errors", errors)
                .u64("warnings", warnings)
                .str("codes", &codes.join(","))
                .human(format!(
                    "analyze[{context}]: {} nodes, {errors} errors, {warnings} warnings",
                    self.nodes
                ))
                .emit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_tensor::{ConvGeometry, Tensor};

    #[test]
    fn clean_mlp_tape_produces_no_findings() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([4, 8], |i| 0.1 * (i[0] + i[1]) as f32));
        let w = g.input(Tensor::from_fn([8, 3], |i| 0.01 * (i[0] * 3 + i[1]) as f32));
        let b = g.input(Tensor::from_fn([3], |_| 0.1));
        let h = g.matmul(x, w).unwrap();
        let z = g.add(h, b).unwrap();
        let a = g.relu(z);
        let loss = g.cross_entropy(a, &[0, 1, 2, 0]).unwrap();
        let report = verify_graph(&g, &[loss]);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.nodes, 7);
    }

    #[test]
    fn clean_conv_tape_produces_no_findings() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([2, 3, 8, 8], |i| {
            0.01 * (i[2] + i[3]) as f32
        }));
        let w = g.input(Tensor::from_fn([4, 3 * 3 * 3], |_| 0.02));
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let y = g.conv2d(x, w, geom).unwrap();
        let r = g.relu6(y);
        let p = g.max_pool2d(r, 2).unwrap();
        let q = g.avg_pool2d(p, 2).unwrap();
        let gap = g.global_avg_pool2d(q).unwrap();
        let loss = g.cross_entropy(gap, &[1, 3]).unwrap();
        let report = verify_graph(&g, &[loss]);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn dead_branch_and_unused_input_are_flagged() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(4));
        let unused = g.input(Tensor::arange(2));
        let y = g.square(x);
        let dead = g.scale(y, 2.0); // computed, never used by the loss
        let loss = g.sum(y);
        let report = verify_graph(&g, &[loss]);
        assert!(!report.has_errors(), "{report}");
        assert!(report.flags(unused.index(), DiagCode::UnusedParameter));
        assert!(report.flags(dead.index(), DiagCode::DeadNode));
    }

    #[test]
    fn constant_subgraph_is_flagged_at_its_fold_boundary() {
        let mut g = Graph::new();
        let data = g.input(Tensor::arange(4));
        let frozen = g.input(Tensor::from_fn([4], |_| 2.0));
        let fold_a = g.square(frozen); // constant
        let fold_b = g.scale(fold_a, 0.5); // constant — the boundary
        let mixed = g.mul(data, fold_b).unwrap();
        let loss = g.sum(mixed);
        let opts = AnalyzeOptions {
            roots: vec![loss.index()],
            variable_inputs: Some(vec![data.index()]),
            value: None,
        };
        let report = analyze(&g.trace(), &opts);
        assert!(!report.has_errors(), "{report}");
        assert!(report.flags(fold_b.index(), DiagCode::ConstantFoldable));
        // Interior constant nodes are not re-reported.
        assert!(!report.flags(fold_a.index(), DiagCode::ConstantFoldable));
    }

    #[test]
    fn all_variable_inputs_disable_constant_folding() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(4));
        let y = g.square(x);
        let loss = g.sum(y);
        let report = verify_graph(&g, &[loss]);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn report_renders_findings_with_provenance() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(4));
        let y = g.square(x);
        let dead = g.scale(y, 3.0);
        let loss = g.sum(y);
        let report = verify_graph(&g, &[loss]);
        let text = report.to_string();
        assert!(text.contains("dead-node"), "{text}");
        assert!(text.contains(&format!("#{}", dead.index())), "{text}");
    }
}
