//! Tensor shapes: dimension lists, volumes and row-major strides.

use crate::error::{Result, TensorError};
use std::fmt;

/// The shape of a tensor: an ordered list of dimension sizes.
///
/// Shapes are stored densely and interpreted in row-major (C) order; the last
/// axis is contiguous in memory. A rank-0 shape (no dims) denotes a scalar
/// with volume 1.
///
/// # Examples
///
/// ```
/// use hero_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a list of dimensions.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dims; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns an error if `index` has the wrong rank or any coordinate is
    /// out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                expected: self.rank(),
                actual: index.len(),
            });
        }
        let strides = self.strides();
        let mut off = 0;
        for (axis, (&i, (&d, &s))) in index
            .iter()
            .zip(self.0.iter().zip(strides.iter()))
            .enumerate()
        {
            let _ = axis;
            if i >= d {
                return Err(TensorError::IndexOutOfRange { index: i, size: d });
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Converts a flat row-major offset back to a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= numel()` for non-empty shapes (debug assertion).
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        debug_assert!(offset < self.numel().max(1));
        let mut index = vec![0; self.rank()];
        for (i, &s) in self.strides().iter().enumerate() {
            index[i] = offset / s;
            offset %= s;
        }
        index
    }

    /// The shape that results from broadcasting `self` with `other` under
    /// NumPy semantics (align trailing axes; a dim of 1 stretches).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] if any aligned pair of
    /// dimensions differs with neither equal to 1.
    pub fn broadcast_with(&self, other: &Shape) -> Result<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0; rank];
        for (i, dim) in dims.iter_mut().enumerate() {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.0[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.0[i - (rank - other.rank())]
            };
            *dim = match (a, b) {
                (x, y) if x == y => x,
                (1, y) => y,
                (x, 1) => x,
                _ => {
                    return Err(TensorError::BroadcastMismatch {
                        left: self.0.clone(),
                        right: other.0.clone(),
                    })
                }
            };
        }
        Ok(Shape(dims))
    }

    /// Returns a new shape with `axis` removed (used by reductions).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn remove_axis(&self, axis: usize) -> Result<Shape> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let mut dims = self.0.clone();
        dims.remove(axis);
        Ok(Shape(dims))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn offset_round_trips_with_unravel() {
        let s = Shape::from([3, 4, 5]);
        for flat in 0..s.numel() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn offset_rejects_out_of_range() {
        let s = Shape::from([2, 2]);
        assert_eq!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfRange { index: 2, size: 2 })
        );
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn broadcast_follows_numpy_rules() {
        let a = Shape::from([3, 1, 5]);
        let b = Shape::from([4, 5]);
        assert_eq!(a.broadcast_with(&b).unwrap(), Shape::from([3, 4, 5]));
        let scalar = Shape::scalar();
        assert_eq!(a.broadcast_with(&scalar).unwrap(), a);
        let bad = Shape::from([2, 1, 5]);
        assert!(a.broadcast_with(&bad).is_err()); // leading 3-vs-2 clash
        let stretched = Shape::from([3, 2, 5]);
        assert_eq!(a.broadcast_with(&stretched).unwrap(), stretched); // 1 stretches to 2
    }

    #[test]
    fn remove_axis_shrinks_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.remove_axis(1).unwrap(), Shape::from([2, 4]));
        assert!(s.remove_axis(3).is_err());
    }

    #[test]
    fn display_renders_as_tuple() {
        assert_eq!(Shape::from([2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }
}
