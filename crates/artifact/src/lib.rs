//! # hero-artifact
//!
//! The versioned, deterministic binary model-artifact format of the HERO
//! reproduction (DESIGN.md §16): graph topology metadata, weights,
//! batch-norm running statistics, quantization scales/bit allocation,
//! provenance (seed, training configuration, git revision, preflight
//! report hash) and an optional resumable-training section — everything
//! the train → preflight → quantize pipeline persists between stages.
//!
//! The crate is deliberately free of every other `hero-*` crate: it
//! defines plain-data containers and their canonical little-endian
//! encoding, nothing else. `hero-core::artifact_io` does the conversion
//! to and from live networks and training records.
//!
//! # Determinism contract
//!
//! [`Artifact::to_bytes`] is a pure function of the artifact's contents:
//! fields are written in a fixed order, floats as their exact IEEE-754
//! bit patterns, and no clocks, hashes of addresses, or map iteration
//! orders are involved. The same training run therefore always produces
//! byte-identical files — which is what lets CI pin a golden artifact by
//! hash (see `scripts/verify.sh`).
//!
//! # Corruption safety
//!
//! [`Artifact::from_bytes`] never panics and never allocates more than
//! the input could justify: every length field is validated against the
//! bytes actually remaining before any buffer is reserved, so a
//! length-field lie yields [`ArtifactError::Malformed`] instead of an
//! OOM. A whole-body FNV-1a checksum in the header catches bit flips.
//!
//! # Examples
//!
//! ```
//! use hero_artifact::{Artifact, MetaValue, TensorEntry};
//!
//! let mut art = Artifact::new();
//! art.set_meta("train.seed", MetaValue::U64(7));
//! art.tensors.push(TensorEntry {
//!     name: "head.weight".into(),
//!     kind: 0,
//!     dims: vec![2, 3],
//!     data: vec![0.0; 6],
//! });
//! let bytes = art.to_bytes();
//! let back = Artifact::from_bytes(&bytes).unwrap();
//! assert_eq!(back.to_bytes(), bytes); // byte-identical round trip
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::path::Path;

/// File magic: the first eight bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"HEROART1";

/// Current format version. Readers reject anything newer; older versions
/// are migrated explicitly when the format evolves (none exist yet).
pub const VERSION: u32 = 1;

/// Longest accepted string field (names, meta keys/values) in bytes.
/// Keeps a corrupted length field from looking plausible.
pub const MAX_STR: usize = 1 << 16;

/// Highest accepted tensor rank.
pub const MAX_RANK: usize = 8;

const SECTION_META: u8 = 1;
const SECTION_TENSORS: u8 = 2;
const SECTION_STATE: u8 = 3;
const SECTION_QUANT: u8 = 4;
const SECTION_RESUME: u8 = 5;

/// Errors surfaced by artifact decoding and file I/O.
///
/// Every decode failure is one of these typed variants — corrupted input
/// must never panic or trigger an unbounded allocation (fuzzed in
/// `tests/fuzz.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Underlying file I/O failed.
    Io(String),
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// The header declares a version this reader does not support.
    UnsupportedVersion(u32),
    /// The input ended before a declared field was complete.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the field still needed.
        needed: usize,
    },
    /// The body bytes do not hash to the checksum stored in the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the body actually read.
        computed: u64,
    },
    /// A structurally invalid field: length-field lies, bad section tags,
    /// out-of-range ranks, non-UTF-8 names, trailing garbage.
    Malformed {
        /// Byte offset of the offending field.
        offset: usize,
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::BadMagic => write!(f, "not a HERO artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v} (reader supports {VERSION})")
            }
            ArtifactError::Truncated { offset, needed } => {
                write!(f, "artifact truncated at byte {offset}: {needed} more bytes needed")
            }
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: header says {stored:#018x}, body hashes to {computed:#018x}"
            ),
            ArtifactError::Malformed { offset, what } => {
                write!(f, "malformed artifact at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Decode result alias.
pub type Result<T> = std::result::Result<T, ArtifactError>;

/// FNV-1a 64-bit hash — the body checksum (and the hash verify.sh pins
/// golden artifacts by). Chosen for being trivially portable and fully
/// specified; this is corruption detection, not cryptography.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One provenance/config entry value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaValue {
    /// UTF-8 string.
    Str(String),
    /// Unsigned integer.
    U64(u64),
    /// Floating point (stored as exact IEEE-754 bits).
    F64(f64),
    /// Boolean.
    Bool(bool),
}

/// One named parameter tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorEntry {
    /// Dotted parameter path, e.g. `stage1.block0.conv1.weight`.
    pub name: String,
    /// Role tag (the writer's `ParamKind` ordinal; opaque to this crate).
    pub kind: u8,
    /// Tensor dimensions.
    pub dims: Vec<u64>,
    /// Row-major values.
    pub data: Vec<f32>,
}

impl TensorEntry {
    /// Element count implied by the dims (checked, saturating on overflow).
    pub fn numel(&self) -> u64 {
        self.dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d))
            .unwrap_or(u64::MAX)
    }
}

/// One named non-parameter state buffer (batch-norm running statistics).
#[derive(Debug, Clone, PartialEq)]
pub struct StateEntry {
    /// Dotted buffer path, e.g. `stem.bn.running_mean`.
    pub name: String,
    /// Buffer values.
    pub data: Vec<f32>,
}

/// Quantization decision for one weight tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantEntry {
    /// Dotted parameter path of the quantized weight.
    pub name: String,
    /// Allocated bit width.
    pub bits: u8,
    /// True for per-channel grids (one bin width per output channel),
    /// false for per-tensor.
    pub per_channel: bool,
    /// Bin width Δ per range group.
    pub bin_widths: Vec<f32>,
}

/// Mean/spread summary of a stochastic probe (mirror of
/// `hero-hessian::Estimate`, kept dependency-free here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f32,
    /// Standard error of the mean (NaN for single-sample estimates; the
    /// exact bit pattern round-trips).
    pub std_error: f32,
    /// Probe sample count.
    pub samples: u64,
}

/// One per-layer Hutchinson trace row of a spectrum probe.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTraceRow {
    /// Dotted parameter path.
    pub name: String,
    /// Whether the tensor is weight-quantizable.
    pub quantizable: bool,
    /// Trace estimate.
    pub trace: Estimate,
}

/// One Hessian spectrum probe taken during training.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrumRow {
    /// Epoch the probe was taken at.
    pub epoch: u64,
    /// λ_max estimate.
    pub lambda_max: Estimate,
    /// λ_min estimate.
    pub lambda_min: Estimate,
    /// Spectral mean estimate.
    pub mean_eigenvalue: Estimate,
    /// Second spectral moment estimate.
    pub second_moment: Estimate,
    /// Per-tensor trace rows, canonical order.
    pub layers: Vec<LayerTraceRow>,
}

/// One epoch's metrics row (mirror of `hero-core::EpochMetrics`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsRow {
    /// Epoch index.
    pub epoch: u64,
    /// Mean training loss.
    pub train_loss: f32,
    /// Training accuracy (NaN when not evaluated).
    pub train_acc: f32,
    /// Test accuracy (NaN when not evaluated).
    pub test_acc: f32,
    /// ‖Hz‖ probe (NaN when not probed).
    pub hessian_norm: f32,
    /// Mean regularizer statistic.
    pub regularizer: f32,
}

/// Everything a bitwise-exact training resume needs beyond the weights
/// and batch-norm statistics: optimizer momentum, RNG streams, counters
/// and the record rows accumulated so far.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeState {
    /// First epoch the resumed run will execute (the checkpoint was
    /// written after epoch `next_epoch − 1` completed).
    pub next_epoch: u64,
    /// Global step counter (drives the cosine schedule).
    pub step: u64,
    /// Gradient evaluations spent so far.
    pub grad_evals: u64,
    /// Shuffle RNG state of the data loader.
    pub loader_rng: u64,
    /// Augmentation RNG state.
    pub aug_rng: u64,
    /// SGD momentum buffers, canonical parameter order (empty when the
    /// optimizer had not materialized them yet).
    pub momentum: Vec<TensorEntry>,
    /// Per-epoch metrics accumulated so far.
    pub metrics: Vec<MetricsRow>,
    /// Last evaluated training accuracy.
    pub final_train_acc: f32,
    /// Last evaluated test accuracy.
    pub final_test_acc: f32,
    /// Spectrum probes accumulated so far.
    pub spectra: Vec<SpectrumRow>,
}

/// A decoded (or to-be-encoded) model artifact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Artifact {
    /// Ordered provenance/config entries. Order is part of the byte
    /// encoding, so writers must emit keys in a fixed order.
    pub meta: Vec<(String, MetaValue)>,
    /// Parameter tensors, canonical network order.
    pub tensors: Vec<TensorEntry>,
    /// Non-parameter state buffers, canonical network order.
    pub state: Vec<StateEntry>,
    /// Quantization allocation (empty for full-precision artifacts).
    pub quant: Vec<QuantEntry>,
    /// Resumable-training section (checkpoints only).
    pub resume: Option<ResumeState>,
}

impl Artifact {
    /// An empty artifact.
    pub fn new() -> Self {
        Artifact::default()
    }

    /// Sets (or replaces) a meta entry, preserving insertion order.
    pub fn set_meta(&mut self, key: &str, value: MetaValue) {
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.meta.push((key.to_string(), value));
        }
    }

    /// Looks up a meta entry.
    pub fn meta(&self, key: &str) -> Option<&MetaValue> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String meta entry, if present with that type.
    pub fn meta_str(&self, key: &str) -> Option<&str> {
        match self.meta(key) {
            Some(MetaValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Integer meta entry, if present with that type.
    pub fn meta_u64(&self, key: &str) -> Option<u64> {
        match self.meta(key) {
            Some(MetaValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Float meta entry, if present with that type.
    pub fn meta_f64(&self, key: &str) -> Option<f64> {
        match self.meta(key) {
            Some(MetaValue::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Boolean meta entry, if present with that type.
    pub fn meta_bool(&self, key: &str) -> Option<bool> {
        match self.meta(key) {
            Some(MetaValue::Bool(v)) => Some(*v),
            _ => None,
        }
    }

    /// Total scalar parameter count across all tensors.
    pub fn num_scalars(&self) -> u64 {
        self.tensors.iter().map(TensorEntry::numel).sum()
    }

    /// Encodes the artifact into its canonical byte representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        // META
        body.push(SECTION_META);
        put_u32(&mut body, self.meta.len() as u32);
        for (k, v) in &self.meta {
            put_str(&mut body, k);
            match v {
                MetaValue::Str(s) => {
                    body.push(0);
                    put_str(&mut body, s);
                }
                MetaValue::U64(n) => {
                    body.push(1);
                    put_u64(&mut body, *n);
                }
                MetaValue::F64(x) => {
                    body.push(2);
                    put_u64(&mut body, x.to_bits());
                }
                MetaValue::Bool(b) => {
                    body.push(3);
                    body.push(u8::from(*b));
                }
            }
        }
        // TENSORS
        body.push(SECTION_TENSORS);
        put_u32(&mut body, self.tensors.len() as u32);
        for t in &self.tensors {
            put_tensor(&mut body, t);
        }
        // STATE
        body.push(SECTION_STATE);
        put_u32(&mut body, self.state.len() as u32);
        for s in &self.state {
            put_str(&mut body, &s.name);
            put_u64(&mut body, s.data.len() as u64);
            put_f32s(&mut body, &s.data);
        }
        // QUANT (only when present — full-precision artifacts skip it)
        if !self.quant.is_empty() {
            body.push(SECTION_QUANT);
            put_u32(&mut body, self.quant.len() as u32);
            for q in &self.quant {
                put_str(&mut body, &q.name);
                body.push(q.bits);
                body.push(u8::from(q.per_channel));
                put_u64(&mut body, q.bin_widths.len() as u64);
                put_f32s(&mut body, &q.bin_widths);
            }
        }
        // RESUME (checkpoints only)
        if let Some(r) = &self.resume {
            body.push(SECTION_RESUME);
            put_u64(&mut body, r.next_epoch);
            put_u64(&mut body, r.step);
            put_u64(&mut body, r.grad_evals);
            put_u64(&mut body, r.loader_rng);
            put_u64(&mut body, r.aug_rng);
            put_u32(&mut body, r.momentum.len() as u32);
            for t in &r.momentum {
                put_tensor(&mut body, t);
            }
            put_u32(&mut body, r.metrics.len() as u32);
            for m in &r.metrics {
                put_u64(&mut body, m.epoch);
                put_f32(&mut body, m.train_loss);
                put_f32(&mut body, m.train_acc);
                put_f32(&mut body, m.test_acc);
                put_f32(&mut body, m.hessian_norm);
                put_f32(&mut body, m.regularizer);
            }
            put_f32(&mut body, r.final_train_acc);
            put_f32(&mut body, r.final_test_acc);
            put_u32(&mut body, r.spectra.len() as u32);
            for s in &r.spectra {
                put_u64(&mut body, s.epoch);
                for e in [
                    &s.lambda_max,
                    &s.lambda_min,
                    &s.mean_eigenvalue,
                    &s.second_moment,
                ] {
                    put_estimate(&mut body, e);
                }
                put_u32(&mut body, s.layers.len() as u32);
                for l in &s.layers {
                    put_str(&mut body, &l.name);
                    body.push(u8::from(l.quantizable));
                    put_estimate(&mut body, &l.trace);
                }
            }
        }

        let mut out = Vec::with_capacity(28 + body.len());
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, body.len() as u64);
        put_u64(&mut out, fnv1a64(&body));
        out.extend_from_slice(&body);
        out
    }

    /// Decodes an artifact, validating magic, version, length, checksum
    /// and every internal length field.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ArtifactError`]; never panics on any input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact> {
        let mut r = Reader::new(bytes);
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let body_len = r.u64()?;
        let stored_hash = r.u64()?;
        if body_len as usize as u64 != body_len || r.remaining() < body_len as usize {
            return Err(ArtifactError::Truncated {
                offset: r.pos,
                needed: body_len.saturating_sub(r.remaining() as u64) as usize,
            });
        }
        if r.remaining() > body_len as usize {
            return Err(r.malformed(format!(
                "{} trailing bytes after the declared body",
                r.remaining() - body_len as usize
            )));
        }
        let body = r.take(body_len as usize)?;
        let computed = fnv1a64(body);
        if computed != stored_hash {
            return Err(ArtifactError::ChecksumMismatch {
                stored: stored_hash,
                computed,
            });
        }

        let mut r = Reader::with_base(body, 28);
        let mut art = Artifact::new();
        let mut last_tag = 0u8;
        let mut seen_meta = false;
        while r.remaining() > 0 {
            let tag = r.u8()?;
            if tag <= last_tag {
                return Err(
                    r.malformed(format!("section tag {tag} out of order (after {last_tag})"))
                );
            }
            last_tag = tag;
            match tag {
                SECTION_META => {
                    seen_meta = true;
                    let count = r.counted(4, 6)?; // key len + value tag + ≥1
                    for _ in 0..count {
                        let key = r.string()?;
                        let vtag = r.u8()?;
                        let value = match vtag {
                            0 => MetaValue::Str(r.string()?),
                            1 => MetaValue::U64(r.u64()?),
                            2 => MetaValue::F64(f64::from_bits(r.u64()?)),
                            3 => MetaValue::Bool(r.bool()?),
                            t => return Err(r.malformed(format!("unknown meta value tag {t}"))),
                        };
                        art.meta.push((key, value));
                    }
                }
                SECTION_TENSORS => {
                    let count = r.counted(4, 6)?;
                    for _ in 0..count {
                        art.tensors.push(r.tensor()?);
                    }
                }
                SECTION_STATE => {
                    let count = r.counted(4, 12)?;
                    for _ in 0..count {
                        let name = r.string()?;
                        let data = r.f32s()?;
                        art.state.push(StateEntry { name, data });
                    }
                }
                SECTION_QUANT => {
                    let count = r.counted(4, 14)?;
                    for _ in 0..count {
                        let name = r.string()?;
                        let bits = r.u8()?;
                        let per_channel = r.bool()?;
                        let bin_widths = r.f32s()?;
                        art.quant.push(QuantEntry {
                            name,
                            bits,
                            per_channel,
                            bin_widths,
                        });
                    }
                }
                SECTION_RESUME => {
                    let next_epoch = r.u64()?;
                    let step = r.u64()?;
                    let grad_evals = r.u64()?;
                    let loader_rng = r.u64()?;
                    let aug_rng = r.u64()?;
                    let n_mom = r.counted(4, 6)?;
                    let mut momentum = Vec::with_capacity(n_mom);
                    for _ in 0..n_mom {
                        momentum.push(r.tensor()?);
                    }
                    let n_metrics = r.counted(4, 28)?;
                    let mut metrics = Vec::with_capacity(n_metrics);
                    for _ in 0..n_metrics {
                        metrics.push(MetricsRow {
                            epoch: r.u64()?,
                            train_loss: r.f32()?,
                            train_acc: r.f32()?,
                            test_acc: r.f32()?,
                            hessian_norm: r.f32()?,
                            regularizer: r.f32()?,
                        });
                    }
                    let final_train_acc = r.f32()?;
                    let final_test_acc = r.f32()?;
                    let n_spectra = r.counted(4, 76)?;
                    let mut spectra = Vec::with_capacity(n_spectra);
                    for _ in 0..n_spectra {
                        let epoch = r.u64()?;
                        let lambda_max = r.estimate()?;
                        let lambda_min = r.estimate()?;
                        let mean_eigenvalue = r.estimate()?;
                        let second_moment = r.estimate()?;
                        let n_layers = r.counted(4, 21)?;
                        let mut layers = Vec::with_capacity(n_layers);
                        for _ in 0..n_layers {
                            let name = r.string()?;
                            let quantizable = r.bool()?;
                            let trace = r.estimate()?;
                            layers.push(LayerTraceRow {
                                name,
                                quantizable,
                                trace,
                            });
                        }
                        spectra.push(SpectrumRow {
                            epoch,
                            lambda_max,
                            lambda_min,
                            mean_eigenvalue,
                            second_moment,
                            layers,
                        });
                    }
                    art.resume = Some(ResumeState {
                        next_epoch,
                        step,
                        grad_evals,
                        loader_rng,
                        aug_rng,
                        momentum,
                        metrics,
                        final_train_acc,
                        final_test_acc,
                        spectra,
                    });
                }
                t => return Err(r.malformed(format!("unknown section tag {t}"))),
            }
        }
        if !seen_meta {
            return Err(r.malformed("artifact body carries no META section".into()));
        }
        Ok(art)
    }

    /// Encodes and writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path.as_ref(), self.to_bytes())
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.as_ref().display())))
    }

    /// Reads and decodes an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failures or any decode
    /// error from [`Artifact::from_bytes`].
    pub fn load(path: impl AsRef<Path>) -> Result<Artifact> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.as_ref().display())))?;
        Artifact::from_bytes(&bytes)
    }

    /// Human-readable header/provenance dump — the body of
    /// `hero artifact inspect`.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let bytes = self.to_bytes();
        let mut out = String::new();
        let _ = writeln!(out, "HERO artifact v{VERSION}");
        let _ = writeln!(out, "  bytes: {}", bytes.len());
        let _ = writeln!(out, "  body hash (fnv1a64): {:016x}", fnv1a64(&bytes[28..]));
        let _ = writeln!(out, "  meta ({} entries):", self.meta.len());
        for (k, v) in &self.meta {
            let rendered = match v {
                MetaValue::Str(s) => format!("\"{s}\""),
                MetaValue::U64(n) => format!("{n}"),
                MetaValue::F64(x) => format!("{x}"),
                MetaValue::Bool(b) => format!("{b}"),
            };
            let _ = writeln!(out, "    {k} = {rendered}");
        }
        let _ = writeln!(
            out,
            "  tensors: {} ({} scalars)",
            self.tensors.len(),
            self.num_scalars()
        );
        for t in &self.tensors {
            let _ = writeln!(out, "    {} kind={} dims={:?}", t.name, t.kind, t.dims);
        }
        let _ = writeln!(out, "  state buffers: {}", self.state.len());
        for s in &self.state {
            let _ = writeln!(out, "    {} len={}", s.name, s.data.len());
        }
        if !self.quant.is_empty() {
            let _ = writeln!(out, "  quantization ({} tensors):", self.quant.len());
            for q in &self.quant {
                let _ = writeln!(
                    out,
                    "    {} bits={} {} groups={}",
                    q.name,
                    q.bits,
                    if q.per_channel {
                        "per-channel"
                    } else {
                        "per-tensor"
                    },
                    q.bin_widths.len()
                );
            }
        }
        match &self.resume {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "  resume: next_epoch={} step={} grad_evals={} momentum_buffers={} \
                     metrics_rows={} spectra={}",
                    r.next_epoch,
                    r.step,
                    r.grad_evals,
                    r.momentum.len(),
                    r.metrics.len(),
                    r.spectra.len()
                );
            }
            None => {
                let _ = writeln!(out, "  resume: none (final artifact)");
            }
        }
        out
    }
}

// --- encoding helpers -----------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, vs: &[f32]) {
    buf.reserve(vs.len() * 4);
    for &v in vs {
        put_f32(buf, v);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_tensor(buf: &mut Vec<u8>, t: &TensorEntry) {
    put_str(buf, &t.name);
    buf.push(t.kind);
    buf.push(t.dims.len() as u8);
    for &d in &t.dims {
        put_u64(buf, d);
    }
    put_u64(buf, t.data.len() as u64);
    put_f32s(buf, &t.data);
}

fn put_estimate(buf: &mut Vec<u8>, e: &Estimate) {
    put_f32(buf, e.mean);
    put_f32(buf, e.std_error);
    put_u64(buf, e.samples);
}

// --- bounded decoding -----------------------------------------------------

/// Bounds-checked cursor. `base` offsets error positions so body-relative
/// reads report absolute file offsets.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            base: 0,
        }
    }

    fn with_base(buf: &'a [u8], base: usize) -> Self {
        Reader { buf, pos: 0, base }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn malformed(&self, what: String) -> ArtifactError {
        ArtifactError::Malformed {
            offset: self.base + self.pos,
            what,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(ArtifactError::Truncated {
                offset: self.base + self.pos,
                needed: n - self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.malformed(format!("boolean field holds {b}"))),
        }
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
    }

    /// Reads an element count declared over `count_bytes` and validates
    /// that `count × min_entry_bytes` could still fit in the remaining
    /// input — the guard that turns length-field lies into clean errors
    /// instead of huge allocations.
    fn counted(&mut self, count_bytes: usize, min_entry_bytes: usize) -> Result<usize> {
        let count = match count_bytes {
            4 => u64::from(self.u32()?),
            _ => self.u64()?,
        };
        let need = count.checked_mul(min_entry_bytes as u64);
        match need {
            Some(n) if n <= self.remaining() as u64 => Ok(count as usize),
            _ => Err(self.malformed(format!(
                "count {count} × ≥{min_entry_bytes} bytes exceeds the {} remaining",
                self.remaining()
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        if len > MAX_STR {
            return Err(self.malformed(format!("string of {len} bytes exceeds cap {MAX_STR}")));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.malformed("string field is not UTF-8".into()))
    }

    fn f32s(&mut self) -> Result<Vec<f32>> {
        let len = self.u64()?;
        let need = len.checked_mul(4);
        match need {
            Some(n) if n <= self.remaining() as u64 => {}
            _ => {
                return Err(self.malformed(format!(
                    "f32 run of {len} elements exceeds the {} bytes remaining",
                    self.remaining()
                )))
            }
        }
        let raw = self.take(len as usize * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
            .collect())
    }

    fn estimate(&mut self) -> Result<Estimate> {
        Ok(Estimate {
            mean: self.f32()?,
            std_error: self.f32()?,
            samples: self.u64()?,
        })
    }

    fn tensor(&mut self) -> Result<TensorEntry> {
        let name = self.string()?;
        let kind = self.u8()?;
        let rank = self.u8()? as usize;
        if rank > MAX_RANK {
            return Err(self.malformed(format!("tensor rank {rank} exceeds cap {MAX_RANK}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(self.u64()?);
        }
        let numel = dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| self.malformed("tensor dims overflow".into()))?;
        let data = self.f32s()?;
        if data.len() as u64 != numel {
            return Err(self.malformed(format!(
                "tensor `{name}` declares dims {dims:?} ({numel} scalars) but carries {}",
                data.len()
            )));
        }
        Ok(TensorEntry {
            name,
            kind,
            dims,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let mut art = Artifact::new();
        art.set_meta("format", MetaValue::Str("hero-artifact".into()));
        art.set_meta("train.seed", MetaValue::U64(7));
        art.set_meta("train.lr", MetaValue::F64(0.1));
        art.set_meta("train.augment.hflip", MetaValue::Bool(true));
        art.tensors.push(TensorEntry {
            name: "fc.weight".into(),
            kind: 0,
            dims: vec![2, 3],
            data: vec![1.0, -2.0, 0.5, f32::NAN, 4.0, 0.0],
        });
        art.state.push(StateEntry {
            name: "bn.running_mean".into(),
            data: vec![0.25, -0.25],
        });
        art.quant.push(QuantEntry {
            name: "fc.weight".into(),
            bits: 4,
            per_channel: false,
            bin_widths: vec![0.125],
        });
        art.resume = Some(ResumeState {
            next_epoch: 3,
            step: 12,
            grad_evals: 36,
            loader_rng: 0xDEAD_BEEF,
            aug_rng: 0xFEED_FACE,
            momentum: vec![TensorEntry {
                name: "fc.weight".into(),
                kind: 0,
                dims: vec![2, 3],
                data: vec![0.0; 6],
            }],
            metrics: vec![MetricsRow {
                epoch: 0,
                train_loss: 1.5,
                train_acc: 0.4,
                test_acc: f32::NAN,
                hessian_norm: f32::NAN,
                regularizer: 0.0,
            }],
            final_train_acc: 0.4,
            final_test_acc: 0.3,
            spectra: vec![SpectrumRow {
                epoch: 0,
                lambda_max: Estimate {
                    mean: 2.0,
                    std_error: f32::NAN,
                    samples: 1,
                },
                lambda_min: Estimate {
                    mean: -0.5,
                    std_error: 0.1,
                    samples: 2,
                },
                mean_eigenvalue: Estimate {
                    mean: 0.2,
                    std_error: 0.0,
                    samples: 2,
                },
                second_moment: Estimate {
                    mean: 1.1,
                    std_error: 0.0,
                    samples: 2,
                },
                layers: vec![LayerTraceRow {
                    name: "fc.weight".into(),
                    quantizable: true,
                    trace: Estimate {
                        mean: 0.7,
                        std_error: f32::NAN,
                        samples: 1,
                    },
                }],
            }],
        });
        art
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let art = sample();
        let bytes = art.to_bytes();
        let back = Artifact::from_bytes(&bytes).unwrap();
        // Byte identity is the contract; struct equality would be foiled
        // by the deliberate NaN fields (NaN != NaN).
        assert_eq!(back.to_bytes(), bytes);

        let mut nan_free = sample();
        nan_free.tensors[0].data[3] = 3.0;
        nan_free.resume = None;
        let back = Artifact::from_bytes(&nan_free.to_bytes()).unwrap();
        assert_eq!(back, nan_free);
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let art = sample();
        let back = Artifact::from_bytes(&art.to_bytes()).unwrap();
        assert_eq!(
            back.tensors[0].data[3].to_bits(),
            art.tensors[0].data[3].to_bits()
        );
        let r = back.resume.unwrap();
        assert!(r.metrics[0].test_acc.is_nan());
        assert!(r.spectra[0].lambda_max.std_error.is_nan());
    }

    #[test]
    fn meta_accessors_find_typed_entries() {
        let art = sample();
        assert_eq!(art.meta_str("format"), Some("hero-artifact"));
        assert_eq!(art.meta_u64("train.seed"), Some(7));
        assert_eq!(art.meta_f64("train.lr"), Some(0.1));
        assert_eq!(art.meta_bool("train.augment.hflip"), Some(true));
        assert_eq!(art.meta_str("train.seed"), None, "type-checked access");
        assert_eq!(art.meta("missing"), None);
    }

    #[test]
    fn set_meta_replaces_in_place() {
        let mut art = sample();
        let order_before: Vec<String> = art.meta.iter().map(|(k, _)| k.clone()).collect();
        art.set_meta("train.seed", MetaValue::U64(9));
        let order_after: Vec<String> = art.meta.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(order_before, order_after, "replacement preserves order");
        assert_eq!(art.meta_u64("train.seed"), Some(9));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Artifact::from_bytes(&bytes), Err(ArtifactError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::UnsupportedVersion(2))
        );
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let mut bytes = sample().to_bytes();
        let mid = 28 + (bytes.len() - 28) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample().to_bytes();
        for cut in [0, 4, 12, 27, 40, bytes.len() - 1] {
            let err = Artifact::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated { .. } | ArtifactError::BadMagic
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::Malformed { .. })
        ));
    }

    #[test]
    fn empty_artifact_round_trips() {
        let art = Artifact::new();
        let back = Artifact::from_bytes(&art.to_bytes()).unwrap();
        assert_eq!(back, art);
    }

    #[test]
    fn describe_mentions_key_facts() {
        let d = sample().describe();
        assert!(d.contains("HERO artifact v1"));
        assert!(d.contains("train.seed = 7"));
        assert!(d.contains("fc.weight"));
        assert!(d.contains("next_epoch=3"));
        assert!(d.contains("bn.running_mean"));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
