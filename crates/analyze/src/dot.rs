//! Graphviz rendering of an analyzed tape, colored by interval width.
//!
//! Nodes are filled on a white→orange→red ramp by the width of their
//! derived value interval (log-bucketed), with non-finite ranges in dark
//! red — a range blow-up is visible at a glance in the rendered graph.
//! Nodes carrying diagnostics get a thick border (red for errors, orange
//! for warnings).

use crate::diag::{Report, Severity};
use hero_autodiff::NodeTrace;

/// Fill color for an interval-width bucket.
fn fill_for(width: f32, finite: bool) -> (&'static str, &'static str) {
    if !finite {
        return ("#99000d", "white");
    }
    let fill = if width < 1.0 {
        "#f7f7f7"
    } else if width < 8.0 {
        "#fee8c8"
    } else if width < 64.0 {
        "#fdbb84"
    } else {
        "#e34a33"
    };
    (fill, "black")
}

/// Renders `tape` as a Graphviz `digraph`, coloring each node by the
/// width of its interval from `report.value` (plain gray when the value
/// passes did not run) and annotating ranges, gradient bounds and
/// diagnostics.
pub fn to_dot_colored(tape: &[NodeTrace], report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out =
        String::from("digraph tape {\n  rankdir=TB;\n  node [shape=box, style=filled];\n");
    for (i, node) in tape.iter().enumerate() {
        let mut label = format!("#{i} {}\\n{:?}", node.op, node.shape);
        let (fill, font) = match &report.value {
            Some(v) => {
                let iv = v.intervals.get(i).copied().unwrap_or_default();
                let _ = write!(label, "\\n[{:.3e}, {:.3e}]", iv.lo, iv.hi);
                if let Some(g) = v.grad_bounds.get(i) {
                    let _ = write!(label, " g\u{2264}{g:.2e}");
                }
                match v.noise.get(i) {
                    // Noise overlay: annotate the propagated quantization
                    // error bound, and recolor purple where it drowns the
                    // value interval.
                    Some(e) if e.abs_max() > iv.width() && iv.is_finite() => {
                        let _ = write!(label, "\\ne\u{2264}{:.2e} DOMINANT", e.abs_max());
                        ("#807dba", "white")
                    }
                    Some(e) => {
                        let _ = write!(label, "\\ne\u{2264}{:.2e}", e.abs_max());
                        fill_for(iv.width(), iv.is_finite())
                    }
                    None => fill_for(iv.width(), iv.is_finite()),
                }
            }
            None => ("#d9d9d9", "black"),
        };
        let severity = report
            .diagnostics
            .iter()
            .filter(|d| d.node == i)
            .map(|d| d.severity())
            .max();
        let border = match severity {
            Some(Severity::Error) => ", color=red, penwidth=3",
            Some(Severity::Warning) => ", color=orange, penwidth=3",
            None => "",
        };
        let _ = writeln!(
            out,
            "  n{i} [label=\"{label}\", fillcolor=\"{fill}\", fontcolor={font}{border}];"
        );
        for &p in &node.parents {
            if p < i {
                let _ = writeln!(out, "  n{p} -> n{i};");
            }
        }
    }
    out.push_str("}\n");
    out
}
