//! Deterministic seeded-loop tests for dataset generation, label noise and
//! loading (formerly a proptest suite; rewritten against the in-tree RNG so
//! the workspace builds offline).

use hero_data::{inject_symmetric_noise, Loader, SynthGenerator, SynthSpec};
use hero_tensor::rng::{Rng, StdRng};

fn arb_spec(rng: &mut StdRng) -> SynthSpec {
    SynthSpec {
        classes: rng.gen_range(2..8usize),
        channels: 3,
        hw: rng.gen_range(4..10usize),
        noise_std: rng.gen_range(0.0f32..1.0),
        max_shift: rng.gen_range(0..2usize),
        superclasses: 0,
        sample_texture: 0.0,
        seed: rng.gen_range(0..1000u64),
    }
}

#[test]
fn generated_data_is_finite_and_balanced() {
    let mut rng = StdRng::seed_from_u64(0xDA7A01);
    for _ in 0..16 {
        let spec = arb_spec(&mut rng);
        let n_mult = rng.gen_range(1..5usize);
        let n = spec.classes * n_mult;
        let d = SynthGenerator::new(spec).generate(n, 1);
        assert_eq!(d.len(), n);
        assert!(d.images.is_finite());
        for class in 0..spec.classes {
            assert_eq!(d.labels.iter().filter(|&&l| l == class).count(), n_mult);
        }
    }
}

#[test]
fn generation_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xDA7A02);
    for _ in 0..8 {
        let spec = arb_spec(&mut rng);
        let g1 = SynthGenerator::new(spec);
        let g2 = SynthGenerator::new(spec);
        let a = g1.generate(spec.classes * 2, 7);
        let b = g2.generate(spec.classes * 2, 7);
        assert_eq!(a.images, b.images);
    }
}

#[test]
fn noise_injection_corrupts_requested_fraction() {
    let mut rng = StdRng::seed_from_u64(0xDA7A03);
    for _ in 0..16 {
        let spec = arb_spec(&mut rng);
        let ratio = rng.gen_range(0.0f32..1.0);
        let seed = rng.gen_range(0..100u64);
        let n = spec.classes * 10;
        let mut d = SynthGenerator::new(spec).generate(n, 1);
        let chosen = inject_symmetric_noise(&mut d, ratio, seed);
        assert_eq!(chosen.len(), (ratio * n as f32).round() as usize);
        assert!(d.labels.iter().all(|&l| l < spec.classes));
    }
}

#[test]
fn loader_partitions_every_epoch() {
    let mut rng = StdRng::seed_from_u64(0xDA7A04);
    for _ in 0..16 {
        let spec = arb_spec(&mut rng);
        let batch = rng.gen_range(1..20usize);
        let seed = rng.gen_range(0..100u64);
        let n = spec.classes * 7;
        let d = SynthGenerator::new(spec).generate(n, 1);
        let mut loader = Loader::new(batch, seed);
        for _ in 0..3 {
            let batches = loader.epoch(&d);
            let total: usize = batches.iter().map(|b| b.labels.len()).sum();
            assert_eq!(total, n);
            assert!(batches.iter().all(|b| b.labels.len() <= batch));
            // All images keep the dataset's per-image shape.
            for b in &batches {
                assert_eq!(&b.images.dims()[1..], &[3, spec.hw, spec.hw]);
            }
        }
    }
}
