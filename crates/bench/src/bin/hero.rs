//! `hero` — command-line front end for the HERO reproduction.
//!
//! ```text
//! hero train     --preset c10 --model resnet --method hero --epochs 30 [--out net.ckpt]
//!                [--save model.ha] [--checkpoint ckpt.ha --checkpoint-every 5]
//!                [--resume ckpt.ha] [--git-rev REV] [--golden-recipe golden.ha]
//! hero quantize  --preset c10 --model resnet (--ckpt net.ckpt | --artifact model.ha)
//!                --bits 3,4,6,8 [--mixed 5.0 [--sens static|proxy]]
//!                [--save quantized.ha [--save-bits 4]]
//! hero analyze   --preset c10 --model resnet --ckpt net.ckpt
//! hero preflight --preset c10 --model resnet [--artifact model.ha [--stamp model.ha]]
//!                [--bits 3,4,8] [--noise-bits 4 | --mixed 4.0] [--budget 0.5]
//!                [--out-dir results/analyze]
//! hero noise-crosscheck --preset c10 --models resnet,mobilenet,vgg
//!                [--bits 2,4,8] [--trials 2] [--out results/analyze/noise_crosscheck.json]
//!                [--tightness results/analyze/tightness.json]
//! hero spectrum  --preset c10 --model resnet --methods sgd,hero [--epochs 3]
//!                [--artifact model.ha] [--steps 10] [--probes 4]
//!                [--out results/SPECTRUM_run.json]
//! hero artifact inspect --path model.ha
//! ```
//!
//! `train` trains and optionally checkpoints a model; `quantize` sweeps
//! post-training precision on a checkpoint (or a uniform/mixed allocation,
//! with the sensitivity source selectable between the certified static
//! noise matrix and the size/range proxy); `analyze` reports curvature
//! (λ_max via Lanczos, ‖Hz‖) and the Theorem 3 robustness bounds at the
//! checkpoint; `preflight` runs the static analyzer suite (structure,
//! shapes, liveness, value intervals, gradient-scale bounds, and — with
//! `--noise-bits`/`--mixed` — the quantization-noise domain) over the
//! model's tape without training and writes the report plus an
//! interval-colored Graphviz view; `noise-crosscheck` adversarially
//! validates the noise domain against measured fake-quant probe-loss
//! shifts, writes a JSON artifact (plus, with `--tightness`, the
//! interval-vs-zonotope domain-comparison table), and exits nonzero on
//! any soundness violation or domain-tightness regression; `spectrum` is
//! the Hessian observatory — it trains each
//! requested method with per-epoch spectrum telemetry, takes a deep SLQ
//! density + per-layer Hutchinson-trace probe of the final weights,
//! cross-checks the empirical trace ranking against the certified static
//! sensitivity matrix (Spearman), prints an ASCII density plot, and
//! writes one comparison artifact.
//!
//! The `--save`/`--artifact` family speaks the versioned deterministic
//! model-artifact format (`hero-artifact`): `train --save` captures the
//! trained weights, batch-norm state, full config and training history in
//! one byte-reproducible file, `--checkpoint`/`--resume` make runs
//! interruptible without perturbing a single bit of the final result, and
//! `preflight --artifact` / `quantize --artifact` / `spectrum --artifact`
//! re-analyze a saved model without retraining. `artifact inspect` prints
//! a human summary of any artifact file.

use hero_artifact::{Artifact, MetaValue, QuantEntry};
use hero_core::experiment::{model_config, MethodKind};
use hero_core::{
    attach_quant, golden_recipe, load_artifact, network_from_artifact, record_from_artifact,
    resume_from_artifact, save_artifact, train, train_to_artifact, ModelSpec, NoiseConfig, RunMeta,
    TrainConfig, TrainRecord,
};
use hero_data::Preset;
use hero_hessian::{
    hessian_norm_probe, lanczos_spectrum, layer_traces, slq_density, spearman_rank_checked,
    BoundInputs, GradOracle, SlqConfig,
};
use hero_nn::models::ModelKind;
use hero_nn::{evaluate_accuracy, load_params_from_file, save_params_to_file, Network};
use hero_optim::BatchOracle;
use hero_quant::{
    allocate_bits, network_sensitivities, quantize_params, quantize_params_mixed, quantize_tensor,
    QuantScheme,
};
use hero_tensor::rng::StdRng;
use hero_tensor::{global_norm_l1, global_norm_l2};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `artifact` takes a subcommand word before its flags; fold it into
    // the command name so the flag parser only ever sees `--key value`.
    let (cmd, rest): (&str, &[String]) = if cmd == "artifact" {
        match rest.split_first() {
            Some((sub, tail)) if sub == "inspect" => ("artifact-inspect", tail),
            _ => {
                eprintln!("error: `hero artifact` supports `inspect --path FILE`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        (cmd.as_str(), rest)
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    hero_obs::init_from_env(&format!("hero_{cmd}"));
    let result = match cmd {
        "train" => cmd_train(&opts),
        "quantize" => cmd_quantize(&opts),
        "analyze" => cmd_analyze(&opts),
        "preflight" => cmd_preflight(&opts),
        "noise-crosscheck" => cmd_noise_crosscheck(&opts),
        "spectrum" => cmd_spectrum(&opts),
        "artifact-inspect" => cmd_artifact_inspect(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    hero_obs::finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
hero — HERO (DAC 2022) reproduction CLI

USAGE:
  hero train    --preset <c10|c100|in50> --model <resnet|mobilenet|vgg>
                --method <hero|sam|gradl1|sgd> [--epochs N] [--scale F]
                [--seed N] [--out FILE] [--save FILE.ha] [--git-rev REV]
                [--checkpoint FILE.ha [--checkpoint-every N]]
                [--resume FILE.ha] [--golden-recipe FILE.ha]
  hero quantize --preset ... --model ...
                (--ckpt FILE | --artifact FILE.ha | --method ... [--epochs N])
                [--bits 3,4,6,8] [--mixed AVG_BITS [--sens static|proxy]]
                [--save FILE.ha [--save-bits N]]
  hero analyze  --preset ... --model ... (--ckpt FILE | --method ... [--epochs N])
  hero preflight --preset ... --model ... [--ckpt FILE] [--scale F] [--seed N]
                 [--artifact FILE.ha [--stamp FILE.ha]]
                 [--bits 3,4,8] [--noise-bits N | --mixed AVG_BITS]
                 [--budget F] [--out-dir DIR]
  hero noise-crosscheck --preset ... [--models resnet,mobilenet,vgg]
                 [--bits 2,4,8] [--trials N] [--epochs N] [--scale F]
                 [--avg AVG_BITS] [--min-overlap F] [--out FILE]
                 [--tightness FILE]
  hero spectrum  --preset ... --model ... [--methods sgd,hero] [--epochs N]
                 [--artifact FILE.ha] [--scale F] [--seed N] [--steps N]
                 [--probes N] [--bits N] [--spectrum-every N] [--out FILE]
  hero artifact inspect --path FILE.ha

Artifact-format notes: `--save`/`--checkpoint` write the versioned
deterministic model-artifact format (see DESIGN.md §16); `--resume`
continues a checkpoint bit-exactly (pass the original --preset/--scale so
the datasets match); `--golden-recipe` trains the fixed smoke recipe
behind the committed golden artifact and writes it to FILE.ha.";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_string(), value.clone());
    }
    Ok(out)
}

fn preset_of(opts: &HashMap<String, String>) -> Result<Preset, String> {
    match opts.get("preset").map(String::as_str) {
        Some("c10") | None => Ok(Preset::C10),
        Some("c100") => Ok(Preset::C100),
        Some("in50") => Ok(Preset::In50),
        Some(other) => Err(format!("unknown preset `{other}`")),
    }
}

fn model_of(opts: &HashMap<String, String>) -> Result<ModelKind, String> {
    match opts.get("model").map(String::as_str) {
        Some("resnet") | None => Ok(ModelKind::Resnet),
        Some("mobilenet") => Ok(ModelKind::Mobilenet),
        Some("vgg") => Ok(ModelKind::Vgg),
        Some(other) => Err(format!("unknown model `{other}`")),
    }
}

fn method_of(opts: &HashMap<String, String>) -> Result<MethodKind, String> {
    match opts.get("method").map(String::as_str) {
        Some("hero") | None => Ok(MethodKind::Hero),
        Some("sam") | Some("first-order") => Ok(MethodKind::FirstOrder),
        Some("gradl1") => Ok(MethodKind::GradL1),
        Some("sgd") => Ok(MethodKind::Sgd),
        Some(other) => Err(format!("unknown method `{other}`")),
    }
}

fn parse_bits(arg: &str, flag: &str) -> Result<Vec<u8>, String> {
    arg.split(',')
        .map(|token| {
            token
                .trim()
                .parse()
                .map_err(|_| format!("--{flag}: cannot parse `{token}`"))
        })
        .collect()
}

fn num<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

/// Obtains a trained network: from a checkpoint if `--ckpt` is given,
/// otherwise by training with `--method` for `--epochs`.
fn obtain_model(
    opts: &HashMap<String, String>,
) -> Result<(Network, Preset, hero_data::Dataset, hero_data::Dataset), String> {
    let preset = preset_of(opts)?;
    let model = model_of(opts)?;
    let scale: f32 = num(opts, "scale", 0.5)?;
    let seed: u64 = num(opts, "seed", 42)?;
    let (train_set, test_set) = preset.load(scale);
    let mut net = model.build(model_config(preset), &mut StdRng::seed_from_u64(seed));
    if let Some(ckpt) = opts.get("ckpt") {
        load_params_from_file(&mut net, &PathBuf::from(ckpt)).map_err(|e| e.to_string())?;
        hero_obs::Event::new("checkpoint_loaded")
            .str("path", ckpt)
            .human(format!("loaded checkpoint {ckpt}"))
            .emit();
    } else {
        let method = method_of(opts)?;
        let epochs: usize = num(opts, "epochs", 20)?;
        hero_obs::Event::new("train_start")
            .str("model", model.paper_name())
            .str("method", method.paper_name())
            .str("preset", preset.paper_name())
            .u64("epochs", epochs as u64)
            .human(format!(
                "training {} with {} for {epochs} epochs on {} ...",
                model.paper_name(),
                method.paper_name(),
                preset.paper_name()
            ))
            .emit();
        let config = TrainConfig::new(method.tuned(), epochs).with_seed(seed);
        let rec = train(&mut net, &train_set, &test_set, &config).map_err(|e| e.to_string())?;
        hero_obs::Event::new("train_result")
            .f64("train_acc", f64::from(rec.final_train_acc))
            .f64("test_acc", f64::from(rec.final_test_acc))
            .human(format!(
                "trained: train acc {:.2}%, test acc {:.2}%",
                100.0 * rec.final_train_acc,
                100.0 * rec.final_test_acc
            ))
            .emit();
    }
    Ok((net, preset, train_set, test_set))
}

fn cmd_train(opts: &HashMap<String, String>) -> Result<(), String> {
    // The fixed golden-recipe run: shared with the byte-pin regression
    // test and verify.sh, so the three can never disagree on the recipe.
    if let Some(out) = opts.get("golden-recipe") {
        let (train_set, test_set, mut net, meta) = golden_recipe();
        let (rec, art) = train_to_artifact(&mut net, &train_set, &test_set, &meta, 0, None)
            .map_err(|e| e.to_string())?;
        save_artifact(&art, PathBuf::from(out)).map_err(|e| e.to_string())?;
        println!(
            "golden artifact ({} scalars, train acc {:.2}%, test acc {:.2}%) written to {out}",
            art.num_scalars(),
            100.0 * rec.final_train_acc,
            100.0 * rec.final_test_acc
        );
        return Ok(());
    }

    let save = opts.get("save").map(PathBuf::from);
    let ckpt_path = opts.get("checkpoint").map(PathBuf::from);
    let ckpt_every: usize = num(opts, "checkpoint-every", 1)?;

    // Resume a checkpoint artifact: the model, config and trainer state
    // all come from the file; only the datasets are reloaded, so the
    // caller must pass the original --preset/--scale.
    if let Some(resume) = opts.get("resume") {
        let preset = preset_of(opts)?;
        let scale: f32 = num(opts, "scale", 0.5)?;
        let (train_set, test_set) = preset.load(scale);
        let art = load_artifact(PathBuf::from(resume)).map_err(|e| e.to_string())?;
        let (rec, final_art, _net) = resume_from_artifact(
            &art,
            &train_set,
            &test_set,
            ckpt_every,
            ckpt_path.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        hero_obs::Event::new("train_result")
            .f64("train_acc", f64::from(rec.final_train_acc))
            .f64("test_acc", f64::from(rec.final_test_acc))
            .human(format!(
                "resumed {resume}: train acc {:.2}%, test acc {:.2}%",
                100.0 * rec.final_train_acc,
                100.0 * rec.final_test_acc
            ))
            .emit();
        if let Some(out) = &save {
            save_artifact(&final_art, out).map_err(|e| e.to_string())?;
            println!("artifact written to {}", out.display());
        }
        return Ok(());
    }

    // Fresh training through the artifact pipeline when any artifact
    // output is requested.
    if save.is_some() || ckpt_path.is_some() {
        let preset = preset_of(opts)?;
        let model = model_of(opts)?;
        let method = method_of(opts)?;
        let scale: f32 = num(opts, "scale", 0.5)?;
        let seed: u64 = num(opts, "seed", 42)?;
        let epochs: usize = num(opts, "epochs", 20)?;
        let (train_set, test_set) = preset.load(scale);
        let mut net = model.build(model_config(preset), &mut StdRng::seed_from_u64(seed));
        let meta = RunMeta {
            model: ModelSpec::Kind(model),
            model_cfg: model_config(preset),
            config: TrainConfig::new(method.tuned(), epochs).with_seed(seed),
            git_rev: opts
                .get("git-rev")
                .cloned()
                .unwrap_or_else(|| "unknown".into()),
            preflight_hash: None,
        };
        let (rec, art) = train_to_artifact(
            &mut net,
            &train_set,
            &test_set,
            &meta,
            ckpt_every,
            ckpt_path.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        hero_obs::Event::new("train_result")
            .f64("train_acc", f64::from(rec.final_train_acc))
            .f64("test_acc", f64::from(rec.final_test_acc))
            .human(format!(
                "trained: train acc {:.2}%, test acc {:.2}%",
                100.0 * rec.final_train_acc,
                100.0 * rec.final_test_acc
            ))
            .emit();
        if let Some(out) = &save {
            save_artifact(&art, out).map_err(|e| e.to_string())?;
            println!("artifact written to {}", out.display());
        }
        if let Some(out) = opts.get("out") {
            save_params_to_file(&net, &PathBuf::from(out)).map_err(|e| e.to_string())?;
        }
        return Ok(());
    }

    let (net, _, _, _) = obtain_model(opts)?;
    if let Some(out) = opts.get("out") {
        save_params_to_file(&net, &PathBuf::from(out)).map_err(|e| e.to_string())?;
        hero_obs::Event::new("checkpoint_written")
            .str("path", out)
            .human(format!("checkpoint written to {out}"))
            .emit();
    }
    Ok(())
}

fn cmd_quantize(opts: &HashMap<String, String>) -> Result<(), String> {
    let (mut net, mut loaded, train_set, test_set) = if let Some(path) = opts.get("artifact") {
        let preset = preset_of(opts)?;
        let scale: f32 = num(opts, "scale", 0.5)?;
        let (train_set, test_set) = preset.load(scale);
        let art = load_artifact(PathBuf::from(path)).map_err(|e| e.to_string())?;
        let net = network_from_artifact(&art).map_err(|e| e.to_string())?;
        hero_obs::Event::new("artifact_loaded")
            .str("path", path)
            .human(format!("loaded artifact {path}"))
            .emit();
        (net, Some(art), train_set, test_set)
    } else {
        let (net, _, train_set, test_set) = obtain_model(opts)?;
        (net, None, train_set, test_set)
    };
    let full_params = net.params();
    let full_acc = evaluate_accuracy(&mut net, &test_set.images, &test_set.labels, 64)
        .map_err(|e| e.to_string())?;
    hero_obs::Event::new("quant_eval")
        .str("scheme", "full_precision")
        .f64("accuracy", f64::from(full_acc))
        .human(format!("full precision: test acc {:.2}%", 100.0 * full_acc))
        .emit();

    if let Some(avg) = opts.get("mixed") {
        let avg: f32 = avg
            .parse()
            .map_err(|_| "--mixed: cannot parse".to_string())?;
        let sens_source = opts.get("sens").map_or("static", String::as_str);
        let (bits, sens) = match sens_source {
            // Certified static sensitivity: the analyzer's noise domain
            // bounds each layer's loss impact; the allocator spends the
            // budget against those certificates.
            "static" => {
                let probe = train_set.len().min(64);
                if probe == 0 {
                    return Err("--sens static needs at least one training sample".into());
                }
                let images = train_set
                    .images
                    .narrow(0, probe)
                    .map_err(|e| e.to_string())?;
                let matrix = hero_core::static_sensitivity_matrix(
                    &mut net,
                    &images,
                    &train_set.labels[..probe],
                    &[2, 4, 8],
                )
                .map_err(|e| e.to_string())?;
                let bits = matrix.allocate(avg, 2, 8).map_err(|e| e.to_string())?;
                (bits, matrix.to_layer_sensitivities())
            }
            // Gradient-free proxy: curvature 1, range/size allocation only.
            "proxy" => {
                let sens = network_sensitivities(&net);
                let bits = allocate_bits(&sens, avg, 2, 8).map_err(|e| e.to_string())?;
                (bits, sens)
            }
            other => return Err(format!("--sens: `{other}` is not static|proxy")),
        };
        println!("mixed-precision allocation (avg {avg} bits, {sens_source} sensitivity):");
        for (s, b) in sens.iter().zip(&bits) {
            hero_obs::Event::new("bit_allocation")
                .str("tensor", &s.name)
                .str("sens", sens_source)
                .u64("bits", u64::from(*b))
                .u64("weights", s.numel as u64)
                .human(format!("  {:40} {} bits ({} weights)", s.name, b, s.numel))
                .emit();
        }
        let (qp, report) = quantize_params_mixed(&net, &bits).map_err(|e| e.to_string())?;
        net.set_params(&qp).map_err(|e| e.to_string())?;
        let acc = evaluate_accuracy(&mut net, &test_set.images, &test_set.labels, 64)
            .map_err(|e| e.to_string())?;
        hero_obs::Event::new("quant_eval")
            .str("scheme", "mixed")
            .f64("avg_bits", f64::from(avg))
            .f64("accuracy", f64::from(acc))
            .f64("worst_linf", f64::from(report.worst_linf))
            .human(format!(
                "mixed {avg}-bit: test acc {:.2}%  (‖δ‖∞ {:.4})",
                100.0 * acc,
                report.worst_linf
            ))
            .emit();
        net.set_params(&full_params).map_err(|e| e.to_string())?;
    }

    let bits_arg = opts
        .get("bits")
        .cloned()
        .unwrap_or_else(|| "3,4,6,8".into());
    for token in bits_arg.split(',') {
        let b: u8 = token
            .trim()
            .parse()
            .map_err(|_| format!("--bits: cannot parse `{token}`"))?;
        let scheme = QuantScheme::symmetric(b).map_err(|e| e.to_string())?;
        let (qp, report) = quantize_params(&net, &scheme).map_err(|e| e.to_string())?;
        net.set_params(&qp).map_err(|e| e.to_string())?;
        let acc = evaluate_accuracy(&mut net, &test_set.images, &test_set.labels, 64)
            .map_err(|e| e.to_string())?;
        hero_obs::Event::new("quant_eval")
            .str("scheme", "uniform")
            .u64("bits", u64::from(b))
            .f64("accuracy", f64::from(acc))
            .f64("worst_linf", f64::from(report.worst_linf))
            .f64("max_bin_width", f64::from(report.max_bin_width))
            .human(format!(
                "{b}-bit uniform: test acc {:.2}%  (‖δ‖∞ {:.4} ≤ Δ/2 {:.4})",
                100.0 * acc,
                report.worst_linf,
                report.max_bin_width / 2.0
            ))
            .emit();
        net.set_params(&full_params).map_err(|e| e.to_string())?;
    }

    // Persist one quantization decision back into the artifact: the
    // quantized values replace the TENSORS section and the QUANT section
    // records the per-tensor bit width and grid. The RESUME section is
    // dropped — a quantized snapshot is a deployment artifact, not a
    // training state.
    if let Some(out) = opts.get("save") {
        let Some(art) = loaded.as_mut() else {
            return Err("--save needs --artifact (a model artifact to quantize)".into());
        };
        let first_bits = parse_bits(&bits_arg, "bits")?[0];
        let b: u8 = num(opts, "save-bits", first_bits)?;
        let scheme = QuantScheme::symmetric(b).map_err(|e| e.to_string())?;
        let infos = net.param_infos();
        let mut quantized = Vec::with_capacity(full_params.len());
        let mut entries = Vec::new();
        for (p, info) in full_params.iter().zip(&infos) {
            if info.kind.is_quantizable() {
                let q = quantize_tensor(p, &scheme).map_err(|e| e.to_string())?;
                entries.push(QuantEntry {
                    name: info.name.clone(),
                    bits: b,
                    per_channel: false,
                    bin_widths: q.bin_widths.clone(),
                });
                quantized.push(q.values);
            } else {
                quantized.push(p.clone());
            }
        }
        attach_quant(art, &quantized, entries);
        art.resume = None;
        save_artifact(art, PathBuf::from(out)).map_err(|e| e.to_string())?;
        println!("quantized artifact ({b}-bit weights) written to {out}");
    }
    Ok(())
}

fn cmd_preflight(opts: &HashMap<String, String>) -> Result<(), String> {
    let preset = preset_of(opts)?;
    let model = model_of(opts)?;
    let scale: f32 = num(opts, "scale", 0.5)?;
    let seed: u64 = num(opts, "seed", 42)?;
    let (train_set, _) = preset.load(scale);
    let mut loaded: Option<Artifact> = None;
    let mut net = if let Some(path) = opts.get("artifact") {
        let art = load_artifact(PathBuf::from(path)).map_err(|e| e.to_string())?;
        let net = network_from_artifact(&art).map_err(|e| e.to_string())?;
        loaded = Some(art);
        net
    } else {
        let mut net = model.build(model_config(preset), &mut StdRng::seed_from_u64(seed));
        if let Some(ckpt) = opts.get("ckpt") {
            load_params_from_file(&mut net, &PathBuf::from(ckpt)).map_err(|e| e.to_string())?;
        }
        net
    };
    let bits_arg = opts.get("bits").cloned().unwrap_or_else(|| "3,4,8".into());
    let bits = parse_bits(&bits_arg, "bits")?;
    let probe = train_set.len().min(64);
    if probe == 0 {
        return Err("preflight needs at least one sample".into());
    }
    let images = train_set
        .images
        .narrow(0, probe)
        .map_err(|e| e.to_string())?;
    let labels = &train_set.labels[..probe];

    // Quantization-noise configuration: `--noise-bits N` seeds every
    // weight uniformly; `--mixed AVG` first computes the certified static
    // sensitivity matrix, allocates per-layer widths against it, and
    // seeds the allocation. Either way the report (and dot overlay)
    // carries certified per-node error bounds.
    let budget: Option<f32> = match opts.get("budget") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| "--budget: cannot parse".to_string())?,
        ),
    };
    let mut noise_cfg: Option<NoiseConfig> = None;
    if let Some(avg) = opts.get("mixed") {
        let avg: f32 = avg
            .parse()
            .map_err(|_| "--mixed: cannot parse".to_string())?;
        let mut grid = bits.clone();
        grid.sort_unstable();
        grid.dedup();
        let matrix = hero_core::static_sensitivity_matrix(&mut net, &images, labels, &grid)
            .map_err(|e| e.to_string())?;
        let max_b = grid.last().copied().unwrap_or(8);
        let alloc = matrix
            .allocate(avg, grid[0].min(2), max_b)
            .map_err(|e| e.to_string())?;
        println!("certified static sensitivity (err[layer][bits], avg {avg}-bit allocation):");
        for (l, layer) in matrix.layers.iter().enumerate() {
            let cells: Vec<String> = grid
                .iter()
                .zip(&layer.err)
                .map(|(b, e)| format!("{b}b:{e:.2e}"))
                .collect();
            println!(
                "  {:40} {:>2} bits  {}",
                layer.name,
                alloc[l],
                cells.join("  ")
            );
        }
        noise_cfg = Some(NoiseConfig::per_layer(alloc));
    } else if let Some(nb) = opts.get("noise-bits") {
        let nb: u8 = nb
            .parse()
            .map_err(|_| "--noise-bits: cannot parse".to_string())?;
        let matrix = hero_core::static_sensitivity_matrix(&mut net, &images, labels, &[nb])
            .map_err(|e| e.to_string())?;
        println!("certified per-layer loss-error bounds at {nb} bits:");
        for layer in &matrix.layers {
            println!("  {:40} err ≤ {:.3e}", layer.name, layer.err[0]);
        }
        noise_cfg = Some(NoiseConfig::uniform(nb));
    }
    if let (Some(cfg), Some(b)) = (noise_cfg.as_mut(), budget) {
        cfg.budget = Some(b);
    }

    let vopts = hero_analyze::VerifyOptions {
        quant_bits: bits,
        ..hero_analyze::VerifyOptions::default()
    };
    let (report, dot) = hero_core::preflight_report_with_noise(
        &mut net,
        &images,
        labels,
        &vopts,
        noise_cfg.as_ref(),
        true,
    )
    .map_err(|e| e.to_string())?;

    let out_dir = PathBuf::from(
        opts.get("out-dir")
            .cloned()
            .unwrap_or_else(|| "results/analyze".into()),
    );
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let stem = format!("{}_{}", model.paper_name(), preset.paper_name())
        .to_lowercase()
        .replace(['/', ' ', '-'], "_");
    let txt_path = out_dir.join(format!("{stem}.txt"));
    std::fs::write(&txt_path, format!("{report}\n")).map_err(|e| e.to_string())?;
    if let Some(dot) = dot {
        let dot_path = out_dir.join(format!("{stem}.dot"));
        std::fs::write(&dot_path, dot).map_err(|e| e.to_string())?;
    }

    let errors = report.errors().count();
    let warnings = report.warnings().count();
    // The report hash is the provenance fingerprint an artifact can carry
    // (`provenance.preflight_hash`); `--stamp FILE` writes it into the
    // loaded artifact so downstream consumers can tell which static
    // analysis the model passed.
    let hash = hero_core::preflight_hash(&report);
    println!(
        "preflight {}: {} nodes, {errors} errors, {warnings} warnings, report hash {hash:#018x} -> {}",
        net.name(),
        report.nodes,
        txt_path.display()
    );
    if let Some(stamp) = opts.get("stamp") {
        let Some(art) = loaded.as_mut() else {
            return Err("--stamp needs --artifact (an artifact to annotate)".into());
        };
        art.set_meta("provenance.preflight_hash", MetaValue::U64(hash));
        save_artifact(art, PathBuf::from(stamp)).map_err(|e| e.to_string())?;
        println!("preflight hash stamped into {stamp}");
    }
    if errors > 0 || warnings > 0 {
        print!("{report}");
    }
    if errors > 0 {
        return Err(format!(
            "preflight found {errors} error-severity diagnostics for `{}`",
            net.name()
        ));
    }
    Ok(())
}

/// Adversarial validation of the static quantization-noise domain: for
/// each requested model, trains a quick SGD baseline, measures per-layer
/// fake-quant probe-loss shifts against the certified bounds
/// ([`hero_core::noise_crosscheck`]), compares a static-matrix mixed
/// allocation against uniform quantization at equal average bits, and
/// writes everything to one JSON artifact. Exits nonzero if any measured
/// error escapes its certified bound, if any zonotope-tightened cell is
/// wider than its interval-domain cell, or if the ranking overlap falls
/// under `--min-overlap` — a NaN overlap (degenerate ranking) counts as
/// a failure there, never as a silent pass. With `--tightness FILE` it
/// additionally writes the per-layer×bits domain-comparison artifact
/// (interval width, zonotope width, ratio) and fails if the raw
/// un-clamped sensitivity matrix is rank-constant on a multi-layer model.
fn cmd_noise_crosscheck(opts: &HashMap<String, String>) -> Result<(), String> {
    let preset = preset_of(opts)?;
    let scale: f32 = num(opts, "scale", 0.25)?;
    let seed: u64 = num(opts, "seed", 42)?;
    let epochs: usize = num(opts, "epochs", 3)?;
    let trials: usize = num(opts, "trials", 2)?;
    let avg: f32 = num(opts, "avg", 4.0)?;
    let min_overlap: f32 = num(opts, "min-overlap", 0.0)?;
    let bits_arg = opts.get("bits").cloned().unwrap_or_else(|| "2,4,8".into());
    let grid = parse_bits(&bits_arg, "bits")?;
    let models_arg = opts
        .get("models")
        .cloned()
        .unwrap_or_else(|| "resnet,mobilenet,vgg".into());
    let out_path = PathBuf::from(
        opts.get("out")
            .cloned()
            .unwrap_or_else(|| "results/analyze/noise_crosscheck.json".into()),
    );
    let tightness_path = opts.get("tightness").map(PathBuf::from);

    let (train_set, test_set) = preset.load(scale);
    let probe = train_set.len().min(64);
    if probe == 0 {
        return Err("noise-crosscheck needs at least one training sample".into());
    }
    let images = train_set
        .images
        .narrow(0, probe)
        .map_err(|e| e.to_string())?;
    let labels = &train_set.labels[..probe];

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"preset\": \"{}\",\n  \"bits\": {:?},\n  \"avg_bits\": {},\n  \"models\": [\n",
        preset.paper_name(),
        grid,
        jnum(avg)
    );
    let mut total_violations = 0usize;
    let mut worst_overlap = f32::INFINITY;
    // NaN never survives an `f32::min`, so a degenerate (constant or
    // single-layer) ranking would otherwise sail through the
    // `--min-overlap` gate unexamined. Track it explicitly instead.
    let mut saw_degenerate_ranking = false;
    let mut widened_cells = 0usize;
    let mut rank_constant_models: Vec<String> = Vec::new();
    let mut tightness_json = String::from("{\n  \"models\": [\n");
    let mut first_model = true;
    for token in models_arg.split(',') {
        let model = match token.trim() {
            "resnet" => ModelKind::Resnet,
            "mobilenet" => ModelKind::Mobilenet,
            "vgg" => ModelKind::Vgg,
            other => return Err(format!("--models: unknown model `{other}`")),
        };
        let mut net = model.build(model_config(preset), &mut StdRng::seed_from_u64(seed));
        let config = TrainConfig::new(MethodKind::Sgd.tuned(), epochs).with_seed(seed);
        let rec = train(&mut net, &train_set, &test_set, &config).map_err(|e| e.to_string())?;
        let report = hero_core::noise_crosscheck(&mut net, &images, labels, &grid, trials, seed)
            .map_err(|e| e.to_string())?;
        total_violations += report.violations;

        // Static-matrix mixed allocation vs uniform at equal average bits.
        // The crosscheck already certified the matrix; reuse it rather
        // than paying for a second relational pass per layer×bits.
        let matrix = &report.matrix;
        // A single-layer ranking is trivially perfect, not degenerate; on
        // multi-layer models an undefined rho means a constant side.
        if report.overlap.is_nan() || (report.rank_rho.is_none() && matrix.layers.len() >= 2) {
            saw_degenerate_ranking = true;
        }
        if !report.overlap.is_nan() {
            worst_overlap = worst_overlap.min(report.overlap);
        }
        let max_b = grid.last().copied().unwrap_or(8);
        let alloc = matrix
            .allocate(avg, grid[0].min(2), max_b)
            .map_err(|e| e.to_string())?;
        let full = net.params();
        let (qp, _) = quantize_params_mixed(&net, &alloc).map_err(|e| e.to_string())?;
        net.set_params(&qp).map_err(|e| e.to_string())?;
        let mixed_acc = evaluate_accuracy(&mut net, &test_set.images, &test_set.labels, 64)
            .map_err(|e| e.to_string())?;
        net.set_params(&full).map_err(|e| e.to_string())?;
        let uniform_scheme =
            QuantScheme::symmetric(avg.round() as u8).map_err(|e| e.to_string())?;
        let (qp, _) = quantize_params(&net, &uniform_scheme).map_err(|e| e.to_string())?;
        net.set_params(&qp).map_err(|e| e.to_string())?;
        let uniform_acc = evaluate_accuracy(&mut net, &test_set.images, &test_set.labels, 64)
            .map_err(|e| e.to_string())?;
        net.set_params(&full).map_err(|e| e.to_string())?;

        // Domain-tightness audit: every zonotope-tightened cell must sit
        // inside its interval-domain cell, and the raw (un-clamped)
        // matrix must distinguish at least two layer ranks somewhere on
        // the grid for the ranking to mean anything.
        let mut model_widened = 0usize;
        let mut distinct_ranks = 0usize;
        for (k, _) in matrix.bits.iter().enumerate() {
            let mut col: Vec<f32> = Vec::new();
            for l in &matrix.layers {
                let zono = l.err[k];
                let interval = l.err_interval.get(k).copied().unwrap_or(zono);
                if zono > interval {
                    model_widened += 1;
                }
                col.push(zono);
            }
            col.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            col.dedup();
            distinct_ranks = distinct_ranks.max(col.len());
        }
        widened_cells += model_widened;
        if matrix.layers.len() >= 2 && distinct_ranks < 2 {
            rank_constant_models.push(model.paper_name().to_string());
        }
        if !first_model {
            tightness_json.push_str(",\n");
        }
        let _ = write!(
            tightness_json,
            "    {{\n      \"model\": \"{}\",\n      \"distinct_ranks\": {},\n      \
             \"widened_cells\": {},\n      \"cells\": [\n",
            model.paper_name(),
            distinct_ranks,
            model_widened
        );
        let total_cells: usize = matrix.layers.len() * matrix.bits.len();
        let mut cell_idx = 0usize;
        for l in &matrix.layers {
            for (k, &b) in matrix.bits.iter().enumerate() {
                let zono = l.err[k];
                let interval = l.err_interval.get(k).copied().unwrap_or(zono);
                let ratio = if interval > 0.0 { zono / interval } else { 1.0 };
                cell_idx += 1;
                let _ = write!(
                    tightness_json,
                    "        {{\"layer\": \"{}\", \"bits\": {}, \"interval\": {}, \
                     \"zonotope\": {}, \"ratio\": {}}}{}",
                    l.name.replace(['"', '\\'], "_"),
                    b,
                    jnum(interval),
                    jnum(zono),
                    jnum(ratio),
                    if cell_idx < total_cells { ",\n" } else { "\n" }
                );
            }
        }
        tightness_json.push_str("      ]\n    }");

        let rho_str = report
            .rank_rho
            .map_or_else(|| "undefined".to_string(), |r| format!("{r:.3}"));
        println!(
            "{}: {} cells, {} violations, overlap {:.2}, rank rho {}, \
             {} distinct ranks, mixed {:.2}% vs uniform {:.2}% \
             at avg {avg} bits (full {:.2}%)",
            model.paper_name(),
            report.cells.len(),
            report.violations,
            report.overlap,
            rho_str,
            distinct_ranks,
            100.0 * mixed_acc,
            100.0 * uniform_acc,
            100.0 * rec.final_test_acc
        );
        hero_obs::Event::new("noise_crosscheck")
            .str("model", model.paper_name())
            .u64("violations", report.violations as u64)
            .u64("distinct_ranks", distinct_ranks as u64)
            .u64("widened_cells", model_widened as u64)
            .f64("overlap", f64::from(report.overlap))
            .f64("rank_rho", f64::from(report.rank_rho.unwrap_or(f32::NAN)))
            .f64("mixed_acc", f64::from(mixed_acc))
            .f64("uniform_acc", f64::from(uniform_acc))
            .emit();

        if !first_model {
            json.push_str(",\n");
        }
        first_model = false;
        // Every float goes through `jnum`: a NaN overlap (degenerate
        // ranking) or a non-finite measured shift must land in the sink
        // as `null`, not as a bare `NaN` token no JSON parser accepts.
        let _ = write!(
            json,
            "    {{\n      \"model\": \"{}\",\n      \"violations\": {},\n      \
             \"overlap\": {},\n      \"rank_rho\": {},\n      \"ref_bits\": {},\n      \
             \"full_acc\": {},\n      \"mixed_acc\": {},\n      \
             \"uniform_acc\": {},\n      \"allocation\": {:?},\n      \"cells\": [\n",
            model.paper_name(),
            report.violations,
            jnum(report.overlap),
            report.rank_rho.map_or_else(|| "null".into(), jnum),
            report.ref_bits,
            jnum(rec.final_test_acc),
            jnum(mixed_acc),
            jnum(uniform_acc),
            alloc
        );
        for (i, c) in report.cells.iter().enumerate() {
            let _ = write!(
                json,
                "        {{\"layer\": \"{}\", \"bits\": {}, \"certified\": {}, \
                 \"empirical\": {}, \"violated\": {}}}{}",
                c.layer.replace(['"', '\\'], "_"),
                c.bits,
                jnum(c.certified),
                jnum(c.empirical),
                c.violated,
                if i + 1 < report.cells.len() {
                    ",\n"
                } else {
                    "\n"
                }
            );
        }
        json.push_str("      ]\n    }");
    }
    let _ = write!(
        json,
        "\n  ],\n  \"total_violations\": {total_violations},\n  \
         \"worst_overlap\": {}\n}}\n",
        jnum(if worst_overlap == f32::INFINITY {
            // No models ran; report a vacuous perfect overlap.
            1.0
        } else {
            worst_overlap
        })
    );
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    std::fs::write(&out_path, &json).map_err(|e| e.to_string())?;
    println!("noise crosscheck written to {}", out_path.display());
    if let Some(path) = &tightness_path {
        let _ = write!(
            tightness_json,
            "\n  ],\n  \"widened_cells\": {widened_cells},\n  \
             \"rank_constant_models\": {rank_constant_models:?}\n}}\n"
        );
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        std::fs::write(path, &tightness_json).map_err(|e| e.to_string())?;
        println!("domain-tightness artifact written to {}", path.display());
    }

    if total_violations > 0 {
        return Err(format!(
            "noise-domain soundness violated: {total_violations} measured errors \
             escaped their certified bounds (see {})",
            out_path.display()
        ));
    }
    if widened_cells > 0 {
        return Err(format!(
            "domain tightening regressed: {widened_cells} zonotope cells are wider \
             than their interval-domain cells"
        ));
    }
    if tightness_path.is_some() && !rank_constant_models.is_empty() {
        return Err(format!(
            "raw sensitivity matrix is rank-constant (every layer×bits cell ties) \
             on: {}",
            rank_constant_models.join(", ")
        ));
    }
    if min_overlap > 0.0 {
        if saw_degenerate_ranking {
            return Err(format!(
                "static-vs-empirical ranking is degenerate (NaN overlap or \
                 undefined Spearman rho) on at least one model; cannot certify \
                 the required {min_overlap:.2} overlap"
            ));
        }
        if worst_overlap < min_overlap {
            return Err(format!(
                "static-vs-empirical ranking overlap {worst_overlap:.2} below the \
                 required {min_overlap:.2}"
            ));
        }
    }
    Ok(())
}

/// Formats a float as a JSON number through the obs sink's canonical
/// encoder: non-finite values become `null` (NaN/inf literals are not
/// valid JSON and silently poison every downstream parser).
fn jnum(v: f32) -> String {
    hero_obs::json::num(f64::from(v))
}

/// The spectrum observatory (`hero spectrum`): for each requested method,
/// trains with per-epoch spectrum telemetry enabled, probes the final
/// weights deeply (SLQ density + per-layer Hutchinson traces), computes
/// the Spearman rank correlation between the empirical quantizable-layer
/// trace ranking and the certified static sensitivity ranking, prints an
/// ASCII density plot, and rolls everything into one JSON artifact.
fn cmd_spectrum(opts: &HashMap<String, String>) -> Result<(), String> {
    let preset = preset_of(opts)?;
    let model = model_of(opts)?;
    let scale: f32 = num(opts, "scale", 0.25)?;
    let seed: u64 = num(opts, "seed", 42)?;
    let epochs: usize = num(opts, "epochs", 3)?;
    let steps: usize = num(opts, "steps", 10)?;
    let probes: usize = num(opts, "probes", 4)?;
    let bits: u8 = num(opts, "bits", 4)?;
    let every: usize = num(opts, "spectrum-every", 1)?;
    let methods_arg = opts
        .get("methods")
        .cloned()
        .unwrap_or_else(|| "sgd,hero".into());
    let stem = format!("{}_{}", model.paper_name(), preset.paper_name())
        .to_lowercase()
        .replace(['/', ' ', '-'], "_");
    let out_path = PathBuf::from(
        opts.get("out")
            .cloned()
            .unwrap_or_else(|| format!("results/SPECTRUM_{stem}.json")),
    );

    let (train_set, test_set) = preset.load(scale);
    let probe_n = train_set.len().min(64);
    if probe_n == 0 {
        return Err("spectrum needs at least one training sample".into());
    }
    let images = train_set
        .images
        .narrow(0, probe_n)
        .map_err(|e| e.to_string())?;
    let labels = &train_set.labels[..probe_n];

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"preset\": \"{}\",\n  \"model\": \"{}\",\n  \"epochs\": {epochs},\n  \
         \"steps\": {steps},\n  \"probes\": {probes},\n  \"sens_bits\": {bits},\n  \
         \"methods\": [\n",
        preset.paper_name(),
        model.paper_name()
    );
    // Either probe one saved model artifact (no retraining — the weights
    // and per-epoch spectrum trajectory both come from the file) or train
    // each requested method fresh.
    let mut runs: Vec<(String, Network, TrainRecord)> = Vec::new();
    if let Some(path) = opts.get("artifact") {
        let art = load_artifact(PathBuf::from(path)).map_err(|e| e.to_string())?;
        let name = art
            .meta_str("train.method.kind")
            .unwrap_or("artifact")
            .to_string();
        let net = network_from_artifact(&art).map_err(|e| e.to_string())?;
        let rec = record_from_artifact(&art).map_err(|e| e.to_string())?;
        runs.push((name, net, rec));
    } else {
        for token in methods_arg.split(',') {
            let method = match token.trim() {
                "hero" => MethodKind::Hero,
                "sam" | "first-order" => MethodKind::FirstOrder,
                "gradl1" => MethodKind::GradL1,
                "sgd" => MethodKind::Sgd,
                other => return Err(format!("--methods: unknown method `{other}`")),
            };
            let mut net = model.build(model_config(preset), &mut StdRng::seed_from_u64(seed));
            let config = TrainConfig::new(method.tuned(), epochs)
                .with_seed(seed)
                .with_spectrum_every(every);
            let rec = train(&mut net, &train_set, &test_set, &config).map_err(|e| e.to_string())?;
            runs.push((method.paper_name().to_string(), net, rec));
        }
    }
    let mut first_method = true;
    for (name, mut net, rec) in runs {
        // Deep final probe. Unlike the trainer's epoch probe this keeps the
        // full broadened density for plotting, so it calls the estimators
        // directly rather than going through `probe_spectrum`.
        let params = net.params();
        let infos = net.param_infos();
        let (density, traces) = {
            let mut oracle = BatchOracle::new(&mut net, &images, labels);
            let cfg = SlqConfig {
                steps,
                probes,
                seed,
                grid_points: 32,
                ..SlqConfig::default()
            };
            let density = slq_density(&mut oracle, &params, cfg).map_err(|e| e.to_string())?;
            let traces = layer_traces(&mut oracle, &params, probes, 1e-3, seed ^ 0x7ACE)
                .map_err(|e| e.to_string())?;
            (density, traces)
        };
        // The oracle leaves its last-evaluated (perturbed) parameters
        // installed; restore before anything else touches the network.
        net.set_params(&params).map_err(|e| e.to_string())?;

        // Empirical-vs-static sensitivity ranking over quantizable layers.
        // Both sides are per-weight curvature magnitudes: the measured
        // `|tr(H_ii)| / nᵢ` against the matrix's quadratic-model
        // projection (raw `err` cells can all clamp at the analyzer's
        // loss-interval ceiling, which would make the ranking constant).
        let matrix = hero_core::static_sensitivity_matrix(&mut net, &images, labels, &[bits])
            .map_err(|e| e.to_string())?;
        let sens = matrix.to_layer_sensitivities();
        let mut empirical = Vec::new();
        let mut certified = Vec::new();
        for (info, trace) in infos.iter().zip(&traces) {
            if !info.kind.is_quantizable() {
                continue;
            }
            if let Some(s) = sens.iter().find(|s| s.name == info.name) {
                empirical.push((trace.mean / s.numel.max(1) as f32).abs());
                certified.push(s.curvature);
            }
        }
        // Checked Spearman: a constant or sub-2-layer ranking reports as
        // explicitly undefined instead of a NaN that comparisons ignore.
        let rho = spearman_rank_checked(&empirical, &certified);
        let rho_str = rho.map_or_else(|| "undefined".to_string(), |r| format!("{r:.3}"));
        let global_trace: f32 = traces.iter().map(|t| t.mean).sum();

        println!(
            "{} after {} epochs: λ_max {:.4} ± {:.4}, λ_min {:.4}, tr(H) {:.2}, \
             E[λ²] {:.4}, trace-vs-static Spearman ρ {} over {} layers",
            name,
            rec.epochs.len(),
            density.lambda_max.mean,
            density.lambda_max.ci95(),
            density.lambda_min.mean,
            global_trace,
            density.second_moment.mean,
            rho_str,
            empirical.len()
        );
        println!(
            "{} spectral density (SLQ, {} probes × {} steps, σ {:.3}):",
            name, probes, steps, density.sigma
        );
        let rows: Vec<(String, f64)> = density
            .grid
            .iter()
            .zip(&density.density)
            .map(|(&x, &d)| (format!("{x:>10.3}"), f64::from(d)))
            .collect();
        print!("{}", hero_obs::ascii_bars(&rows, 48));

        hero_obs::Event::new("spectrum_summary")
            .str("method", &name)
            .f64("lambda_max", f64::from(density.lambda_max.mean))
            .f64("lambda_min", f64::from(density.lambda_min.mean))
            .f64("trace", f64::from(global_trace))
            .f64("second_moment", f64::from(density.second_moment.mean))
            .f64("spearman", f64::from(rho.unwrap_or(f32::NAN)))
            .emit();

        if !first_method {
            json.push_str(",\n");
        }
        first_method = false;
        let _ = write!(
            json,
            "    {{\n      \"method\": \"{}\",\n      \"test_acc\": {},\n      \
             \"lambda_max\": {},\n      \"lambda_max_se\": {},\n      \
             \"lambda_min\": {},\n      \"mean_eigenvalue\": {},\n      \
             \"second_moment\": {},\n      \"trace\": {},\n      \
             \"spearman_trace_vs_static\": {},\n      \"sigma\": {},\n",
            name,
            jnum(rec.final_test_acc),
            jnum(density.lambda_max.mean),
            jnum(density.lambda_max.std_error),
            jnum(density.lambda_min.mean),
            jnum(density.mean_eigenvalue.mean),
            jnum(density.second_moment.mean),
            jnum(global_trace),
            rho.map_or_else(|| "null".into(), jnum),
            jnum(density.sigma)
        );
        let grid: Vec<String> = density.grid.iter().map(|&v| jnum(v)).collect();
        let dens: Vec<String> = density.density.iter().map(|&v| jnum(v)).collect();
        let _ = write!(
            json,
            "      \"grid\": [{}],\n      \"density\": [{}],\n      \"layers\": [\n",
            grid.join(", "),
            dens.join(", ")
        );
        for (i, (info, trace)) in infos.iter().zip(&traces).enumerate() {
            let _ = write!(
                json,
                "        {{\"layer\": \"{}\", \"quantizable\": {}, \"trace\": {}, \
                 \"trace_se\": {}}}{}",
                info.name.replace(['"', '\\'], "_"),
                info.kind.is_quantizable(),
                jnum(trace.mean),
                jnum(trace.std_error),
                if i + 1 < traces.len() { ",\n" } else { "\n" }
            );
        }
        json.push_str("      ],\n      \"trajectory\": [\n");
        for (i, p) in rec.spectra.iter().enumerate() {
            let _ = write!(
                json,
                "        {{\"epoch\": {}, \"lambda_max\": {}, \"trace\": {}, \
                 \"second_moment\": {}}}{}",
                p.epoch,
                jnum(p.lambda_max.mean),
                jnum(p.global_trace()),
                jnum(p.second_moment.mean),
                if i + 1 < rec.spectra.len() {
                    ",\n"
                } else {
                    "\n"
                }
            );
        }
        json.push_str("      ]\n    }");
    }
    json.push_str("\n  ]\n}\n");
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    std::fs::write(&out_path, &json).map_err(|e| e.to_string())?;
    println!("spectrum artifact written to {}", out_path.display());
    Ok(())
}

fn cmd_analyze(opts: &HashMap<String, String>) -> Result<(), String> {
    let (mut net, _, train_set, _) = obtain_model(opts)?;
    let n = train_set.len().min(128);
    let images = train_set.images.narrow(0, n).map_err(|e| e.to_string())?;
    let labels = train_set.labels[..n].to_vec();
    let params = net.params();
    let nonzeros: usize = params.iter().map(|p| p.norm_l0()).sum();
    let mut oracle = BatchOracle::new(&mut net, &images, &labels);
    let (loss, grads) = oracle.grad(&params).map_err(|e| e.to_string())?;
    let (hz, _) = hessian_norm_probe(&mut oracle, &params, 1e-3).map_err(|e| e.to_string())?;
    let spectrum = lanczos_spectrum(
        &mut oracle,
        &params,
        10,
        1e-3,
        &mut StdRng::seed_from_u64(0),
    )
    .map_err(|e| e.to_string())?;
    let bounds = BoundInputs {
        grad_l2: global_norm_l2(&grads),
        grad_l1: global_norm_l1(&grads),
        eigenvalue: spectrum.lambda_max(),
        nonzeros,
        tolerance: 0.1,
    };
    let report = format!(
        "curvature analysis on {n} training samples:\n\
         \x20 loss                      {loss:.4}\n\
         \x20 ‖g‖₂ / ‖g‖₁               {:.4} / {:.4}\n\
         \x20 ‖Hz‖ (Fig. 2 probe)       {hz:.4}\n\
         \x20 λ_max / λ_min (Lanczos)   {:.4} / {:.4}\n\
         \x20 theorem 3 ‖δ*‖₂ bound     {:.5}\n\
         \x20 theorem 3 ‖δ*‖∞ bound     {:.6}\n\
         \x20 max safe bin width Δ      {:.6}",
        bounds.grad_l2,
        bounds.grad_l1,
        spectrum.lambda_max(),
        spectrum.lambda_min(),
        bounds.l2_bound(),
        bounds.linf_bound(),
        bounds.max_safe_bin_width()
    );
    hero_obs::Event::new("analysis")
        .u64("samples", n as u64)
        .f64("loss", f64::from(loss))
        .f64("grad_l2", f64::from(bounds.grad_l2))
        .f64("grad_l1", f64::from(bounds.grad_l1))
        .f64("hz_norm", f64::from(hz))
        .f64("lambda_max", f64::from(spectrum.lambda_max()))
        .f64("lambda_min", f64::from(spectrum.lambda_min()))
        .f64("l2_bound", f64::from(bounds.l2_bound()))
        .f64("linf_bound", f64::from(bounds.linf_bound()))
        .f64("max_safe_bin_width", f64::from(bounds.max_safe_bin_width()))
        .human(report)
        .emit();
    Ok(())
}

/// `hero artifact inspect --path FILE`: decodes an artifact (verifying
/// magic, version and checksum on the way in) and prints its meta,
/// tensor inventory, quantization decision and resume state.
fn cmd_artifact_inspect(opts: &HashMap<String, String>) -> Result<(), String> {
    let path = opts
        .get("path")
        .ok_or_else(|| "artifact inspect needs --path FILE".to_string())?;
    let art = load_artifact(PathBuf::from(path)).map_err(|e| e.to_string())?;
    print!("{}", art.describe());
    Ok(())
}
