//! End-to-end pipeline over the `hero` binary at smoke scale:
//! `train --save` → `artifact inspect` → `preflight --artifact --stamp` →
//! `quantize --artifact --save`, plus CLI-level checkpoint/resume byte
//! equality. This is the same sequence verify.sh drives in CI; keeping it
//! as a test means a broken pipeline fails `cargo test`, not just the
//! nightly script.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hero() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hero"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hero_cli_{}_{name}", std::process::id()))
}

fn ok(out: Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Common smoke-scale flags: tiny synthetic C10 slice, 2 epochs of SGD.
const SMOKE: [&str; 12] = [
    "--preset", "c10", "--model", "resnet", "--method", "sgd", "--scale", "0.05", "--epochs", "2",
    "--seed", "7",
];

#[test]
fn train_preflight_quantize_pipeline_over_artifacts() {
    let model = tmp("model.ha");
    let stamped = tmp("stamped.ha");
    let quantized = tmp("quantized.ha");
    let out_dir = tmp("preflight_dir");

    let out = hero()
        .args(["train"])
        .args(SMOKE)
        .args([
            "--save",
            model.to_str().unwrap(),
            "--git-rev",
            "pipeline-test",
        ])
        .output()
        .expect("spawn hero train");
    ok(out, "train --save");

    let out = hero()
        .args(["artifact", "inspect", "--path", model.to_str().unwrap()])
        .output()
        .expect("spawn hero artifact inspect");
    let text = ok(out, "artifact inspect");
    assert!(
        text.contains("format = \"hero-artifact\""),
        "inspect:\n{text}"
    );
    assert!(text.contains("provenance.git_rev = \"pipeline-test\""));
    assert!(text.contains("train.method.kind = \"sgd\""));

    let out = hero()
        .args(["preflight", "--preset", "c10", "--scale", "0.05"])
        .args(["--artifact", model.to_str().unwrap()])
        .args(["--stamp", stamped.to_str().unwrap()])
        .args(["--out-dir", out_dir.to_str().unwrap()])
        .output()
        .expect("spawn hero preflight");
    ok(out, "preflight --artifact");
    let out = hero()
        .args(["artifact", "inspect", "--path", stamped.to_str().unwrap()])
        .output()
        .expect("spawn hero artifact inspect");
    let text = ok(out, "inspect stamped artifact");
    assert!(
        text.contains("provenance.preflight_hash"),
        "stamp missing:\n{text}"
    );

    let out = hero()
        .args(["quantize", "--preset", "c10", "--scale", "0.05"])
        .args(["--artifact", model.to_str().unwrap()])
        .args(["--bits", "4,8", "--save"])
        .arg(&quantized)
        .args(["--save-bits", "4"])
        .output()
        .expect("spawn hero quantize");
    ok(out, "quantize --artifact --save");
    let out = hero()
        .args(["artifact", "inspect", "--path", quantized.to_str().unwrap()])
        .output()
        .expect("spawn hero artifact inspect");
    let text = ok(out, "inspect quantized artifact");
    assert!(
        text.contains("quantization ("),
        "quant section missing:\n{text}"
    );
    assert!(text.contains("bits=4"));

    for p in [&model, &stamped, &quantized] {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn cli_checkpoint_resume_is_byte_identical() {
    let straight = tmp("straight.ha");
    let ckpt = tmp("ckpt.ha");
    let resumed = tmp("resumed.ha");

    // Uninterrupted 4-epoch run with a mid-run checkpoint after epoch 2.
    let out = hero()
        .args(["train"])
        .args(["--preset", "c10", "--model", "resnet", "--method", "sgd"])
        .args(["--scale", "0.05", "--epochs", "4", "--seed", "7"])
        .args(["--save", straight.to_str().unwrap()])
        .args([
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "2",
        ])
        .output()
        .expect("spawn hero train");
    ok(out, "train with checkpoint");

    // Resume the checkpoint: epochs 3..4 rerun from the saved state.
    let out = hero()
        .args(["train", "--preset", "c10", "--scale", "0.05"])
        .args(["--resume", ckpt.to_str().unwrap()])
        .args(["--save", resumed.to_str().unwrap()])
        .output()
        .expect("spawn hero train --resume");
    ok(out, "train --resume");

    let a = std::fs::read(&straight).expect("straight artifact");
    let b = std::fs::read(&resumed).expect("resumed artifact");
    assert_eq!(a, b, "resumed artifact diverged from the uninterrupted run");

    for p in [&straight, &ckpt, &resumed] {
        std::fs::remove_file(p).ok();
    }
}
