//! # hero-autodiff
//!
//! Tape-based reverse-mode automatic differentiation over
//! [`hero_tensor::Tensor`], built for the HERO (DAC 2022) reproduction.
//!
//! A [`Graph`] records operations define-by-run style; [`Graph::backward`]
//! walks the tape in reverse and returns [`Gradients`] for every node that
//! influenced the scalar loss. The op set covers what the paper's models
//! need: dense and convolutional layers (regular + depthwise), batch
//! normalization, pooling, ReLU/ReLU6 and softmax cross-entropy.
//!
//! Every backward rule is validated against central finite differences via
//! [`gradcheck::check_scalar_fn`].
//!
//! # Examples
//!
//! ```
//! use hero_autodiff::Graph;
//! use hero_tensor::Tensor;
//!
//! # fn main() -> Result<(), hero_tensor::TensorError> {
//! let mut g = Graph::new();
//! let w = g.input(Tensor::from_vec(vec![0.5, -0.5], [1, 2])?);
//! let x = g.input(Tensor::from_vec(vec![1.0, 2.0], [2, 1])?);
//! let y = g.matmul(w, x)?;              // (1,1)
//! let loss = g.sum(y);
//! let grads = g.backward(loss)?;
//! assert_eq!(grads.get(w).unwrap().data(), &[1.0, 2.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
mod graph;
mod ops_ext;
mod ops_nn;
pub mod trace;

pub use graph::{Gradients, Graph, Var};
pub use ops_nn::BatchStats;
pub use trace::{NodeTrace, TraceDetail};
