#!/usr/bin/env bash
# Lint gate for the workspace: clippy at -D warnings (default and `sanitize`
# feature builds) plus two repo-specific grep lints over library code:
#
#   1. no `.unwrap()` in non-test library code — fallible paths must use
#      `?`/`expect` with context or handle the error;
#   2. no float `==` / `!=` against literals — exact-zero fast paths that
#      are genuinely intended go in scripts/lint-allow.txt.
#
# Test modules (everything from the first `#[cfg(test)]` / `#[cfg(all(test,
# ...))]` line to end of file — the repo convention is tail-positioned test
# modules) and comment lines are exempt. The allowlist is tab-separated
# `file<TAB>substring`; a flagged line is waived when an entry's file matches
# and the line contains the substring.
#
# Usage: scripts/lint.sh  (invoked by scripts/verify.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

CLIPPY_LINTS=(
  -D warnings
  -D clippy::dbg_macro
  -D clippy::todo
  -D clippy::unimplemented
)

echo "==> clippy -D warnings (default features)"
cargo clippy --workspace --all-targets -- "${CLIPPY_LINTS[@]}"

echo "==> clippy -D warnings (sanitize feature)"
cargo clippy -p hero-tensor -p hero-autodiff --all-targets --features sanitize \
  -- "${CLIPPY_LINTS[@]}"

ALLOW=scripts/lint-allow.txt

allowed() { # $1 = file, $2 = offending line
  local f pat
  while IFS=$'\t' read -r f pat; do
    [[ -z "$f" || "$f" == \#* ]] && continue
    if [[ "$1" == "$f" && "$2" == *"$pat"* ]]; then
      return 0
    fi
  done <"$ALLOW"
  return 1
}

# scan <regex> <description> — greps non-test library code, honouring the
# allowlist. Prints violations and returns nonzero if any survive.
scan() {
  local re="$1" desc="$2" bad=0 file cut content hits hit line
  for file in crates/*/src/*.rs crates/*/src/**/*.rs; do
    [[ -e "$file" ]] || continue
    cut=$(grep -n -m1 '^#\[cfg(.*test' "$file" | cut -d: -f1 || true)
    if [[ -n "$cut" ]]; then
      content=$(head -n $((cut - 1)) "$file")
    else
      content=$(cat "$file")
    fi
    hits=$(printf '%s\n' "$content" | grep -nE "$re" |
      grep -vE '^[0-9]+:[[:space:]]*//' || true)
    [[ -z "$hits" ]] && continue
    while IFS= read -r hit; do
      line="${hit#*:}"
      if ! allowed "$file" "$line"; then
        echo "lint.sh: $desc: $file:$hit"
        bad=1
      fi
    done <<<"$hits"
  done
  return $bad
}

fail=0
echo "==> grep lint: no .unwrap() in library code"
scan '\.unwrap\(\)' 'forbidden .unwrap() in library code' || fail=1

echo "==> grep lint: no float literal == / != comparisons"
scan '(==|!=)[[:space:]]*-?[0-9]+\.[0-9]|[0-9]+\.[0-9]*[[:space:]]*(==|!=)' \
  'float equality against a literal' || fail=1

if [[ $fail -ne 0 ]]; then
  echo "lint.sh: grep lints FAILED (add a scripts/lint-allow.txt entry only" \
    "for intentional exact comparisons)"
  exit 1
fi

echo "lint.sh: all lint gates passed"
