//! Epoch-cadenced Hessian spectrum probes: SLQ density summaries and
//! per-layer Hutchinson traces recorded while a model trains.
//!
//! A [`SpectrumProbe`] is one observation of the loss landscape — the
//! eigenvalue extremes and moments from stochastic Lanczos quadrature plus
//! a Hutchinson trace per parameter tensor (the HeRo-Q quantization-
//! sensitivity proxy). The trainer takes one every
//! [`crate::TrainConfig::spectrum_every`] epochs (off by default: each
//! probe costs `slq_probes·steps + trace_probes·n_layers + 1` gradient
//! evaluations), emits it as `spectrum` / `spectrum_layer` JSONL events
//! and records it into the `hero-obs` series registry, so traced runs roll
//! the whole trajectory into `SUMMARY_<run>.json`.

use hero_data::Dataset;
use hero_hessian::{layer_traces, slq_density, Estimate, SlqConfig};
use hero_nn::Network;
use hero_optim::BatchOracle;
use hero_tensor::Result;

/// Knobs for one spectrum probe (shared by the trainer's epoch-cadence
/// probe and the CLI's deep final probe).
#[derive(Debug, Clone, Copy)]
pub struct SpectrumOptions {
    /// Lanczos steps per SLQ probe vector.
    pub steps: usize,
    /// SLQ probe vectors averaged into the density estimate.
    pub slq_probes: usize,
    /// Hutchinson probes per parameter tensor.
    pub trace_probes: usize,
    /// Training samples in the probe batch.
    pub samples: usize,
    /// Finite-difference step for the inner HVPs.
    pub eps: f32,
    /// Base seed for every probe stream.
    pub seed: u64,
}

impl Default for SpectrumOptions {
    fn default() -> Self {
        SpectrumOptions {
            steps: 8,
            slq_probes: 2,
            trace_probes: 2,
            samples: 64,
            eps: 1e-3,
            seed: 0,
        }
    }
}

impl SpectrumOptions {
    /// Builder: sets the base probe seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One parameter tensor's Hutchinson trace estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTrace {
    /// Dotted parameter path, e.g. `stage1.block0.conv1.weight`.
    pub name: String,
    /// True when the tensor is subject to weight quantization (the layers
    /// the sensitivity cross-check ranks).
    pub quantizable: bool,
    /// Estimated `tr(H_ii)` of the tensor's diagonal Hessian block.
    pub trace: Estimate,
}

/// One observation of the Hessian spectrum during (or after) training.
#[derive(Debug, Clone)]
pub struct SpectrumProbe {
    /// Epoch index the probe was taken at.
    pub epoch: usize,
    /// λ_max estimate across SLQ probes.
    pub lambda_max: Estimate,
    /// λ_min estimate across SLQ probes.
    pub lambda_min: Estimate,
    /// Spectral mean `tr(H)/n` across SLQ probes.
    pub mean_eigenvalue: Estimate,
    /// Second spectral moment `Σλᵢ²/n` across SLQ probes (the
    /// per-dimension analogue of HERO's regularizer).
    pub second_moment: Estimate,
    /// Per-parameter-tensor Hutchinson traces, canonical order.
    pub layers: Vec<LayerTrace>,
}

impl SpectrumProbe {
    /// Sum of the per-layer trace means — the global Hessian trace
    /// estimate (per-layer traces are unbiased block traces).
    pub fn global_trace(&self) -> f32 {
        self.layers.iter().map(|l| l.trace.mean).sum()
    }

    /// Emits the probe as structured telemetry: one `spectrum` event, one
    /// `spectrum_layer` event per tensor, and `(epoch, value)` samples
    /// into the `hero-obs` series registry (`spectrum/*` names) for the
    /// end-of-run summary roll-up.
    pub fn emit(&self) {
        let e = self.epoch as u64;
        hero_obs::Event::new("spectrum")
            .u64("epoch", e)
            .f64("lambda_max", f64::from(self.lambda_max.mean))
            .f64("lambda_max_se", f64::from(self.lambda_max.std_error))
            .f64("lambda_min", f64::from(self.lambda_min.mean))
            .f64("mean_eigenvalue", f64::from(self.mean_eigenvalue.mean))
            .f64("second_moment", f64::from(self.second_moment.mean))
            .f64("trace", f64::from(self.global_trace()))
            .emit();
        for l in &self.layers {
            hero_obs::Event::new("spectrum_layer")
                .u64("epoch", e)
                .str("layer", &l.name)
                .bool("quantizable", l.quantizable)
                .f64("trace", f64::from(l.trace.mean))
                .f64("trace_se", f64::from(l.trace.std_error))
                .emit();
            hero_obs::record(
                &format!("spectrum/trace/{}", l.name),
                e,
                f64::from(l.trace.mean),
            );
        }
        hero_obs::record("spectrum/lambda_max", e, f64::from(self.lambda_max.mean));
        hero_obs::record("spectrum/trace", e, f64::from(self.global_trace()));
        hero_obs::record(
            "spectrum/second_moment",
            e,
            f64::from(self.second_moment.mean),
        );
    }
}

/// Takes one spectrum probe of `net` on a fixed subsample of `train_set`.
///
/// The network's parameters are restored afterwards (the gradient oracle
/// installs whatever it evaluated last), so probing never perturbs
/// training.
///
/// # Errors
///
/// Returns shape errors if the probe batch is incompatible with the
/// network, and propagates estimator errors (zero probes/steps).
pub fn probe_spectrum(
    net: &mut Network,
    train_set: &Dataset,
    epoch: usize,
    opts: &SpectrumOptions,
) -> Result<SpectrumProbe> {
    let _obs = hero_obs::span("spectrum");
    let n = train_set.len().min(opts.samples);
    let images = train_set.images.narrow(0, n)?;
    let labels = &train_set.labels[..n];
    let params = net.params();
    let infos = net.param_infos();
    let (density, traces) = {
        let mut oracle = BatchOracle::new(net, &images, labels);
        let cfg = SlqConfig {
            steps: opts.steps,
            probes: opts.slq_probes,
            eps: opts.eps,
            seed: opts.seed,
            ..SlqConfig::default()
        };
        let density = slq_density(&mut oracle, &params, cfg)?;
        let traces = layer_traces(
            &mut oracle,
            &params,
            opts.trace_probes,
            opts.eps,
            // Decorrelated from the SLQ probe streams.
            opts.seed ^ 0x7ACE,
        )?;
        (density, traces)
    };
    net.set_params(&params)?;
    let layers = infos
        .into_iter()
        .zip(traces)
        .map(|(info, trace)| LayerTrace {
            name: info.name,
            quantizable: info.kind.is_quantizable(),
            trace,
        })
        .collect();
    Ok(SpectrumProbe {
        epoch,
        lambda_max: density.lambda_max,
        lambda_min: density.lambda_min,
        mean_eigenvalue: density.mean_eigenvalue,
        second_moment: density.second_moment,
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_data::{SynthGenerator, SynthSpec};
    use hero_nn::models::{mlp, ModelConfig};
    use hero_tensor::rng::StdRng;

    fn setup() -> (Network, Dataset) {
        let spec = SynthSpec {
            classes: 4,
            hw: 4,
            noise_std: 0.2,
            ..SynthSpec::default()
        };
        let (train_set, _) = SynthGenerator::new(spec).train_test(32, 8);
        let cfg = ModelConfig {
            classes: 4,
            in_channels: 3,
            input_hw: 4,
            width: 4,
        };
        let net = mlp(cfg, &[16], &mut StdRng::seed_from_u64(2));
        (net, train_set)
    }

    #[test]
    fn probe_reports_aligned_finite_estimates() {
        let (mut net, train_set) = setup();
        let opts = SpectrumOptions {
            steps: 4,
            slq_probes: 2,
            trace_probes: 2,
            samples: 16,
            ..SpectrumOptions::default()
        };
        let probe = probe_spectrum(&mut net, &train_set, 3, &opts).unwrap();
        assert_eq!(probe.epoch, 3);
        assert_eq!(probe.layers.len(), net.params().len());
        let infos = net.param_infos();
        for (l, info) in probe.layers.iter().zip(&infos) {
            assert_eq!(l.name, info.name);
            assert_eq!(l.quantizable, info.kind.is_quantizable());
            assert!(l.trace.mean.is_finite(), "{l:?}");
        }
        assert!(probe.lambda_max.mean.is_finite());
        assert!(probe.lambda_max.mean >= probe.lambda_min.mean);
        assert!(probe.global_trace().is_finite());
        assert!(probe.layers.iter().any(|l| l.quantizable));
    }

    #[test]
    fn probe_preserves_parameters_and_reproduces() {
        let (mut net, train_set) = setup();
        let before = net.params();
        let opts = SpectrumOptions {
            steps: 3,
            slq_probes: 1,
            trace_probes: 1,
            samples: 16,
            ..SpectrumOptions::default()
        }
        .with_seed(5);
        let a = probe_spectrum(&mut net, &train_set, 0, &opts).unwrap();
        assert_eq!(net.params(), before);
        let b = probe_spectrum(&mut net, &train_set, 0, &opts).unwrap();
        // Single-probe standard errors are NaN by contract, so compare the
        // (bitwise reproducible) means.
        assert_eq!(a.lambda_max.mean.to_bits(), b.lambda_max.mean.to_bits());
        assert!(a.lambda_max.std_error.is_nan());
        assert_eq!(
            a.layers
                .iter()
                .map(|l| l.trace.mean.to_bits())
                .collect::<Vec<_>>(),
            b.layers
                .iter()
                .map(|l| l.trace.mean.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn emitted_events_serialize_cleanly() {
        let (mut net, train_set) = setup();
        let opts = SpectrumOptions {
            steps: 3,
            slq_probes: 1,
            trace_probes: 1,
            samples: 16,
            ..SpectrumOptions::default()
        };
        let probe = probe_spectrum(&mut net, &train_set, 1, &opts).unwrap();
        // No run is active in unit tests: emit must be a silent no-op on
        // the JSONL side and must not panic on the series side.
        probe.emit();
        let _ = hero_obs::take_series();
    }
}
