//! Seeded-defect corpus for the tape verifier.
//!
//! Each case hand-builds a malformed trace — the kind of tape a buggy op
//! builder would record — and asserts the verifier pins the *right*
//! diagnostic on the *right* node. The `Graph` API cannot produce these
//! tapes (it validates eagerly), which is exactly why the verifier works on
//! the plain-data trace IR.

use hero_analyze::{analyze, AnalyzeOptions, DiagCode, NoiseSeed, RangeSeed, Report, ValueOptions};
use hero_autodiff::{NodeTrace, TraceDetail};
use hero_tensor::ConvGeometry;

fn node(
    index: usize,
    op: &'static str,
    parents: &[usize],
    shape: &[usize],
    detail: TraceDetail,
) -> NodeTrace {
    NodeTrace {
        index,
        op,
        parents: parents.to_vec(),
        shape: shape.to_vec(),
        detail,
    }
}

fn input(index: usize, shape: &[usize]) -> NodeTrace {
    node(index, "input", &[], shape, TraceDetail::None)
}

fn run(tape: &[NodeTrace]) -> Report {
    analyze(tape, &AnalyzeOptions::default())
}

#[test]
fn matmul_inner_dim_mismatch() {
    let tape = vec![
        input(0, &[2, 3]),
        input(1, &[4, 5]),
        node(2, "matmul", &[0, 1], &[2, 5], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::MatmulDimMismatch), "{report}");
}

#[test]
fn matmul_operand_rank_mismatch() {
    let tape = vec![
        input(0, &[2, 3, 4]),
        input(1, &[3, 5]),
        node(2, "matmul", &[0, 1], &[2, 5], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::RankMismatch), "{report}");
}

#[test]
fn matmul_lying_output_shape() {
    // Inner dims agree, but the recorded output shape is transposed.
    let tape = vec![
        input(0, &[2, 3]),
        input(1, &[3, 4]),
        node(2, "matmul", &[0, 1], &[4, 2], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::ShapeMismatch), "{report}");
}

#[test]
fn reshape_element_count_mismatch() {
    let tape = vec![
        input(0, &[6]),
        node(
            1,
            "reshape",
            &[0],
            &[2, 2],
            TraceDetail::Reshape { from: vec![6] },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ReshapeCountMismatch), "{report}");
}

#[test]
fn reshape_with_stale_source_shape() {
    // The recorded "from" shape disagrees with the actual operand.
    let tape = vec![
        input(0, &[2, 3]),
        node(
            1,
            "reshape",
            &[0],
            &[4],
            TraceDetail::Reshape { from: vec![4] },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ShapeMismatch), "{report}");
}

#[test]
fn broadcast_incompatible_operands() {
    let tape = vec![
        input(0, &[2, 3]),
        input(1, &[4]),
        node(2, "add", &[0, 1], &[2, 3], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::BroadcastIncompatible), "{report}");
}

#[test]
fn dangling_parent_reference() {
    let tape = vec![
        input(0, &[3]),
        node(1, "square", &[7], &[3], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ParentOutOfRange), "{report}");
}

#[test]
fn forward_reference_breaks_topological_order() {
    let tape = vec![
        input(0, &[3]),
        node(1, "add", &[0, 2], &[3], TraceDetail::None),
        node(2, "square", &[0], &[3], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ForwardReference), "{report}");
}

#[test]
fn node_index_disagrees_with_position() {
    let tape = vec![
        input(0, &[3]),
        node(5, "square", &[0], &[3], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::IndexMismatch), "{report}");
}

#[test]
fn conv_geometry_disagrees_with_input() {
    let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
    let tape = vec![
        input(0, &[1, 3, 6, 6]), // 6x6, geometry says 8x8
        input(1, &[4, 27]),
        node(
            2,
            "conv2d",
            &[0, 1],
            &[1, 4, 8, 8],
            TraceDetail::Conv { geom },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::ConvGeometryMismatch), "{report}");
}

#[test]
fn conv_weight_patch_width_mismatch() {
    let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
    let tape = vec![
        input(0, &[1, 3, 8, 8]),
        input(1, &[4, 25]), // must be 3*3*3 = 27 columns
        node(
            2,
            "conv2d",
            &[0, 1],
            &[1, 4, 8, 8],
            TraceDetail::Conv { geom },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::ConvGeometryMismatch), "{report}");
}

#[test]
fn avg_pool_window_does_not_tile_input() {
    let tape = vec![
        input(0, &[1, 2, 8, 8]),
        node(
            1,
            "avg_pool2d",
            &[0],
            &[1, 2, 2, 2],
            TraceDetail::AvgPool { k: 3 },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::PoolGeometryMismatch), "{report}");
}

#[test]
fn max_pool_argmax_routes_outside_input() {
    let tape = vec![
        input(0, &[1, 1, 4, 4]),
        node(
            1,
            "max_pool2d",
            &[0],
            &[1, 1, 2, 2],
            TraceDetail::MaxPool {
                outputs: 4,
                max_source: Some(99), // input has 16 elements
            },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ArgIndexOutOfRange), "{report}");
}

#[test]
fn loss_label_count_mismatch() {
    let tape = vec![
        input(0, &[4, 10]),
        node(
            1,
            "cross_entropy",
            &[0],
            &[],
            TraceDetail::Loss { labels: 3 },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::LabelCountMismatch), "{report}");
}

#[test]
fn dead_subgraph_behind_explicit_root() {
    // Nodes 3 and 4 form a branch the loss never consumes.
    let tape = vec![
        input(0, &[4]),
        node(1, "square", &[0], &[4], TraceDetail::None),
        node(2, "sum", &[1], &[], TraceDetail::None),
        node(3, "scale", &[1], &[4], TraceDetail::None),
        node(4, "add", &[3, 0], &[4], TraceDetail::None),
    ];
    let report = analyze(&tape, &AnalyzeOptions::with_roots(vec![2]));
    assert!(!report.has_errors(), "{report}");
    assert!(report.flags(3, DiagCode::DeadNode), "{report}");
    assert!(report.flags(4, DiagCode::DeadNode), "{report}");
}

#[test]
fn elementwise_op_shape_drift() {
    // A unary op whose recorded output silently changed shape.
    let tape = vec![
        input(0, &[2, 3]),
        node(1, "relu", &[0], &[3, 2], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ShapeMismatch), "{report}");
}

#[test]
fn diagnostics_carry_provenance_chains() {
    let tape = vec![
        input(0, &[2, 3]),
        node(1, "relu", &[0], &[2, 3], TraceDetail::None),
        node(2, "square", &[1], &[2, 3], TraceDetail::None),
        input(3, &[4, 5]),
        node(4, "matmul", &[2, 3], &[2, 5], TraceDetail::None),
    ];
    let report = run(&tape);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == DiagCode::MatmulDimMismatch)
        .expect("matmul defect not flagged");
    // Chain walks first parents: matmul <- square <- relu <- input.
    assert_eq!(d.provenance, vec![4, 2, 1, 0]);
    assert_eq!(d.op, "matmul");
}

#[test]
fn empty_tape_is_clean() {
    let report = run(&[]);
    assert!(report.is_clean());
    assert_eq!(report.nodes, 0);
}

// ---------------------------------------------------------------------------
// Value-level lints (interval + scale passes)
// ---------------------------------------------------------------------------

fn seeded(seeds: &[(usize, f32, f32)]) -> ValueOptions {
    ValueOptions {
        seeds: seeds
            .iter()
            .map(|&(node, lo, hi)| RangeSeed { node, lo, hi })
            .collect(),
        ..ValueOptions::default()
    }
}

fn run_value(tape: &[NodeTrace], vopts: ValueOptions) -> Report {
    analyze(
        tape,
        &AnalyzeOptions {
            roots: vec![],
            variable_inputs: None,
            value: Some(vopts),
        },
    )
}

fn scalar(c: f32) -> TraceDetail {
    TraceDetail::Scalar { c }
}

#[test]
fn arity_mismatch_on_binary_op_with_one_parent() {
    let tape = vec![
        input(0, &[3]),
        node(1, "add", &[0], &[3], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ArityMismatch), "{report}");
}

#[test]
fn arity_mismatch_on_unary_op_with_extra_parent() {
    let tape = vec![
        input(0, &[3]),
        node(1, "square", &[0, 0], &[3], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ArityMismatch), "{report}");
}

#[test]
fn quant_clip_risk_on_outgrown_activation() {
    // The input grid spans [-1, 1]; the scaled activation spans [-100, 100]
    // and cannot be represented by a shared-range 4-bit quantizer.
    let tape = vec![
        input(0, &[4]),
        node(1, "scale", &[0], &[4], scalar(100.0)),
        node(2, "sum", &[1], &[], TraceDetail::None),
    ];
    let mut vopts = seeded(&[(0, -1.0, 1.0)]);
    vopts.quant_bits = vec![4];
    let report = run_value(&tape, vopts);
    assert!(report.flags(1, DiagCode::QuantClipRisk), "{report}");
}

#[test]
fn quant_clip_risk_stays_silent_inside_the_grid() {
    let tape = vec![
        input(0, &[1]),
        node(1, "scale", &[0], &[1], scalar(1.0)),
        node(2, "sum", &[1], &[], TraceDetail::None),
    ];
    let mut vopts = seeded(&[(0, -1.0, 1.0)]);
    vopts.quant_bits = vec![4];
    let report = run_value(&tape, vopts);
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.code != DiagCode::QuantClipRisk),
        "{report}"
    );
}

#[test]
fn saturated_sigmoid_is_a_dead_zone() {
    let tape = vec![
        input(0, &[4]),
        node(1, "sigmoid", &[0], &[4], TraceDetail::None),
        node(2, "sum", &[1], &[], TraceDetail::None),
    ];
    let report = run_value(&tape, seeded(&[(0, 20.0, 30.0)]));
    assert!(report.flags(1, DiagCode::SaturationDeadZone), "{report}");
}

#[test]
fn always_negative_relu_input_is_a_dead_zone() {
    let tape = vec![
        input(0, &[4]),
        node(1, "relu", &[0], &[4], TraceDetail::None),
        node(2, "sum", &[1], &[], TraceDetail::None),
    ];
    let report = run_value(&tape, seeded(&[(0, -5.0, -1.0)]));
    assert!(report.flags(1, DiagCode::SaturationDeadZone), "{report}");
}

#[test]
fn moderate_sigmoid_input_is_not_a_dead_zone() {
    let tape = vec![
        input(0, &[4]),
        node(1, "sigmoid", &[0], &[4], TraceDetail::None),
        node(2, "sum", &[1], &[], TraceDetail::None),
    ];
    let report = run_value(&tape, seeded(&[(0, -2.0, 2.0)]));
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.code != DiagCode::SaturationDeadZone),
        "{report}"
    );
}

#[test]
fn amplifier_chain_crosses_the_explosion_threshold() {
    // Two 1e4x amplifiers: the gradient bound at the input is 1e8. With the
    // threshold at 1e6 the crossing happens at the input edge.
    let tape = vec![
        input(0, &[4]),
        node(1, "scale", &[0], &[4], scalar(1e4)),
        node(2, "scale", &[1], &[4], scalar(1e4)),
        node(3, "sum", &[2], &[], TraceDetail::None),
    ];
    let mut vopts = seeded(&[(0, -1.0, 1.0)]);
    vopts.explode_threshold = 1e6;
    let report = run_value(&tape, vopts);
    assert!(report.flags(0, DiagCode::ScaleExplosion), "{report}");
    // Boundary-style: nodes on the safe side of the crossing stay silent.
    assert!(!report.flags(2, DiagCode::ScaleExplosion), "{report}");
}

#[test]
fn amplifier_chain_is_fine_under_default_thresholds() {
    let tape = vec![
        input(0, &[4]),
        node(1, "scale", &[0], &[4], scalar(1e4)),
        node(2, "scale", &[1], &[4], scalar(1e4)),
        node(3, "sum", &[2], &[], TraceDetail::None),
    ];
    let report = run_value(&tape, seeded(&[(0, -1.0, 1.0)]));
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.code != DiagCode::ScaleExplosion),
        "{report}"
    );
}

#[test]
fn attenuator_crosses_the_vanishing_threshold() {
    let tape = vec![
        input(0, &[4]),
        node(1, "scale", &[0], &[4], scalar(1e-12)),
        node(2, "sum", &[1], &[], TraceDetail::None),
    ];
    let mut vopts = seeded(&[(0, -1.0, 1.0)]);
    vopts.vanish_threshold = 1e-6;
    let report = run_value(&tape, vopts);
    assert!(report.flags(0, DiagCode::ScaleVanishing), "{report}");
}

#[test]
fn unseeded_input_has_a_non_finite_range() {
    let tape = vec![
        input(0, &[3]),
        node(1, "square", &[0], &[3], TraceDetail::None),
        node(2, "sum", &[1], &[], TraceDetail::None),
    ];
    let report = run_value(&tape, ValueOptions::default());
    assert!(report.flags(0, DiagCode::NonFiniteRange), "{report}");
}

#[test]
fn nan_seed_flags_the_input() {
    let tape = vec![input(0, &[3]), node(1, "sum", &[0], &[], TraceDetail::None)];
    let report = run_value(&tape, seeded(&[(0, f32::NAN, f32::NAN)]));
    assert!(report.flags(0, DiagCode::NonFiniteRange), "{report}");
}

#[test]
fn ln_of_a_sign_straddling_range_goes_non_finite_at_the_ln() {
    let tape = vec![
        input(0, &[3]),
        node(1, "ln", &[0], &[3], TraceDetail::None),
        node(2, "sum", &[1], &[], TraceDetail::None),
    ];
    let report = run_value(&tape, seeded(&[(0, -1.0, 2.0)]));
    assert!(report.flags(1, DiagCode::NonFiniteRange), "{report}");
    // Origin-only: downstream nodes inherit the flag silently.
    assert!(!report.flags(2, DiagCode::NonFiniteRange), "{report}");
}

// ---------------------------------------------------------------------------
// Quantization-noise domain (relational pass through the analyze() front end)
// ---------------------------------------------------------------------------

#[test]
fn seeded_tape_over_budget_flags_the_root() {
    // A 0.25-magnitude perturbation scaled by 8 and summed over 4 lanes
    // induces up to 8 units of output noise — far over a 1e-3 budget.
    let tape = vec![
        input(0, &[4]),
        node(1, "scale", &[0], &[4], scalar(8.0)),
        node(2, "sum", &[1], &[], TraceDetail::None),
    ];
    let vopts = ValueOptions {
        noise_seeds: vec![NoiseSeed {
            node: 0,
            magnitude: 0.25,
        }],
        noise_budget: Some(1e-3),
        ..seeded(&[(0, -1.0, 1.0)])
    };
    let report = run_value(&tape, vopts);
    assert!(
        report.flags(2, DiagCode::QuantErrorBudgetExceeded),
        "{report}"
    );
}

#[test]
fn zero_magnitude_seed_certifies_exactly_zero_noise() {
    // The zero-seed zonotope proves δ ≡ 0 end to end: even a *zero*
    // error budget holds, which only an exact certificate can satisfy
    // (any margin-charging domain would exceed it).
    let tape = vec![
        input(0, &[4]),
        node(1, "scale", &[0], &[4], scalar(8.0)),
        node(2, "square", &[1], &[4], TraceDetail::None),
        node(3, "sum", &[2], &[], TraceDetail::None),
    ];
    let vopts = ValueOptions {
        noise_seeds: vec![NoiseSeed {
            node: 0,
            magnitude: 0.0,
        }],
        noise_budget: Some(0.0),
        ..seeded(&[(0, -1.0, 1.0)])
    };
    let report = run_value(&tape, vopts);
    assert!(
        !report.flags(3, DiagCode::QuantErrorBudgetExceeded),
        "zero-seed zonotope failed to certify zero noise: {report}"
    );
}
