//! Hand-rolled JSON writing and parsing (the workspace carries no serde).
//!
//! [`JsonObj`] is the single object writer shared by every structured sink
//! in the repo: JSONL trace events, the run-summary table, the Chrome-trace
//! exporter and `hero-bench`'s `BenchRow` serialization all build their
//! rows through it, so escaping and number formatting have exactly one
//! implementation. [`parse`] is the matching reader used by round-trip
//! tests and by tools that post-process `results/TRACE_*.jsonl`.

use std::fmt::Write as _;

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Inf, and a NaN probe value is real data here — e.g. an
/// epoch whose test set was not evaluated).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` prints integral floats without a dot; keep them numeric but
        // unambiguous for readers that distinguish int/float.
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one JSON object.
///
/// # Examples
///
/// ```
/// use hero_obs::json::JsonObj;
///
/// let mut o = JsonObj::new();
/// o.str("ev", "epoch").u64("epoch", 3).f64("loss", 0.25);
/// assert_eq!(o.finish(), r#"{"ev": "epoch", "epoch": 3, "loss": 0.25}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
    any: bool,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) -> &mut Self {
        if self.any {
            self.buf.push_str(", ");
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\": ", escape(k));
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        let n = num(v);
        self.buf.push_str(&n);
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already serialized JSON (an array or a
    /// nested object).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serializes an iterator of already-serialized JSON values as a pretty
/// one-value-per-line array — the layout of every `results/*.json` file.
pub fn array_lines<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    let mut out = String::from("[\n");
    for (i, item) in items.iter().enumerate() {
        out.push_str("  ");
        out.push_str(item);
        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True when the value is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a human-readable message naming the byte offset of the first
/// syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = b.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let Some(c) = rest.chars().next() else {
                    return Err("unterminated string".to_string());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_formats() {
        let mut o = JsonObj::new();
        o.str("s", "a\"b\\c\nd")
            .u64("n", 7)
            .f64("x", 1.5)
            .f64("nan", f64::NAN)
            .bool("ok", true);
        let text = o.finish();
        assert_eq!(
            text,
            r#"{"s": "a\"b\\c\nd", "n": 7, "x": 1.5, "nan": null, "ok": true}"#
        );
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(num(3.0), "3.0");
        assert_eq!(num(0.25), "0.25");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let mut o = JsonObj::new();
        o.str("ev", "epoch")
            .u64("epoch", 12)
            .f64("loss", 0.125)
            .f64("test_acc", f64::NAN);
        let v = parse(&o.finish()).expect("parse");
        assert_eq!(v.get("ev").and_then(Value::as_str), Some("epoch"));
        assert_eq!(v.get("epoch").and_then(Value::as_f64), Some(12.0));
        assert_eq!(v.get("loss").and_then(Value::as_f64), Some(0.125));
        assert!(v.get("test_acc").is_some_and(Value::is_null));
    }

    #[test]
    fn parser_handles_nesting_and_ws() {
        let v = parse(" { \"a\" : [1, 2.5, \"x\", null, {\"b\": false}] } ").expect("parse");
        let arr = v.get("a").and_then(Value::as_arr).expect("array");
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[4].get("b"), Some(&Value::Bool(false)));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn array_lines_layout() {
        let a = array_lines(vec!["{\"x\": 1}".to_string(), "{\"y\": 2}".to_string()]);
        assert_eq!(a, "[\n  {\"x\": 1},\n  {\"y\": 2}\n]\n");
        assert_eq!(array_lines(Vec::new()), "[\n]\n");
    }
}
