//! Property tests for the greedy mixed-precision bit allocators
//! ([`allocate_bits`] over the quadratic proxy, [`SensitivityMatrix::allocate`]
//! over certified error profiles): feasibility, budget-maximality,
//! monotonicity in the budget, and the degenerate corners.

use hero_quant::{
    allocate_bits, LayerSensitivity, QuantScheme, SensitivityMatrix, StaticSensitivity,
};
use hero_tensor::rng::{Rng, StdRng};

const TRIALS: usize = 60;

fn random_layers(rng: &mut StdRng) -> Vec<LayerSensitivity> {
    let n = rng.gen_range(1..=8usize);
    (0..n)
        .map(|i| LayerSensitivity {
            name: format!("layer{i}"),
            numel: rng.gen_range(1..=5000usize),
            max_abs: rng.gen_range(1e-3f32..=10.0),
            curvature: rng.gen_range(0.0f32..=100.0),
        })
        .collect()
}

fn spent(layers: &[LayerSensitivity], bits: &[u8]) -> usize {
    layers
        .iter()
        .zip(bits)
        .map(|(l, &b)| l.numel * usize::from(b))
        .sum()
}

/// Every allocation is within bounds and affordable.
#[test]
fn allocations_are_feasible() {
    let mut rng = StdRng::seed_from_u64(0xA110);
    for _ in 0..TRIALS {
        let layers = random_layers(&mut rng);
        let (min_b, max_b) = (
            rng.gen_range(1..=4usize) as u8,
            rng.gen_range(5..=16usize) as u8,
        );
        let avg = rng.gen_range(f32::from(min_b)..=f32::from(max_b));
        let bits = allocate_bits(&layers, avg, min_b, max_b).unwrap();
        assert_eq!(bits.len(), layers.len());
        assert!(bits.iter().all(|&b| (min_b..=max_b).contains(&b)));
        let total: usize = layers.iter().map(|l| l.numel).sum();
        assert!(
            spent(&layers, &bits) <= (avg * total as f32).floor() as usize,
            "over budget: {bits:?} for avg {avg}"
        );
    }
}

/// Budget-maximal for equal-cost layers: when every layer has the same
/// weight count, no further upgrade is affordable after the allocator
/// stops (with mixed sizes the allocator deliberately trades a few
/// leftover weight-bits for budget-monotonicity; then the leftover is
/// merely smaller than the largest still-upgradable layer).
#[test]
fn allocations_are_budget_maximal() {
    let mut rng = StdRng::seed_from_u64(0xB0D9);
    for trial in 0..TRIALS {
        let mut layers = random_layers(&mut rng);
        let equal_cost = trial % 2 == 0;
        if equal_cost {
            let numel = layers[0].numel;
            for l in &mut layers {
                l.numel = numel;
            }
        }
        let (min_b, max_b) = (2u8, 8u8);
        let avg = rng.gen_range(2.0f32..=8.0);
        let bits = allocate_bits(&layers, avg, min_b, max_b).unwrap();
        let total: usize = layers.iter().map(|l| l.numel).sum();
        let remaining = (avg * total as f32).floor() as usize - spent(&layers, &bits);
        let upgradable: Vec<usize> = layers
            .iter()
            .zip(&bits)
            .filter(|(_, &b)| b < max_b)
            .map(|(l, _)| l.numel)
            .collect();
        let bound = if equal_cost {
            upgradable.iter().min()
        } else {
            upgradable.iter().max()
        };
        if let Some(&bound) = bound {
            assert!(
                remaining < bound,
                "leftover {remaining} weight-bits vs bound {bound} (equal_cost={equal_cost})"
            );
        }
    }
}

/// Monotone in the budget: granting more average bits never lowers any
/// layer's allocation (greedy over convexified gain profiles).
#[test]
fn allocations_are_monotone_in_budget() {
    let mut rng = StdRng::seed_from_u64(0x3030);
    for _ in 0..TRIALS {
        let layers = random_layers(&mut rng);
        let lo = rng.gen_range(2.0f32..=7.0);
        let hi = rng.gen_range(lo..=8.0);
        let a = allocate_bits(&layers, lo, 2, 8).unwrap();
        let b = allocate_bits(&layers, hi, 2, 8).unwrap();
        for (i, (&ba, &bb)) in a.iter().zip(&b).enumerate() {
            assert!(
                bb >= ba,
                "layer {i} dropped from {ba} to {bb} bits when the budget rose \
                 from {lo} to {hi} avg bits ({layers:?})"
            );
        }
    }
}

/// The certified-matrix allocator obeys the same three properties even
/// on non-convex error profiles (convexified internally).
#[test]
fn matrix_allocator_shares_the_greedy_properties() {
    let mut rng = StdRng::seed_from_u64(0x5EB5);
    for _ in 0..TRIALS {
        let grid = vec![2u8, 4, 8];
        let n = rng.gen_range(1..=6usize);
        let layers: Vec<StaticSensitivity> = (0..n)
            .map(|i| {
                // Random positive profile, sorted non-increasing so it is
                // a plausible (but not necessarily convex) error curve.
                let mut err: Vec<f32> = (0..grid.len())
                    .map(|_| rng.gen_range(1e-6f32..=50.0))
                    .collect();
                err.sort_by(|a, b| b.partial_cmp(a).unwrap());
                StaticSensitivity {
                    name: format!("l{i}"),
                    numel: rng.gen_range(1..=3000usize),
                    max_abs: rng.gen_range(1e-3f32..=5.0),
                    grad_bound: if rng.gen_range(0.0f32..=1.0) < 0.5 {
                        f32::INFINITY
                    } else {
                        rng.gen_range(1e-4f32..=10.0)
                    },
                    err,
                    err_interval: vec![],
                }
            })
            .collect();
        let m = SensitivityMatrix { bits: grid, layers };
        let lo = rng.gen_range(2.0f32..=7.0);
        let hi = rng.gen_range(lo..=8.0);
        let a = m.allocate(lo, 2, 8).unwrap();
        let b = m.allocate(hi, 2, 8).unwrap();
        assert!(a.iter().all(|&x| (2..=8).contains(&x)));
        let total: usize = m.layers.iter().map(|l| l.numel).sum();
        let spent: usize = m
            .layers
            .iter()
            .zip(&a)
            .map(|(l, &x)| l.numel * usize::from(x))
            .sum();
        assert!(spent <= (lo * total as f32).floor() as usize);
        for (&ba, &bb) in a.iter().zip(&b) {
            assert!(bb >= ba, "matrix allocator not monotone: {a:?} -> {b:?}");
        }
    }
}

/// Zero curvature everywhere: any allocation minimizes impact; the
/// result must still be feasible and budget-maximal, not a crash.
#[test]
fn zero_curvature_degenerates_gracefully() {
    let layers: Vec<LayerSensitivity> = (0..4)
        .map(|i| LayerSensitivity {
            name: format!("flat{i}"),
            numel: 100,
            max_abs: 1.0,
            curvature: 0.0,
        })
        .collect();
    let bits = allocate_bits(&layers, 5.0, 2, 8).unwrap();
    assert!(bits.iter().all(|&b| (2..=8).contains(&b)));
    assert!(spent(&layers, &bits) <= 5 * 400);
}

/// A single layer gets the floor of the average (capped at max).
#[test]
fn single_layer_gets_the_whole_budget() {
    let layers = vec![LayerSensitivity {
        name: "only".into(),
        numel: 1000,
        max_abs: 1.0,
        curvature: 1.0,
    }];
    assert_eq!(allocate_bits(&layers, 5.9, 2, 8).unwrap(), vec![5]);
    assert_eq!(allocate_bits(&layers, 16.0, 2, 8).unwrap(), vec![8]);
}

/// `min_bits == max_bits` pins every layer regardless of sensitivity.
#[test]
fn pinned_bounds_pin_the_allocation() {
    let layers = vec![
        LayerSensitivity {
            name: "a".into(),
            numel: 10,
            max_abs: 1.0,
            curvature: 1e9,
        },
        LayerSensitivity {
            name: "b".into(),
            numel: 10,
            max_abs: 1.0,
            curvature: 1e-9,
        },
    ];
    assert_eq!(allocate_bits(&layers, 4.0, 4, 4).unwrap(), vec![4, 4]);
}

/// Zero-size edge: an empty layer list allocates nothing.
#[test]
fn empty_layer_list_allocates_nothing() {
    assert_eq!(allocate_bits(&[], 4.0, 2, 8).unwrap(), Vec::<u8>::new());
}

/// Bounds above [`QuantScheme::MAX_BITS`] are rejected up front.
#[test]
fn out_of_range_bounds_are_rejected() {
    let layers = vec![LayerSensitivity {
        name: "x".into(),
        numel: 10,
        max_abs: 1.0,
        curvature: 1.0,
    }];
    assert!(allocate_bits(&layers, 20.0, 2, QuantScheme::MAX_BITS + 1).is_err());
    assert!(allocate_bits(&layers, 4.0, 0, 8).is_err());
}
