//! The span tracer: RAII scope guards over thread-local span stacks with a
//! global self/total-time aggregation tree and an optional raw-event buffer
//! for the Chrome-trace exporter.
//!
//! Design constraints (see DESIGN.md §10):
//!
//! * **Disabled cost is a few atomic loads.** [`span`] checks one relaxed
//!   atomic and returns an inert guard when tracing is off; no clock read,
//!   no thread-local access, no allocation.
//! * **Enabled cost is thread-local.** Each guard pushes a frame onto this
//!   thread's stack and folds its elapsed time into a per-thread tree node
//!   on drop. The global mutex is taken only when a *root* span closes
//!   (once per training step), merging the thread's tree and draining its
//!   event buffer.
//! * **Unbalanced guards are safe.** Guards carry a monotonically
//!   increasing token; dropping a guard closes every deeper frame first
//!   (as if those spans ended now), and dropping a guard whose frame was
//!   already closed by an outer guard is a no-op.
//!
//! The `obs-off` feature replaces this entire module with inline no-op
//! stubs, collapsing every call site to nothing at compile time.

/// One completed span occurrence, as captured for the Chrome-trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (e.g. `"forward"`).
    pub name: &'static str,
    /// Small sequential id of the thread that ran the span.
    pub tid: u32,
    /// Start time in microseconds since the process trace clock started.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

#[cfg(not(feature = "obs-off"))]
mod imp {
    use super::SpanEvent;
    use crate::summary::SummaryRow;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static EVENTS_ON: AtomicBool = AtomicBool::new(false);
    static EVENT_CAP: AtomicUsize = AtomicUsize::new(200_000);
    static NEXT_TID: AtomicU32 = AtomicU32::new(0);

    /// The process-wide trace clock; all event timestamps are relative to
    /// the first call (made by [`enable`]).
    pub(crate) fn trace_clock() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    /// Microseconds since the trace clock started.
    pub fn now_us() -> u64 {
        trace_clock().elapsed().as_micros() as u64
    }

    /// Turns span aggregation and counters on.
    pub fn enable() {
        trace_clock();
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Turns tracing off (in-flight guards become inert on drop only if
    /// they were created disabled; already-open spans still close). Also
    /// stops raw-event capture.
    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
        EVENTS_ON.store(false, Ordering::SeqCst);
    }

    /// True when tracing is on. One relaxed atomic load — this is the
    /// entire disabled-path cost of every span and counter site.
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Additionally records raw span events (for the Chrome trace) up to
    /// `cap` occurrences; implies [`enable`].
    pub fn enable_events(cap: usize) {
        EVENT_CAP.store(cap, Ordering::SeqCst);
        EVENTS_ON.store(true, Ordering::SeqCst);
        enable();
    }

    /// One node of a span-aggregation tree; index 0 is a synthetic root.
    #[derive(Debug, Clone)]
    struct Node {
        name: &'static str,
        children: Vec<usize>,
        calls: u64,
        total_ns: u64,
        self_ns: u64,
    }

    impl Node {
        fn new(name: &'static str) -> Self {
            Node {
                name,
                children: Vec::new(),
                calls: 0,
                total_ns: 0,
                self_ns: 0,
            }
        }
    }

    #[derive(Debug)]
    struct Frame {
        node: usize,
        token: u64,
        start: Instant,
        start_us: u64,
        child_ns: u64,
    }

    #[derive(Debug)]
    struct Local {
        tid: u32,
        next_token: u64,
        stack: Vec<Frame>,
        nodes: Vec<Node>,
        events: Vec<SpanEvent>,
    }

    impl Local {
        fn new() -> Self {
            Local {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                next_token: 0,
                stack: Vec::new(),
                nodes: vec![Node::new("")],
                events: Vec::new(),
            }
        }

        /// Finds or creates the child of `parent` named `name`.
        fn child(&mut self, parent: usize, name: &'static str) -> usize {
            if let Some(&c) = self.nodes[parent]
                .children
                .iter()
                .find(|&&c| self.nodes[c].name == name)
            {
                return c;
            }
            let idx = self.nodes.len();
            self.nodes.push(Node::new(name));
            self.nodes[parent].children.push(idx);
            idx
        }
    }

    thread_local! {
        static LOCAL: RefCell<Local> = RefCell::new(Local::new());
    }

    /// Global aggregation tree, merged from per-thread trees whenever a
    /// thread's root span closes.
    #[derive(Debug, Default)]
    struct Global {
        /// Keyed by (parent index, name); index 0 is the synthetic root.
        nodes: Vec<Node>,
        index: HashMap<(usize, &'static str), usize>,
        events: Vec<SpanEvent>,
        events_dropped: u64,
    }

    fn with_global<R>(f: impl FnOnce(&mut Global) -> R) -> R {
        static GLOBAL: OnceLock<Mutex<Global>> = OnceLock::new();
        let m = GLOBAL.get_or_init(|| {
            Mutex::new(Global {
                nodes: vec![Node::new("")],
                ..Global::default()
            })
        });
        f(&mut m.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// An RAII guard for one span; closing it (or letting it drop) folds
    /// the elapsed time into the aggregation tree.
    #[derive(Debug)]
    #[must_use = "a span measures the scope that holds its guard"]
    pub struct SpanGuard {
        /// 0 = inert (tracing was disabled at creation).
        token: u64,
    }

    /// Opens a span named `name` on this thread.
    #[inline]
    pub fn span(name: &'static str) -> SpanGuard {
        if !is_enabled() {
            return SpanGuard { token: 0 };
        }
        let token = LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.next_token += 1;
            let token = l.next_token;
            let parent = l.stack.last().map_or(0, |f| f.node);
            let node = l.child(parent, name);
            let start = Instant::now();
            let start_us = start.duration_since(trace_clock()).as_micros() as u64;
            l.stack.push(Frame {
                node,
                token,
                start,
                start_us,
                child_ns: 0,
            });
            token
        });
        SpanGuard { token }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if self.token == 0 {
                return;
            }
            let token = self.token;
            LOCAL.with(|l| close_to_token(&mut l.borrow_mut(), token));
        }
    }

    /// Closes frames from the top of the stack down to (and including) the
    /// frame holding `token`. Deeper frames — guards that were leaked or
    /// dropped out of order — are closed at the same instant.
    fn close_to_token(l: &mut Local, token: u64) {
        if !l.stack.iter().any(|f| f.token == token) {
            return; // already closed by an outer guard
        }
        let now = Instant::now();
        let record_events = EVENTS_ON.load(Ordering::Relaxed);
        while let Some(frame) = l.stack.pop() {
            let elapsed = now.duration_since(frame.start).as_nanos() as u64;
            let name = {
                let node = &mut l.nodes[frame.node];
                node.calls += 1;
                node.total_ns += elapsed;
                node.self_ns += elapsed.saturating_sub(frame.child_ns);
                node.name
            };
            if record_events {
                let tid = l.tid;
                l.events.push(SpanEvent {
                    name,
                    tid,
                    start_us: frame.start_us,
                    dur_ns: elapsed,
                });
            }
            if let Some(parent) = l.stack.last_mut() {
                parent.child_ns += elapsed;
            }
            if frame.token == token {
                break;
            }
        }
        if l.stack.is_empty() {
            flush_local(l);
        }
    }

    /// Merges this thread's tree and events into the global aggregate and
    /// resets the local tree.
    fn flush_local(l: &mut Local) {
        let cap = EVENT_CAP.load(Ordering::Relaxed);
        with_global(|g| {
            merge(g, &l.nodes, 0, 0);
            let room = cap.saturating_sub(g.events.len());
            let take = l.events.len().min(room);
            g.events.extend(l.events.drain(..take));
            g.events_dropped += l.events.len() as u64;
        });
        l.events.clear();
        l.nodes.clear();
        l.nodes.push(Node::new(""));
    }

    fn merge(g: &mut Global, nodes: &[Node], local: usize, global: usize) {
        for &lc in &nodes[local].children {
            let child = &nodes[lc];
            let gc = match g.index.get(&(global, child.name)) {
                Some(&gc) => gc,
                None => {
                    let gc = g.nodes.len();
                    g.nodes.push(Node::new(child.name));
                    g.nodes[global].children.push(gc);
                    g.index.insert((global, child.name), gc);
                    gc
                }
            };
            g.nodes[gc].calls += child.calls;
            g.nodes[gc].total_ns += child.total_ns;
            g.nodes[gc].self_ns += child.self_ns;
            merge(g, nodes, lc, gc);
        }
    }

    /// Flushes any completed-but-unmerged spans on *this* thread (a safety
    /// valve for callers that want a summary while a root span is still
    /// open elsewhere; normally unnecessary).
    pub fn flush_thread() {
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            if l.stack.is_empty() {
                flush_local(&mut l);
            }
        });
    }

    /// Clears the global aggregation tree, event buffer and this thread's
    /// local state. Counters are not touched.
    pub fn reset() {
        with_global(|g| {
            g.nodes.clear();
            g.nodes.push(Node::new(""));
            g.index.clear();
            g.events.clear();
            g.events_dropped = 0;
        });
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.stack.clear();
            l.events.clear();
            l.nodes.clear();
            l.nodes.push(Node::new(""));
        });
    }

    /// Snapshot of the merged aggregation tree as depth-first summary rows.
    pub fn summary_rows() -> Vec<SummaryRow> {
        flush_thread();
        with_global(|g| {
            let mut rows = Vec::new();
            walk(g, 0, "", 0, 0, &mut rows);
            rows
        })
    }

    fn walk(
        g: &Global,
        node: usize,
        prefix: &str,
        depth: usize,
        parent_total_ns: u64,
        rows: &mut Vec<SummaryRow>,
    ) {
        for &c in &g.nodes[node].children {
            let n = &g.nodes[c];
            let path = if prefix.is_empty() {
                n.name.to_string()
            } else {
                format!("{prefix}/{}", n.name)
            };
            rows.push(SummaryRow {
                path: path.clone(),
                name: n.name.to_string(),
                depth,
                calls: n.calls,
                self_ns: n.self_ns,
                total_ns: n.total_ns,
                parent_total_ns,
            });
            walk(g, c, &path, depth + 1, n.total_ns, rows);
        }
    }

    /// Snapshot of the raw span events captured so far (Chrome-trace feed).
    pub fn events_snapshot() -> Vec<SpanEvent> {
        flush_thread();
        with_global(|g| g.events.clone())
    }

    /// Number of span events discarded after the event buffer filled.
    pub fn events_dropped() -> u64 {
        with_global(|g| g.events_dropped)
    }
}

#[cfg(feature = "obs-off")]
mod imp {
    //! No-op stand-ins: every function is inline and empty so the whole
    //! instrumentation layer vanishes from optimized builds.
    use super::SpanEvent;
    use crate::summary::SummaryRow;

    /// Inert guard — a zero-sized type with no `Drop` impl. Deliberately
    /// not `Copy`: callers close spans early with `drop(guard)`, which on
    /// a `Copy` type would trip the `dropping_copy_types` lint under the
    /// workspace's deny-warnings gate.
    #[derive(Debug)]
    #[must_use = "a span measures the scope that holds its guard"]
    pub struct SpanGuard;

    /// No-op (obs-off build).
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// No-op (obs-off build).
    #[inline(always)]
    pub fn enable() {}

    /// No-op (obs-off build).
    #[inline(always)]
    pub fn disable() {}

    /// Always false (obs-off build).
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    /// No-op (obs-off build).
    #[inline(always)]
    pub fn enable_events(_cap: usize) {}

    /// Always zero (obs-off build).
    #[inline(always)]
    pub fn now_us() -> u64 {
        0
    }

    /// No-op (obs-off build).
    #[inline(always)]
    pub fn flush_thread() {}

    /// No-op (obs-off build).
    #[inline(always)]
    pub fn reset() {}

    /// Always empty (obs-off build).
    #[inline(always)]
    pub fn summary_rows() -> Vec<SummaryRow> {
        Vec::new()
    }

    /// Always empty (obs-off build).
    #[inline(always)]
    pub fn events_snapshot() -> Vec<SpanEvent> {
        Vec::new()
    }

    /// Always zero (obs-off build).
    #[inline(always)]
    pub fn events_dropped() -> u64 {
        0
    }
}

pub use imp::{
    disable, enable, enable_events, events_dropped, events_snapshot, flush_thread, is_enabled,
    now_us, reset, span, summary_rows, SpanGuard,
};

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;
    use crate::testutil::locked;

    #[test]
    fn disabled_spans_are_inert() {
        let _l = locked();
        disable();
        reset();
        {
            let _a = span("a");
            let _b = span("b");
        }
        assert!(summary_rows().is_empty());
    }

    #[test]
    fn nested_spans_aggregate_self_and_total() {
        let _l = locked();
        enable();
        reset();
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        disable();
        let rows = summary_rows();
        let outer = rows.iter().find(|r| r.path == "outer").expect("outer row");
        let inner = rows
            .iter()
            .find(|r| r.path == "outer/inner")
            .expect("inner row");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.total_ns >= inner.total_ns + outer.self_ns);
        assert!(outer.self_ns < outer.total_ns);
        assert_eq!(inner.parent_total_ns, outer.total_ns);
    }

    #[test]
    fn repeated_spans_accumulate_calls() {
        let _l = locked();
        enable();
        reset();
        for _ in 0..5 {
            let _s = span("step");
        }
        disable();
        let rows = summary_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].calls, 5);
    }

    #[test]
    fn unbalanced_drop_order_is_safe() {
        let _l = locked();
        enable();
        reset();
        {
            let a = span("a");
            let b = span("b");
            // Drop the *outer* guard first: `b` must be closed implicitly,
            // and `b`'s own drop afterwards must be a no-op.
            drop(a);
            drop(b);
        }
        {
            // A leaked guard's frame is closed when its parent closes.
            let a = span("a");
            let b = span("b");
            std::mem::forget(b);
            drop(a);
        }
        disable();
        let rows = summary_rows();
        let a = rows.iter().find(|r| r.path == "a").expect("a row");
        let b = rows.iter().find(|r| r.path == "a/b").expect("b row");
        assert_eq!(a.calls, 2);
        assert_eq!(b.calls, 2);
    }

    #[test]
    fn events_respect_cap() {
        let _l = locked();
        enable_events(3);
        reset();
        for _ in 0..10 {
            let _s = span("e");
        }
        disable();
        let events = events_snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events_dropped(), 7);
        assert!(events.iter().all(|e| e.name == "e"));
    }

    #[test]
    fn cross_thread_spans_merge_into_one_tree() {
        let _l = locked();
        enable();
        reset();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..10 {
                        let _root = span("work");
                        let _leaf = span("leaf");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        disable();
        let rows = summary_rows();
        let work = rows.iter().find(|r| r.path == "work").expect("work row");
        let leaf = rows
            .iter()
            .find(|r| r.path == "work/leaf")
            .expect("leaf row");
        assert_eq!(work.calls, 40);
        assert_eq!(leaf.calls, 40);
    }
}
