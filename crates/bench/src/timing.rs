//! Minimal wall-clock benchmarking: warm-up, a time-budgeted measurement
//! loop, and JSON output.
//!
//! In-tree replacement for the Criterion dependency so the bench targets
//! build with no network access. Each measurement runs the closure until a
//! wall-clock budget is exhausted and reports the mean iteration time; the
//! per-run variance machinery of a full bench framework is intentionally
//! out of scope — the numbers feed coarse before/after comparisons
//! (`results/BENCH_step.json`), not statistical regression gates.
//!
//! Rows are serialized with the shared `hero_obs::json` writer — the same
//! one behind the trace stream and run-summary artifacts — so every JSON
//! file under `results/` speaks one dialect, and each measured row is also
//! emitted as a structured `bench_row` event (the console line is its
//! human rendering).

use hero_obs::json::JsonObj;
use hero_obs::Event;
use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// One measured operation: the schema of a `results/BENCH_*.json` row.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchRow {
    /// Identifier for the operation (stable across PRs so trajectories can
    /// be compared).
    pub name: String,
    /// Number of timed iterations.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Optional named extras (e.g. per-iteration counter readings such as
    /// `pool_hit_rate` or `gemm_flops`), serialized as additional fields.
    pub extras: Vec<(String, f64)>,
}

impl BenchRow {
    /// Attaches a named extra value to the row.
    #[must_use]
    pub fn with_extra(mut self, key: &str, value: f64) -> Self {
        self.extras.push((key.to_string(), value));
        self
    }

    /// Serializes the row as one JSON object via the shared writer.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("name", &self.name)
            .u64("iters", self.iters)
            .f64("ns_per_iter", self.ns_per_iter);
        for (k, v) in &self.extras {
            o.f64(k, *v);
        }
        o.finish()
    }

    /// Emits the row as a structured `bench_row` event whose human
    /// rendering is the usual console line.
    pub fn emit(&self) {
        let mut ev = Event::new("bench_row")
            .str("name", &self.name)
            .u64("iters", self.iters)
            .f64("ns_per_iter", self.ns_per_iter);
        for (k, v) in &self.extras {
            ev = ev.f64(k, *v);
        }
        ev.human(self.to_string()).emit();
    }
}

impl fmt::Display for BenchRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let per = self.ns_per_iter;
        let human = if per >= 1e9 {
            format!("{:.3} s", per / 1e9)
        } else if per >= 1e6 {
            format!("{:.3} ms", per / 1e6)
        } else if per >= 1e3 {
            format!("{:.3} µs", per / 1e3)
        } else {
            format!("{per:.1} ns")
        };
        write!(
            f,
            "{:<40} {:>12}/iter  ({} iters)",
            self.name, human, self.iters
        )
    }
}

/// True when the process was invoked with `--quick` (used by
/// `scripts/verify.sh` to keep bench smoke runs under a few minutes).
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The per-operation measurement budget: 2 s normally, 200 ms under
/// `--quick`.
pub fn default_budget() -> Duration {
    if quick_requested() {
        Duration::from_millis(200)
    } else {
        Duration::from_secs(2)
    }
}

/// Times `f` under `budget`: one untimed call plus ~10% of the budget as
/// warm-up, then repeated calls until the budget elapses.
///
/// The row is emitted as a `bench_row` event as a side effect (printing
/// to stdout, and into the trace stream when one is active) so every
/// bench shows progress as it runs.
pub fn time_op(name: &str, budget: Duration, mut f: impl FnMut()) -> BenchRow {
    f();
    let warm_end = Instant::now() + budget / 10;
    while Instant::now() < warm_end {
        f();
    }
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let row = BenchRow {
        name: name.to_string(),
        iters,
        ns_per_iter: start.elapsed().as_nanos() as f64 / iters as f64,
        extras: Vec::new(),
    };
    row.emit();
    row
}

/// Serializes rows as a JSON array of `{name, iters, ns_per_iter, ...}`
/// objects through the shared `hero_obs::json` writer.
pub fn to_json(rows: &[BenchRow]) -> String {
    hero_obs::json::array_lines(rows.iter().map(BenchRow::to_json))
}

/// Resolves the output path for a bench results file: `HERO_BENCH_OUT`
/// when set (so CI and the verify script can redirect runs without
/// touching the committed baselines), else `default`.
pub fn bench_out_path(default: &str) -> std::path::PathBuf {
    std::env::var("HERO_BENCH_OUT").map_or_else(|_| default.into(), Into::into)
}

/// Writes rows to `path` as JSON, creating parent directories as needed.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn write_json(path: impl AsRef<Path>, rows: &[BenchRow]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_json(rows).as_bytes())?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_obs::json::{parse, Value};

    #[test]
    fn time_op_counts_iterations() {
        let mut calls = 0u64;
        let row = time_op("noop", Duration::from_millis(5), || calls += 1);
        // warm-up calls + timed calls; the row only counts the timed ones.
        assert!(calls > row.iters);
        assert!(row.iters >= 1);
        assert!(row.ns_per_iter > 0.0);
    }

    #[test]
    fn json_is_well_formed() {
        let rows = vec![
            BenchRow {
                name: "a".into(),
                iters: 10,
                ns_per_iter: 123.4,
                extras: Vec::new(),
            },
            BenchRow {
                name: "b".into(),
                iters: 2,
                ns_per_iter: 5e6,
                extras: Vec::new(),
            },
        ];
        let json = to_json(&rows);
        let v = parse(&json).expect("parses");
        let arr = v.as_arr().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").and_then(Value::as_str), Some("a"));
        let ns = arr[1]
            .get("ns_per_iter")
            .and_then(Value::as_f64)
            .expect("ns");
        assert!((ns - 5e6).abs() < 1.0);
    }

    #[test]
    fn extras_round_trip_through_json() {
        let row = BenchRow {
            name: "step".into(),
            iters: 3,
            ns_per_iter: 10.0,
            extras: Vec::new(),
        }
        .with_extra("pool_hit_rate", 0.75)
        .with_extra("gemm_flops", 1024.0);
        let v = parse(&row.to_json()).expect("parses");
        assert_eq!(v.get("pool_hit_rate").and_then(Value::as_f64), Some(0.75));
        assert_eq!(v.get("gemm_flops").and_then(Value::as_f64), Some(1024.0));
    }

    #[test]
    fn display_scales_units() {
        let ns = BenchRow {
            name: "x".into(),
            iters: 1,
            ns_per_iter: 12.0,
            extras: Vec::new(),
        };
        let ms = BenchRow {
            name: "x".into(),
            iters: 1,
            ns_per_iter: 3.2e6,
            extras: Vec::new(),
        };
        assert!(format!("{ns}").contains("ns"));
        assert!(format!("{ms}").contains("ms"));
    }

    #[test]
    fn bench_out_path_honors_override() {
        // Serialized by the single-threaded nature of this assertion: the
        // variable is restored before returning.
        std::env::set_var("HERO_BENCH_OUT", "/tmp/override.json");
        let p = bench_out_path("default.json");
        std::env::remove_var("HERO_BENCH_OUT");
        assert_eq!(p, std::path::PathBuf::from("/tmp/override.json"));
        assert_eq!(
            bench_out_path("default.json"),
            std::path::PathBuf::from("default.json")
        );
    }
}
