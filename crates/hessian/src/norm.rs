//! The paper's curvature probe ‖Hz‖ (Fig. 2a) and the Hutchinson trace
//! estimator.

use crate::hvp::{fd_hvp, GradOracle};
use hero_tensor::rng::Rng;
use hero_tensor::{fill_standard_normal, global_dot, global_norm_l2, Result, Tensor};

/// Computes the paper's layer-scaled perturbation direction (Eq. 15):
/// `z_i = (W_i ⊙ W_i ⊙ g_i) / (‖W_i‖₂ · ‖g_i‖₂)` per parameter tensor,
/// with `W_i ⊙ W_i` the element-wise square.
///
/// The element-wise `W²` factor perturbs large-magnitude weights more
/// (adapting to each layer's weight distribution, §4.1) and is what makes
/// the paper's step sizes `h = 0.5 / 1.0` well-scaled: the resulting `z`
/// has norm well below ‖W‖.
///
/// Layers with a vanishing weight or gradient norm get a zero direction
/// (no perturbation) rather than a division by zero.
///
/// # Panics
///
/// Panics if the lists have different lengths (they always come from the
/// same canonical parameter order).
pub fn layer_scaled_direction(params: &[Tensor], grads: &[Tensor]) -> Vec<Tensor> {
    let mut out = Vec::with_capacity(params.len());
    layer_scaled_direction_into(params, grads, &mut out);
    out
}

/// In-place [`layer_scaled_direction`]: writes `z` into `out`, reusing its
/// buffers when the shapes already match so HERO's per-step direction
/// computation allocates nothing after warm-up.
///
/// # Panics
///
/// Panics if the lists have different lengths (they always come from the
/// same canonical parameter order).
pub fn layer_scaled_direction_into(params: &[Tensor], grads: &[Tensor], out: &mut Vec<Tensor>) {
    assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
    let reuse =
        out.len() == params.len() && out.iter().zip(params).all(|(o, p)| o.shape() == p.shape());
    if !reuse {
        out.clear();
        out.extend(params.iter().map(|p| Tensor::zeros(p.shape().clone())));
    }
    for ((w, g), z) in params.iter().zip(grads).zip(out.iter_mut()) {
        let gn = g.norm_l2();
        let wn = w.norm_l2();
        if gn <= f32::MIN_POSITIVE || wn <= f32::MIN_POSITIVE {
            z.data_mut().fill(0.0);
        } else {
            let inv = 1.0 / (wn * gn);
            for ((zd, &wd), &gd) in z.data_mut().iter_mut().zip(w.data()).zip(g.data()) {
                *zd = wd * wd * gd * inv;
            }
        }
    }
}

/// Evaluates the Hessian-norm probe ‖Hz‖₂ the paper plots in Fig. 2(a),
/// with `z` the layer-scaled gradient direction of Eq. 15.
///
/// Returns `(‖Hz‖₂, loss)` at `params`.
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn hessian_norm_probe(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    eps: f32,
) -> Result<(f32, f32)> {
    let _obs = hero_obs::span("probe");
    let (loss, grads) = oracle.grad(params)?;
    let z = layer_scaled_direction(params, &grads);
    let hz = fd_hvp(oracle, params, &grads, &z, eps)?;
    Ok((global_norm_l2(&hz), loss))
}

/// Hutchinson estimate of the Hessian trace: `E_z[zᵀHz]` with Rademacher
/// probes. Each probe costs one gradient evaluation.
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn hutchinson_trace(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    probes: usize,
    eps: f32,
    rng: &mut impl Rng,
) -> Result<f32> {
    let (_, grads) = oracle.grad(params)?;
    let mut acc = 0.0;
    for _ in 0..probes {
        let z: Vec<Tensor> = params
            .iter()
            .map(|p| {
                let mut t = Tensor::zeros(p.shape().clone());
                for v in t.data_mut() {
                    *v = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                }
                t
            })
            .collect();
        let hz = fd_hvp(oracle, params, &grads, &z, eps)?;
        acc += global_dot(&z, &hz);
    }
    Ok(acc / probes.max(1) as f32)
}

/// Monte-Carlo estimate of the regularizer `L_r = E_z‖Hz‖²` of Eq. 13 with
/// Gaussian probes (the quantity HERO minimizes, equal to Σλᵢ²).
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn eigen_sq_sum_estimate(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    probes: usize,
    eps: f32,
    rng: &mut impl Rng,
) -> Result<f32> {
    let (_, grads) = oracle.grad(params)?;
    let mut acc = 0.0;
    for _ in 0..probes {
        let z: Vec<Tensor> = params
            .iter()
            .map(|p| {
                let mut t = Tensor::zeros(p.shape().clone());
                fill_standard_normal(&mut t, rng);
                t
            })
            .collect();
        let hz = fd_hvp(oracle, params, &grads, &z, eps)?;
        acc += global_norm_l2(&hz).powi(2);
    }
    Ok(acc / probes.max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::Quadratic;
    use hero_tensor::rng::StdRng;

    #[test]
    fn layer_scaled_direction_matches_eq15() {
        let w = vec![Tensor::from_vec(vec![3.0, 4.0], [2]).unwrap()]; // ||w|| = 5
        let g = vec![Tensor::from_vec(vec![0.0, 2.0], [2]).unwrap()]; // ||g|| = 2
        let z = layer_scaled_direction(&w, &g);
        // z = (w^2 ⊙ g) / (||w|| ||g||) = [9*0, 16*2] / 10 = [0, 3.2]
        assert_eq!(z[0].data(), &[0.0, 3.2]);
    }

    #[test]
    fn direction_scales_quadratically_with_weight_magnitude() {
        // Doubling W quadruples W² but only doubles ||W||: z doubles.
        let w1 = vec![Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap()];
        let w2 = vec![w1[0].scale(2.0)];
        let g = vec![Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap()];
        let z1 = layer_scaled_direction(&w1, &g);
        let z2 = layer_scaled_direction(&w2, &g);
        for (a, b) in z2[0].data().iter().zip(z1[0].data()) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_gradient_layer_gets_zero_direction() {
        let w = vec![Tensor::ones([2]), Tensor::ones([2])];
        let g = vec![Tensor::zeros([2]), Tensor::ones([2])];
        let z = layer_scaled_direction(&w, &g);
        assert_eq!(z[0].data(), &[0.0, 0.0]);
        assert!(z[1].norm_l2() > 0.0);
    }

    #[test]
    fn hessian_norm_probe_on_quadratic() {
        // H = diag(2, 2), x0 = (3,4): g = (6,8), ||w||·||g|| = 50,
        // z = (9·6, 16·8)/50 = (1.08, 2.56), Hz = (2.16, 5.12), ||Hz|| ≈ 5.557.
        let q = Quadratic::diag(&[2.0, 2.0]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::from_vec(vec![3.0, 4.0], [2]).unwrap()];
        let (hn, loss) = hessian_norm_probe(&mut oracle, &params, 1e-3).unwrap();
        let expected = (2.16f32 * 2.16 + 5.12 * 5.12).sqrt();
        assert!(
            (hn - expected).abs() < 0.05,
            "‖Hz‖={hn}, expected {expected}"
        );
        assert!((loss - 25.0).abs() < 1e-4);
    }

    #[test]
    fn hutchinson_trace_of_diagonal() {
        let q = Quadratic::diag(&[1.0, 2.0, 3.0]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([3])];
        let tr = hutchinson_trace(
            &mut oracle,
            &params,
            64,
            1e-3,
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
        assert!((tr - 6.0).abs() < 0.5, "trace={tr}");
    }

    #[test]
    fn eigen_sq_sum_of_diagonal() {
        // sum λ² = 1 + 4 + 9 = 14.
        let q = Quadratic::diag(&[1.0, 2.0, 3.0]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([3])];
        let est = eigen_sq_sum_estimate(
            &mut oracle,
            &params,
            256,
            1e-3,
            &mut StdRng::seed_from_u64(6),
        )
        .unwrap();
        assert!((est - 14.0).abs() < 3.0, "estimate={est}");
    }

    #[test]
    fn flatter_quadratic_has_smaller_probe() {
        // The probe must rank curvature correctly — this ordering is what
        // Fig. 2(a) relies on.
        let sharp = Quadratic::diag(&[10.0, 10.0]);
        let flat = Quadratic::diag(&[0.5, 0.5]);
        let params = vec![Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap()];
        let (hn_sharp, _) = hessian_norm_probe(&mut sharp.oracle(), &params, 1e-3).unwrap();
        let (hn_flat, _) = hessian_norm_probe(&mut flat.oracle(), &params, 1e-3).unwrap();
        assert!(hn_sharp > hn_flat * 10.0);
    }
}
