//! Composite blocks: ResNet basic blocks and MobileNetV2 inverted
//! residuals.

use crate::act::Activation;
use crate::conv::{Conv2d, DepthwiseConv2d};
use crate::module::{Layer, ParamInfo, ParamSource, StateSource};
use crate::norm::BatchNorm2d;
use hero_autodiff::{Graph, Var};
use hero_tensor::rng::Rng;
use hero_tensor::{Result, Tensor};

/// ResNet "basic block": two 3×3 conv-BN pairs with an identity (or 1×1
/// projection) shortcut, post-activation ReLU.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    /// 1×1 strided projection when the shape changes, otherwise identity.
    downsample: Option<(Conv2d, BatchNorm2d)>,
}

impl BasicBlock {
    /// Creates a block mapping `in_c` channels to `out_c` with the given
    /// stride on the first convolution.
    pub fn new(in_c: usize, out_c: usize, stride: usize, rng: &mut impl Rng) -> Self {
        let downsample = if stride != 1 || in_c != out_c {
            Some((
                Conv2d::new(in_c, out_c, 1, stride, 0, rng),
                BatchNorm2d::new(out_c),
            ))
        } else {
            None
        };
        BasicBlock {
            conv1: Conv2d::new(in_c, out_c, 3, stride, 1, rng),
            bn1: BatchNorm2d::new(out_c),
            conv2: Conv2d::new(out_c, out_c, 3, 1, 1, rng),
            bn2: BatchNorm2d::new(out_c),
            downsample,
        }
    }

    /// Whether the block carries a projection shortcut.
    pub fn has_projection(&self) -> bool {
        self.downsample.is_some()
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool, vars: &mut Vec<Var>) -> Result<Var> {
        let mut h = self.conv1.forward(g, x, train, vars)?;
        h = self.bn1.forward(g, h, train, vars)?;
        h = Activation::Relu.forward(g, h, train, vars)?;
        h = self.conv2.forward(g, h, train, vars)?;
        h = self.bn2.forward(g, h, train, vars)?;
        let shortcut = match &mut self.downsample {
            Some((conv, bn)) => {
                let s = conv.forward(g, x, train, vars)?;
                bn.forward(g, s, train, vars)?
            }
            None => x,
        };
        let sum = g.add(h, shortcut)?;
        Ok(g.relu(sum))
    }

    fn collect_params(&self, out: &mut Vec<Tensor>) {
        self.conv1.collect_params(out);
        self.bn1.collect_params(out);
        self.conv2.collect_params(out);
        self.bn2.collect_params(out);
        if let Some((conv, bn)) = &self.downsample {
            conv.collect_params(out);
            bn.collect_params(out);
        }
    }

    fn assign_params(&mut self, src: &mut ParamSource<'_>) -> Result<()> {
        self.conv1.assign_params(src)?;
        self.bn1.assign_params(src)?;
        self.conv2.assign_params(src)?;
        self.bn2.assign_params(src)?;
        if let Some((conv, bn)) = &mut self.downsample {
            conv.assign_params(src)?;
            bn.assign_params(src)?;
        }
        Ok(())
    }

    fn param_infos(&self, prefix: &str, out: &mut Vec<ParamInfo>) {
        self.conv1.param_infos(&format!("{prefix}.conv1"), out);
        self.bn1.param_infos(&format!("{prefix}.bn1"), out);
        self.conv2.param_infos(&format!("{prefix}.conv2"), out);
        self.bn2.param_infos(&format!("{prefix}.bn2"), out);
        if let Some((conv, bn)) = &self.downsample {
            conv.param_infos(&format!("{prefix}.down.conv"), out);
            bn.param_infos(&format!("{prefix}.down.bn"), out);
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn collect_state(&self, prefix: &str, out: &mut Vec<(String, Vec<f32>)>) {
        self.bn1.collect_state(&format!("{prefix}.bn1"), out);
        self.bn2.collect_state(&format!("{prefix}.bn2"), out);
        if let Some((_, bn)) = &self.downsample {
            bn.collect_state(&format!("{prefix}.down.bn"), out);
        }
    }

    fn assign_state(&mut self, src: &mut StateSource<'_>) -> Result<()> {
        self.bn1.assign_state(src)?;
        self.bn2.assign_state(src)?;
        if let Some((_, bn)) = &mut self.downsample {
            bn.assign_state(src)?;
        }
        Ok(())
    }
}

/// MobileNetV2 inverted residual: 1×1 expansion (ReLU6) → 3×3 depthwise
/// (ReLU6) → 1×1 linear projection, with an identity skip when the stride
/// is 1 and channel counts match.
#[derive(Debug, Clone)]
pub struct InvertedResidual {
    expand: Option<(Conv2d, BatchNorm2d)>,
    depthwise: DepthwiseConv2d,
    bn_dw: BatchNorm2d,
    project: Conv2d,
    bn_proj: BatchNorm2d,
    use_skip: bool,
}

impl InvertedResidual {
    /// Creates a block with the given expansion factor (`expansion == 1`
    /// skips the expansion convolution, as in MobileNetV2's first block).
    pub fn new(
        in_c: usize,
        out_c: usize,
        stride: usize,
        expansion: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let hidden = in_c * expansion;
        let expand = if expansion != 1 {
            Some((
                Conv2d::new(in_c, hidden, 1, 1, 0, rng),
                BatchNorm2d::new(hidden),
            ))
        } else {
            None
        };
        InvertedResidual {
            expand,
            depthwise: DepthwiseConv2d::new(hidden, 3, stride, 1, rng),
            bn_dw: BatchNorm2d::new(hidden),
            project: Conv2d::new(hidden, out_c, 1, 1, 0, rng),
            bn_proj: BatchNorm2d::new(out_c),
            use_skip: stride == 1 && in_c == out_c,
        }
    }

    /// Whether the block adds an identity skip connection.
    pub fn has_skip(&self) -> bool {
        self.use_skip
    }
}

impl Layer for InvertedResidual {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool, vars: &mut Vec<Var>) -> Result<Var> {
        let mut h = x;
        if let Some((conv, bn)) = &mut self.expand {
            h = conv.forward(g, h, train, vars)?;
            h = bn.forward(g, h, train, vars)?;
            h = Activation::Relu6.forward(g, h, train, vars)?;
        }
        h = self.depthwise.forward(g, h, train, vars)?;
        h = self.bn_dw.forward(g, h, train, vars)?;
        h = Activation::Relu6.forward(g, h, train, vars)?;
        h = self.project.forward(g, h, train, vars)?;
        h = self.bn_proj.forward(g, h, train, vars)?;
        if self.use_skip {
            h = g.add(h, x)?;
        }
        Ok(h)
    }

    fn collect_params(&self, out: &mut Vec<Tensor>) {
        if let Some((conv, bn)) = &self.expand {
            conv.collect_params(out);
            bn.collect_params(out);
        }
        self.depthwise.collect_params(out);
        self.bn_dw.collect_params(out);
        self.project.collect_params(out);
        self.bn_proj.collect_params(out);
    }

    fn assign_params(&mut self, src: &mut ParamSource<'_>) -> Result<()> {
        if let Some((conv, bn)) = &mut self.expand {
            conv.assign_params(src)?;
            bn.assign_params(src)?;
        }
        self.depthwise.assign_params(src)?;
        self.bn_dw.assign_params(src)?;
        self.project.assign_params(src)?;
        self.bn_proj.assign_params(src)?;
        Ok(())
    }

    fn param_infos(&self, prefix: &str, out: &mut Vec<ParamInfo>) {
        if let Some((conv, bn)) = &self.expand {
            conv.param_infos(&format!("{prefix}.expand.conv"), out);
            bn.param_infos(&format!("{prefix}.expand.bn"), out);
        }
        self.depthwise.param_infos(&format!("{prefix}.dw"), out);
        self.bn_dw.param_infos(&format!("{prefix}.dw.bn"), out);
        self.project.param_infos(&format!("{prefix}.proj"), out);
        self.bn_proj.param_infos(&format!("{prefix}.proj.bn"), out);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn collect_state(&self, prefix: &str, out: &mut Vec<(String, Vec<f32>)>) {
        if let Some((_, bn)) = &self.expand {
            bn.collect_state(&format!("{prefix}.expand.bn"), out);
        }
        self.bn_dw.collect_state(&format!("{prefix}.dw.bn"), out);
        self.bn_proj
            .collect_state(&format!("{prefix}.proj.bn"), out);
    }

    fn assign_state(&mut self, src: &mut StateSource<'_>) -> Result<()> {
        if let Some((_, bn)) = &mut self.expand {
            bn.assign_state(src)?;
        }
        self.bn_dw.assign_state(src)?;
        self.bn_proj.assign_state(src)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_tensor::rng::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn identity_block_preserves_shape() {
        let mut b = BasicBlock::new(8, 8, 1, &mut rng());
        assert!(!b.has_projection());
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([2, 8, 4, 4]));
        let mut vars = Vec::new();
        let y = b.forward(&mut g, x, true, &mut vars).unwrap();
        assert_eq!(g.value(y).dims(), &[2, 8, 4, 4]);
        // conv1(w) + bn1(2) + conv2(w) + bn2(2) = 6 parameter vars.
        assert_eq!(vars.len(), 6);
    }

    #[test]
    fn strided_block_downsamples_with_projection() {
        let mut b = BasicBlock::new(8, 16, 2, &mut rng());
        assert!(b.has_projection());
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([1, 8, 8, 8]));
        let mut vars = Vec::new();
        let y = b.forward(&mut g, x, true, &mut vars).unwrap();
        assert_eq!(g.value(y).dims(), &[1, 16, 4, 4]);
        assert_eq!(vars.len(), 9); // + projection conv + its bn(2)
    }

    #[test]
    fn basic_block_params_round_trip() {
        let mut b = BasicBlock::new(4, 8, 2, &mut rng());
        let mut ps = Vec::new();
        b.collect_params(&mut ps);
        let n = ps.len();
        assert_eq!(n, 9);
        b.assign_params(&mut ParamSource::new(&ps)).unwrap();
        let mut infos = Vec::new();
        b.param_infos("block", &mut infos);
        assert_eq!(infos.len(), n);
        assert!(infos.iter().any(|i| i.name.contains("down.conv")));
    }

    #[test]
    fn inverted_residual_with_skip() {
        let mut b = InvertedResidual::new(8, 8, 1, 4, &mut rng());
        assert!(b.has_skip());
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([2, 8, 4, 4]));
        let mut vars = Vec::new();
        let y = b.forward(&mut g, x, true, &mut vars).unwrap();
        assert_eq!(g.value(y).dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn inverted_residual_stride_two_no_skip() {
        let mut b = InvertedResidual::new(8, 16, 2, 4, &mut rng());
        assert!(!b.has_skip());
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([1, 8, 8, 8]));
        let mut vars = Vec::new();
        let y = b.forward(&mut g, x, true, &mut vars).unwrap();
        assert_eq!(g.value(y).dims(), &[1, 16, 4, 4]);
    }

    #[test]
    fn expansion_one_skips_expand_conv() {
        let b1 = InvertedResidual::new(8, 8, 1, 1, &mut rng());
        let b4 = InvertedResidual::new(8, 8, 1, 4, &mut rng());
        let mut p1 = Vec::new();
        b1.collect_params(&mut p1);
        let mut p4 = Vec::new();
        b4.collect_params(&mut p4);
        assert!(p1.len() < p4.len());
    }

    #[test]
    fn block_gradients_reach_all_params() {
        let mut b = BasicBlock::new(4, 4, 1, &mut rng());
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([2, 4, 4, 4], |i| {
            (i.iter().sum::<usize>() % 5) as f32 * 0.3 - 0.5
        }));
        let mut vars = Vec::new();
        let y = b.forward(&mut g, x, true, &mut vars).unwrap();
        let sq = g.square(y);
        let loss = g.sum(sq);
        let grads = g.backward(loss).unwrap();
        for (i, v) in vars.iter().enumerate() {
            assert!(grads.get(*v).is_some(), "param {i} received no gradient");
        }
    }
}
