//! Loss-landscape inspection (the paper's Fig. 3 and Theorem 3): scan the
//! 2-D loss surface around converged weights, probe random ℓ2/ℓ∞
//! perturbation robustness, and evaluate the computable Theorem 3 bounds.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p hero-core --example loss_landscape
//! ```

use hero_core::experiment::{landscape_scan, model_config, MethodKind, Scale, TrainedModel};
use hero_core::{train, TrainConfig};
use hero_data::Preset;
use hero_hessian::{power_iteration, BoundInputs, PowerIterConfig};
use hero_landscape::{probe_robustness, PerturbNorm};
use hero_nn::models::ModelKind;
use hero_optim::BatchOracle;
use hero_tensor::rng::StdRng;
use hero_tensor::{global_norm_l1, global_norm_l2, TensorError};

fn main() -> Result<(), TensorError> {
    let preset = Preset::C10;
    let (train_set, test_set) = preset.load(0.5);
    let epochs = 25;
    let scale = Scale {
        data: 0.5,
        epochs_small: epochs,
        epochs_large: epochs,
    };
    let _ = scale;

    for method in [MethodKind::Hero, MethodKind::Sgd] {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = ModelKind::Resnet.build(model_config(preset), &mut rng);
        let record = train(
            &mut net,
            &train_set,
            &test_set,
            &TrainConfig::new(method.tuned(), epochs),
        )?;
        println!(
            "== {} (test acc {:.1}%) ==",
            method.paper_name(),
            100.0 * record.final_test_acc
        );
        let mut trained = TrainedModel {
            net,
            record,
            method,
        };

        // (1) Fig. 3-style contour along shared filter-normalized directions.
        let scan = landscape_scan(&mut trained, &train_set, 1.0, 13, 99)?;
        println!(
            "contour: low-loss fraction {:.3}, flat radius {:.3}",
            scan.low_loss_fraction(0.1),
            scan.flat_radius(0.1)
        );
        println!("{}", scan.ascii_contour(0.1));

        // (2) Direct random-perturbation robustness (Theorems 1 and 2).
        let params = trained.net.params();
        let n = train_set.len().min(128);
        let images = train_set.images.narrow(0, n)?;
        let labels = train_set.labels[..n].to_vec();
        let net = &mut trained.net;
        let mut loss_oracle = |ps: &[hero_tensor::Tensor]| -> hero_tensor::Result<f32> {
            net.set_params(ps)?;
            hero_nn::eval_loss(net, &images, &labels)
        };
        let mut probe_rng = StdRng::seed_from_u64(5);
        for (norm, radius) in [(PerturbNorm::L2, 0.5), (PerturbNorm::Linf, 0.02)] {
            let probe =
                probe_robustness(&mut loss_oracle, &params, norm, radius, 8, &mut probe_rng)?;
            println!(
                "random {norm:?} perturbation r={radius}: mean loss increase {:+.4}",
                probe.mean_increase()
            );
        }
        trained.net.set_params(&params)?;

        // (3) Theorem 3 bounds from measured gradient/curvature.
        let mut grad_oracle = BatchOracle::new(&mut trained.net, &images, &labels);
        let (_, grads) = hero_hessian::GradOracle::grad(&mut grad_oracle, &params)?;
        let eig = power_iteration(
            &mut grad_oracle,
            &params,
            PowerIterConfig {
                max_iters: 10,
                tol: 1e-2,
                eps: 1e-3,
                restarts: 1,
                seed: 17,
            },
        )?;
        let nonzeros: usize = params.iter().map(|p| p.norm_l0()).sum();
        let bounds = BoundInputs {
            grad_l2: global_norm_l2(&grads),
            grad_l1: global_norm_l1(&grads),
            eigenvalue: eig.lambda(),
            nonzeros,
            tolerance: 0.1,
        };
        println!(
            "theorem 3: λ_max≈{:.2}; ‖δ*‖₂ ≥ {:.4}; ‖δ*‖∞ ≥ {:.6} (safe Δ ≤ {:.6})\n",
            eig.lambda(),
            bounds.l2_bound(),
            bounds.linf_bound(),
            bounds.max_safe_bin_width()
        );
    }
    println!("expect: HERO shows a wider low-loss region, smaller loss increases under");
    println!("random perturbation, a smaller λ_max and therefore larger Theorem 3 bounds.");
    Ok(())
}
