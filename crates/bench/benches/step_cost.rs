//! Per-step cost of each training method (the paper's implicit §5.1 cost
//! claim: SAM-style methods cost one extra backprop, HERO two) plus the
//! raw GEMM that dominates it. Writes `results/BENCH_step.json`.

use hero_bench::timing::{default_budget, time_op, write_json};
use hero_core::experiment::{model_config, MethodKind};
use hero_data::Preset;
use hero_nn::models::ModelKind;
use hero_optim::{train_step, Optimizer};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::Tensor;

fn main() {
    let budget = default_budget();
    let mut rows = Vec::new();

    // Raw kernel: the 256x256x256 product named in the bench methodology
    // (DESIGN.md). `matmul` is the packed micro-kernel path; the
    // `_reference` row is the pre-packing blocked kernel kept as oracle.
    let mut rng = StdRng::seed_from_u64(7);
    let a = Tensor::from_fn([256, 256], |_| rng.gen::<f32>() - 0.5);
    let b = Tensor::from_fn([256, 256], |_| rng.gen::<f32>() - 0.5);
    rows.push(time_op("matmul_256x256x256", budget, || {
        std::hint::black_box(a.matmul(&b).unwrap());
    }));
    rows.push(time_op("matmul_256x256x256_reference", budget, || {
        std::hint::black_box(hero_tensor::matmul_reference(&a, &b).unwrap());
    }));

    // Full training steps on the ResNet stand-in, batch 16 (matches the
    // EXPERIMENTS.md training configuration).
    let preset = Preset::C10;
    let (train_set, _) = preset.load(0.2);
    let images = train_set.images.narrow(0, 16).unwrap();
    let labels = train_set.labels[..16].to_vec();
    for method in [
        MethodKind::Sgd,
        MethodKind::GradL1,
        MethodKind::FirstOrder,
        MethodKind::Hero,
    ] {
        let mut net = ModelKind::Resnet.build(model_config(preset), &mut StdRng::seed_from_u64(0));
        let mut opt = Optimizer::new(method.tuned());
        let name = format!("step_{}", method.paper_name());
        rows.push(time_op(&name, budget, || {
            train_step(&mut net, &mut opt, &images, &labels, 0.01).unwrap();
        }));
    }

    // Anchor at the workspace root so `cargo bench` (which runs with the
    // package dir as CWD) writes next to the repro_* outputs.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_step.json");
    write_json(out, &rows).expect("write results");
}
