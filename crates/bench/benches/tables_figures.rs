//! One bench per paper table/figure, each timing a scaled-down cell of the
//! corresponding experiment (the full-scale reproductions are the `repro_*`
//! binaries; these benches keep the per-experiment machinery measured and
//! exercised under `cargo bench`).

use hero_bench::timing::{default_budget, time_op};
use hero_core::experiment::{landscape_scan, quant_sweep, train_cell, train_on, MethodKind, Scale};
use hero_data::{inject_symmetric_noise, Preset};
use hero_nn::models::ModelKind;

/// The miniature scale used by the per-table benches.
fn bench_scale() -> Scale {
    Scale {
        data: 0.12,
        epochs_small: 2,
        epochs_large: 1,
    }
}

fn main() {
    let budget = default_budget();

    time_op("table1/train_cell_resnet_c10_hero", budget, || {
        std::hint::black_box(
            train_cell(
                Preset::C10,
                ModelKind::Resnet,
                MethodKind::Hero,
                bench_scale(),
                0,
            )
            .unwrap(),
        );
    });

    let scale = bench_scale();
    let (clean, test) = Preset::C10.load(scale.data);
    let mut noisy = clean.clone();
    inject_symmetric_noise(&mut noisy, 0.4, 7);
    time_op("table2/noisy_label_cell_resnet_40pct", budget, || {
        std::hint::black_box(
            train_on(
                &noisy,
                &test,
                Preset::C10,
                ModelKind::Resnet,
                MethodKind::Hero,
                scale,
                0,
            )
            .unwrap(),
        );
    });

    let mut trained =
        train_cell(Preset::C10, ModelKind::Mobilenet, MethodKind::Sgd, scale, 0).unwrap();
    time_op("fig1_table3/quant_sweep_mobilenet_5bits", budget, || {
        std::hint::black_box(quant_sweep(&mut trained, &test, &[3, 4, 5, 6, 8]).unwrap());
    });

    let mut trained =
        train_cell(Preset::C10, ModelKind::Resnet, MethodKind::Sgd, scale, 0).unwrap();
    let (train_set, _) = Preset::C10.load(scale.data);
    let config = hero_core::TrainConfig::new(MethodKind::Sgd.tuned(), 1);
    time_op("fig2/hessian_norm_probe", budget, || {
        std::hint::black_box(
            hero_core::probe_hessian_norm(&mut trained.net, &train_set, &config).unwrap(),
        );
    });
    time_op("fig3/landscape_scan_7x7", budget, || {
        std::hint::black_box(landscape_scan(&mut trained, &train_set, 1.0, 7, 3).unwrap());
    });
}
