//! `hero-obs` — zero-dependency observability for the HERO workspace:
//! span tracing, hot-path counters and structured run telemetry.
//!
//! Four layers, all hand-rolled on `std` (the workspace builds offline):
//!
//! 1. **Span tracer** ([`span`], [`obs_span!`]): RAII scope guards over
//!    thread-local span stacks with a global self/total-time aggregation
//!    tree and an optional bounded raw-event buffer.
//! 2. **Counters** ([`counters`]): named relaxed `AtomicU64`s in a global
//!    registry — gradient evaluations, scratch-pool hit/miss, packed-GEMM
//!    flops, NaN-taint trips.
//! 3. **Series** ([`series`]): named `(step, value)` time-series samples
//!    and fixed-bin [`Histogram`]s — the spectrum observatory's training
//!    telemetry, rolled into the run summary.
//! 4. **Sinks** ([`sink`]): a per-run JSONL event stream
//!    (`results/TRACE_<run>.jsonl`), a run-summary table and a
//!    Chrome-trace export, all sharing the one JSON writer in [`json`].
//!
//! Tracing is **off by default**: every span site costs one relaxed
//! atomic load until [`enable`] (or `HERO_TRACE=1` via [`init_from_env`])
//! flips it on. Building with the `obs-off` cargo feature replaces the
//! tracer and counters with inline no-ops so instrumentation compiles
//! away entirely — the bench suite's `overhead` rows verify both claims.
//!
//! ```no_run
//! hero_obs::init_from_env("myrun"); // activates when HERO_TRACE=1
//! {
//!     let _step = hero_obs::span("train_step");
//!     hero_obs::obs_span!("forward");
//!     // ... work ...
//! }
//! hero_obs::Event::new("epoch").u64("epoch", 1).f64("loss", 0.3).emit();
//! hero_obs::finish(); // summary table + TRACE/SUMMARY/chrome artifacts
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod counters;
pub mod json;
pub mod series;
pub mod sink;
pub mod span;
pub mod summary;

pub use series::{ascii_bars, record, series_snapshot, take_series, Histogram, SeriesSnapshot};
pub use sink::{finish, init_from_env, init_run, run_active, Event, RunArtifacts};
pub use span::{
    disable, enable, enable_events, is_enabled, span, summary_rows, SpanEvent, SpanGuard,
};
pub use summary::{child_coverage, SummaryRow};

/// Opens a span scoped to the enclosing block: expands to a `let` binding
/// of a [`SpanGuard`] that closes when the block ends. Use the function
/// form [`span`] when the guard needs explicit scoping or early drops.
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {
        let _obs_span = $crate::span($name);
    };
}

#[cfg(test)]
#[allow(dead_code)] // unused in `obs-off` test builds, where the serialized tests vanish
pub(crate) mod testutil {
    //! Shared serialization lock: tests that toggle the global enable flag
    //! or the active run must not interleave.
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub fn locked() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
