//! Stochastic Lanczos quadrature: Gaussian-broadened estimates of the
//! Hessian eigenvalue *density*, averaged over seeded probe vectors.
//!
//! Each probe runs a fully reorthogonalized Lanczos iteration
//! ([`crate::lanczos_spectrum_from`]) from an independent seeded random
//! start, yielding Ritz values θᵢ with quadrature weights wᵢ (Σwᵢ = 1).
//! Averaging the discrete measures over `k` probes and convolving with a
//! Gaussian of width σ gives the density estimate
//!
//! ```text
//! ρ(λ) ≈ (1/k) Σ_probes Σ_i wᵢ · N(λ; θᵢ, σ²)
//! ```
//!
//! Every scalar summary (λ_max, λ_min, spectral mean, second moment) is
//! reported as an [`Estimate`] with its across-probe standard error.

use crate::hvp::GradOracle;
use crate::lanczos::{lanczos_spectrum_from, LanczosResult};
use crate::stats::{probe_seed, Estimate};
use hero_tensor::rng::StdRng;
use hero_tensor::{fill_standard_normal, Result, Tensor, TensorError};

/// Configuration for [`slq_density`].
#[derive(Debug, Clone, Copy)]
pub struct SlqConfig {
    /// Lanczos steps per probe (each step costs one gradient evaluation).
    pub steps: usize,
    /// Independent seeded probe vectors averaged into the density.
    pub probes: usize,
    /// Finite-difference step for the inner HVPs.
    pub eps: f32,
    /// Base seed; probe `i` draws its start vector from
    /// [`probe_seed`]`(seed, i)`.
    pub seed: u64,
    /// Number of evaluation points in the density grid.
    pub grid_points: usize,
    /// Gaussian broadening width as a fraction of the observed spectral
    /// width (`σ = sigma_rel · (λ_max − λ_min)`).
    pub sigma_rel: f32,
}

impl Default for SlqConfig {
    fn default() -> Self {
        SlqConfig {
            steps: 10,
            probes: 4,
            eps: 1e-3,
            seed: 0,
            grid_points: 64,
            sigma_rel: 0.05,
        }
    }
}

impl SlqConfig {
    /// Builder: sets the base probe seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the Lanczos step count per probe.
    #[must_use]
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Builder: sets the number of probe vectors.
    #[must_use]
    pub fn with_probes(mut self, probes: usize) -> Self {
        self.probes = probes;
        self
    }
}

/// Spectral density estimate from stochastic Lanczos quadrature.
#[derive(Debug, Clone)]
pub struct SlqDensity {
    /// Evaluation points λ, ascending, spanning the observed Ritz range
    /// padded by 3σ on each side.
    pub grid: Vec<f32>,
    /// Density ρ(λ) at each grid point (Gaussian-broadened quadrature
    /// measure; integrates to ≈1 over the grid).
    pub density: Vec<f32>,
    /// Gaussian broadening width actually used.
    pub sigma: f32,
    /// λ_max across probes (mean of per-probe largest Ritz values).
    pub lambda_max: Estimate,
    /// λ_min across probes.
    pub lambda_min: Estimate,
    /// Spectral mean `tr(H)/n = Σ wᵢθᵢ` across probes.
    pub mean_eigenvalue: Estimate,
    /// Second spectral moment `Σλᵢ²/n = Σ wᵢθᵢ²` across probes — the
    /// per-dimension analogue of HERO's Σλ² regularizer (Eq. 13).
    pub second_moment: Estimate,
    /// The per-probe Lanczos results the density was built from.
    pub probes: Vec<LanczosResult>,
}

impl SlqDensity {
    /// Numerically integrates `λᵖ · ρ(λ)` over the grid (trapezoid rule).
    /// `grid_moment(0)` ≈ 1 checks normalization; `grid_moment(1)` and
    /// `grid_moment(2)` should track [`Self::mean_eigenvalue`] and
    /// [`Self::second_moment`] up to broadening (which inflates the second
    /// moment by exactly σ²).
    pub fn grid_moment(&self, p: u32) -> f32 {
        let n = self.grid.len();
        if n < 2 {
            return f32::NAN;
        }
        let mut acc = 0.0f64;
        for i in 0..n - 1 {
            let dl = (self.grid[i + 1] - self.grid[i]) as f64;
            let fa = (self.grid[i].powi(p as i32) * self.density[i]) as f64;
            let fb = (self.grid[i + 1].powi(p as i32) * self.density[i + 1]) as f64;
            acc += 0.5 * (fa + fb) * dl;
        }
        acc as f32
    }
}

/// Estimates the Hessian spectral density at `params` by stochastic
/// Lanczos quadrature over `cfg.probes` seeded random probes.
///
/// Costs `probes · steps + 1` gradient evaluations. Deterministic for a
/// fixed seed; probe `i`'s stream does not depend on the probe count.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for zero probes or zero steps
/// and propagates oracle errors (including NaN/Inf gradients, surfaced as
/// clean errors by the Lanczos layer).
pub fn slq_density(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    cfg: SlqConfig,
) -> Result<SlqDensity> {
    if cfg.probes == 0 {
        return Err(TensorError::InvalidArgument(
            "slq needs at least one probe".into(),
        ));
    }
    let _obs = hero_obs::span("slq");
    let mut probes: Vec<LanczosResult> = Vec::with_capacity(cfg.probes);
    let (mut maxs, mut mins, mut means, mut seconds) = (
        Vec::with_capacity(cfg.probes),
        Vec::with_capacity(cfg.probes),
        Vec::with_capacity(cfg.probes),
        Vec::with_capacity(cfg.probes),
    );
    for i in 0..cfg.probes {
        let mut rng = StdRng::seed_from_u64(probe_seed(cfg.seed, i));
        let v0: Vec<Tensor> = params
            .iter()
            .map(|p| {
                let mut t = Tensor::zeros(p.shape().clone());
                fill_standard_normal(&mut t, &mut rng);
                t
            })
            .collect();
        let res = lanczos_spectrum_from(oracle, params, &v0, cfg.steps, cfg.eps)?;
        maxs.push(res.lambda_max());
        mins.push(res.lambda_min());
        means.push(res.mean_eigenvalue());
        seconds.push(res.second_moment());
        probes.push(res);
    }
    // Broadening width from the pooled Ritz range; degenerate (single
    // eigenvalue) spectra fall back to a scale-relative width.
    let lo = mins.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = maxs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let width = hi - lo;
    let sigma = if width > f32::MIN_POSITIVE {
        cfg.sigma_rel * width
    } else {
        cfg.sigma_rel * hi.abs().max(1.0)
    };
    let points = cfg.grid_points.max(2);
    let (glo, ghi) = (lo - 3.0 * sigma, hi + 3.0 * sigma);
    let step = (ghi - glo) / (points - 1) as f32;
    let norm = 1.0 / (sigma * (2.0 * std::f32::consts::PI).sqrt());
    let inv_k = 1.0 / cfg.probes as f32;
    let mut grid = Vec::with_capacity(points);
    let mut density = Vec::with_capacity(points);
    for g in 0..points {
        let lambda = glo + step * g as f32;
        let mut rho = 0.0f32;
        for res in &probes {
            for (&theta, &w) in res.ritz_values.iter().zip(&res.weights) {
                let z = (lambda - theta) / sigma;
                rho += w * norm * (-0.5 * z * z).exp();
            }
        }
        grid.push(lambda);
        density.push(rho * inv_k);
    }
    Ok(SlqDensity {
        grid,
        density,
        sigma,
        lambda_max: Estimate::from_samples(&maxs),
        lambda_min: Estimate::from_samples(&mins),
        mean_eigenvalue: Estimate::from_samples(&means),
        second_moment: Estimate::from_samples(&seconds),
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::Quadratic;

    #[test]
    fn density_moments_match_diagonal_spectrum() {
        // Exact spectrum {1, 2, 5, 9}: tr/n = 4.25, Σλ²/n = 111/4 = 27.75.
        let q = Quadratic::diag(&[1.0, 2.0, 5.0, 9.0]);
        let params = vec![Tensor::zeros([4])];
        let cfg = SlqConfig::default().with_steps(4).with_probes(16);
        let d = slq_density(&mut q.oracle(), &params, cfg).unwrap();
        assert!(
            (d.lambda_max.mean - 9.0).abs() < 0.2,
            "λmax {}",
            d.lambda_max.mean
        );
        assert!((d.lambda_min.mean - 1.0).abs() < 0.2);
        assert!(
            (d.mean_eigenvalue.mean - 4.25).abs() < 0.6,
            "mean {} ± {}",
            d.mean_eigenvalue.mean,
            d.mean_eigenvalue.std_error
        );
        assert!(
            (d.second_moment.mean - 27.75).abs() < 6.0,
            "second {}",
            d.second_moment.mean
        );
        assert_eq!(d.lambda_max.samples, 16);
        assert!(d.lambda_max.std_error.is_finite());
    }

    #[test]
    fn grid_density_is_normalized_and_tracks_moments() {
        let q = Quadratic::diag(&[1.0, 3.0, 8.0]);
        let params = vec![Tensor::zeros([3])];
        let cfg = SlqConfig {
            steps: 3,
            probes: 8,
            grid_points: 256,
            ..SlqConfig::default()
        };
        let d = slq_density(&mut q.oracle(), &params, cfg).unwrap();
        assert!(
            (d.grid_moment(0) - 1.0).abs() < 0.02,
            "{}",
            d.grid_moment(0)
        );
        assert!(
            (d.grid_moment(1) - d.mean_eigenvalue.mean).abs() < 0.2,
            "grid {} vs quadrature {}",
            d.grid_moment(1),
            d.mean_eigenvalue.mean
        );
        // Broadening inflates the second grid moment by exactly σ².
        let expect2 = d.second_moment.mean + d.sigma * d.sigma;
        assert!((d.grid_moment(2) - expect2).abs() < 0.8);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let q = Quadratic::diag(&[2.0, 4.0]);
        let params = vec![Tensor::zeros([2])];
        let cfg = SlqConfig::default()
            .with_steps(2)
            .with_probes(3)
            .with_seed(7);
        let a = slq_density(&mut q.oracle(), &params, cfg).unwrap();
        let b = slq_density(&mut q.oracle(), &params, cfg).unwrap();
        assert_eq!(a.density, b.density);
        assert_eq!(a.lambda_max, b.lambda_max);
    }

    #[test]
    fn zero_probes_is_an_error() {
        let q = Quadratic::diag(&[1.0]);
        let params = vec![Tensor::zeros([1])];
        let cfg = SlqConfig::default().with_probes(0);
        assert!(slq_density(&mut q.oracle(), &params, cfg).is_err());
    }

    #[test]
    fn single_eigenvalue_spectrum_broadened_cleanly() {
        // All eigenvalues equal: zero spectral width must not divide by 0.
        let q = Quadratic::diag(&[2.0, 2.0, 2.0]);
        let params = vec![Tensor::zeros([3])];
        let cfg = SlqConfig::default().with_steps(3).with_probes(4);
        let d = slq_density(&mut q.oracle(), &params, cfg).unwrap();
        assert!(d.sigma > 0.0);
        assert!(d.density.iter().all(|r| r.is_finite()));
        assert!((d.lambda_max.mean - 2.0).abs() < 0.1);
    }
}
