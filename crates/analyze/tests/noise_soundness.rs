//! Soundness proof-by-sampling for the quantization-noise transfers.
//!
//! For every op the forward pass can record, a case builds the same graph
//! twice with identical program randomness — once with base inputs, once
//! with each seeded input perturbed element-wise by `|δ| ≤ magnitude` —
//! and asserts that the per-element difference between the two `f32`
//! forward runs lies inside the interval the noise pass derived for that
//! node. Each case repeats over 120 independently seeded draws, and every
//! tracked bound must also be *finite* (non-vacuity): a transfer that
//! escapes to `TOP` on an op it claims to support fails loudly.

use hero_analyze::{interval_pass, noise_pass, relational_noise_pass, NoiseSeed, RangeSeed};
use hero_autodiff::{Graph, Var};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::{ConvGeometry, Shape, Tensor};

const TRIALS: u64 = 120;

/// Per-phase builder context. `noise_rng` is `None` for the base run and
/// `Some` for the perturbed run; base draws always come from `rng`, so
/// both phases see bit-identical base tensors, labels, masks and targets.
struct Ctx<'a> {
    g: &'a mut Graph,
    rng: &'a mut StdRng,
    noise_rng: Option<&'a mut StdRng>,
    value_seeds: Vec<RangeSeed>,
    noise_seeds: Vec<NoiseSeed>,
    vars: Vec<Var>,
}

impl Ctx<'_> {
    /// A fresh input drawn uniformly from `[lo, hi]`, perturbed by up to
    /// `±noise_mag` per element in the perturbed phase, and declared to
    /// both passes with exactly those parameters.
    fn input(&mut self, shape: impl Into<Shape>, lo: f32, hi: f32, noise_mag: f32) -> Var {
        let rng = &mut *self.rng;
        let noise_rng = self.noise_rng.as_deref_mut();
        let t = match noise_rng {
            Some(nr) if noise_mag > 0.0 => Tensor::from_fn(shape, |_| {
                rng.gen_range(lo..=hi) + nr.gen_range(-noise_mag..=noise_mag)
            }),
            _ => Tensor::from_fn(shape, |_| rng.gen_range(lo..=hi)),
        };
        let v = self.g.input(t);
        self.value_seeds.push(RangeSeed {
            node: v.index(),
            lo,
            hi,
        });
        if noise_mag > 0.0 {
            self.noise_seeds.push(NoiseSeed {
                node: v.index(),
                magnitude: noise_mag,
            });
        }
        self.track(v)
    }

    fn track(&mut self, v: Var) -> Var {
        self.vars.push(v);
        v
    }
}

fn run_case(name: &str, build: impl Fn(&mut Ctx)) {
    let base: u64 = name.bytes().map(u64::from).sum::<u64>() << 32;
    for trial in 0..TRIALS {
        // Phase 1: base run; derive intervals and noise bounds.
        let mut rng = StdRng::seed_from_u64(base + trial);
        let mut g1 = Graph::new();
        let mut ctx = Ctx {
            g: &mut g1,
            rng: &mut rng,
            noise_rng: None,
            value_seeds: Vec::new(),
            noise_seeds: Vec::new(),
            vars: Vec::new(),
        };
        build(&mut ctx);
        let (value_seeds, noise_seeds, vars) = (ctx.value_seeds, ctx.noise_seeds, ctx.vars);
        let tape = g1.trace();
        let values = interval_pass(&tape, &value_seeds);
        let noise = noise_pass(&tape, &values, &noise_seeds);
        let base_vals: Vec<Vec<f32>> = vars.iter().map(|v| g1.value(*v).data().to_vec()).collect();

        // Phase 2: identical program randomness, perturbed seeded inputs.
        let mut rng2 = StdRng::seed_from_u64(base + trial);
        let mut nrng = StdRng::seed_from_u64((base + trial) ^ 0xD1CE_CA5E);
        let mut g2 = Graph::new();
        let mut ctx2 = Ctx {
            g: &mut g2,
            rng: &mut rng2,
            noise_rng: Some(&mut nrng),
            value_seeds: Vec::new(),
            noise_seeds: Vec::new(),
            vars: Vec::new(),
        };
        build(&mut ctx2);
        let vars2 = ctx2.vars;
        assert_eq!(vars.len(), vars2.len(), "{name}: phases diverged");

        for (vi, (v1, v2)) in vars.iter().zip(&vars2).enumerate() {
            assert_eq!(v1.index(), v2.index(), "{name}: node order diverged");
            let e = noise[v1.index()];
            assert!(
                e.is_finite(),
                "{name} trial {trial}: node #{} ({}) noise bound is vacuous: {e:?}",
                v1.index(),
                tape[v1.index()].op,
            );
            let pert = g2.value(*v2);
            for (j, (&b, &p)) in base_vals[vi].iter().zip(pert.data().iter()).enumerate() {
                let diff = p - b;
                assert!(
                    e.contains(diff),
                    "{name} trial {trial}: node #{} ({}) element {j}: perturbed {p:e} − \
                     base {b:e} = {diff:e} escapes noise bound [{:e}, {:e}]",
                    v1.index(),
                    tape[v1.index()].op,
                    e.lo,
                    e.hi,
                );
            }
        }
        g1.reset();
        g2.reset();
    }
}

#[test]
fn elementwise_core_ops_respect_their_noise_bounds() {
    run_case("elementwise_core", |c| {
        let a = c.input([3, 4], -2.0, 2.0, 0.05);
        let b = c.input([3, 4], -1.5, 0.5, 0.02);
        let s = c.g.add(a, b).unwrap();
        c.track(s);
        let d = c.g.sub(s, a).unwrap();
        c.track(d);
        let m = c.g.mul(d, b).unwrap();
        c.track(m);
        let sc = c.g.scale(m, -0.7);
        c.track(sc);
        let off = c.g.add_scalar(sc, 0.3);
        c.track(off);
        let sq = c.g.square(off);
        c.track(sq);
        let rs = c.g.reshape(sq, [12]).unwrap();
        c.track(rs);
        let total = c.g.sum(rs);
        c.track(total);
        let avg = c.g.mean(sq);
        c.track(avg);
    });
}

#[test]
fn clamping_activations_respect_their_noise_bounds() {
    run_case("clamps", |c| {
        let x = c.input([4, 5], -3.0, 8.0, 0.1);
        let r = c.g.relu(x);
        c.track(r);
        let r6 = c.g.relu6(x);
        c.track(r6);
        let lk = c.g.leaky_relu(x, 0.01);
        c.track(lk);
        let lk_neg = c.g.leaky_relu(x, -0.5);
        c.track(lk_neg);
    });
}

#[test]
fn smooth_activations_respect_their_noise_bounds() {
    run_case("smooth", |c| {
        let x = c.input([4, 4], -6.0, 6.0, 0.2);
        let sg = c.g.sigmoid(x);
        c.track(sg);
        let th = c.g.tanh(x);
        c.track(th);
        let pos = c.input([4, 4], 0.5, 3.0, 0.05);
        let l = c.g.ln(pos);
        c.track(l);
    });
}

#[test]
fn dropout_and_mse_respect_their_noise_bounds() {
    run_case("dropout_mse", |c| {
        let x = c.input([3, 5], -2.0, 2.0, 0.03);
        let rng = &mut *c.rng;
        let mask = Tensor::from_fn([3, 5], |_| if rng.gen::<bool>() { 1.0 } else { 0.0 });
        let dr = c.g.dropout(x, &mask, 0.8).unwrap();
        c.track(dr);
        let rng = &mut *c.rng;
        let target = Tensor::from_fn([3, 5], |_| rng.gen_range(-1.0f32..=1.0));
        let loss = c.g.mse_loss(x, &target).unwrap();
        c.track(loss);
    });
}

#[test]
fn matmul_respects_its_noise_bound() {
    run_case("matmul", |c| {
        let a = c.input([3, 6], -2.0, 2.0, 0.0);
        let b = c.input([6, 4], -1.0, 3.0, 0.05);
        let p = c.g.matmul(a, b).unwrap();
        c.track(p);
        // Noise on both operands at once.
        let a2 = c.input([3, 6], -1.0, 1.0, 0.02);
        let b2 = c.input([6, 4], -1.0, 1.0, 0.08);
        let p2 = c.g.matmul(a2, b2).unwrap();
        c.track(p2);
    });
}

#[test]
fn conv_and_pool_stack_respects_its_noise_bounds() {
    run_case("conv_pool", |c| {
        let x = c.input([2, 3, 8, 8], -1.0, 1.0, 0.0);
        let w = c.input([4, 27], -0.5, 0.5, 0.04);
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let y = c.g.conv2d(x, w, geom).unwrap();
        c.track(y);
        let mp = c.g.max_pool2d(y, 2).unwrap();
        c.track(mp);
        let ap = c.g.avg_pool2d(mp, 2).unwrap();
        c.track(ap);
        let gap = c.g.global_avg_pool2d(ap).unwrap();
        c.track(gap);
    });
}

#[test]
fn depthwise_conv_respects_its_noise_bound() {
    run_case("depthwise", |c| {
        let x = c.input([2, 3, 8, 8], -1.0, 1.0, 0.01);
        let w = c.input([3, 3, 3], -0.5, 0.5, 0.05);
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let y = c.g.depthwise_conv2d(x, w, geom).unwrap();
        c.track(y);
    });
}

#[test]
fn batch_norm_respects_its_noise_bound() {
    run_case("batch_norm", |c| {
        let x = c.input([2, 3, 4, 4], -2.0, 2.0, 0.02);
        let gamma = c.input([3], 0.5, 1.5, 0.01);
        let beta = c.input([3], -0.5, 0.5, 0.01);
        let (y, _stats) = c.g.batch_norm(x, gamma, beta, 1e-5).unwrap();
        c.track(y);
    });
}

#[test]
fn losses_respect_their_noise_bounds() {
    run_case("losses", |c| {
        let logits = c.input([4, 6], -4.0, 4.0, 0.1);
        let rng = &mut *c.rng;
        let labels: Vec<usize> = (0..4).map(|_| rng.gen_range(0..6usize)).collect();
        let ce = c.g.cross_entropy(logits, &labels).unwrap();
        c.track(ce);
        let ces = c.g.cross_entropy_smoothed(logits, &labels, 0.1).unwrap();
        c.track(ces);
    });
}

#[test]
fn whole_mlp_forward_respects_its_noise_bounds() {
    run_case("mlp", |c| {
        let x = c.input([8, 10], -1.0, 1.0, 0.0);
        let w1 = c.input([10, 16], -0.4, 0.4, 0.4 / 7.0 * 0.5); // 4-bit Δ/2
        let b1 = c.input([16], -0.1, 0.1, 0.1 / 7.0 * 0.5);
        let h = c.g.matmul(x, w1).unwrap();
        c.track(h);
        let z = c.g.add(h, b1).unwrap();
        c.track(z);
        let a = c.g.relu(z);
        c.track(a);
        let w2 = c.input([16, 5], -0.4, 0.4, 0.4 / 7.0 * 0.5);
        let logits = c.g.matmul(a, w2).unwrap();
        c.track(logits);
        let rng = &mut *c.rng;
        let labels: Vec<usize> = (0..8).map(|_| rng.gen_range(0..5usize)).collect();
        let loss = c.g.cross_entropy(logits, &labels).unwrap();
        c.track(loss);
    });
}

/// Builds one random element-wise tape from `op_seed`: a pool of `[4, 5]`
/// tensors (some noise-seeded) grown by randomly chosen ops, closed with
/// `sum` and `mean` reductions. The op choices come from a dedicated RNG
/// derived only from `op_seed`, so the base and perturbed phases of one
/// tape are structurally identical.
fn build_random_tape(c: &mut Ctx, op_seed: u64) {
    let mut op_rng = StdRng::seed_from_u64(op_seed ^ 0x0F5E_ED00);
    let n_inputs = op_rng.gen_range(2..=3usize);
    let mut pool: Vec<Var> = Vec::new();
    for i in 0..n_inputs {
        // The first input is always seeded so every tape exercises the
        // relational transfers; later ones are a mix of seeded and exact.
        let mag = if i == 0 || op_rng.gen::<bool>() {
            0.01 + 0.04 * (op_seed % 5) as f32 / 4.0
        } else {
            0.0
        };
        pool.push(c.input([4, 5], -1.5, 1.5, mag));
    }
    let n_ops = op_rng.gen_range(4..=8usize);
    for _ in 0..n_ops {
        let a = pool[op_rng.gen_range(0..pool.len())];
        let b = pool[op_rng.gen_range(0..pool.len())];
        let v = match op_rng.gen_range(0..11usize) {
            0 => c.g.add(a, b).unwrap(),
            1 => c.g.sub(a, b).unwrap(),
            2 => c.g.sub(a, a).unwrap(),
            3 => c.g.mul(a, b).unwrap(),
            4 => c.g.scale(a, -0.6),
            5 => c.g.add_scalar(a, 0.25),
            6 => c.g.relu(a),
            7 => c.g.relu6(a),
            8 => c.g.leaky_relu(a, 0.1),
            9 => c.g.sigmoid(a),
            _ => c.g.tanh(a),
        };
        pool.push(c.track(v));
    }
    let last = *pool.last().unwrap();
    let s = c.g.sum(last);
    c.track(s);
    let m = c.g.mean(last);
    c.track(m);
}

/// Zonotope-vs-interval dominance fuzzer: 200 independently seeded random
/// tapes, each asserting per node that the relational pass's tightened
/// cell is contained in the plain interval cell (`tightened ⊆ interval`),
/// that the pass's `interval` field reproduces [`noise_pass`] exactly,
/// and that the tightened cell still encloses the measured difference of
/// two real forward runs on perturbed seeded inputs.
#[test]
fn zonotope_dominates_interval_on_random_tapes() {
    const TAPES: u64 = 200;
    for op_seed in 0..TAPES {
        // Phase 1: base run; derive intervals and both noise domains.
        let mut rng = StdRng::seed_from_u64(0xD0_0D ^ (op_seed << 8));
        let mut g1 = Graph::new();
        let mut ctx = Ctx {
            g: &mut g1,
            rng: &mut rng,
            noise_rng: None,
            value_seeds: Vec::new(),
            noise_seeds: Vec::new(),
            vars: Vec::new(),
        };
        build_random_tape(&mut ctx, op_seed);
        let (value_seeds, noise_seeds, vars) = (ctx.value_seeds, ctx.noise_seeds, ctx.vars);
        let tape = g1.trace();
        let values = interval_pass(&tape, &value_seeds);
        let plain = noise_pass(&tape, &values, &noise_seeds);
        let rec = g1.value_abs_max();
        let rn = relational_noise_pass(&tape, &values, Some(&rec), &noise_seeds);
        assert_eq!(rn.tightened.len(), tape.len(), "tape {op_seed}: length");
        for i in 0..tape.len() {
            let (t, iv) = (rn.tightened[i], rn.interval[i]);
            assert_eq!(
                (iv.lo, iv.hi, iv.maybe_nan),
                (plain[i].lo, plain[i].hi, plain[i].maybe_nan),
                "tape {op_seed}: node #{i} interval field drifted from noise_pass"
            );
            assert!(
                t.lo >= iv.lo && t.hi <= iv.hi && (iv.maybe_nan || !t.maybe_nan),
                "tape {op_seed}: node #{i} ({}) tightened {t:?} escapes interval {iv:?}",
                tape[i].op,
            );
        }
        let base_vals: Vec<Vec<f32>> = vars.iter().map(|v| g1.value(*v).data().to_vec()).collect();

        // Phase 2: identical program randomness, perturbed seeded inputs;
        // the tightened cells must still enclose the measured difference.
        let mut rng2 = StdRng::seed_from_u64(0xD0_0D ^ (op_seed << 8));
        let mut nrng = StdRng::seed_from_u64(op_seed ^ 0xD1CE_CA5E);
        let mut g2 = Graph::new();
        let mut ctx2 = Ctx {
            g: &mut g2,
            rng: &mut rng2,
            noise_rng: Some(&mut nrng),
            value_seeds: Vec::new(),
            noise_seeds: Vec::new(),
            vars: Vec::new(),
        };
        build_random_tape(&mut ctx2, op_seed);
        let vars2 = ctx2.vars;
        assert_eq!(vars.len(), vars2.len(), "tape {op_seed}: phases diverged");
        for (vi, (v1, v2)) in vars.iter().zip(&vars2).enumerate() {
            let t = rn.tightened[v1.index()];
            let pert = g2.value(*v2);
            for (j, (&b, &p)) in base_vals[vi].iter().zip(pert.data().iter()).enumerate() {
                let diff = p - b;
                assert!(
                    t.contains(diff),
                    "tape {op_seed}: node #{} ({}) element {j}: measured diff {diff:e} \
                     escapes tightened bound [{:e}, {:e}]",
                    v1.index(),
                    tape[v1.index()].op,
                    t.lo,
                    t.hi,
                );
            }
        }
        g1.reset();
        g2.reset();
    }
}

#[test]
fn conv_bn_relu_head_respects_its_noise_bounds() {
    run_case("conv_bn_head", |c| {
        let x = c.input([2, 3, 8, 8], -1.0, 1.0, 0.0);
        let w = c.input([4, 27], -0.3, 0.3, 0.3 / 7.0 * 0.5);
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let y = c.g.conv2d(x, w, geom).unwrap();
        c.track(y);
        let gamma = c.input([4], 0.8, 1.2, 0.0);
        let beta = c.input([4], -0.2, 0.2, 0.0);
        let (bn, _) = c.g.batch_norm(y, gamma, beta, 1e-5).unwrap();
        c.track(bn);
        let r = c.g.relu(bn);
        c.track(r);
        let p = c.g.avg_pool2d(r, 2).unwrap();
        c.track(p);
        let gap = c.g.global_avg_pool2d(p).unwrap();
        c.track(gap);
        let wl = c.input([4, 5], -0.5, 0.5, 0.5 / 7.0 * 0.5);
        let logits = c.g.matmul(gap, wl).unwrap();
        c.track(logits);
        let rng = &mut *c.rng;
        let labels: Vec<usize> = (0..2).map(|_| rng.gen_range(0..5usize)).collect();
        let loss = c.g.cross_entropy(logits, &labels).unwrap();
        c.track(loss);
    });
}
