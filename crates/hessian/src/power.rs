//! Power iteration for the dominant Hessian eigenvalue.

use crate::hvp::{fd_hvp, GradOracle};
use crate::stats::{probe_seed, Estimate};
use hero_tensor::rng::StdRng;
use hero_tensor::{fill_standard_normal, global_dot, global_norm_l2, Result, Tensor, TensorError};

/// Result of a power-iteration run.
#[derive(Debug, Clone)]
pub struct PowerIterResult {
    /// Rayleigh-quotient estimate of the dominant eigenvalue λ_max
    /// (the `v` of Theorem 3): the mean over the configured restarts,
    /// with the across-restart standard error attached.
    pub eigenvalue: Estimate,
    /// The unit eigenvector estimate from the restart with the largest
    /// `|λ|`, shaped like the parameters.
    pub eigenvector: Vec<Tensor>,
    /// Iterations actually run, summed over restarts.
    pub iterations: usize,
    /// Whether every restart's eigenvalue moved less than the tolerance on
    /// its final iteration.
    pub converged: bool,
}

impl PowerIterResult {
    /// The point estimate of λ_max (mean over restarts).
    pub fn lambda(&self) -> f32 {
        self.eigenvalue.mean
    }
}

/// Configuration for [`power_iteration`].
#[derive(Debug, Clone, Copy)]
pub struct PowerIterConfig {
    /// Maximum iterations per restart.
    pub max_iters: usize,
    /// Relative change in eigenvalue below which iteration stops.
    pub tol: f32,
    /// Finite-difference step for the inner HVPs.
    pub eps: f32,
    /// Independent restarts from distinct seeded start vectors; the
    /// spread across restarts is the reported standard error.
    pub restarts: usize,
    /// Base seed for the start vectors (restart `i` draws from
    /// [`probe_seed`]`(seed, i)`).
    pub seed: u64,
}

impl Default for PowerIterConfig {
    fn default() -> Self {
        PowerIterConfig {
            max_iters: 30,
            tol: 1e-3,
            eps: 1e-3,
            restarts: 1,
            seed: 0,
        }
    }
}

impl PowerIterConfig {
    /// Builder: sets the base seed for the start vectors.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the number of independent restarts.
    #[must_use]
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }
}

/// Estimates the dominant Hessian eigenvalue of `oracle` at `params` by
/// power iteration over finite-difference HVPs.
///
/// Each iteration costs one gradient evaluation. Every restart runs from
/// an independent seeded start vector; the returned eigenvalue is the mean
/// of the per-restart Rayleigh quotients `uᵀHu`, annotated with their
/// standard error (what Theorem 3's bounds consume, now with a confidence
/// interval).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for zero restarts and
/// propagates oracle and shape errors.
pub fn power_iteration(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    cfg: PowerIterConfig,
) -> Result<PowerIterResult> {
    if cfg.restarts == 0 {
        return Err(TensorError::InvalidArgument(
            "power_iteration needs at least one restart".into(),
        ));
    }
    let _obs = hero_obs::span("power");
    let (_, base_grad) = oracle.grad(params)?;
    let mut samples = Vec::with_capacity(cfg.restarts);
    let mut best: Option<(f32, Vec<Tensor>)> = None;
    let mut iterations = 0usize;
    let mut converged = true;
    for restart in 0..cfg.restarts {
        let mut rng = StdRng::seed_from_u64(probe_seed(cfg.seed, restart));
        // Random unit start direction.
        let mut u: Vec<Tensor> = params
            .iter()
            .map(|p| {
                let mut t = Tensor::zeros(p.shape().clone());
                fill_standard_normal(&mut t, &mut rng);
                t
            })
            .collect();
        normalize(&mut u);
        let mut eigenvalue = 0.0f32;
        let mut this_converged = false;
        for it in 0..cfg.max_iters {
            iterations += 1;
            let hu = fd_hvp(oracle, params, &base_grad, &u, cfg.eps)?;
            let rayleigh = global_dot(&u, &hu);
            let norm = global_norm_l2(&hu);
            if norm <= f32::MIN_POSITIVE {
                // H u = 0: the direction is in the null space; eigenvalue 0.
                eigenvalue = 0.0;
                this_converged = true;
                break;
            }
            let delta = (rayleigh - eigenvalue).abs();
            eigenvalue = rayleigh;
            u = hu;
            normalize(&mut u);
            if it > 0 && delta <= cfg.tol * eigenvalue.abs().max(1e-6) {
                this_converged = true;
                break;
            }
        }
        converged &= this_converged;
        samples.push(eigenvalue);
        if best
            .as_ref()
            .is_none_or(|(b, _)| eigenvalue.abs() > b.abs())
        {
            best = Some((eigenvalue, u));
        }
    }
    let eigenvector = best.map(|(_, u)| u).unwrap_or_default();
    Ok(PowerIterResult {
        eigenvalue: Estimate::from_samples(&samples),
        eigenvector,
        iterations,
        converged,
    })
}

fn normalize(v: &mut [Tensor]) {
    let n = global_norm_l2(v);
    if n > f32::MIN_POSITIVE {
        for t in v {
            t.scale_in_place(1.0 / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::Quadratic;

    #[test]
    fn recovers_dominant_eigenvalue_of_diagonal() {
        let q = Quadratic::diag(&[1.0, 3.0, 10.0, 0.5]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::from_vec(vec![0.1, 0.2, -0.1, 0.3], [4]).unwrap()];
        let res = power_iteration(
            &mut oracle,
            &params,
            PowerIterConfig::default().with_seed(1),
        )
        .unwrap();
        assert!((res.lambda() - 10.0).abs() < 0.2, "λ={}", res.lambda());
        assert!(res.converged);
        // Eigenvector should align with e_2.
        let ev = &res.eigenvector[0];
        assert!(ev.data()[2].abs() > 0.95);
    }

    #[test]
    fn eigenvector_is_unit_norm() {
        let q = Quadratic::diag(&[5.0, 1.0]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([2])];
        let res = power_iteration(
            &mut oracle,
            &params,
            PowerIterConfig::default().with_seed(2),
        )
        .unwrap();
        assert!((global_norm_l2(&res.eigenvector) - 1.0).abs() < 1e-4);
        assert!((res.lambda() - 5.0).abs() < 0.1);
    }

    #[test]
    fn zero_hessian_reports_zero() {
        // Linear objective: gradient constant, Hessian zero.
        let mut oracle =
            |ps: &[Tensor]| Ok((ps[0].sum(), vec![Tensor::ones(ps[0].shape().clone())]));
        let params = vec![Tensor::zeros([3])];
        let res = power_iteration(
            &mut oracle,
            &params,
            PowerIterConfig::default().with_seed(3),
        )
        .unwrap();
        assert_eq!(res.lambda(), 0.0);
        assert!(res.converged);
    }

    #[test]
    fn respects_max_iterations() {
        let q = Quadratic::diag(&[4.0, 3.9]); // close eigenvalues converge slowly
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([2])];
        let cfg = PowerIterConfig {
            max_iters: 2,
            tol: 1e-12,
            eps: 1e-3,
            restarts: 1,
            seed: 4,
        };
        let res = power_iteration(&mut oracle, &params, cfg).unwrap();
        assert!(res.iterations <= 2);
    }

    #[test]
    fn restarts_report_standard_error_and_reproduce() {
        let q = Quadratic::diag(&[1.0, 3.0, 10.0]);
        let params = vec![Tensor::zeros([3])];
        let cfg = PowerIterConfig::default().with_seed(11).with_restarts(3);
        let a = power_iteration(&mut q.oracle(), &params, cfg).unwrap();
        let b = power_iteration(&mut q.oracle(), &params, cfg).unwrap();
        assert_eq!(a.eigenvalue, b.eigenvalue);
        assert_eq!(a.eigenvalue.samples, 3);
        // All restarts converge to the same dominant eigenvalue: the
        // spread is small but finite (not NaN — we have 3 samples).
        assert!(a.eigenvalue.std_error.is_finite());
        assert!(a.eigenvalue.std_error < 0.1);
        assert!((a.lambda() - 10.0).abs() < 0.2);
    }

    #[test]
    fn zero_restarts_is_an_error() {
        let q = Quadratic::diag(&[1.0]);
        let params = vec![Tensor::zeros([1])];
        let cfg = PowerIterConfig::default().with_restarts(0);
        assert!(power_iteration(&mut q.oracle(), &params, cfg).is_err());
    }
}
