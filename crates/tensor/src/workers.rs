//! A persistent worker pool with deterministic result slotting.
//!
//! Workers are plain `std::thread`s spawned once and reused across every
//! training step (thread spawn costs would otherwise dwarf a shard's
//! gradient work). Jobs are pulled from one shared queue, so a slow shard
//! does not idle the other workers, and each result is slotted back by its
//! *job index* — callers observe a result vector whose order depends only
//! on how the work was submitted, never on which worker finished first.
//!
//! The pool lives in `hero-tensor` (rather than `hero-parallel`, which
//! re-exports it) because the multicore GEMM macro-kernel in
//! [`crate::ops`] fans N-panels out over the same primitive, and
//! `hero-parallel` sits above this crate in the dependency graph.
//!
//! A job that panics is caught with [`std::panic::catch_unwind`] on the
//! worker, reported back through the result channel, and surfaces from
//! [`WorkerPool::scatter`] as a clean [`PoolError::WorkerPanicked`] — the
//! worker itself survives and keeps serving jobs, so a poisoned step can
//! never deadlock the trainer.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of work executed on one worker against its private state.
pub type Job<S, R> = Box<dyn FnOnce(&mut S) -> R + Send>;

/// Failure modes of a [`WorkerPool::scatter`] round.
#[derive(Debug)]
pub enum PoolError {
    /// A job panicked on its worker. The panic payload is rendered into
    /// `message`; the worker stays alive, but its state may be mid-update,
    /// so treat the whole round as failed.
    WorkerPanicked {
        /// Index of the job (submission order) whose closure panicked.
        job: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// The pool's channels closed (all workers exited) — only possible
    /// after the pool began shutting down.
    Disconnected,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { job, message } => {
                write!(f, "worker panicked while running job {job}: {message}")
            }
            PoolError::Disconnected => write!(f, "worker pool is shut down"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Renders a panic payload into the human-readable part of a
/// [`PoolError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fixed set of persistent worker threads, each owning a private state
/// `S` (for the trainer: a network replica), executing jobs from a shared
/// queue.
#[derive(Debug)]
pub struct WorkerPool<S, R> {
    /// `None` only during shutdown; dropping the sender is what releases
    /// the workers from their `recv` loop.
    job_tx: Option<Sender<(usize, Job<S, R>)>>,
    res_rx: Receiver<(usize, std::thread::Result<R>)>,
    handles: Vec<JoinHandle<()>>,
}

impl<S: Send + 'static, R: Send + 'static> WorkerPool<S, R> {
    /// Spawns one worker per entry of `states`, moving each state onto its
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or a thread cannot be spawned.
    pub fn new(states: Vec<S>) -> Self {
        assert!(!states.is_empty(), "worker pool needs at least one worker");
        let (job_tx, job_rx) = channel::<(usize, Job<S, R>)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (res_tx, res_rx) = channel();
        let handles = states
            .into_iter()
            .enumerate()
            .map(|(w, mut state)| {
                let job_rx = Arc::clone(&job_rx);
                let res_tx = res_tx.clone();
                std::thread::Builder::new()
                    .name(format!("hero-worker-{w}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the dequeue, never
                        // across job execution.
                        let job = {
                            let guard = match job_rx.lock() {
                                Ok(g) => g,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            guard.recv()
                        };
                        let Ok((idx, job)) = job else { break };
                        hero_obs::counters::WORKERS_BUSY.incr();
                        let out = catch_unwind(AssertUnwindSafe(|| job(&mut state)));
                        hero_obs::counters::WORKERS_BUSY.sub(1);
                        if res_tx.send((idx, out)).is_err() {
                            break;
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            job_tx: Some(job_tx),
            res_rx,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs every job across the pool and returns the results in *job
    /// order* (index `i` of the output is job `i`'s result, regardless of
    /// which worker ran it or when it finished).
    ///
    /// All submitted jobs are drained before returning, even when one
    /// panics, so a failed round leaves no stale results behind.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::WorkerPanicked`] for the first panicking job,
    /// or [`PoolError::Disconnected`] if the workers are gone.
    pub fn scatter(&mut self, jobs: Vec<Job<S, R>>) -> Result<Vec<R>, PoolError> {
        let n = jobs.len();
        let tx = self.job_tx.as_ref().ok_or(PoolError::Disconnected)?;
        for (idx, job) in jobs.into_iter().enumerate() {
            tx.send((idx, job)).map_err(|_| PoolError::Disconnected)?;
        }
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut panic: Option<PoolError> = None;
        for _ in 0..n {
            let (idx, out) = self.res_rx.recv().map_err(|_| PoolError::Disconnected)?;
            match out {
                Ok(r) => slots[idx] = Some(r),
                Err(payload) => {
                    // Keep draining: every job still sends a result, which
                    // is what makes the error path deadlock-free.
                    let e = PoolError::WorkerPanicked {
                        job: idx,
                        message: panic_message(payload.as_ref()),
                    };
                    if panic.is_none() {
                        panic = Some(e);
                    }
                }
            }
        }
        if let Some(e) = panic {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every job index reported exactly once"))
            .collect())
    }
}

impl<S, R> Drop for WorkerPool<S, R> {
    fn drop(&mut self) {
        // Closing the job channel ends every worker's recv loop.
        drop(self.job_tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(workers: usize) -> WorkerPool<u64, u64> {
        WorkerPool::new((0..workers as u64).collect())
    }

    #[test]
    fn scatter_slots_results_by_job_index() {
        let mut p = pool(3);
        for _ in 0..5 {
            let jobs: Vec<Job<u64, u64>> = (0..8u64)
                .map(|i| Box::new(move |_: &mut u64| i * 10) as Job<u64, u64>)
                .collect();
            let out = p.scatter(jobs).unwrap();
            assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        }
    }

    #[test]
    fn worker_state_persists_across_scatters() {
        // One worker: jobs run FIFO against the same private state, so the
        // accumulator is visible across scatter rounds.
        let mut p = WorkerPool::new(vec![0u64]);
        let bump = || {
            Box::new(|s: &mut u64| {
                *s += 1;
                *s
            }) as Job<u64, u64>
        };
        assert_eq!(
            p.scatter(vec![bump(), bump(), bump()]).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(p.scatter(vec![bump()]).unwrap(), vec![4]);
    }

    #[test]
    fn panic_surfaces_as_error_not_deadlock() {
        let mut p = pool(2);
        let jobs: Vec<Job<u64, u64>> = (0..4u64)
            .map(|i| {
                Box::new(move |_: &mut u64| {
                    if i == 2 {
                        panic!("injected fault in job {i}");
                    }
                    i
                }) as Job<u64, u64>
            })
            .collect();
        let err = p.scatter(jobs).unwrap_err();
        match err {
            PoolError::WorkerPanicked { job, message } => {
                assert_eq!(job, 2);
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("unexpected error: {other}"),
        }
        // The pool survives the fault and keeps serving jobs.
        let jobs: Vec<Job<u64, u64>> = (0..4u64)
            .map(|i| Box::new(move |_: &mut u64| i + 100) as Job<u64, u64>)
            .collect();
        assert_eq!(p.scatter(jobs).unwrap(), vec![100, 101, 102, 103]);
    }

    #[test]
    fn empty_scatter_returns_empty() {
        let mut p = pool(1);
        assert!(p.scatter(Vec::new()).unwrap().is_empty());
    }
}
