//! # hero-hessian
//!
//! Curvature analysis for the HERO (DAC 2022) reproduction: the
//! finite-difference Hessian-vector product that powers HERO's regularizer
//! gradient, power iteration for λ_max, the paper's ‖Hz‖ probe (Fig. 2a),
//! Hutchinson trace estimation (global and per-layer), stochastic Lanczos
//! quadrature for the eigenvalue density, and the computable Theorem 3
//! robustness bounds.
//!
//! Everything works through the [`GradOracle`] trait — any closure mapping
//! parameters to `(loss, gradients)` — so the tools apply equally to test
//! quadratics ([`Quadratic`]) and real networks. Stochastic estimators
//! take explicit seeds and return [`Estimate`]s (mean ± standard error),
//! so every spectrum artifact is reproducible and confidence-annotated.
//!
//! # Examples
//!
//! ```
//! use hero_hessian::{power_iteration, PowerIterConfig, Quadratic};
//! use hero_tensor::Tensor;
//!
//! # fn main() -> Result<(), hero_tensor::TensorError> {
//! let q = Quadratic::diag(&[1.0, 7.0]);
//! let mut oracle = q.oracle();
//! let params = vec![Tensor::zeros([2])];
//! let cfg = PowerIterConfig::default().with_seed(0).with_restarts(2);
//! let res = power_iteration(&mut oracle, &params, cfg)?;
//! assert!((res.lambda() - 7.0).abs() < 0.2);
//! assert!(res.eigenvalue.std_error.is_finite());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod bounds;
mod hvp;
mod lanczos;
mod norm;
mod power;
mod quadratic;
mod slq;
mod stats;

pub use bounds::BoundInputs;
pub use hvp::{fd_hvp, fd_hvp_into, perturbed, perturbed_into, GradOracle};
pub use lanczos::{lanczos_spectrum, lanczos_spectrum_from, LanczosResult};
pub use norm::{
    eigen_sq_sum_estimate, hessian_norm_probe, hutchinson_trace, layer_scaled_direction,
    layer_scaled_direction_into, layer_traces,
};
pub use power::{power_iteration, PowerIterConfig, PowerIterResult};
pub use quadratic::Quadratic;
pub use slq::{slq_density, SlqConfig, SlqDensity};
pub use stats::{probe_seed, spearman_rank, spearman_rank_checked, Estimate};
