//! Training configuration.

use hero_data::Augment;
use hero_optim::{LrSchedule, Method};

/// Complete configuration of one training run.
///
/// Defaults mirror the paper's §5.1 recipe scaled to the synthetic
/// substrate: SGD momentum 0.9, weight decay 1e-4, cosine learning rate,
/// pad-crop/flip augmentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Training method (the experiment variable).
    pub method: Method,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate for the cosine schedule.
    pub lr: f32,
    /// Weight decay α.
    pub weight_decay: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Augmentation policy for training batches.
    pub augment: Augment,
    /// Evaluate the test set every `eval_every` epochs (and always on the
    /// final epoch).
    pub eval_every: usize,
    /// Run the ‖Hz‖ curvature probe every `probe_every` epochs; 0 disables
    /// probing (it costs two gradient evaluations per probe).
    pub probe_every: usize,
    /// Take a full spectrum probe (SLQ density summary + per-layer
    /// Hutchinson traces, see [`crate::spectrum`]) every `spectrum_every`
    /// epochs; 0 (the default) disables it — each probe costs dozens of
    /// gradient evaluations, so it is strictly opt-in telemetry.
    pub spectrum_every: usize,
    /// Seed for batching/augmentation randomness.
    pub seed: u64,
    /// Worker threads for the sharded data-parallel executor; 0 selects
    /// the serial in-process path. Defaults to the `HERO_THREADS`
    /// environment variable (unset ⇒ 0). With the shard count fixed,
    /// every value ≥ 1 produces bitwise identical trajectories (see
    /// DESIGN.md §11 and the parallel_equiv suite) — a single worker
    /// re-runs the sharded math behind one thread, so `HERO_THREADS=1`
    /// and `HERO_THREADS=4` yield byte-identical model artifacts — and
    /// the value trades wall-clock only. The same variable also sizes
    /// the GEMM worker pool (DESIGN.md §13), which accelerates the
    /// serial step too.
    pub threads: usize,
}

impl TrainConfig {
    /// The paper-style recipe for a given method and epoch budget.
    pub fn new(method: Method, epochs: usize) -> Self {
        TrainConfig {
            method,
            epochs,
            batch_size: 32,
            lr: 0.1,
            weight_decay: 1e-4,
            momentum: 0.9,
            augment: Augment::standard(),
            eval_every: 1,
            probe_every: 0,
            spectrum_every: 0,
            seed: 0,
            threads: hero_parallel::threads_from_env(),
        }
    }

    /// Builder: sets the data-parallel worker count (0 = serial path),
    /// overriding the `HERO_THREADS` default.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder: sets the run seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: enables the curvature probe at the given epoch interval.
    #[must_use]
    pub fn with_probe_every(mut self, every: usize) -> Self {
        self.probe_every = every;
        self
    }

    /// Builder: enables the spectrum probe at the given epoch interval.
    #[must_use]
    pub fn with_spectrum_every(mut self, every: usize) -> Self {
        self.spectrum_every = every;
        self
    }

    /// Builder: sets the initial learning rate.
    #[must_use]
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Builder: sets the batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Builder: disables augmentation (used by the quadratic-style tests).
    #[must_use]
    pub fn without_augment(mut self) -> Self {
        self.augment = Augment::none();
        self
    }

    /// The cosine schedule over the whole run given the number of batches
    /// per epoch.
    pub fn schedule(&self, batches_per_epoch: usize) -> LrSchedule {
        LrSchedule::Cosine {
            lr: self.lr,
            min_lr: 0.0,
            total_steps: (self.epochs * batches_per_epoch).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recipe() {
        let c = TrainConfig::new(Method::Sgd, 10);
        assert_eq!(c.lr, 0.1);
        assert_eq!(c.momentum, 0.9);
        assert_eq!(c.weight_decay, 1e-4);
        assert_eq!(c.epochs, 10);
        assert_eq!(c.augment, Augment::standard());
        assert_eq!(c.spectrum_every, 0, "spectrum probing must be opt-in");
    }

    #[test]
    fn builders_set_fields() {
        let c = TrainConfig::new(Method::Sgd, 5)
            .with_seed(9)
            .with_probe_every(2)
            .with_spectrum_every(3)
            .with_lr(0.05)
            .with_batch_size(16)
            .without_augment();
        assert_eq!(c.seed, 9);
        assert_eq!(c.probe_every, 2);
        assert_eq!(c.spectrum_every, 3);
        assert_eq!(c.lr, 0.05);
        assert_eq!(c.batch_size, 16);
        assert_eq!(c.augment, Augment::none());
    }

    #[test]
    fn schedule_spans_the_run() {
        let c = TrainConfig::new(Method::Sgd, 10).with_lr(0.2);
        let s = c.schedule(7);
        assert!((s.at(0) - 0.2).abs() < 1e-6);
        assert!(s.at(70) < 1e-6);
    }
}
