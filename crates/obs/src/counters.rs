//! Lock-free hot-path counters and the global counter registry.
//!
//! A [`Counter`] is a named `AtomicU64` declared as a `static`. The hot
//! paths of the workspace increment the built-in counters below (gradient
//! evaluations, scratch-pool hits vs. fresh allocations, packed-GEMM
//! flops, NaN-taint trips from the `sanitize` feature); downstream crates
//! can add their own with [`register`]. Increments are relaxed atomic
//! adds, gated on the tracer's enable flag so a disabled build pays one
//! relaxed load per site; under `obs-off` the increment compiles away
//! entirely.

#[cfg(not(feature = "obs-off"))]
use crate::span::is_enabled;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// A named monotonic counter (or gauge, via [`Counter::set`]).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Declares a counter. Use in a `static`, then [`register`] it (the
    /// built-ins below are pre-registered).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` when tracing is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "obs-off"))]
        if is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Adds one when tracing is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Subtracts `n` (gauge semantics, saturating at zero) when tracing is
    /// enabled. Pair with [`Counter::add`] for busy-style gauges.
    #[inline]
    pub fn sub(&self, n: u64) {
        #[cfg(not(feature = "obs-off"))]
        if is_enabled() {
            let _ = self
                .value
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(n))
                });
        }
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Overwrites the value (gauge semantics) when tracing is enabled.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        if is_enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Gradient evaluations (one forward+backward pass each).
pub static GRAD_EVALS: Counter = Counter::new("grad_evals");
/// Scratch-pool leases served from the free list.
pub static POOL_HITS: Counter = Counter::new("pool_hits");
/// Scratch-pool leases that performed a fresh heap allocation.
pub static POOL_FRESH_ALLOCS: Counter = Counter::new("pool_fresh_allocs");
/// Buffers recycled into the scratch pool.
pub static POOL_RECYCLES: Counter = Counter::new("pool_recycles");
/// Packed micro-kernel GEMM invocations.
pub static GEMM_CALLS: Counter = Counter::new("gemm_calls");
/// Floating-point operations issued through the packed GEMM (2·m·n·k per
/// call).
pub static GEMM_FLOPS: Counter = Counter::new("gemm_flops");
/// GEMM calls dispatched to the explicit-SIMD (AVX2/FMA) micro-kernel.
pub static GEMM_SIMD_HITS: Counter = Counter::new("gemm_simd_hits");
/// N-panel chunks executed on the GEMM worker pool (one per worker job;
/// stays zero when the macro-kernel runs serially).
pub static GEMM_PANELS_PARALLEL: Counter = Counter::new("gemm_panels_parallel");
/// `im2col`/`col2im` lowerings performed.
pub static IM2COL_CALLS: Counter = Counter::new("im2col_calls");
/// Non-finite forward values caught by the `sanitize` NaN-taint checker.
pub static NAN_TAINT_TRIPS: Counter = Counter::new("nan_taint_trips");
/// Parameter tensors passed through the post-training quantizer.
pub static QUANT_TENSORS: Counter = Counter::new("quant_tensors");
/// Data-parallel shard workers currently executing a job (gauge).
pub static WORKERS_BUSY: Counter = Counter::new("workers_busy");
/// Nanoseconds the reducing thread spent waiting for shard gradients.
pub static REDUCE_WAIT_NS: Counter = Counter::new("reduce_wait_ns");
/// Error-severity diagnostics produced by `hero-analyze` pre-flight runs.
pub static ANALYZE_DIAGS_ERROR: Counter = Counter::new("analyze_diags_error");
/// Warning-severity diagnostics produced by `hero-analyze` pre-flight
/// runs.
pub static ANALYZE_DIAGS_WARN: Counter = Counter::new("analyze_diags_warn");
/// Quantization-noise propagation passes executed by `hero-analyze`.
pub static ANALYZE_NOISE_PASSES: Counter = Counter::new("analyze_noise_passes");
/// Relational (zonotope) noise passes executed by `hero-analyze`.
pub static ANALYZE_ZONOTOPE_PASSES: Counter = Counter::new("analyze_zonotope_passes");
/// Static-vs-empirical noise crosscheck trials where the measured error
/// escaped the certified bound (must stay zero; gated in verify.sh).
pub static NOISE_CROSSCHECK_VIOLATIONS: Counter = Counter::new("noise_crosscheck_violations");
/// Model artifacts written (final saves and epoch checkpoints).
pub static ARTIFACT_SAVES: Counter = Counter::new("artifact_saves");
/// Model artifacts successfully decoded from disk.
pub static ARTIFACT_LOADS: Counter = Counter::new("artifact_loads");

const BUILTINS: [&Counter; 20] = [
    &GRAD_EVALS,
    &POOL_HITS,
    &POOL_FRESH_ALLOCS,
    &POOL_RECYCLES,
    &GEMM_CALLS,
    &GEMM_FLOPS,
    &GEMM_SIMD_HITS,
    &GEMM_PANELS_PARALLEL,
    &IM2COL_CALLS,
    &NAN_TAINT_TRIPS,
    &QUANT_TENSORS,
    &WORKERS_BUSY,
    &REDUCE_WAIT_NS,
    &ANALYZE_DIAGS_ERROR,
    &ANALYZE_DIAGS_WARN,
    &ANALYZE_NOISE_PASSES,
    &ANALYZE_ZONOTOPE_PASSES,
    &NOISE_CROSSCHECK_VIOLATIONS,
    &ARTIFACT_SAVES,
    &ARTIFACT_LOADS,
];

fn registry() -> &'static Mutex<Vec<&'static Counter>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Counter>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BUILTINS.to_vec()))
}

/// Registers an additional counter so it appears in [`snapshot`] (and thus
/// in every emitted `counters` event). Registering the same counter twice
/// is a no-op.
pub fn register(c: &'static Counter) {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    if !reg.iter().any(|r| std::ptr::eq(*r, c)) {
        reg.push(c);
    }
}

/// A point-in-time reading of every registered counter.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|c| (c.name(), c.get()))
        .collect()
}

/// Resets every registered counter to zero (start of a measurement
/// window).
pub fn reset_all() {
    for c in registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        c.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_counters_are_registered() {
        let names: Vec<&str> = snapshot().into_iter().map(|(n, _)| n).collect();
        for c in BUILTINS {
            assert!(names.contains(&c.name()), "missing {}", c.name());
        }
    }

    #[test]
    fn register_is_idempotent() {
        static EXTRA: Counter = Counter::new("test_extra_counter");
        register(&EXTRA);
        register(&EXTRA);
        let hits = snapshot()
            .iter()
            .filter(|(n, _)| *n == "test_extra_counter")
            .count();
        assert_eq!(hits, 1);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn add_is_gated_on_enable() {
        let _l = crate::testutil::locked();
        static GATED: Counter = Counter::new("test_gated_counter");
        crate::span::disable();
        GATED.add(5);
        assert_eq!(GATED.get(), 0);
        crate::span::enable();
        GATED.add(5);
        GATED.incr();
        assert_eq!(GATED.get(), 6);
        GATED.set(2);
        assert_eq!(GATED.get(), 2);
        GATED.reset();
        crate::span::disable();
        assert_eq!(GATED.get(), 0);
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_increments_compile_to_nothing() {
        static OFF: Counter = Counter::new("test_off_counter");
        crate::span::enable();
        OFF.add(5);
        OFF.incr();
        OFF.set(9);
        assert_eq!(OFF.get(), 0);
    }
}
