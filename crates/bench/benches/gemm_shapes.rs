//! GEMM throughput sweep over the *real* layer shapes of the experiment
//! presets (resnet / mobilenet / vgg at the `model_config` scale: width 8,
//! 8×8 inputs, batch 16), not just the square 256³ headline product.
//! Conv-as-im2col GEMMs are skinny (m = out-channels ≤ 16) with fat panel
//! dims, which stresses the edge-tile and packing paths very differently
//! from a square matmul.
//!
//! Each shape is timed under every kernel variant — `reference` (the
//! blocked oracle), `scalar` (portable packed kernel), `avx2fma` (forced
//! SIMD; silently identical to scalar on hardware without AVX2+FMA, the
//! `kernel` extra records what actually ran) — plus one fused-vs-
//! materialized im2col pair. Writes `results/BENCH_gemm.json` with a
//! GFLOP/s figure per row (override the path with `HERO_BENCH_OUT`).

use hero_bench::timing::{bench_out_path, default_budget, time_op, write_json, BenchRow};
use hero_tensor::{
    active_gemm_kernel, force_gemm_kernel, matmul_reference, ConvGeometry, GemmKernel, Tensor,
};

/// Named layer shapes `(name, m, n, k)` of the preset models.
///
/// Conv layers appear as their im2col GEMM `(out_c, N·oh·ow, in_c·k·k)`;
/// the `grad_w` row is the backward dW product of the same layer, whose
/// reduction runs over the long spatial dimension instead.
const SHAPES: [(&str, usize, usize, usize); 9] = [
    ("matmul_256x256x256", 256, 256, 256),
    // resnet: 3→8ch 3×3 stem on 8×8, batch 16.
    ("resnet_stem_conv", 8, 1024, 27),
    // resnet: 8→8ch 3×3 stage conv on 8×8.
    ("resnet_stage_conv", 8, 1024, 72),
    // resnet: 8→16ch stride-2 transition (8×8 → 4×4).
    ("resnet_transition_conv", 16, 256, 72),
    // resnet/vgg: 16→16ch 3×3 conv on 4×4.
    ("resnet_stage2_conv", 16, 256, 144),
    // resnet stage conv backward: dW = dY·colsᵀ (reduction over N·oh·ow).
    ("resnet_stage_conv_grad_w", 8, 72, 1024),
    // mobilenet: 8→16ch 1×1 pointwise conv on 8×8.
    ("mobilenet_pointwise_conv", 16, 1024, 8),
    // vgg: 16→16ch 3×3 conv on 8×8 (the fattest conv panel at this scale).
    ("vgg_conv", 16, 1024, 144),
    // square FC head (vgg-style) at batch 16.
    ("fc_head", 16, 256, 256),
];

fn operand(dims: [usize; 2], salt: usize) -> Tensor {
    Tensor::from_fn(dims, |i| {
        ((i[0] * 31 + i[1] * 13 + salt * 17) % 23) as f32 / 11.0 - 1.0
    })
}

/// Attaches the GFLOP/s figure implied by the mean iteration time.
fn with_gflops(row: BenchRow, m: usize, n: usize, k: usize) -> BenchRow {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let gflops = flops / row.ns_per_iter; // flops/ns ≡ GFLOP/s
    row.with_extra("gflops", gflops)
}

fn main() {
    hero_obs::disable();
    let budget = default_budget();
    let mut rows = Vec::new();

    for &(name, m, n, k) in &SHAPES {
        let a = operand([m, k], m + k);
        let b = operand([k, n], k + n);

        let row = time_op(&format!("{name}_reference"), budget, || {
            std::hint::black_box(matmul_reference(&a, &b).unwrap());
        });
        rows.push(with_gflops(row, m, n, k));

        for forced in [GemmKernel::Scalar, GemmKernel::Avx2Fma] {
            force_gemm_kernel(Some(forced));
            let active = active_gemm_kernel(); // records SIMD fallback
            let row = time_op(&format!("{name}_{}", forced.name()), budget, || {
                std::hint::black_box(a.matmul(&b).unwrap());
            });
            rows.push(
                with_gflops(row, m, n, k)
                    .with_extra("kernel_ran", (active == GemmKernel::Avx2Fma) as u64 as f64),
            );
            force_gemm_kernel(None);
        }
    }

    // Fused im2col-GEMM vs materialize-then-matmul on the resnet stage
    // conv, under the auto-detected kernel: same math bitwise, the fused
    // row saves writing/reading the (72, 1024) patch matrix.
    {
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let x = Tensor::from_fn([16, 8, 8, 8], |i| {
            ((i[0] * 7 + i[1] * 5 + i[2] * 3 + i[3]) % 17) as f32 / 8.0 - 1.0
        });
        let w = operand([8, 72], 3);
        let (m, n, k) = (8, 1024, 72);
        let row = time_op("resnet_stage_conv_fused", budget, || {
            std::hint::black_box(w.matmul_im2col(&x, &geom).unwrap());
        });
        rows.push(with_gflops(row, m, n, k));
        let row = time_op("resnet_stage_conv_materialized", budget, || {
            let cols = x.im2col(&geom).unwrap();
            std::hint::black_box(w.matmul(&cols).unwrap());
        });
        rows.push(with_gflops(row, m, n, k));
    }

    let out = bench_out_path(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_gemm.json"
    ));
    write_json(out, &rows).expect("write results");
}
