//! Test-time input corruptions.
//!
//! Evaluating a trained model on corrupted copies of the test set probes
//! input-space robustness — the paper's motivation ("data gathered in the
//! wild", §1) and the CURE lineage (§2.3) both concern it. These
//! corruptions are deterministic given a seed so sweeps are reproducible.

use crate::synth::Dataset;
use hero_tensor::rng::Rng;
use hero_tensor::rng::StdRng;

/// The supported corruption families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// Additive Gaussian pixel noise with the given standard deviation.
    GaussianNoise(f32),
    /// Sets each pixel to zero independently with the given probability.
    PixelDropout(f32),
    /// Scales global contrast by the given factor (1.0 = identity).
    Contrast(f32),
}

impl Corruption {
    /// Returns a corrupted copy of the dataset (labels untouched).
    ///
    /// # Panics
    ///
    /// Panics if a probability parameter is outside `[0, 1]` — corruption
    /// severities come from a fixed sweep, so an invalid value is a
    /// programming error.
    pub fn apply(&self, data: &Dataset, seed: u64) -> Dataset {
        let mut out = data.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            Corruption::GaussianNoise(std) => {
                for v in out.images.data_mut() {
                    *v += std * standard_normal(&mut rng);
                }
            }
            Corruption::PixelDropout(p) => {
                assert!(
                    (0.0..=1.0).contains(&p),
                    "dropout probability {p} out of range"
                );
                for v in out.images.data_mut() {
                    if rng.gen::<f32>() < p {
                        *v = 0.0;
                    }
                }
            }
            Corruption::Contrast(factor) => {
                let mean = out.images.mean();
                for v in out.images.data_mut() {
                    *v = mean + factor * (*v - mean);
                }
            }
        }
        out
    }
}

fn standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthGenerator, SynthSpec};

    fn data() -> Dataset {
        SynthGenerator::new(SynthSpec::default()).generate(40, 1)
    }

    #[test]
    fn corruptions_preserve_shape_and_labels() {
        let d = data();
        for c in [
            Corruption::GaussianNoise(0.5),
            Corruption::PixelDropout(0.3),
            Corruption::Contrast(0.5),
        ] {
            let out = c.apply(&d, 1);
            assert_eq!(out.images.dims(), d.images.dims());
            assert_eq!(out.labels, d.labels);
            assert!(out.images.is_finite());
        }
    }

    #[test]
    fn gaussian_noise_scales_with_severity() {
        let d = data();
        let mild = Corruption::GaussianNoise(0.1).apply(&d, 2);
        let harsh = Corruption::GaussianNoise(1.0).apply(&d, 2);
        let dist = |a: &Dataset| a.images.sub(&d.images).unwrap().norm_l2();
        assert!(dist(&harsh) > 5.0 * dist(&mild));
        // Zero severity is the identity.
        let none = Corruption::GaussianNoise(0.0).apply(&d, 2);
        assert_eq!(none.images, d.images);
    }

    #[test]
    fn pixel_dropout_zeroes_expected_fraction() {
        let d = data();
        let out = Corruption::PixelDropout(0.25).apply(&d, 3);
        let zeros = out.images.data().iter().filter(|&&v| v == 0.0).count();
        let total = out.images.numel();
        let frac = zeros as f32 / total as f32;
        assert!((frac - 0.25).abs() < 0.03, "dropout fraction {frac}");
    }

    #[test]
    fn contrast_one_is_identity() {
        let d = data();
        let out = Corruption::Contrast(1.0).apply(&d, 4);
        for (a, b) in out.images.data().iter().zip(d.images.data()) {
            assert!((a - b).abs() < 1e-5);
        }
        // Zero contrast collapses to the mean.
        let flat = Corruption::Contrast(0.0).apply(&d, 4);
        assert!(flat.images.variance() < 1e-8);
    }

    #[test]
    fn corruption_is_deterministic_in_seed() {
        let d = data();
        let a = Corruption::GaussianNoise(0.3).apply(&d, 7);
        let b = Corruption::GaussianNoise(0.3).apply(&d, 7);
        assert_eq!(a.images, b.images);
        let c = Corruption::GaussianNoise(0.3).apply(&d, 8);
        assert_ne!(a.images, c.images);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dropout_rejects_invalid_probability() {
        Corruption::PixelDropout(1.5).apply(&data(), 0);
    }
}
