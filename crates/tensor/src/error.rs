//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// Result alias used throughout the tensor crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction and tensor operations.
///
/// All shape-sensitive operations validate their arguments and return a
/// variant of this enum rather than panicking, so callers can surface
/// configuration mistakes (wrong layer sizes, mismatched batches) cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of data elements does not match the product of dimensions.
    DataLength {
        /// Expected number of elements (product of the shape's dims).
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two shapes that had to match (element-wise op, reshape target) differ.
    ShapeMismatch {
        /// Left-hand / expected shape.
        left: Vec<usize>,
        /// Right-hand / actual shape.
        right: Vec<usize>,
    },
    /// Two shapes cannot be broadcast together.
    BroadcastMismatch {
        /// Left-hand shape.
        left: Vec<usize>,
        /// Right-hand shape.
        right: Vec<usize>,
    },
    /// An axis argument is out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An index is out of range along some axis.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Size of the dimension being indexed.
        size: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// Inner dimensions of a matrix product disagree.
    MatmulDims {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// A convolution / pooling geometry is invalid (e.g. kernel larger than
    /// the padded input, zero stride).
    InvalidGeometry(String),
    /// A generic invalid-argument error with context.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLength { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::BroadcastMismatch { left, right } => {
                write!(
                    f,
                    "shapes {left:?} and {right:?} cannot be broadcast together"
                )
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfRange { index, size } => {
                write!(f, "index {index} out of range for dimension of size {size}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, found rank {actual}")
            }
            TensorError::MatmulDims {
                left_cols,
                right_rows,
            } => {
                write!(
                    f,
                    "matmul inner dimensions disagree: {left_cols} vs {right_rows}"
                )
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TensorError::DataLength {
            expected: 6,
            actual: 5,
        };
        assert_eq!(e.to_string(), "data length 5 does not match shape volume 6");
        let e = TensorError::MatmulDims {
            left_cols: 3,
            right_rows: 4,
        };
        assert!(e.to_string().contains("3 vs 4"));
        let e = TensorError::AxisOutOfRange { axis: 2, rank: 2 };
        assert!(e.to_string().contains("axis 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
