//! # hero-quant
//!
//! Post-training linear uniform weight quantization for the HERO (DAC 2022)
//! reproduction: symmetric/asymmetric grids, per-tensor (per-layer) or
//! per-channel ranges, min-max or percentile calibration, and whole-network
//! fake quantization that touches weight tensors only.
//!
//! The implementation is property-tested against the premise of the paper's
//! Theorem 2: with min-max calibration, `‖W_q − W‖∞ ≤ Δ/2`.
//!
//! # Examples
//!
//! ```
//! use hero_quant::{quantize_tensor, QuantScheme};
//! use hero_tensor::Tensor;
//!
//! # fn main() -> Result<(), hero_tensor::TensorError> {
//! let w = Tensor::from_vec(vec![-0.9, -0.2, 0.3, 0.8], [4])?;
//! let q = quantize_tensor(&w, &QuantScheme::symmetric(4)?)?;
//! let worst = q.values.sub(&w)?.norm_linf();
//! assert!(worst <= q.max_bin_width() / 2.0 + 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod mixed;
mod model;
mod quantizer;
mod scheme;
mod sensitivity;

pub use mixed::{allocate_bits, network_sensitivities, quantize_params_mixed, LayerSensitivity};
pub use model::{quantize_network, quantize_params, ModelQuantReport};
pub use quantizer::{quant_error, quantize_tensor, QuantError, QuantizedTensor};
pub use scheme::{Calibration, Granularity, QuantMode, QuantScheme};
pub use sensitivity::{SensitivityMatrix, StaticSensitivity};
