//! Reproduces Fig. 1: post-training quantization accuracy vs bit width for
//! every (dataset, model) panel, methods HERO / GRAD-L1 / SGD.
//!
//! The checkpoints are the Table 1 models (as in the paper); this binary
//! trains the matrix and prints both the Table 1 row and the Fig. 1 panel
//! for each cell.

use hero_bench::{banner, emit_artifact, scale_from_args};
use hero_core::experiment::{fig1_bits, quant_sweep, run_table1, table1_matrix};
use hero_core::report::{render_fig1_panel, render_table1};

fn main() {
    hero_obs::init_from_env("repro_fig1");
    let scale = scale_from_args();
    banner("Fig. 1 (post-training quantization sweeps)", scale);
    let matrix = table1_matrix();
    let (table, mut models) = run_table1(&matrix, scale).expect("matrix training");
    emit_artifact("table1", render_table1(&table));
    let bits = fig1_bits();
    for ((preset, model), cell) in matrix.iter().zip(models.iter_mut()) {
        let (_, test_set) = preset.load(scale.data);
        let curves: Vec<_> = cell
            .iter_mut()
            .map(|t| quant_sweep(t, &test_set, &bits).expect("quant sweep"))
            .collect();
        emit_artifact(
            &format!("fig1_{}_{}", preset.paper_name(), model.paper_name()),
            render_fig1_panel(preset.paper_name(), model.paper_name(), &curves),
        );
    }
    hero_obs::finish();
}
