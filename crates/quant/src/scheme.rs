//! Quantization scheme description: precision, symmetry, granularity and
//! range calibration.

use hero_tensor::{Result, TensorError};
use std::fmt;

/// Whether the quantization grid is centred on zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantMode {
    /// Zero-centred grid `[-A, A]`; zero is exactly representable. The
    /// common choice for weights and the paper's setting.
    Symmetric,
    /// Affine grid `[min, max]` with a zero point.
    Asymmetric,
}

/// At what granularity ranges are calibrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One range per weight tensor (the paper's per-layer setting).
    PerTensor,
    /// One range per output channel (row of the flattened weight) — the
    /// scheme-design extension discussed in §2.2's related work.
    PerChannel,
}

/// How the clipping range is chosen from the data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Calibration {
    /// Use the exact min/max — nothing clips, so the Theorem 2 premise
    /// `‖W_q − W‖∞ ≤ Δ/2` holds for every weight.
    MinMax,
    /// Clip to the given two-sided quantile (e.g. `0.999`), trading clipped
    /// outliers for a finer grid on the bulk.
    Percentile(f32),
}

/// A complete linear uniform quantization scheme.
///
/// Constructed via [`QuantScheme::symmetric`] / [`QuantScheme::asymmetric`],
/// which validate `1 ≤ bits ≤ 16` up front — a `bits ≥ 32` scheme used to
/// reach [`QuantScheme::levels`]' `1 << bits` and die with a debug-build
/// shift overflow instead of a typed error.
///
/// # Examples
///
/// ```
/// use hero_quant::QuantScheme;
///
/// let s = QuantScheme::symmetric(4).unwrap();
/// assert_eq!(s.bits, 4);
/// assert_eq!(s.levels(), 15); // symmetric grid uses 2^n - 1 levels
/// assert!(QuantScheme::symmetric(32).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantScheme {
    /// Bit width `n`; the grid has at most `2^n` levels.
    pub bits: u8,
    /// Symmetric or asymmetric grid.
    pub mode: QuantMode,
    /// Per-tensor or per-channel ranges.
    pub granularity: Granularity,
    /// Range calibration rule.
    pub calibration: Calibration,
}

impl QuantScheme {
    /// Largest supported bit width. Wider grids gain nothing over `f32`
    /// weights and would overflow the `u32` level arithmetic.
    pub const MAX_BITS: u8 = 16;

    fn validate_bits(bits: u8) -> Result<()> {
        if bits == 0 || bits > Self::MAX_BITS {
            return Err(TensorError::InvalidArgument(format!(
                "quantization bit width {bits} outside the supported 1..={} range",
                Self::MAX_BITS
            )));
        }
        Ok(())
    }

    /// Symmetric per-tensor min-max scheme at `bits` — the paper's
    /// post-training quantization setting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] unless `1 ≤ bits ≤ 16`.
    pub fn symmetric(bits: u8) -> Result<Self> {
        Self::validate_bits(bits)?;
        Ok(QuantScheme {
            bits,
            mode: QuantMode::Symmetric,
            granularity: Granularity::PerTensor,
            calibration: Calibration::MinMax,
        })
    }

    /// Asymmetric per-tensor min-max scheme at `bits`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] unless `1 ≤ bits ≤ 16`.
    pub fn asymmetric(bits: u8) -> Result<Self> {
        Ok(QuantScheme {
            mode: QuantMode::Asymmetric,
            ..QuantScheme::symmetric(bits)?
        })
    }

    /// Switches to per-channel granularity.
    #[must_use]
    pub fn per_channel(mut self) -> Self {
        self.granularity = Granularity::PerChannel;
        self
    }

    /// Switches to percentile calibration at quantile `q` (0.5 < q ≤ 1).
    #[must_use]
    pub fn with_percentile(mut self, q: f32) -> Self {
        self.calibration = Calibration::Percentile(q);
        self
    }

    /// Number of representable levels: `2^n - 1` for symmetric grids
    /// (levels are mirrored around an exact zero), `2^n` for asymmetric.
    /// Shift-safe even for a hand-built scheme with out-of-range `bits`
    /// (the constructors reject those).
    pub fn levels(&self) -> u32 {
        let b = u32::from(self.bits.min(31));
        match self.mode {
            QuantMode::Symmetric => (1u32 << b) - 1,
            QuantMode::Asymmetric => 1u32 << b,
        }
    }

    /// Number of levels on each side of zero for a symmetric grid at
    /// `bits` (`2^(n−1) − 1`, floored at 1), without shift overflow for
    /// any `u8` input.
    pub fn half_levels(bits: u8) -> u32 {
        (((1u64 << u32::from(bits.min(32))) / 2).saturating_sub(1)).max(1) as u32
    }
}

impl fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match self.mode {
            QuantMode::Symmetric => "sym",
            QuantMode::Asymmetric => "asym",
        };
        let gran = match self.granularity {
            Granularity::PerTensor => "per-tensor",
            Granularity::PerChannel => "per-channel",
        };
        write!(f, "{}-bit {mode} {gran}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let s = QuantScheme::symmetric(8).unwrap();
        assert_eq!(s.bits, 8);
        assert_eq!(s.mode, QuantMode::Symmetric);
        assert_eq!(s.granularity, Granularity::PerTensor);
        assert_eq!(s.calibration, Calibration::MinMax);
        let a = QuantScheme::asymmetric(4).unwrap();
        assert_eq!(a.mode, QuantMode::Asymmetric);
    }

    #[test]
    fn levels_match_mode() {
        assert_eq!(QuantScheme::symmetric(8).unwrap().levels(), 255);
        assert_eq!(QuantScheme::asymmetric(8).unwrap().levels(), 256);
        assert_eq!(QuantScheme::symmetric(2).unwrap().levels(), 3);
        assert_eq!(QuantScheme::asymmetric(1).unwrap().levels(), 2);
    }

    #[test]
    fn builders_compose() {
        let s = QuantScheme::symmetric(4)
            .unwrap()
            .per_channel()
            .with_percentile(0.99);
        assert_eq!(s.granularity, Granularity::PerChannel);
        assert_eq!(s.calibration, Calibration::Percentile(0.99));
    }

    #[test]
    fn display_is_descriptive() {
        assert_eq!(
            QuantScheme::symmetric(4).unwrap().to_string(),
            "4-bit sym per-tensor"
        );
        assert_eq!(
            QuantScheme::asymmetric(8)
                .unwrap()
                .per_channel()
                .to_string(),
            "8-bit asym per-channel"
        );
    }
}
