//! # hero-landscape
//!
//! Loss-surface analysis for the HERO (DAC 2022) reproduction: the
//! filter-normalized 2-D contour scans of the paper's Fig. 3 (after Li et
//! al.'s landscape-visualization method) and direct random-perturbation
//! robustness probes over ℓ2 / ℓ∞ balls — the empirical counterpart of
//! Theorems 1-3.
//!
//! # Examples
//!
//! ```
//! use hero_landscape::{scan_2d, LossOracle};
//! use hero_tensor::Tensor;
//!
//! # fn main() -> Result<(), hero_tensor::TensorError> {
//! let mut bowl = |ps: &[Tensor]| Ok(ps[0].norm_l2_sq());
//! let params = vec![Tensor::zeros([2])];
//! let d1 = vec![Tensor::from_vec(vec![1.0, 0.0], [2])?];
//! let d2 = vec![Tensor::from_vec(vec![0.0, 1.0], [2])?];
//! let scan = scan_2d(&mut bowl, &params, &d1, &d2, 1.0, 9)?;
//! assert!(scan.low_loss_fraction(0.5) > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod directions;
mod robustness;
mod sharpness;
mod surface;

pub use directions::{filter_normalize, filter_normalized_direction, random_direction};
pub use robustness::{probe_robustness, robustness_curve, PerturbNorm, RobustnessProbe};
pub use sharpness::{epsilon_sharpness, sam_sharpness};
pub use surface::{scan_1d, scan_2d, LossOracle, SurfaceScan};
