//! Batch normalization with running statistics.

use crate::module::{Layer, ParamInfo, ParamKind, ParamSource, StateSource};
use hero_autodiff::{Graph, Var};
use hero_tensor::{Result, Tensor};
use std::cell::Cell;

thread_local! {
    /// Whether train-mode batch-norm forwards update running statistics.
    ///
    /// Perturbed-gradient methods (SAM, GRAD-L1, HERO) evaluate gradients
    /// at *shifted* weights several times per step; if every evaluation
    /// updated the running estimates, eval-mode normalization would track
    /// the perturbed weights instead of the real ones (a known BN pitfall
    /// of SAM-family methods). The batch oracle disables updates for all
    /// but the first evaluation of each step.
    static UPDATE_RUNNING_STATS: Cell<bool> = const { Cell::new(true) };
}

/// Enables or disables running-statistic updates for train-mode batch
/// norm on this thread. Returns the previous value.
pub fn set_bn_running_stat_updates(on: bool) -> bool {
    UPDATE_RUNNING_STATS.with(|c| c.replace(on))
}

/// Whether train-mode batch norm currently updates running statistics.
pub fn bn_running_stat_updates() -> bool {
    UPDATE_RUNNING_STATS.with(Cell::get)
}

/// 2-D batch normalization over NCHW inputs.
///
/// In training mode the batch statistics normalize the activations (via
/// [`Graph::batch_norm`], which has a full backward rule) and exponentially
/// update the running estimates. In eval mode the stored running statistics
/// are folded into a per-channel affine transform.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
}

impl BatchNorm2d {
    /// Creates a batch norm for `channels` with γ=1, β=0, momentum 0.1.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::ones([channels]),
            beta: Tensor::zeros([channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.numel()
    }

    /// Current running mean estimate.
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Current running variance estimate.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool, vars: &mut Vec<Var>) -> Result<Var> {
        let gamma = g.input(self.gamma.clone_pooled());
        let beta = g.input(self.beta.clone_pooled());
        vars.push(gamma);
        vars.push(beta);
        if train {
            let (y, stats) = g.batch_norm(x, gamma, beta, self.eps)?;
            if bn_running_stat_updates() {
                for (r, &b) in self.running_mean.iter_mut().zip(&stats.mean) {
                    *r = (1.0 - self.momentum) * *r + self.momentum * b;
                }
                for (r, &b) in self.running_var.iter_mut().zip(&stats.var) {
                    *r = (1.0 - self.momentum) * *r + self.momentum * b;
                }
            }
            Ok(y)
        } else {
            // y = gamma * (x - mean) / sqrt(var + eps) + beta, folded into
            // per-channel scale/shift constants broadcast over (N,C,H,W).
            let c = self.channels();
            let mut scale = Tensor::zeros([1, c, 1, 1]);
            let mut shift = Tensor::zeros([1, c, 1, 1]);
            for ch in 0..c {
                let inv = 1.0 / (self.running_var[ch] + self.eps).sqrt();
                // Keep gamma/beta in the graph path so eval still depends on
                // the parameter nodes (useful for perturbation probes).
                scale.data_mut()[ch] = inv;
                shift.data_mut()[ch] = -self.running_mean[ch] * inv;
            }
            let scale_v = g.input(scale);
            let shift_v = g.input(shift);
            let normalized0 = g.mul(x, scale_v)?;
            let normalized = g.add(normalized0, shift_v)?;
            // Reshape gamma/beta to (1,c,1,1) for broadcasting.
            let gamma4 = g.reshape(gamma, [1, c, 1, 1])?;
            let beta4 = g.reshape(beta, [1, c, 1, 1])?;
            let scaled = g.mul(normalized, gamma4)?;
            g.add(scaled, beta4)
        }
    }

    fn collect_params(&self, out: &mut Vec<Tensor>) {
        out.push(self.gamma.clone());
        out.push(self.beta.clone());
    }

    fn assign_params(&mut self, src: &mut ParamSource<'_>) -> Result<()> {
        src.copy_into(&mut self.gamma)?;
        src.copy_into(&mut self.beta)?;
        Ok(())
    }

    fn param_infos(&self, prefix: &str, out: &mut Vec<ParamInfo>) {
        out.push(ParamInfo {
            name: format!("{prefix}.gamma"),
            kind: ParamKind::BnGamma,
        });
        out.push(ParamInfo {
            name: format!("{prefix}.beta"),
            kind: ParamKind::BnBeta,
        });
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn collect_state(&self, prefix: &str, out: &mut Vec<(String, Vec<f32>)>) {
        out.push((format!("{prefix}.running_mean"), self.running_mean.clone()));
        out.push((format!("{prefix}.running_var"), self.running_var.clone()));
    }

    fn assign_state(&mut self, src: &mut StateSource<'_>) -> Result<()> {
        let mean = src.next_buffer(self.running_mean.len())?;
        self.running_mean.copy_from_slice(mean);
        let var = src.next_buffer(self.running_var.len())?;
        self.running_var.copy_from_slice(var);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> Tensor {
        Tensor::from_fn([4, 2, 3, 3], |i| {
            (i[0] * 3 + i[1] * 7 + i[2] + i[3]) as f32 * 0.3 - 2.0
        })
    }

    #[test]
    fn train_mode_normalizes_and_updates_running_stats() {
        let mut bn = BatchNorm2d::new(2);
        let before_mean = bn.running_mean().to_vec();
        let mut g = Graph::new();
        let x = g.input(sample_input());
        let mut vars = Vec::new();
        let y = bn.forward(&mut g, x, true, &mut vars).unwrap();
        assert_eq!(g.value(y).dims(), &[4, 2, 3, 3]);
        assert_ne!(bn.running_mean(), before_mean.as_slice());
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(2);
        // Train several times to move running stats toward batch stats.
        for _ in 0..200 {
            let mut g = Graph::new();
            let x = g.input(sample_input());
            let mut vars = Vec::new();
            bn.forward(&mut g, x, true, &mut vars).unwrap();
        }
        // Eval output should now be close to train-mode normalization.
        let mut g_train = Graph::new();
        let x1 = g_train.input(sample_input());
        let mut v1 = Vec::new();
        let y_train = bn.forward(&mut g_train, x1, true, &mut v1).unwrap();
        let mut g_eval = Graph::new();
        let x2 = g_eval.input(sample_input());
        let mut v2 = Vec::new();
        let y_eval = bn.forward(&mut g_eval, x2, false, &mut v2).unwrap();
        let diff = g_train
            .value(y_train)
            .sub(g_eval.value(y_eval))
            .unwrap()
            .norm_linf();
        assert!(diff < 0.1, "train/eval divergence {diff}");
    }

    #[test]
    fn eval_mode_is_deterministic_and_affine() {
        let mut bn = BatchNorm2d::new(2);
        let mut g = Graph::new();
        let x = g.input(sample_input());
        let mut vars = Vec::new();
        let y = bn.forward(&mut g, x, false, &mut vars).unwrap();
        // Fresh BN has mean 0, var 1 => eval output ~= input (eps shrinks slightly).
        let diff = g.value(y).sub(&sample_input()).unwrap().norm_linf();
        assert!(diff < 1e-3);
    }

    #[test]
    fn params_round_trip_with_kinds() {
        let bn = BatchNorm2d::new(3);
        let mut ps = Vec::new();
        bn.collect_params(&mut ps);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].data(), &[1.0, 1.0, 1.0]);
        assert_eq!(ps[1].data(), &[0.0, 0.0, 0.0]);
        let mut infos = Vec::new();
        bn.param_infos("bn1", &mut infos);
        assert_eq!(infos[0].kind, ParamKind::BnGamma);
        assert_eq!(infos[1].kind, ParamKind::BnBeta);
        assert!(infos[0].name.ends_with("gamma"));
        assert_eq!(bn.channels(), 3);
    }

    #[test]
    fn assign_params_validates_shape() {
        let mut bn = BatchNorm2d::new(3);
        let bad = [Tensor::ones([4]), Tensor::zeros([3])];
        assert!(bn.assign_params(&mut ParamSource::new(&bad)).is_err());
        let good = [Tensor::full([3], 2.0), Tensor::full([3], 0.5)];
        bn.assign_params(&mut ParamSource::new(&good)).unwrap();
        let mut ps = Vec::new();
        bn.collect_params(&mut ps);
        assert_eq!(ps[0].data(), &[2.0, 2.0, 2.0]);
    }
}

#[cfg(test)]
mod stat_freeze_tests {
    use super::*;

    #[test]
    fn frozen_stats_do_not_move() {
        let mut bn = BatchNorm2d::new(2);
        let x_data = Tensor::from_fn([4, 2, 3, 3], |i| (i.iter().sum::<usize>() % 7) as f32);
        let before = bn.running_mean().to_vec();
        let prev = set_bn_running_stat_updates(false);
        {
            let mut g = hero_autodiff::Graph::new();
            let x = g.input(x_data.clone());
            let mut vars = Vec::new();
            bn.forward(&mut g, x, true, &mut vars).unwrap();
        }
        set_bn_running_stat_updates(prev);
        assert_eq!(bn.running_mean(), before.as_slice());
        // With updates re-enabled, stats move again.
        assert!(bn_running_stat_updates());
        let mut g = hero_autodiff::Graph::new();
        let x = g.input(x_data);
        let mut vars = Vec::new();
        bn.forward(&mut g, x, true, &mut vars).unwrap();
        assert_ne!(bn.running_mean(), before.as_slice());
    }
}
