//! Reproduces Table 3: the ablation of HERO vs first-order-only (SAM) vs
//! SGD on the MobileNetV2 stand-in / CIFAR-10 preset, evaluated at 4/6/8
//! bits and full precision.

use hero_bench::{banner, emit_artifact, scale_from_args};
use hero_core::experiment::run_table3;
use hero_core::report::render_table3;

fn main() {
    hero_obs::init_from_env("repro_table3");
    let scale = scale_from_args();
    banner("Table 3 (Hessian-term ablation)", scale);
    let table = run_table3(scale).expect("table 3 runs");
    emit_artifact("table3", render_table3(&table));
    hero_obs::finish();
}
