//! Random probe directions in parameter space, with the filter
//! normalization of Li et al. ("Visualizing the loss landscape of neural
//! nets") that the paper's Fig. 3 uses.

use hero_tensor::rng::Rng;
use hero_tensor::{fill_standard_normal, Result, Tensor, TensorError};

/// Samples a Gaussian direction shaped like `params`.
pub fn random_direction(params: &[Tensor], rng: &mut impl Rng) -> Vec<Tensor> {
    params
        .iter()
        .map(|p| {
            let mut t = Tensor::zeros(p.shape().clone());
            fill_standard_normal(&mut t, rng);
            t
        })
        .collect()
}

/// Applies filter normalization in place: for each parameter tensor, each
/// "filter" (row of a rank-≥2 tensor, the whole tensor otherwise) of the
/// direction is rescaled to the ℓ2 norm of the corresponding weight filter.
///
/// This removes the scale invariance of BN networks so that contours from
/// different training methods are comparable at the same plot scale — the
/// property the paper relies on when comparing Fig. 3(a) and (b).
///
/// # Errors
///
/// Returns a shape error if `direction` is misaligned with `params`.
pub fn filter_normalize(direction: &mut [Tensor], params: &[Tensor]) -> Result<()> {
    if direction.len() != params.len() {
        return Err(TensorError::InvalidArgument(format!(
            "direction has {} tensors for {} params",
            direction.len(),
            params.len()
        )));
    }
    for (d, p) in direction.iter_mut().zip(params) {
        if d.shape() != p.shape() {
            return Err(TensorError::ShapeMismatch {
                left: p.dims().to_vec(),
                right: d.dims().to_vec(),
            });
        }
        if p.rank() >= 2 {
            let rows = p.dims()[0];
            let chunk = p.numel() / rows.max(1);
            for r in 0..rows {
                let range = r * chunk..(r + 1) * chunk;
                let wn = norm_of(&p.data()[range.clone()]);
                let dn = norm_of(&d.data()[range.clone()]);
                let scale = if dn <= f32::MIN_POSITIVE {
                    0.0
                } else {
                    wn / dn
                };
                for v in &mut d.data_mut()[range] {
                    *v *= scale;
                }
            }
        } else {
            let wn = p.norm_l2();
            let dn = d.norm_l2();
            let scale = if dn <= f32::MIN_POSITIVE {
                0.0
            } else {
                wn / dn
            };
            d.scale_in_place(scale);
        }
    }
    Ok(())
}

/// Samples a filter-normalized random direction (the Fig. 3 probe).
///
/// # Errors
///
/// Never fails for well-formed params; propagates internal shape errors.
pub fn filter_normalized_direction(params: &[Tensor], rng: &mut impl Rng) -> Result<Vec<Tensor>> {
    let mut d = random_direction(params, rng);
    filter_normalize(&mut d, params)?;
    Ok(d)
}

fn norm_of(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_tensor::rng::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn random_direction_matches_shapes() {
        let params = vec![Tensor::zeros([3, 4]), Tensor::zeros([5])];
        let d = random_direction(&params, &mut rng());
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].dims(), &[3, 4]);
        assert_eq!(d[1].dims(), &[5]);
        assert!(d[0].norm_l2() > 0.0);
    }

    #[test]
    fn filter_normalize_matches_row_norms() {
        let params = vec![Tensor::from_vec(vec![3.0, 4.0, 0.3, 0.4], [2, 2]).unwrap()];
        let mut d = random_direction(&params, &mut rng());
        filter_normalize(&mut d, &params).unwrap();
        // Row 0 of direction has norm 5, row 1 has norm 0.5.
        let r0 = norm_of(&d[0].data()[..2]);
        let r1 = norm_of(&d[0].data()[2..]);
        assert!((r0 - 5.0).abs() < 1e-4);
        assert!((r1 - 0.5).abs() < 1e-4);
    }

    #[test]
    fn filter_normalize_rank1_uses_whole_tensor() {
        let params = vec![Tensor::from_vec(vec![0.6, 0.8], [2]).unwrap()];
        let mut d = vec![Tensor::from_vec(vec![5.0, 0.0], [2]).unwrap()];
        filter_normalize(&mut d, &params).unwrap();
        assert!((d[0].norm_l2() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_weight_filter_zeroes_direction() {
        let params = vec![Tensor::zeros([2, 2])];
        let mut d = random_direction(&params, &mut rng());
        filter_normalize(&mut d, &params).unwrap();
        assert_eq!(d[0].norm_l2(), 0.0);
    }

    #[test]
    fn validates_alignment() {
        let params = vec![Tensor::zeros([2])];
        let mut wrong_count = vec![];
        assert!(filter_normalize(&mut wrong_count, &params).is_err());
        let mut wrong_shape = vec![Tensor::zeros([3])];
        assert!(filter_normalize(&mut wrong_shape, &params).is_err());
    }

    #[test]
    fn normalized_direction_scales_with_weights() {
        // Doubling the weights doubles the normalized direction.
        let p1 = vec![Tensor::from_fn([4, 3], |i| {
            (i[0] + i[1]) as f32 * 0.1 + 0.1
        })];
        let p2 = vec![p1[0].scale(2.0)];
        let d1 = filter_normalized_direction(&p1, &mut rng()).unwrap();
        let d2 = filter_normalized_direction(&p2, &mut rng()).unwrap();
        assert!((d2[0].norm_l2() / d1[0].norm_l2() - 2.0).abs() < 0.5);
    }
}
