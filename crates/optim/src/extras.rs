//! Optimizer extras: warmup scheduling, Nesterov momentum and global
//! gradient clipping. These are not needed to reproduce the paper's main
//! results but round out the training toolbox (and are exercised by the
//! ablation benches).

use crate::schedule::LrSchedule;
use hero_tensor::{global_norm_l2, Result, Tensor, TensorError};

/// Wraps a base schedule with linear warmup over the first `warmup_steps`.
///
/// # Examples
///
/// ```
/// use hero_optim::{LrSchedule, Warmup};
///
/// let s = Warmup::new(LrSchedule::Constant { lr: 0.1 }, 10);
/// assert!(s.at(0) < 0.02);
/// assert_eq!(s.at(10), 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Warmup {
    base: LrSchedule,
    warmup_steps: usize,
}

impl Warmup {
    /// Creates a warmup wrapper around `base`.
    pub fn new(base: LrSchedule, warmup_steps: usize) -> Self {
        Warmup { base, warmup_steps }
    }

    /// Learning rate at `step`: linearly ramps from `base.at(0)/w` to the
    /// base schedule over the warmup window, then follows the base
    /// schedule shifted by the window.
    pub fn at(&self, step: usize) -> f32 {
        if self.warmup_steps == 0 {
            return self.base.at(step);
        }
        if step < self.warmup_steps {
            let frac = (step + 1) as f32 / self.warmup_steps as f32;
            self.base.at(0) * frac
        } else {
            self.base.at(step - self.warmup_steps)
        }
    }
}

/// Nesterov-accelerated momentum state: the gradient is evaluated by the
/// caller, and the update applies the look-ahead form
/// `v ← μv + g; p ← p − lr·(g + μv)`.
#[derive(Debug, Clone)]
pub struct NesterovState {
    momentum: f32,
    buffers: Option<Vec<Tensor>>,
}

impl NesterovState {
    /// Creates a Nesterov momentum state.
    pub fn new(momentum: f32) -> Self {
        NesterovState {
            momentum,
            buffers: None,
        }
    }

    /// Applies one Nesterov update in place.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `params` and `grads` are misaligned.
    pub fn update(&mut self, params: &mut [Tensor], grads: &[Tensor], lr: f32) -> Result<()> {
        if params.len() != grads.len() {
            return Err(TensorError::InvalidArgument(format!(
                "{} params but {} grads",
                params.len(),
                grads.len()
            )));
        }
        let buffers = self.buffers.get_or_insert_with(|| {
            grads
                .iter()
                .map(|g| Tensor::zeros(g.shape().clone()))
                .collect()
        });
        for ((p, g), v) in params.iter_mut().zip(grads).zip(buffers.iter_mut()) {
            v.scale_in_place(self.momentum);
            v.axpy(1.0, g)?;
            // Look-ahead: g + μ·v
            p.axpy(-lr, g)?;
            p.axpy(-lr * self.momentum, v)?;
        }
        Ok(())
    }

    /// Clears the velocity buffers.
    pub fn reset(&mut self) {
        self.buffers = None;
    }
}

/// Scales the gradient list in place so its global ℓ2 norm is at most
/// `max_norm`. Returns the pre-clipping norm.
///
/// # Panics
///
/// Panics if `max_norm` is not positive — the clip threshold is a fixed
/// hyper-parameter.
pub fn clip_global_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "clip threshold {max_norm} must be positive");
    let norm = global_norm_l2(grads);
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            g.scale_in_place(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_ramps_then_follows_base() {
        let s = Warmup::new(LrSchedule::Constant { lr: 0.2 }, 4);
        assert!((s.at(0) - 0.05).abs() < 1e-6);
        assert!((s.at(1) - 0.10).abs() < 1e-6);
        assert!((s.at(3) - 0.20).abs() < 1e-6);
        assert_eq!(s.at(4), 0.2);
        assert_eq!(s.at(100), 0.2);
    }

    #[test]
    fn warmup_zero_steps_is_passthrough() {
        let base = LrSchedule::Cosine {
            lr: 0.1,
            min_lr: 0.0,
            total_steps: 10,
        };
        let s = Warmup::new(base, 0);
        for step in [0usize, 3, 10] {
            assert_eq!(s.at(step), base.at(step));
        }
    }

    #[test]
    fn warmup_is_monotone_through_the_ramp() {
        let s = Warmup::new(LrSchedule::paper_default(100), 10);
        let mut prev = 0.0;
        for step in 0..10 {
            let v = s.at(step);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn nesterov_converges_faster_than_heavy_ball_on_ill_conditioned() {
        // Minimize 0.5 * (x1^2 + 25 x2^2).
        let grad =
            |p: &Tensor| Tensor::from_vec(vec![p.data()[0], 25.0 * p.data()[1]], [2]).unwrap();
        let run_nesterov = || {
            let mut s = NesterovState::new(0.9);
            let mut p = vec![Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap()];
            for _ in 0..60 {
                let g = vec![grad(&p[0])];
                s.update(&mut p, &g, 0.02).unwrap();
            }
            p[0].norm_l2()
        };
        let run_plain = || {
            let mut p = [Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap()];
            for _ in 0..60 {
                let g = grad(&p[0]);
                p[0].axpy(-0.02, &g).unwrap();
            }
            p[0].norm_l2()
        };
        assert!(run_nesterov() < run_plain());
    }

    #[test]
    fn nesterov_validates_and_resets() {
        let mut s = NesterovState::new(0.9);
        let mut p = vec![Tensor::zeros([2])];
        assert!(s.update(&mut p, &[], 0.1).is_err());
        let g = vec![Tensor::ones([2])];
        s.update(&mut p, &g, 0.1).unwrap();
        s.reset();
        let mut p2 = vec![Tensor::zeros([2])];
        s.update(&mut p2, &g, 0.1).unwrap();
        // First post-reset step: p = -lr*(g + mu*g) = -0.1*1.9
        assert!((p2[0].data()[0] + 0.19).abs() < 1e-6);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut g = vec![Tensor::from_vec(vec![0.3, 0.4], [2]).unwrap()];
        let norm = clip_global_norm(&mut g, 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(g[0].data(), &[0.3, 0.4]);
    }

    #[test]
    fn clip_rescales_large_gradients_to_threshold() {
        let mut g = vec![
            Tensor::from_vec(vec![3.0, 0.0], [2]).unwrap(),
            Tensor::from_vec(vec![0.0, 4.0], [2]).unwrap(),
        ];
        let norm = clip_global_norm(&mut g, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((global_norm_l2(&g) - 1.0).abs() < 1e-5);
        // Direction preserved.
        assert!((g[0].data()[0] - 0.6).abs() < 1e-6);
        assert!((g[1].data()[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn clip_rejects_nonpositive_threshold() {
        clip_global_norm(&mut [Tensor::ones([1])], 0.0);
    }
}
