//! One Criterion bench per paper table/figure, each timing a scaled-down
//! cell of the corresponding experiment (the full-scale reproductions are
//! the `repro_*` binaries; these benches keep the per-experiment machinery
//! measured and exercised under `cargo bench`).

use criterion::{criterion_group, criterion_main, Criterion};
use hero_core::experiment::{
    landscape_scan, quant_sweep, train_cell, train_on, MethodKind, Scale,
};
use hero_data::{inject_symmetric_noise, Preset};
use hero_nn::models::ModelKind;

/// The miniature scale used by the per-table benches.
fn bench_scale() -> Scale {
    Scale { data: 0.12, epochs_small: 2, epochs_large: 1 }
}

fn bench_table1_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("train_cell_resnet_c10_hero", |b| {
        b.iter(|| {
            train_cell(Preset::C10, ModelKind::Resnet, MethodKind::Hero, bench_scale(), 0)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_table2_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let scale = bench_scale();
    let (clean, test) = Preset::C10.load(scale.data);
    let mut noisy = clean.clone();
    inject_symmetric_noise(&mut noisy, 0.4, 7);
    group.bench_function("noisy_label_cell_resnet_40pct", |b| {
        b.iter(|| {
            train_on(&noisy, &test, Preset::C10, ModelKind::Resnet, MethodKind::Hero, scale, 0)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_table3_and_fig1_quant_sweep(c: &mut Criterion) {
    let scale = bench_scale();
    let mut trained =
        train_cell(Preset::C10, ModelKind::Mobilenet, MethodKind::Sgd, scale, 0).unwrap();
    let (_, test) = Preset::C10.load(scale.data);
    let mut group = c.benchmark_group("fig1_table3");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("quant_sweep_mobilenet_5bits", |b| {
        b.iter(|| quant_sweep(&mut trained, &test, &[3, 4, 5, 6, 8]).unwrap())
    });
    group.finish();
}

fn bench_fig2_probe(c: &mut Criterion) {
    let scale = bench_scale();
    let mut trained =
        train_cell(Preset::C10, ModelKind::Resnet, MethodKind::Sgd, scale, 0).unwrap();
    let (train_set, _) = Preset::C10.load(scale.data);
    let config = hero_core::TrainConfig::new(MethodKind::Sgd.tuned(), 1);
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("hessian_norm_probe", |b| {
        b.iter(|| {
            hero_core::probe_hessian_norm(&mut trained.net, &train_set, &config).unwrap()
        })
    });
    group.finish();
}

fn bench_fig3_scan(c: &mut Criterion) {
    let scale = bench_scale();
    let mut trained =
        train_cell(Preset::C10, ModelKind::Resnet, MethodKind::Sgd, scale, 0).unwrap();
    let (train_set, _) = Preset::C10.load(scale.data);
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("landscape_scan_7x7", |b| {
        b.iter(|| landscape_scan(&mut trained, &train_set, 1.0, 7, 3).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1_cell,
    bench_table2_cell,
    bench_table3_and_fig1_quant_sweep,
    bench_fig2_probe,
    bench_fig3_scan
);
criterion_main!(benches);
