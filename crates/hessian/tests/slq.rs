//! Correctness suite for the spectrum observatory estimators: SLQ density
//! moments against exact diagonal spectra, per-layer trace consistency,
//! and degenerate-input behaviour of the Lanczos layer (ISSUE 8).

use hero_hessian::{
    hutchinson_trace, lanczos_spectrum_from, layer_traces, slq_density, GradOracle, Quadratic,
    SlqConfig,
};
use hero_tensor::{Result, Tensor};

/// Exact spectrum {0.5, 1, 2, 4, 8, 16}: checks every density moment the
/// observatory reports against closed-form values.
#[test]
fn slq_moments_match_exact_eigenvalues() {
    let eigs = [0.5f32, 1.0, 2.0, 4.0, 8.0, 16.0];
    let q = Quadratic::diag(&eigs);
    let params = vec![Tensor::zeros([6])];
    let cfg = SlqConfig::default()
        .with_steps(6)
        .with_probes(24)
        .with_seed(3);
    let d = slq_density(&mut q.oracle(), &params, cfg).unwrap();

    let n = eigs.len() as f32;
    let exact_mean: f32 = eigs.iter().sum::<f32>() / n;
    let exact_second: f32 = eigs.iter().map(|l| l * l).sum::<f32>() / n;
    assert!(
        (d.lambda_max.mean - 16.0).abs() < 0.3,
        "λmax {} ± {}",
        d.lambda_max.mean,
        d.lambda_max.std_error
    );
    assert!((d.lambda_min.mean - 0.5).abs() < 0.3);
    assert!(
        (d.mean_eigenvalue.mean - exact_mean).abs() < 0.8,
        "tr/n {} vs {exact_mean}",
        d.mean_eigenvalue.mean
    );
    assert!(
        (d.second_moment.mean - exact_second).abs() < 0.2 * exact_second,
        "Σλ²/n {} vs {exact_second}",
        d.second_moment.mean
    );
    // Every estimate carries a finite standard error from 24 probes.
    for e in [
        d.lambda_max,
        d.lambda_min,
        d.mean_eigenvalue,
        d.second_moment,
    ] {
        assert_eq!(e.samples, 24);
        assert!(e.std_error.is_finite());
    }
    // The broadened grid is a normalized density.
    assert!((d.grid_moment(0) - 1.0).abs() < 0.05);
}

/// Splits a flat 6-dim quadratic into three "layers" of 2 params each.
fn layered_oracle(eigs: &'static [f32]) -> impl FnMut(&[Tensor]) -> Result<(f32, Vec<Tensor>)> {
    move |ps: &[Tensor]| {
        let q = Quadratic::diag(eigs);
        let flat: Vec<f32> = ps.iter().flat_map(|t| t.data().iter().copied()).collect();
        let x = vec![Tensor::from_vec(flat, [eigs.len()])?];
        let (l, g) = q.oracle().grad(&x)?;
        let gd = g[0].data();
        let mut out = Vec::new();
        let mut off = 0;
        for p in ps {
            let len = p.numel();
            out.push(Tensor::from_vec(gd[off..off + len].to_vec(), [len])?);
            off += len;
        }
        Ok((l, out))
    }
}

#[test]
fn layer_traces_sum_to_global_trace() {
    static EIGS: [f32; 6] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
    let mut oracle = layered_oracle(&EIGS);
    let params = vec![Tensor::zeros([2]), Tensor::zeros([2]), Tensor::zeros([2])];
    let per_layer = layer_traces(&mut oracle, &params, 4, 1e-3, 11).unwrap();
    assert_eq!(per_layer.len(), 3);
    // Diagonal blocks: traces 3, 7, 11 (exact under Rademacher probes).
    for (t, want) in per_layer.iter().zip(&[3.0f32, 7.0, 11.0]) {
        assert!((t.mean - want).abs() < 0.05, "{t:?} vs {want}");
    }
    let total: f32 = per_layer.iter().map(|t| t.mean).sum();
    let global = hutchinson_trace(&mut oracle, &params, 4, 1e-3, 11).unwrap();
    assert!(
        (total - global.mean).abs() < 0.1,
        "layer sum {total} vs global {}",
        global.mean
    );
}

#[test]
fn lanczos_handles_repeated_eigenvalues() {
    // Spectrum {2, 2, 2, 5}: full reorthogonalization must not mint ghost
    // copies — the Krylov space has dimension 2, so iteration breaks down
    // early and reports exactly the two distinct eigenvalues.
    let q = Quadratic::diag(&[2.0, 2.0, 2.0, 5.0]);
    let params = vec![Tensor::zeros([4])];
    let v0 = vec![Tensor::from_vec(vec![0.5; 4], [4]).unwrap()];
    let res = lanczos_spectrum_from(&mut q.oracle(), &params, &v0, 4, 1e-3).unwrap();
    assert!(res.steps <= 2, "Krylov dim 2, ran {} steps", res.steps);
    assert!(
        (res.lambda_min() - 2.0).abs() < 0.05,
        "{}",
        res.lambda_min()
    );
    assert!(
        (res.lambda_max() - 5.0).abs() < 0.05,
        "{}",
        res.lambda_max()
    );
    assert!(res.ritz_values.iter().all(|v| v.is_finite()));
    let wsum: f32 = res.weights.iter().sum();
    assert!((wsum - 1.0).abs() < 1e-3);
}

#[test]
fn lanczos_steps_beyond_dimension_break_down_cleanly() {
    // k > dim: the Krylov space is exhausted after `dim` steps; the run
    // must stop early with finite Ritz values, not a NaN tridiagonal.
    let q = Quadratic::diag(&[1.0, 4.0, 9.0]);
    let params = vec![Tensor::zeros([3])];
    let v0 = vec![Tensor::from_vec(vec![1.0, 1.0, 1.0], [3]).unwrap()];
    let res = lanczos_spectrum_from(&mut q.oracle(), &params, &v0, 12, 1e-3).unwrap();
    assert!(res.steps <= 3, "dim 3, ran {} steps", res.steps);
    assert!(res.ritz_values.iter().all(|v| v.is_finite()));
    assert!((res.lambda_max() - 9.0).abs() < 0.1);
    assert!((res.lambda_min() - 1.0).abs() < 0.1);
}

#[test]
fn lanczos_zero_probe_is_a_clean_error() {
    let q = Quadratic::diag(&[1.0, 2.0]);
    let params = vec![Tensor::zeros([2])];
    let v0 = vec![Tensor::zeros([2])];
    let err = lanczos_spectrum_from(&mut q.oracle(), &params, &v0, 2, 1e-3).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("norm"), "unexpected error: {msg}");
}

#[test]
fn lanczos_non_finite_probe_is_a_clean_error() {
    let q = Quadratic::diag(&[1.0, 2.0]);
    let params = vec![Tensor::zeros([2])];
    let v0 = vec![Tensor::from_vec(vec![f32::NAN, 1.0], [2]).unwrap()];
    assert!(lanczos_spectrum_from(&mut q.oracle(), &params, &v0, 2, 1e-3).is_err());
}

#[test]
fn lanczos_nan_gradients_are_a_clean_error() {
    // An oracle that returns NaN gradients must surface as an error, not
    // as NaN Ritz values.
    let mut oracle = |ps: &[Tensor]| {
        Ok((
            f32::NAN,
            vec![Tensor::from_vec(
                vec![f32::NAN; ps[0].numel()],
                [ps[0].numel()],
            )?],
        ))
    };
    let params = vec![Tensor::zeros([2])];
    let v0 = vec![Tensor::from_vec(vec![1.0, 0.0], [2]).unwrap()];
    let err = lanczos_spectrum_from(&mut oracle, &params, &v0, 2, 1e-3).unwrap_err();
    assert!(format!("{err}").contains("non-finite"));
}
