//! Structured diagnostics emitted by the tape verifier.

use crate::interval::Interval;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The tape is inefficient or suspicious but executable (dead nodes,
    /// unused parameters, constant-foldable subgraphs).
    Warning,
    /// The tape is malformed: executing or differentiating it would panic,
    /// corrupt gradients, or silently produce wrong values.
    Error,
}

/// Machine-readable defect category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiagCode {
    /// A parent index is `>=` the tape length.
    ParentOutOfRange,
    /// A parent index is `>=` the node's own index (topological-order
    /// violation; the tape must be append-ordered).
    ForwardReference,
    /// A node's recorded `index` disagrees with its tape position.
    IndexMismatch,
    /// An operand has the wrong rank.
    RankMismatch,
    /// Matmul inner dimensions disagree.
    MatmulDimMismatch,
    /// Binary-op operand shapes cannot broadcast together.
    BroadcastIncompatible,
    /// Reshape does not conserve the element count.
    ReshapeCountMismatch,
    /// The recorded output shape disagrees with the shape implied by the
    /// op and its operands.
    ShapeMismatch,
    /// Convolution geometry disagrees with the operand shapes.
    ConvGeometryMismatch,
    /// Pooling geometry disagrees with the operand shapes.
    PoolGeometryMismatch,
    /// A classification loss recorded a label count that differs from the
    /// logits batch.
    LabelCountMismatch,
    /// A saved routing index (max-pool argmax) points outside its source.
    ArgIndexOutOfRange,
    /// A node records the wrong number of operands for its op.
    ArityMismatch,
    /// The node cannot reach any root (its value is computed and thrown
    /// away).
    DeadNode,
    /// A leaf that nothing consumes.
    UnusedParameter,
    /// The subgraph rooted here depends on no variable input and could be
    /// computed once instead of every step.
    ConstantFoldable,
    /// The node's statically derived value interval exceeds the
    /// representable uniform-quantization range at one of the requested
    /// bit widths — post-training quantization would clip it.
    QuantClipRisk,
    /// The node's input interval lies entirely inside a zero-gradient
    /// region of its activation (ReLU/ReLU6/sigmoid/tanh), so the backward
    /// pass through it is statically dead.
    SaturationDeadZone,
    /// The accumulated gradient-magnitude bound crosses the configured
    /// explosion threshold at this node.
    ScaleExplosion,
    /// The accumulated gradient-magnitude bound falls below the configured
    /// vanishing threshold at this node.
    ScaleVanishing,
    /// The interval pass derived a range reaching ±inf or NaN for this
    /// node.
    NonFiniteRange,
    /// The propagated quantization-noise bound exceeds the node's value
    /// interval width: at this point of the network the quantization error
    /// is statically indistinguishable from the signal.
    QuantNoiseDominant,
    /// The certified end-to-end quantization-error bound at a root exceeds
    /// the declared error budget.
    QuantErrorBudgetExceeded,
}

impl DiagCode {
    /// Stable kebab-case name used in rendered diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            DiagCode::ParentOutOfRange => "parent-out-of-range",
            DiagCode::ForwardReference => "forward-reference",
            DiagCode::IndexMismatch => "index-mismatch",
            DiagCode::RankMismatch => "rank-mismatch",
            DiagCode::MatmulDimMismatch => "matmul-dim-mismatch",
            DiagCode::BroadcastIncompatible => "broadcast-incompatible",
            DiagCode::ReshapeCountMismatch => "reshape-count-mismatch",
            DiagCode::ShapeMismatch => "shape-mismatch",
            DiagCode::ConvGeometryMismatch => "conv-geometry-mismatch",
            DiagCode::PoolGeometryMismatch => "pool-geometry-mismatch",
            DiagCode::LabelCountMismatch => "label-count-mismatch",
            DiagCode::ArgIndexOutOfRange => "arg-index-out-of-range",
            DiagCode::ArityMismatch => "arity-mismatch",
            DiagCode::DeadNode => "dead-node",
            DiagCode::UnusedParameter => "unused-parameter",
            DiagCode::ConstantFoldable => "constant-foldable",
            DiagCode::QuantClipRisk => "quant-clip-risk",
            DiagCode::SaturationDeadZone => "saturation-dead-zone",
            DiagCode::ScaleExplosion => "scale-explosion",
            DiagCode::ScaleVanishing => "scale-vanishing",
            DiagCode::NonFiniteRange => "non-finite-range",
            DiagCode::QuantNoiseDominant => "quant-noise-dominant",
            DiagCode::QuantErrorBudgetExceeded => "quant-error-budget-exceeded",
        }
    }

    /// The severity class this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::DeadNode
            | DiagCode::UnusedParameter
            | DiagCode::ConstantFoldable
            | DiagCode::QuantClipRisk
            | DiagCode::QuantNoiseDominant
            | DiagCode::QuantErrorBudgetExceeded
            | DiagCode::ScaleExplosion
            | DiagCode::ScaleVanishing => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One verifier finding, pinned to a tape node.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Tape index of the offending node.
    pub node: usize,
    /// Op name of the offending node.
    pub op: String,
    /// Defect category.
    pub code: DiagCode,
    /// Human-readable explanation with the offending values.
    pub message: String,
    /// Chain of node indices from the offending node toward a leaf
    /// (first-parent walk, bounded length) — the op pipeline that produced
    /// the bad operand.
    pub provenance: Vec<usize>,
}

impl Diagnostic {
    /// The severity implied by the diagnostic's code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{kind}[{}] node #{} ({}): {}",
            self.code.name(),
            self.node,
            self.op,
            self.message
        )?;
        if self.provenance.len() > 1 {
            let chain: Vec<String> = self.provenance.iter().map(|i| format!("#{i}")).collect();
            write!(f, " [provenance: {}]", chain.join(" <- "))?;
        }
        Ok(())
    }
}

/// Per-node results of the value-level passes, kept on the [`Report`] so
/// renderers (the colored DOT output, the CLI pre-flight) can show ranges
/// next to diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValueAnalysis {
    /// Forward interval per tape node (index-aligned with the tape).
    pub intervals: Vec<Interval>,
    /// Backward gradient-magnitude upper bound per tape node; `0` for
    /// nodes the loss cannot reach.
    pub grad_bounds: Vec<f32>,
    /// Propagated quantization-noise bound per tape node (index-aligned);
    /// empty when no noise seeds were supplied. This is the *tightened*
    /// cell: the relational zonotope enclosure intersected with the
    /// interval-domain cell, so it is always contained in
    /// [`ValueAnalysis::noise_interval`].
    pub noise: Vec<Interval>,
    /// The plain interval-domain noise bound per tape node, kept for
    /// domain-tightness comparison (`hero preflight --tightness`);
    /// empty when no noise seeds were supplied.
    pub noise_interval: Vec<Interval>,
}

/// Everything the analyzer found on one tape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All findings, in tape order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of nodes inspected.
    pub nodes: usize,
    /// Results of the value-level passes, when they ran (value options
    /// supplied and no structural errors blocked them).
    pub value: Option<ValueAnalysis>,
}

impl Report {
    /// Findings that make the tape unexecutable or numerically wrong.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Efficiency/suspicion findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// True if at least one error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// True if nothing at all was flagged.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if a finding with the given code exists on the given node.
    pub fn flags(&self, node: usize, code: DiagCode) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.node == node && d.code == code)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tape report: {} nodes, {} errors, {} warnings",
            self.nodes,
            self.errors().count(),
            self.warnings().count()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}
