//! Reproduces Table 1: clean test accuracy for HERO / GRAD-L1 / SGD over
//! the full (dataset, model) matrix.

use hero_bench::{banner, emit_artifact, scale_from_args};
use hero_core::experiment::{run_table1, table1_matrix};
use hero_core::report::render_table1;

fn main() {
    hero_obs::init_from_env("repro_table1");
    let scale = scale_from_args();
    banner("Table 1 (test accuracy)", scale);
    let (table, _) = run_table1(&table1_matrix(), scale).expect("table 1 runs");
    emit_artifact("table1", render_table1(&table));
    hero_obs::finish();
}
