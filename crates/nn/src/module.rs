//! The [`Layer`] abstraction, parameter metadata and [`Sequential`]
//! composition.

use hero_autodiff::{Graph, Var};
use hero_tensor::{Result, Tensor, TensorError};

/// What role a parameter tensor plays in its layer.
///
/// HERO's components treat kinds differently: weight decay and post-training
/// quantization apply to `Weight` tensors, while biases and batch-norm
/// affine parameters stay full precision (the setting of the paper, which
/// quantizes weights only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Dense or convolutional weight matrix/kernel.
    Weight,
    /// Additive bias.
    Bias,
    /// Batch-norm scale (γ).
    BnGamma,
    /// Batch-norm shift (β).
    BnBeta,
}

impl ParamKind {
    /// True for tensors that linear uniform quantization applies to.
    pub fn is_quantizable(self) -> bool {
        matches!(self, ParamKind::Weight)
    }

    /// True for tensors that weight decay applies to (standard practice:
    /// decay weights, not biases or norm parameters).
    pub fn is_decayed(self) -> bool {
        matches!(self, ParamKind::Weight)
    }
}

/// Metadata describing one parameter tensor in canonical order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamInfo {
    /// Dotted path such as `"stage1.block0.conv1.weight"`.
    pub name: String,
    /// Role of the tensor.
    pub kind: ParamKind,
}

/// A neural-network building block with owned parameters.
///
/// A layer contributes its parameters to a fresh [`Graph`] on every forward
/// call (define-by-run); the `vars` list receives the graph handle of each
/// parameter in the same canonical order that [`Layer::collect_params`]
/// emits tensors, which is what lets optimizers map gradients back onto
/// parameters.
///
/// Layers are `Send` and cloneable through [`Layer::clone_box`] so a
/// [`Network`] can be replicated into per-thread workers by the
/// data-parallel executor (`hero-parallel`).
pub trait Layer: std::fmt::Debug + Send {
    /// Builds this layer's forward computation.
    ///
    /// `train` selects training behaviour (e.g. batch-norm batch
    /// statistics); parameter graph handles are appended to `vars`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `x` is incompatible with the layer.
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool, vars: &mut Vec<Var>) -> Result<Var>;

    /// Appends snapshot clones of the parameter tensors in canonical order.
    fn collect_params(&self, out: &mut Vec<Tensor>);

    /// Overwrites parameters from `src` in canonical order.
    ///
    /// # Errors
    ///
    /// Returns an error if `src` runs dry or a tensor has the wrong shape.
    fn assign_params(&mut self, src: &mut ParamSource<'_>) -> Result<()>;

    /// Appends metadata for each parameter; `prefix` is the dotted path of
    /// the enclosing scope.
    fn param_infos(&self, prefix: &str, out: &mut Vec<ParamInfo>);

    /// Deep-copies this layer behind a fresh box (object-safe `Clone`).
    ///
    /// Replicas carry independent parameter storage and layer state
    /// (batch-norm running statistics), which is what per-worker model
    /// replicas need. Layers whose state includes a forward-advancing RNG
    /// (see [`Layer::rng_stateful`]) are rejected by the data-parallel
    /// executor: each replica's RNG copy would advance on whichever worker
    /// happens to run it, making results scheduling-dependent.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// True when this layer (or any child) owns RNG state that advances
    /// during training-mode forward passes — e.g. [`crate::Dropout`].
    /// Such layers break the data-parallel executor's bitwise-determinism
    /// contract, so `hero-parallel` refuses to replicate networks
    /// containing them. Defaults to `false`.
    fn rng_stateful(&self) -> bool {
        false
    }

    /// Appends named non-parameter state buffers (batch-norm running
    /// statistics) as `(dotted_path, values)` pairs. `prefix` is the
    /// dotted path of the enclosing scope, exactly as in
    /// [`Layer::param_infos`]. Stateless layers keep the default no-op.
    fn collect_state(&self, _prefix: &str, _out: &mut Vec<(String, Vec<f32>)>) {}

    /// Overwrites non-parameter state buffers from `src` in the same
    /// canonical order that [`Layer::collect_state`] emits them.
    ///
    /// # Errors
    ///
    /// Returns an error if `src` runs dry or a buffer length differs.
    fn assign_state(&mut self, _src: &mut StateSource<'_>) -> Result<()> {
        Ok(())
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.as_ref().clone_box()
    }
}

/// Cursor over a flat list of replacement parameter tensors.
#[derive(Debug)]
pub struct ParamSource<'a> {
    tensors: &'a [Tensor],
    cursor: usize,
}

impl<'a> ParamSource<'a> {
    /// Creates a source reading `tensors` front to back.
    pub fn new(tensors: &'a [Tensor]) -> Self {
        ParamSource { tensors, cursor: 0 }
    }

    /// Takes the next tensor, checking it matches `expected`'s shape.
    ///
    /// # Errors
    ///
    /// Returns an error when exhausted or on a shape mismatch.
    pub fn next_like(&mut self, expected: &Tensor) -> Result<Tensor> {
        let t = self.tensors.get(self.cursor).ok_or_else(|| {
            TensorError::InvalidArgument(format!(
                "parameter source exhausted at index {}",
                self.cursor
            ))
        })?;
        if t.shape() != expected.shape() {
            return Err(TensorError::ShapeMismatch {
                left: expected.dims().to_vec(),
                right: t.dims().to_vec(),
            });
        }
        self.cursor += 1;
        Ok(t.clone())
    }

    /// Copies the next tensor into `dst` in place (no allocation) — the
    /// hot-path counterpart of [`ParamSource::next_like`], used so
    /// `set_params` inside the training loop reuses layer storage.
    ///
    /// # Errors
    ///
    /// Returns an error when exhausted or on a shape mismatch.
    pub fn copy_into(&mut self, dst: &mut Tensor) -> Result<()> {
        let t = self.tensors.get(self.cursor).ok_or_else(|| {
            TensorError::InvalidArgument(format!(
                "parameter source exhausted at index {}",
                self.cursor
            ))
        })?;
        dst.copy_from(t)?;
        self.cursor += 1;
        Ok(())
    }

    /// Number of tensors consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// True when every tensor has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.cursor == self.tensors.len()
    }
}

/// Cursor over a flat list of replacement state buffers, the
/// [`ParamSource`] counterpart for [`Layer::assign_state`].
#[derive(Debug)]
pub struct StateSource<'a> {
    buffers: &'a [(String, Vec<f32>)],
    cursor: usize,
}

impl<'a> StateSource<'a> {
    /// Creates a source reading `buffers` front to back.
    pub fn new(buffers: &'a [(String, Vec<f32>)]) -> Self {
        StateSource { buffers, cursor: 0 }
    }

    /// Takes the next buffer, checking its length matches `expected_len`.
    ///
    /// # Errors
    ///
    /// Returns an error when exhausted or on a length mismatch.
    pub fn next_buffer(&mut self, expected_len: usize) -> Result<&'a [f32]> {
        let (name, data) = self.buffers.get(self.cursor).ok_or_else(|| {
            TensorError::InvalidArgument(format!("state source exhausted at index {}", self.cursor))
        })?;
        if data.len() != expected_len {
            return Err(TensorError::InvalidArgument(format!(
                "state buffer `{name}` has {} values, layer expects {expected_len}",
                data.len()
            )));
        }
        self.cursor += 1;
        Ok(data)
    }

    /// Number of buffers consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// True when every buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.cursor == self.buffers.len()
    }
}

/// Runs layers one after another, composing their forward passes.
#[derive(Debug, Default, Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Name of each child (used for parameter paths).
    names: Vec<String>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Appends a named child layer (builder style).
    #[must_use]
    pub fn push(mut self, name: impl Into<String>, layer: impl Layer + 'static) -> Self {
        self.add(name, layer);
        self
    }

    /// Appends a named child layer.
    pub fn add(&mut self, name: impl Into<String>, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
        self.names.push(name.into());
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if there are no children.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, g: &mut Graph, x: Var, train: bool, vars: &mut Vec<Var>) -> Result<Var> {
        let mut cur = x;
        for layer in &mut self.layers {
            cur = layer.forward(g, cur, train, vars)?;
        }
        Ok(cur)
    }

    fn collect_params(&self, out: &mut Vec<Tensor>) {
        for layer in &self.layers {
            layer.collect_params(out);
        }
    }

    fn assign_params(&mut self, src: &mut ParamSource<'_>) -> Result<()> {
        for layer in &mut self.layers {
            layer.assign_params(src)?;
        }
        Ok(())
    }

    fn param_infos(&self, prefix: &str, out: &mut Vec<ParamInfo>) {
        for (layer, name) in self.layers.iter().zip(&self.names) {
            let child = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}.{name}")
            };
            layer.param_infos(&child, out);
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn rng_stateful(&self) -> bool {
        self.layers.iter().any(|l| l.rng_stateful())
    }

    fn collect_state(&self, prefix: &str, out: &mut Vec<(String, Vec<f32>)>) {
        for (layer, name) in self.layers.iter().zip(&self.names) {
            let child = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}.{name}")
            };
            layer.collect_state(&child, out);
        }
    }

    fn assign_state(&mut self, src: &mut StateSource<'_>) -> Result<()> {
        for layer in &mut self.layers {
            layer.assign_state(src)?;
        }
        Ok(())
    }
}

/// A complete trainable network: a [`Sequential`] body whose output is the
/// logits tensor `(batch, classes)`.
///
/// `Network` provides the flat-parameter view the optimizers and the HERO
/// method operate on: [`Network::params`] / [`Network::set_params`]
/// round-trip all parameters in canonical order.
///
/// Cloning a network deep-copies every layer, producing an independent
/// replica — the unit the data-parallel shard workers operate on.
#[derive(Debug, Clone)]
pub struct Network {
    body: Sequential,
    name: String,
}

impl Network {
    /// Wraps a sequential body as a named network.
    pub fn new(name: impl Into<String>, body: Sequential) -> Self {
        Network {
            body,
            name: name.into(),
        }
    }

    /// The network's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the forward graph. Returns the logits node and the graph
    /// handles of every parameter (canonical order).
    ///
    /// # Errors
    ///
    /// Returns shape errors if `x` is incompatible with the first layer.
    pub fn forward(&mut self, g: &mut Graph, x: &Tensor, train: bool) -> Result<(Var, Vec<Var>)> {
        let input = g.input(x.clone_pooled());
        let mut vars = Vec::new();
        let logits = self.body.forward(g, input, train, &mut vars)?;
        Ok((logits, vars))
    }

    /// Snapshot clones of all parameters in canonical order.
    pub fn params(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.body.collect_params(&mut out);
        out
    }

    /// Overwrites all parameters from a canonical-order list.
    ///
    /// # Errors
    ///
    /// Returns an error if the count or any shape differs.
    pub fn set_params(&mut self, params: &[Tensor]) -> Result<()> {
        let mut src = ParamSource::new(params);
        self.body.assign_params(&mut src)?;
        if !src.is_exhausted() {
            return Err(TensorError::InvalidArgument(format!(
                "{} parameter tensors supplied, {} consumed",
                params.len(),
                src.consumed()
            )));
        }
        Ok(())
    }

    /// Metadata for every parameter, aligned with [`Network::params`].
    pub fn param_infos(&self) -> Vec<ParamInfo> {
        let mut out = Vec::new();
        self.body.param_infos("", &mut out);
        out
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.params().iter().map(Tensor::numel).sum()
    }

    /// True when any layer owns RNG state that advances during training
    /// forwards (see [`Layer::rng_stateful`]); such networks cannot be
    /// replicated by the data-parallel executor.
    pub fn rng_stateful(&self) -> bool {
        self.body.rng_stateful()
    }

    /// Named non-parameter state buffers (batch-norm running statistics)
    /// in canonical order — the complement of [`Network::params`] that a
    /// serialized model needs for exact inference reconstruction.
    pub fn state(&self) -> Vec<(String, Vec<f32>)> {
        let mut out = Vec::new();
        self.body.collect_state("", &mut out);
        out
    }

    /// Overwrites all state buffers from a canonical-order list.
    ///
    /// # Errors
    ///
    /// Returns an error if the count or any buffer length differs.
    pub fn set_state(&mut self, state: &[(String, Vec<f32>)]) -> Result<()> {
        let mut src = StateSource::new(state);
        self.body.assign_state(&mut src)?;
        if !src.is_exhausted() {
            return Err(TensorError::InvalidArgument(format!(
                "{} state buffers supplied, {} consumed",
                state.len(),
                src.consumed()
            )));
        }
        Ok(())
    }

    /// Computes logits for `x` without recording gradients (eval mode).
    ///
    /// # Errors
    ///
    /// Returns shape errors if `x` is incompatible with the network.
    pub fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut g = Graph::new();
        let (logits, _) = self.forward(&mut g, x, false)?;
        let out = g.value(logits).clone();
        g.reset();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal test layer: multiplies by a learned scalar-ish vector.
    #[derive(Debug, Clone)]
    struct ScaleLayer {
        w: Tensor,
    }

    impl Layer for ScaleLayer {
        fn forward(
            &mut self,
            g: &mut Graph,
            x: Var,
            _train: bool,
            vars: &mut Vec<Var>,
        ) -> Result<Var> {
            let w = g.input(self.w.clone());
            vars.push(w);
            g.mul(x, w)
        }

        fn collect_params(&self, out: &mut Vec<Tensor>) {
            out.push(self.w.clone());
        }

        fn assign_params(&mut self, src: &mut ParamSource<'_>) -> Result<()> {
            self.w = src.next_like(&self.w)?;
            Ok(())
        }

        fn param_infos(&self, prefix: &str, out: &mut Vec<ParamInfo>) {
            out.push(ParamInfo {
                name: format!("{prefix}.weight"),
                kind: ParamKind::Weight,
            });
        }

        fn clone_box(&self) -> Box<dyn Layer> {
            Box::new(self.clone())
        }
    }

    fn two_layer_network() -> Network {
        let body = Sequential::new()
            .push(
                "a",
                ScaleLayer {
                    w: Tensor::full([3], 2.0),
                },
            )
            .push(
                "b",
                ScaleLayer {
                    w: Tensor::full([3], 0.5),
                },
            );
        Network::new("test", body)
    }

    #[test]
    fn sequential_composes_forwards() {
        let mut net = two_layer_network();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).unwrap();
        let mut g = Graph::new();
        let (out, vars) = net.forward(&mut g, &x, true).unwrap();
        assert_eq!(g.value(out).data(), &[1.0, 2.0, 3.0]); // x * 2 * 0.5
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn params_round_trip() {
        let mut net = two_layer_network();
        let mut ps = net.params();
        assert_eq!(ps.len(), 2);
        ps[0] = Tensor::full([3], 4.0);
        net.set_params(&ps).unwrap();
        assert_eq!(net.params()[0].data(), &[4.0, 4.0, 4.0]);
    }

    #[test]
    fn set_params_validates_count_and_shape() {
        let mut net = two_layer_network();
        let ps = net.params();
        assert!(net.set_params(&ps[..1]).is_err());
        let mut extra = ps.clone();
        extra.push(Tensor::zeros([1]));
        assert!(net.set_params(&extra).is_err());
        let bad = vec![Tensor::zeros([4]), Tensor::zeros([3])];
        assert!(net.set_params(&bad).is_err());
    }

    #[test]
    fn param_infos_have_dotted_paths() {
        let net = two_layer_network();
        let infos = net.param_infos();
        assert_eq!(infos[0].name, "a.weight");
        assert_eq!(infos[1].name, "b.weight");
        assert!(infos.iter().all(|i| i.kind == ParamKind::Weight));
    }

    #[test]
    fn gradients_flow_through_sequential() {
        let mut net = two_layer_network();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).unwrap();
        let mut g = Graph::new();
        let (out, vars) = net.forward(&mut g, &x, true).unwrap();
        let loss = g.sum(out);
        let grads = g.backward(loss).unwrap();
        // d loss / d w_a = x * w_b = [0.5, 1.0, 1.5]
        assert_eq!(grads.get(vars[0]).unwrap().data(), &[0.5, 1.0, 1.5]);
        // d loss / d w_b = x * w_a = [2, 4, 6]
        assert_eq!(grads.get(vars[1]).unwrap().data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn param_kind_policies() {
        assert!(ParamKind::Weight.is_quantizable());
        assert!(!ParamKind::Bias.is_quantizable());
        assert!(!ParamKind::BnGamma.is_quantizable());
        assert!(ParamKind::Weight.is_decayed());
        assert!(!ParamKind::BnBeta.is_decayed());
    }

    #[test]
    fn num_scalars_counts_elements() {
        let net = two_layer_network();
        assert_eq!(net.num_scalars(), 6);
        assert_eq!(net.name(), "test");
    }
}
