//! Concurrency coverage for hero-obs: worker-thread spans must keep their
//! parent attribution when per-thread trees merge into the global
//! aggregate, and the JSONL sink must never interleave partial lines, no
//! matter how many threads emit simultaneously or how often workers are
//! spawned and joined (the data-parallel executor's lifecycle).
#![cfg(not(feature = "obs-off"))]

use hero_obs::json::{parse, Value};
use hero_obs::{span, Event};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes the tests in this binary: they all toggle the global enable
/// flag and the active run.
fn locked() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "hero-obs-conc-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

#[test]
fn worker_spans_keep_parent_attribution_across_threads() {
    let _l = locked();
    hero_obs::enable();
    hero_obs::span::reset();
    const THREADS: usize = 4;
    const ITERS: u64 = 16;
    {
        // The main thread holds an open span the whole time: worker spans
        // must root in their own thread's tree, never nest under it.
        let _main = span("train_step");
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..ITERS {
                        let _root = span("shard_grad");
                        let _fwd = span("forward");
                        let _bwd = span("backward");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
    }
    hero_obs::disable();
    let rows = hero_obs::summary_rows();
    let calls = |path: &str| rows.iter().find(|r| r.path == path).map(|r| r.calls);
    let expected = THREADS as u64 * ITERS;
    assert_eq!(calls("shard_grad"), Some(expected));
    assert_eq!(calls("shard_grad/forward"), Some(expected));
    // `backward` was opened while `forward` was still held, so it
    // attributes as forward's child — nesting survives the merge.
    assert_eq!(calls("shard_grad/forward/backward"), Some(expected));
    assert_eq!(calls("train_step"), Some(1));
    assert!(
        !rows
            .iter()
            .any(|r| r.path.contains("train_step/shard_grad")),
        "worker spans leaked under another thread's open span: {rows:?}"
    );
}

#[test]
fn span_events_carry_distinct_worker_thread_ids() {
    let _l = locked();
    hero_obs::enable_events(100_000);
    hero_obs::span::reset();
    const THREADS: usize = 4;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..8 {
                    let _s = span("shard_grad");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    hero_obs::disable();
    let events = hero_obs::span::events_snapshot();
    let mut tids: Vec<u32> = events
        .iter()
        .filter(|e| e.name == "shard_grad")
        .map(|e| e.tid)
        .collect();
    assert_eq!(tids.len(), THREADS * 8);
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(
        tids.len(),
        THREADS,
        "each worker thread must keep its own trace id"
    );
}

#[test]
fn jsonl_sink_never_interleaves_partial_lines_under_stress() {
    let _l = locked();
    let dir = temp_dir();
    hero_obs::enable();
    hero_obs::span::reset();
    hero_obs::init_run(&dir, "stress").expect("init run");
    const THREADS: u64 = 8;
    const EVENTS_PER_THREAD: u64 = 50;
    // A long, recognizable payload: if two writers ever tore a line, the
    // parse below would see a malformed fragment.
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let payload: String = (0..200).map(|i| (b'a' + (i % 26)) as char).collect();
                for i in 0..EVENTS_PER_THREAD {
                    Event::new("stress")
                        .u64("thread", t)
                        .u64("i", i)
                        .str("payload", &payload)
                        .emit();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("emitter");
    }
    let artifacts = hero_obs::finish().expect("artifacts");
    hero_obs::disable();
    let text = std::fs::read_to_string(&artifacts.trace).expect("read trace");
    assert!(text.ends_with('\n'), "stream must end on a line boundary");
    let mut per_thread = [0u64; THREADS as usize];
    for line in text.lines() {
        let v = parse(line).unwrap_or_else(|e| panic!("torn or malformed JSONL line: {e}\n{line}"));
        if v.get("ev").and_then(Value::as_str) == Some("stress") {
            let t = v.get("thread").and_then(Value::as_f64).expect("thread") as usize;
            assert_eq!(
                v.get("payload").and_then(Value::as_str).map(str::len),
                Some(200)
            );
            per_thread[t] += 1;
        }
    }
    assert_eq!(per_thread, [EVENTS_PER_THREAD; THREADS as usize]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_spawn_join_cycles_keep_event_accounting_exact() {
    let _l = locked();
    hero_obs::enable_events(64); // deliberately small: force drops
    hero_obs::span::reset();
    let mut total = 0u64;
    // The worker-pool lifecycle, repeated: short-lived threads, each
    // flushing its local tree when its root span closes.
    for round in 0..6 {
        let threads = 1 + round % 3;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..10 {
                        let _s = span("cycle");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        total += threads as u64 * 10;
    }
    hero_obs::disable();
    let kept = hero_obs::span::events_snapshot().len() as u64;
    let dropped = hero_obs::span::events_dropped();
    assert_eq!(kept, 64, "buffer must fill to its cap exactly");
    assert_eq!(
        kept + dropped,
        total,
        "every span occurrence is either kept or counted as dropped"
    );
    hero_obs::span::reset();
}
