//! Quadratic test objective with a known Hessian.
//!
//! `f(x) = ½ xᵀ A x + bᵀ x` has gradient `A x + b` and constant Hessian
//! `A`, making it the ground-truth fixture for validating every curvature
//! estimator in this crate and the optimizer behaviour in `hero-optim`.

use hero_tensor::{Result, Tensor, TensorError};

/// A quadratic objective `½ xᵀ A x + bᵀ x` over a single parameter tensor.
#[derive(Debug, Clone)]
pub struct Quadratic {
    /// Symmetric matrix `A` of shape `(n, n)`.
    a: Tensor,
    /// Linear term `b` of shape `(n,)`.
    b: Tensor,
}

impl Quadratic {
    /// Creates a quadratic with the given symmetric matrix and linear term.
    ///
    /// # Errors
    ///
    /// Returns shape errors unless `a` is `(n, n)` and `b` is `(n,)`.
    pub fn new(a: Tensor, b: Tensor) -> Result<Self> {
        if a.rank() != 2 || a.dims()[0] != a.dims()[1] {
            return Err(TensorError::InvalidArgument(format!(
                "A must be square, got {:?}",
                a.dims()
            )));
        }
        if b.rank() != 1 || b.dims()[0] != a.dims()[0] {
            return Err(TensorError::ShapeMismatch {
                left: vec![a.dims()[0]],
                right: b.dims().to_vec(),
            });
        }
        Ok(Quadratic { a, b })
    }

    /// Diagonal quadratic with eigenvalues `diag` and no linear term.
    pub fn diag(diag: &[f32]) -> Self {
        let n = diag.len();
        let a = Tensor::from_fn([n, n], |i| if i[0] == i[1] { diag[i[0]] } else { 0.0 });
        Quadratic {
            a,
            b: Tensor::zeros([n]),
        }
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.b.numel()
    }

    /// The exact largest eigenvalue — only meaningful for diagonal `A`
    /// (returns the largest diagonal entry).
    pub fn max_diag(&self) -> f32 {
        let n = self.dim();
        (0..n)
            .map(|i| self.a.data()[i * n + i])
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Loss at `x`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` has the wrong dimension.
    pub fn loss(&self, x: &Tensor) -> Result<f32> {
        let ax = self.a.matvec(x)?;
        Ok(0.5 * x.dot(&ax)? + self.b.dot(x)?)
    }

    /// Gradient `A x + b` at `x`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` has the wrong dimension.
    pub fn grad(&self, x: &Tensor) -> Result<Tensor> {
        let mut g = self.a.matvec(x)?;
        g.axpy(1.0, &self.b)?;
        Ok(g)
    }

    /// A [`crate::GradOracle`] closure for this objective over a
    /// single-tensor parameter list.
    pub fn oracle(&self) -> impl FnMut(&[Tensor]) -> Result<(f32, Vec<Tensor>)> + '_ {
        move |params: &[Tensor]| {
            let x = params.first().ok_or_else(|| {
                TensorError::InvalidArgument("quadratic oracle needs one tensor".into())
            })?;
            Ok((self.loss(x)?, vec![self.grad(x)?]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_shapes() {
        assert!(Quadratic::new(Tensor::zeros([2, 3]), Tensor::zeros([2])).is_err());
        assert!(Quadratic::new(Tensor::zeros([2, 2]), Tensor::zeros([3])).is_err());
        assert!(Quadratic::new(Tensor::zeros([2, 2]), Tensor::zeros([2])).is_ok());
    }

    #[test]
    fn loss_and_grad_of_diagonal() {
        let q = Quadratic::diag(&[2.0, 8.0]);
        let x = Tensor::from_vec(vec![1.0, 0.5], [2]).unwrap();
        // loss = 0.5*(2*1 + 8*0.25) = 2.0
        assert!((q.loss(&x).unwrap() - 2.0).abs() < 1e-6);
        assert_eq!(q.grad(&x).unwrap().data(), &[2.0, 4.0]);
        assert_eq!(q.dim(), 2);
        assert_eq!(q.max_diag(), 8.0);
    }

    #[test]
    fn linear_term_shifts_gradient() {
        let q = Quadratic::new(
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]).unwrap(),
            Tensor::from_vec(vec![3.0, -1.0], [2]).unwrap(),
        )
        .unwrap();
        let g = q.grad(&Tensor::zeros([2])).unwrap();
        assert_eq!(g.data(), &[3.0, -1.0]);
    }

    #[test]
    fn oracle_evaluates() {
        let q = Quadratic::diag(&[1.0, 1.0]);
        let mut oracle = q.oracle();
        let (l, g) = oracle(&[Tensor::from_vec(vec![3.0, 4.0], [2]).unwrap()]).unwrap();
        assert!((l - 12.5).abs() < 1e-5);
        assert_eq!(g[0].data(), &[3.0, 4.0]);
        assert!(oracle(&[]).is_err());
    }
}
