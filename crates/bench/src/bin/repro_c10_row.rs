//! Re-runs the CIFAR-10 row of Table 1 / Fig. 1 (all three model
//! families) — a focused subset of `repro_fig1` for quick iteration on
//! per-architecture hyper-parameters.
//!
//! `--artifact-dir DIR` backs every training cell with the deterministic
//! model-artifact cache: a warm cache reproduces the row (table and
//! quantization sweeps alike) from saved weights without retraining, and
//! a cold one trains once and fills the cache for the next run.

use hero_bench::{banner, emit_artifact, scale_from_args};
use hero_core::experiment::{fig1_bits, quant_sweep, run_table1, run_table1_cached};
use hero_core::report::{render_fig1_panel, render_table1};
use hero_data::Preset;
use hero_nn::models::ModelKind;
use std::path::PathBuf;

fn artifact_dir_from_args() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--artifact-dir" {
            return args.next().map(PathBuf::from);
        }
    }
    None
}

fn main() {
    hero_obs::init_from_env("repro_c10_row");
    let scale = scale_from_args();
    banner("Table 1 / Fig. 1, CIFAR-10 row", scale);
    let matrix = vec![
        (Preset::C10, ModelKind::Resnet),
        (Preset::C10, ModelKind::Mobilenet),
        (Preset::C10, ModelKind::Vgg),
    ];
    let (table, mut models) = match artifact_dir_from_args() {
        Some(dir) => run_table1_cached(&matrix, scale, &dir).expect("training"),
        None => run_table1(&matrix, scale).expect("training"),
    };
    emit_artifact("table1_c10_row", render_table1(&table));
    let bits = fig1_bits();
    for ((preset, model), cell) in matrix.iter().zip(models.iter_mut()) {
        let (_, test_set) = preset.load(scale.data);
        let curves: Vec<_> = cell
            .iter_mut()
            .map(|t| quant_sweep(t, &test_set, &bits).expect("quant sweep"))
            .collect();
        emit_artifact(
            &format!("fig1_{}_{}", preset.paper_name(), model.paper_name()),
            render_fig1_panel(preset.paper_name(), model.paper_name(), &curves),
        );
    }
    hero_obs::finish();
}
