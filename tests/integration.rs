//! Integration tests spanning the whole stack: data generation → model →
//! training method → quantization → curvature/landscape analysis.

use hero_core::experiment::{
    landscape_scan, model_config, quant_sweep, train_cell, MethodKind, Scale, TrainedModel,
};
use hero_core::{train, TrainConfig};
use hero_data::{inject_symmetric_noise, Preset, SynthGenerator, SynthSpec};
use hero_nn::evaluate_accuracy;
use hero_nn::models::{ModelConfig, ModelKind};
use hero_optim::Method;
use hero_quant::{quantize_network, QuantScheme};
use hero_tensor::rng::StdRng;

/// A tiny-but-real task every integration test shares.
fn tiny_task() -> (hero_data::Dataset, hero_data::Dataset) {
    let spec = SynthSpec {
        classes: 4,
        hw: 8,
        noise_std: 0.3,
        superclasses: 0,
        ..SynthSpec::default()
    };
    SynthGenerator::new(spec).generate(80, 1);
    let gen = SynthGenerator::new(spec);
    gen.train_test(80, 60)
}

fn tiny_config() -> ModelConfig {
    ModelConfig {
        classes: 4,
        in_channels: 3,
        input_hw: 8,
        width: 6,
    }
}

#[test]
fn every_method_trains_every_model_family() {
    let (train_set, test_set) = tiny_task();
    for model in [ModelKind::Resnet, ModelKind::Mobilenet, ModelKind::Vgg] {
        for method in [
            Method::Sgd,
            Method::FirstOrderOnly { h: 0.2 },
            Method::GradL1 { lambda: 1e-4 },
            Method::Hero {
                h: 0.2,
                gamma: 0.01,
            },
        ] {
            let mut net = model.build(tiny_config(), &mut StdRng::seed_from_u64(1));
            let config = TrainConfig::new(method, 2).with_batch_size(16);
            let rec = train(&mut net, &train_set, &test_set, &config)
                .unwrap_or_else(|e| panic!("{model:?}/{} failed: {e}", method.name()));
            assert!(rec.final_test_acc.is_finite());
            assert!(rec.epochs.iter().all(|e| e.train_loss.is_finite()));
            assert!(net.params().iter().all(|p| p.is_finite()));
        }
    }
}

#[test]
fn trained_model_beats_chance_and_survives_8bit_quantization() {
    let (train_set, test_set) = tiny_task();
    let mut net = ModelKind::Resnet.build(tiny_config(), &mut StdRng::seed_from_u64(2));
    let config = TrainConfig::new(Method::Sgd, 12).with_batch_size(16);
    train(&mut net, &train_set, &test_set, &config).unwrap();
    let acc_fp = evaluate_accuracy(&mut net, &test_set.images, &test_set.labels, 32).unwrap();
    assert!(
        acc_fp > 0.5,
        "full-precision acc {acc_fp} barely above 4-class chance"
    );
    let report = quantize_network(&mut net, &QuantScheme::symmetric(8).unwrap()).unwrap();
    assert!(report.worst_linf <= report.max_bin_width / 2.0 + 1e-6);
    let acc_q8 = evaluate_accuracy(&mut net, &test_set.images, &test_set.labels, 32).unwrap();
    assert!(
        (acc_fp - acc_q8).abs() < 0.1,
        "8-bit quantization moved accuracy {acc_fp} -> {acc_q8}"
    );
}

#[test]
fn low_precision_hurts_more_than_high_precision() {
    let (train_set, test_set) = tiny_task();
    let mut net = ModelKind::Resnet.build(tiny_config(), &mut StdRng::seed_from_u64(3));
    let config = TrainConfig::new(Method::Sgd, 12).with_batch_size(16);
    let record = train(&mut net, &train_set, &test_set, &config).unwrap();
    let mut trained = TrainedModel {
        net,
        record,
        method: MethodKind::Sgd,
    };
    let curve = quant_sweep(&mut trained, &test_set, &[2, 8]).unwrap();
    let acc2 = curve.points[0].1;
    let acc8 = curve.points[1].1;
    assert!(
        acc8 >= acc2,
        "8-bit acc {acc8} should be >= 2-bit acc {acc2}"
    );
    assert!(acc8 > 0.5);
}

#[test]
fn hero_records_nonzero_regularizer_on_real_networks() {
    let (train_set, test_set) = tiny_task();
    let mut net = ModelKind::Resnet.build(tiny_config(), &mut StdRng::seed_from_u64(4));
    let config = TrainConfig::new(
        Method::Hero {
            h: 0.2,
            gamma: 0.01,
        },
        2,
    )
    .with_batch_size(16);
    let rec = train(&mut net, &train_set, &test_set, &config).unwrap();
    // G = ||∇L(W+hz) - g||² must be positive on a curved loss surface.
    assert!(rec.epochs.iter().all(|e| e.regularizer > 0.0));
    // HERO costs exactly 3 gradient evaluations per step.
    let steps: usize = 2 * 80usize.div_ceil(16);
    assert_eq!(rec.grad_evals, 3 * steps);
}

#[test]
fn label_noise_reduces_clean_test_accuracy() {
    let (clean, test_set) = tiny_task();
    let mut noisy = clean.clone();
    inject_symmetric_noise(&mut noisy, 0.5, 9);
    let run = |data: &hero_data::Dataset| {
        let mut net = ModelKind::Resnet.build(tiny_config(), &mut StdRng::seed_from_u64(5));
        let config = TrainConfig::new(Method::Sgd, 10).with_batch_size(16);
        train(&mut net, data, &test_set, &config)
            .unwrap()
            .final_test_acc
    };
    let acc_clean = run(&clean);
    let acc_noisy = run(&noisy);
    assert!(
        acc_clean > acc_noisy,
        "clean {acc_clean} should beat 50%-noise {acc_noisy}"
    );
}

#[test]
fn landscape_scan_centers_on_trained_minimum() {
    let scale = Scale {
        data: 0.12,
        epochs_small: 4,
        epochs_large: 1,
    };
    let mut trained =
        train_cell(Preset::C10, ModelKind::Resnet, MethodKind::Sgd, scale, 0).unwrap();
    let (train_set, _) = Preset::C10.load(scale.data);
    let scan = landscape_scan(&mut trained, &train_set, 0.5, 7, 42).unwrap();
    // The centre should be at or near the lowest loss on the grid.
    let min = scan
        .losses
        .iter()
        .flatten()
        .copied()
        .fold(f32::INFINITY, f32::min);
    assert!(
        scan.center_loss <= min + 0.5,
        "centre {} far above grid minimum {min}",
        scan.center_loss
    );
    // The same scan twice is deterministic.
    let scan2 = landscape_scan(&mut trained, &train_set, 0.5, 7, 42).unwrap();
    assert_eq!(scan.losses, scan2.losses);
}

#[test]
fn experiment_cells_are_reproducible() {
    let scale = Scale {
        data: 0.12,
        epochs_small: 2,
        epochs_large: 1,
    };
    let a = train_cell(Preset::C10, ModelKind::Resnet, MethodKind::Hero, scale, 0).unwrap();
    let b = train_cell(Preset::C10, ModelKind::Resnet, MethodKind::Hero, scale, 0).unwrap();
    assert_eq!(a.record.final_test_acc, b.record.final_test_acc);
    assert_eq!(a.net.params(), b.net.params());
}

#[test]
fn model_config_matches_presets() {
    for preset in [Preset::C10, Preset::C100, Preset::In50] {
        let cfg = model_config(preset);
        assert_eq!(cfg.classes, preset.classes());
        assert_eq!(cfg.input_hw, preset.input_hw());
        // A model built from it accepts preset images.
        let mut net = ModelKind::Resnet.build(cfg, &mut StdRng::seed_from_u64(6));
        let (train_set, _) = preset.load(0.02);
        let logits = net.predict(&train_set.images).unwrap();
        assert_eq!(logits.dims(), &[train_set.len(), preset.classes()]);
    }
}
