//! Neural-network operations: convolution, batch norm, pooling and
//! softmax cross-entropy, each with a hand-written backward rule.

use crate::graph::{Graph, Op, Var};
use hero_tensor::{ConvGeometry, Result, Tensor, TensorError};

/// Per-channel batch statistics produced by a training-mode batch norm,
/// used by layers to update running estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Per-channel batch mean.
    pub mean: Vec<f32>,
    /// Per-channel (biased) batch variance.
    pub var: Vec<f32>,
}

impl Graph {
    /// 2-D convolution of an NCHW input with weights `(out_c, in_c*k*k)`.
    /// The output has shape `(n, out_c, out_h, out_w)`.
    ///
    /// # Errors
    ///
    /// Returns shape/geometry errors if the input is not 4-D, the weight is
    /// not 2-D with `in_c*k*k` columns, or `geom` disagrees with the input.
    pub fn conv2d(&mut self, x: Var, w: Var, geom: ConvGeometry) -> Result<Var> {
        let xv = self.value(x);
        if xv.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: xv.rank(),
            });
        }
        let (n, c) = (xv.dims()[0], xv.dims()[1]);
        let wv = self.value(w);
        if wv.rank() != 2 || wv.dims()[1] != c * geom.kernel * geom.kernel {
            return Err(TensorError::ShapeMismatch {
                left: vec![
                    wv.dims().first().copied().unwrap_or(0),
                    c * geom.kernel * geom.kernel,
                ],
                right: wv.dims().to_vec(),
            });
        }
        let out_c = wv.dims()[0];
        // Fused im2col-GEMM: patch columns are packed straight from the
        // input inside the kernel, so the patch matrix never materializes.
        let out2d = wv.matmul_im2col(xv, &geom)?; // (out_c, n*oh*ow)
        let (oh, ow) = geom.out_hw();
        // Reorder (out_c, n*oh*ow) -> (n, out_c, oh, ow).
        let mut out = Tensor::zeros([n, out_c, oh, ow]);
        let spatial = oh * ow;
        for oc in 0..out_c {
            for in_ in 0..n {
                let src = oc * (n * spatial) + in_ * spatial;
                let dst = (in_ * out_c + oc) * spatial;
                out.data_mut()[dst..dst + spatial]
                    .copy_from_slice(&out2d.data()[src..src + spatial]);
            }
        }
        Ok(self.push(
            out,
            Op::Conv2d {
                x: x.0,
                w: w.0,
                geom,
                n,
                c,
            },
        ))
    }

    /// Depthwise convolution: channel `ch` of the input is convolved with
    /// filter `w[ch]` (weights shaped `(c, k, k)`), preserving channel count.
    ///
    /// # Errors
    ///
    /// Returns shape/geometry errors analogous to [`Graph::conv2d`].
    pub fn depthwise_conv2d(&mut self, x: Var, w: Var, geom: ConvGeometry) -> Result<Var> {
        let xv = self.value(x);
        if xv.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: xv.rank(),
            });
        }
        let (n, c) = (xv.dims()[0], xv.dims()[1]);
        let wv = self.value(w);
        if wv.dims() != [c, geom.kernel, geom.kernel] {
            return Err(TensorError::ShapeMismatch {
                left: vec![c, geom.kernel, geom.kernel],
                right: wv.dims().to_vec(),
            });
        }
        let out = depthwise_forward(xv, wv, &geom)?;
        let _ = n;
        Ok(self.push(
            out,
            Op::DepthwiseConv2d {
                x: x.0,
                w: w.0,
                geom,
            },
        ))
    }

    /// Training-mode batch normalization over the (N, H, W) axes of an NCHW
    /// input, with per-channel scale `gamma` and shift `beta` (both `(c,)`).
    /// Returns the output node and the batch statistics (for running-stat
    /// updates).
    ///
    /// # Errors
    ///
    /// Returns shape errors if the input is not 4-D or the parameter shapes
    /// are not `(c,)`.
    pub fn batch_norm(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    ) -> Result<(Var, BatchStats)> {
        let xv = self.value(x);
        if xv.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: xv.rank(),
            });
        }
        let (n, c, h, w) = (xv.dims()[0], xv.dims()[1], xv.dims()[2], xv.dims()[3]);
        let gv = self.value(gamma);
        let bv = self.value(beta);
        if gv.dims() != [c] || bv.dims() != [c] {
            return Err(TensorError::ShapeMismatch {
                left: vec![c],
                right: if gv.dims() != [c] {
                    gv.dims().to_vec()
                } else {
                    bv.dims().to_vec()
                },
            });
        }
        let m = (n * h * w) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for (ch, mean_ch) in mean.iter_mut().enumerate() {
            let mut acc = 0.0;
            for in_ in 0..n {
                let base = (in_ * c + ch) * h * w;
                acc += xv.data()[base..base + h * w].iter().sum::<f32>();
            }
            *mean_ch = acc / m;
        }
        for (ch, var_ch) in var.iter_mut().enumerate() {
            let mu = mean[ch];
            let mut acc = 0.0;
            for in_ in 0..n {
                let base = (in_ * c + ch) * h * w;
                acc += xv.data()[base..base + h * w]
                    .iter()
                    .map(|&v| (v - mu) * (v - mu))
                    .sum::<f32>();
            }
            *var_ch = acc / m;
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let mut xhat = Tensor::zeros([n, c, h, w]);
        let mut out = Tensor::zeros([n, c, h, w]);
        for in_ in 0..n {
            for ch in 0..c {
                let base = (in_ * c + ch) * h * w;
                let (mu, is) = (mean[ch], inv_std[ch]);
                let (ga, be) = (gv.data()[ch], bv.data()[ch]);
                for off in base..base + h * w {
                    let z = (xv.data()[off] - mu) * is;
                    xhat.data_mut()[off] = z;
                    out.data_mut()[off] = ga * z + be;
                }
            }
        }
        let stats = BatchStats { mean, var };
        let node = self.push(
            out,
            Op::BatchNorm {
                x: x.0,
                gamma: gamma.0,
                beta: beta.0,
                xhat,
                inv_std,
            },
        );
        Ok((node, stats))
    }

    /// Non-overlapping max pooling with window side `k`.
    ///
    /// # Errors
    ///
    /// Returns geometry errors from [`Tensor::max_pool2d`].
    pub fn max_pool2d(&mut self, x: Var, k: usize) -> Result<Var> {
        let (out, arg) = self.value(x).max_pool2d(k)?;
        Ok(self.push(out, Op::MaxPool { x: x.0, arg }))
    }

    /// Non-overlapping average pooling with window side `k`.
    ///
    /// # Errors
    ///
    /// Returns geometry errors from [`Tensor::avg_pool2d`].
    pub fn avg_pool2d(&mut self, x: Var, k: usize) -> Result<Var> {
        let out = self.value(x).avg_pool2d(k)?;
        Ok(self.push(out, Op::AvgPool { x: x.0, k }))
    }

    /// Global average pooling `(n, c, h, w) -> (n, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the input is 4-D.
    pub fn global_avg_pool2d(&mut self, x: Var) -> Result<Var> {
        let out = self.value(x).global_avg_pool2d()?;
        Ok(self.push(out, Op::GlobalAvgPool(x.0)))
    }

    /// Softmax cross-entropy of logits `(batch, classes)` against integer
    /// `labels`, averaged over the batch. Produces a scalar node.
    ///
    /// # Errors
    ///
    /// Returns shape errors if the logits are not 2-D, the label count does
    /// not match the batch, or a label is out of range.
    pub fn cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Result<Var> {
        let lv = self.value(logits);
        if lv.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: lv.rank(),
            });
        }
        let (batch, classes) = (lv.dims()[0], lv.dims()[1]);
        if labels.len() != batch {
            return Err(TensorError::InvalidArgument(format!(
                "{} labels for batch of {batch}",
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(TensorError::IndexOutOfRange {
                index: bad,
                size: classes,
            });
        }
        let softmax = lv.softmax_rows()?;
        let mut loss = 0.0;
        for (row, &label) in labels.iter().enumerate() {
            let p = softmax.data()[row * classes + label].max(1e-12);
            loss -= p.ln();
        }
        loss /= batch as f32;
        Ok(self.push(
            Tensor::scalar(loss),
            Op::CrossEntropy {
                logits: logits.0,
                softmax,
                labels: labels.to_vec(),
            },
        ))
    }

    /// Backward routing for the NN ops (called from the graph's main
    /// reverse sweep).
    pub(crate) fn accumulate_nn_parents(
        &self,
        op: &Op,
        grad: &Tensor,
        grads: &mut [Option<Tensor>],
    ) -> Result<()> {
        let add_grad = |idx: usize, g: Tensor, grads: &mut [Option<Tensor>]| -> Result<()> {
            match &mut grads[idx] {
                Some(acc) => acc.axpy(1.0, &g)?,
                slot @ None => *slot = Some(g),
            }
            Ok(())
        };
        match op {
            Op::Conv2d { x, w, geom, n, c } => {
                let out_c = self.nodes[*w].value.dims()[0];
                let (oh, ow) = geom.out_hw();
                let spatial = oh * ow;
                // Reorder dY (n, out_c, oh, ow) -> (out_c, n*oh*ow).
                let mut dy2d = Tensor::zeros([out_c, *n * spatial]);
                for in_ in 0..*n {
                    for oc in 0..out_c {
                        let src = (in_ * out_c + oc) * spatial;
                        let dst = oc * (*n * spatial) + in_ * spatial;
                        dy2d.data_mut()[dst..dst + spatial]
                            .copy_from_slice(&grad.data()[src..src + spatial]);
                    }
                }
                // dW = dY cols^T ; dCols = W^T dY ; dX = col2im(dCols).
                // The dW product packs patches from the saved input node
                // (fused, never materializing cols) — bitwise identical to
                // the former dy2d.matmul_nt(&cols).
                let dw = dy2d.matmul_nt_im2col(&self.nodes[*x].value, geom)?; // (out_c, c*k*k)
                let dcols = self.nodes[*w].value.matmul_tn(&dy2d)?;
                let dx = dcols.col2im(geom, *n, *c)?;
                add_grad(*w, dw, grads)?;
                add_grad(*x, dx, grads)?;
            }
            Op::DepthwiseConv2d { x, w, geom } => {
                let (dx, dw) =
                    depthwise_backward(&self.nodes[*x].value, &self.nodes[*w].value, geom, grad)?;
                add_grad(*x, dx, grads)?;
                add_grad(*w, dw, grads)?;
            }
            Op::BatchNorm {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            } => {
                let xv = &self.nodes[*x].value;
                let (n, c, h, w) = (xv.dims()[0], xv.dims()[1], xv.dims()[2], xv.dims()[3]);
                let m = (n * h * w) as f32;
                let gv = &self.nodes[*gamma].value;
                let mut dgamma = vec![0.0f32; c];
                let mut dbeta = vec![0.0f32; c];
                let mut sum_dxhat = vec![0.0f32; c];
                let mut sum_dxhat_xhat = vec![0.0f32; c];
                for in_ in 0..n {
                    for ch in 0..c {
                        let base = (in_ * c + ch) * h * w;
                        for off in base..base + h * w {
                            let dy = grad.data()[off];
                            let xh = xhat.data()[off];
                            dbeta[ch] += dy;
                            dgamma[ch] += dy * xh;
                            let dxh = dy * gv.data()[ch];
                            sum_dxhat[ch] += dxh;
                            sum_dxhat_xhat[ch] += dxh * xh;
                        }
                    }
                }
                let mut dx = Tensor::zeros([n, c, h, w]);
                for in_ in 0..n {
                    for ch in 0..c {
                        let base = (in_ * c + ch) * h * w;
                        let scale = inv_std[ch] / m;
                        for off in base..base + h * w {
                            let dy = grad.data()[off];
                            let xh = xhat.data()[off];
                            let dxh = dy * gv.data()[ch];
                            dx.data_mut()[off] =
                                scale * (m * dxh - sum_dxhat[ch] - xh * sum_dxhat_xhat[ch]);
                        }
                    }
                }
                add_grad(*x, dx, grads)?;
                add_grad(*gamma, Tensor::from_vec(dgamma, [c])?, grads)?;
                add_grad(*beta, Tensor::from_vec(dbeta, [c])?, grads)?;
            }
            Op::MaxPool { x, arg } => {
                let mut dx = Tensor::zeros(self.nodes[*x].value.shape().clone());
                for (out_off, &src) in arg.iter().enumerate() {
                    dx.data_mut()[src] += grad.data()[out_off];
                }
                add_grad(*x, dx, grads)?;
            }
            Op::AvgPool { x, k } => {
                let xs = self.nodes[*x].value.dims();
                let dx = grad.avg_unpool2d(*k, xs[2], xs[3])?;
                add_grad(*x, dx, grads)?;
            }
            Op::GlobalAvgPool(x) => {
                let xs = self.nodes[*x].value.dims();
                let (n, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
                let inv = 1.0 / (h * w) as f32;
                let mut dx = Tensor::zeros([n, c, h, w]);
                for in_ in 0..n {
                    for ch in 0..c {
                        let g = grad.data()[in_ * c + ch] * inv;
                        let base = (in_ * c + ch) * h * w;
                        for v in &mut dx.data_mut()[base..base + h * w] {
                            *v = g;
                        }
                    }
                }
                add_grad(*x, dx, grads)?;
            }
            Op::CrossEntropy {
                logits,
                softmax,
                labels,
            } => {
                let batch = labels.len();
                let classes = softmax.dims()[1];
                let upstream = grad.data()[0] / batch as f32;
                let mut dl = softmax.scale(upstream);
                for (row, &label) in labels.iter().enumerate() {
                    dl.data_mut()[row * classes + label] -= upstream;
                }
                add_grad(*logits, dl, grads)?;
            }
            _ => unreachable!("non-NN op routed to accumulate_nn_parents"),
        }
        Ok(())
    }
}

/// Direct (loop) depthwise convolution forward.
fn depthwise_forward(x: &Tensor, w: &Tensor, geom: &ConvGeometry) -> Result<Tensor> {
    let (n, c, h, ww) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    if h != geom.in_h || ww != geom.in_w {
        return Err(TensorError::InvalidGeometry(format!(
            "geometry expects {}x{}, input is {h}x{ww}",
            geom.in_h, geom.in_w
        )));
    }
    let k = geom.kernel;
    let (oh, ow) = geom.out_hw();
    let pad = geom.pad as isize;
    let mut out = Tensor::zeros([n, c, oh, ow]);
    for in_ in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let base_y = (oy * geom.stride) as isize - pad;
                    let base_x = (ox * geom.stride) as isize - pad;
                    let mut acc = 0.0;
                    for ky in 0..k {
                        let y = base_y + ky as isize;
                        if y < 0 || y >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let xx = base_x + kx as isize;
                            if xx < 0 || xx >= ww as isize {
                                continue;
                            }
                            let xi = ((in_ * c + ch) * h + y as usize) * ww + xx as usize;
                            let wi = (ch * k + ky) * k + kx;
                            acc += x.data()[xi] * w.data()[wi];
                        }
                    }
                    out.data_mut()[((in_ * c + ch) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Ok(out)
}

/// Direct depthwise convolution backward: returns `(dx, dw)`.
fn depthwise_backward(
    x: &Tensor,
    w: &Tensor,
    geom: &ConvGeometry,
    dy: &Tensor,
) -> Result<(Tensor, Tensor)> {
    let (n, c, h, ww) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let k = geom.kernel;
    let (oh, ow) = geom.out_hw();
    let pad = geom.pad as isize;
    let mut dx = Tensor::zeros([n, c, h, ww]);
    let mut dw = Tensor::zeros([c, k, k]);
    for in_ in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dy.data()[((in_ * c + ch) * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    let base_y = (oy * geom.stride) as isize - pad;
                    let base_x = (ox * geom.stride) as isize - pad;
                    for ky in 0..k {
                        let y = base_y + ky as isize;
                        if y < 0 || y >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let xx = base_x + kx as isize;
                            if xx < 0 || xx >= ww as isize {
                                continue;
                            }
                            let xi = ((in_ * c + ch) * h + y as usize) * ww + xx as usize;
                            let wi = (ch * k + ky) * k + kx;
                            dx.data_mut()[xi] += g * w.data()[wi];
                            dw.data_mut()[wi] += g * x.data()[xi];
                        }
                    }
                }
            }
        }
    }
    Ok((dx, dw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_scalar_fn;

    fn seeded(shape: &[usize], scale: f32, salt: usize) -> Tensor {
        Tensor::from_fn(shape.to_vec(), |i| {
            let h = i.iter().enumerate().fold(salt, |acc, (k, &v)| {
                acc.wrapping_mul(31).wrapping_add(v * (k + 7))
            });
            ((h % 17) as f32 / 17.0 - 0.5) * scale
        })
    }

    #[test]
    fn conv2d_matches_reference_shape_and_values() {
        let mut g = Graph::new();
        // Identity 1x1 kernel on 2 channels picks out channel sums.
        let x = g.input(seeded(&[2, 2, 3, 3], 2.0, 1));
        let w = g.input(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]).unwrap());
        let geom = ConvGeometry::new(3, 3, 1, 1, 0).unwrap();
        let y = g.conv2d(x, w, geom).unwrap();
        assert_eq!(g.value(y).dims(), &[2, 2, 3, 3]);
        // With identity weights the output equals the input.
        assert_eq!(g.value(y).data(), g.value(x).data());
    }

    #[test]
    fn conv2d_validates_weight_shape() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([1, 2, 4, 4]));
        let w = g.input(Tensor::zeros([3, 17])); // should be (3, 2*3*3=18)
        let geom = ConvGeometry::new(4, 4, 3, 1, 1).unwrap();
        assert!(g.conv2d(x, w, geom).is_err());
    }

    #[test]
    fn conv2d_gradcheck_weights_and_input() {
        let x0 = seeded(&[2, 2, 4, 4], 1.0, 3);
        let w0 = seeded(&[3, 2 * 3 * 3], 0.6, 5);
        let geom = ConvGeometry::new(4, 4, 3, 2, 1).unwrap();
        check_scalar_fn(&w0, 1e-2, 3e-2, |w| {
            let mut g = Graph::new();
            let xv = g.input(x0.clone());
            let wv = g.input(w.clone());
            let y = g.conv2d(xv, wv, geom).unwrap();
            let sq = g.square(y);
            let loss = g.sum(sq);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(wv).unwrap().clone(),
            )
        });
        check_scalar_fn(&x0, 1e-2, 3e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let wv = g.input(w0.clone());
            let y = g.conv2d(xv, wv, geom).unwrap();
            let sq = g.square(y);
            let loss = g.sum(sq);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn depthwise_conv_gradcheck() {
        let x0 = seeded(&[2, 3, 4, 4], 1.0, 11);
        let w0 = seeded(&[3, 3, 3], 0.8, 13);
        let geom = ConvGeometry::new(4, 4, 3, 1, 1).unwrap();
        check_scalar_fn(&w0, 1e-2, 3e-2, |w| {
            let mut g = Graph::new();
            let xv = g.input(x0.clone());
            let wv = g.input(w.clone());
            let y = g.depthwise_conv2d(xv, wv, geom).unwrap();
            let sq = g.square(y);
            let loss = g.sum(sq);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(wv).unwrap().clone(),
            )
        });
        check_scalar_fn(&x0, 1e-2, 3e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let wv = g.input(w0.clone());
            let y = g.depthwise_conv2d(xv, wv, geom).unwrap();
            let sq = g.square(y);
            let loss = g.sum(sq);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn depthwise_conv_validates_weight_shape() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([1, 3, 4, 4]));
        let w = g.input(Tensor::zeros([2, 3, 3]));
        let geom = ConvGeometry::new(4, 4, 3, 1, 1).unwrap();
        assert!(g.depthwise_conv2d(x, w, geom).is_err());
    }

    #[test]
    fn batch_norm_normalizes_channels() {
        let mut g = Graph::new();
        let x = g.input(seeded(&[4, 2, 3, 3], 5.0, 17));
        let gamma = g.input(Tensor::ones([2]));
        let beta = g.input(Tensor::zeros([2]));
        let (y, stats) = g.batch_norm(x, gamma, beta, 1e-5).unwrap();
        // Output per channel should have ~zero mean and ~unit variance.
        let yv = g.value(y);
        let (n, c, h, w) = (4, 2, 3, 3);
        for ch in 0..c {
            let mut vals = Vec::new();
            for in_ in 0..n {
                let base = (in_ * c + ch) * h * w;
                vals.extend_from_slice(&yv.data()[base..base + h * w]);
            }
            let t = Tensor::from_vec(vals, [n * h * w]).unwrap();
            assert!(t.mean().abs() < 1e-4);
            assert!((t.variance() - 1.0).abs() < 1e-2);
        }
        assert_eq!(stats.mean.len(), 2);
        assert_eq!(stats.var.len(), 2);
    }

    #[test]
    fn batch_norm_gradcheck_all_parameters() {
        let x0 = seeded(&[3, 2, 2, 2], 2.0, 23);
        let gamma0 = Tensor::from_vec(vec![1.2, 0.7], [2]).unwrap();
        let beta0 = Tensor::from_vec(vec![0.1, -0.3], [2]).unwrap();
        let run = |x: &Tensor, gamma: &Tensor, beta: &Tensor| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let gv = g.input(gamma.clone());
            let bv = g.input(beta.clone());
            let (y, _) = g.batch_norm(xv, gv, bv, 1e-5).unwrap();
            let sq = g.square(y);
            // Weighted sum to make the loss non-symmetric in elements.
            let weights = g.input(Tensor::from_fn([3, 2, 2, 2], |i| {
                0.1 + 0.05 * (i.iter().sum::<usize>() as f32)
            }));
            let weighted = g.mul(sq, weights).unwrap();
            let loss = g.sum(weighted);
            let grads = g.backward(loss).unwrap();
            (g.value(loss).item().unwrap(), grads, xv, gv, bv)
        };
        check_scalar_fn(&x0, 1e-2, 5e-2, |x| {
            let (l, grads, xv, _, _) = run(x, &gamma0, &beta0);
            (l, grads.get(xv).unwrap().clone())
        });
        check_scalar_fn(&gamma0, 1e-3, 2e-2, |gamma| {
            let (l, grads, _, gv, _) = run(&x0, gamma, &beta0);
            (l, grads.get(gv).unwrap().clone())
        });
        check_scalar_fn(&beta0, 1e-3, 2e-2, |beta| {
            let (l, grads, _, _, bv) = run(&x0, &gamma0, beta);
            (l, grads.get(bv).unwrap().clone())
        });
    }

    #[test]
    fn batch_norm_validates_shapes() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([1, 2, 2, 2]));
        let gamma = g.input(Tensor::ones([3]));
        let beta = g.input(Tensor::zeros([2]));
        assert!(g.batch_norm(x, gamma, beta, 1e-5).is_err());
        let x2 = g.input(Tensor::zeros([2, 2]));
        let gamma2 = g.input(Tensor::ones([2]));
        assert!(g.batch_norm(x2, gamma2, beta, 1e-5).is_err());
    }

    #[test]
    fn max_pool_routes_gradient_to_argmax() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], [1, 1, 2, 2]).unwrap());
        let y = g.max_pool2d(x, 2).unwrap();
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(x).unwrap().data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_gradcheck() {
        let x0 = seeded(&[1, 2, 4, 4], 1.5, 29);
        check_scalar_fn(&x0, 1e-2, 2e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = g.avg_pool2d(xv, 2).unwrap();
            let sq = g.square(y);
            let loss = g.sum(sq);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn global_avg_pool_gradcheck() {
        let x0 = seeded(&[2, 3, 2, 2], 1.0, 31);
        check_scalar_fn(&x0, 1e-2, 2e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = g.global_avg_pool2d(xv).unwrap();
            let sq = g.square(y);
            let loss = g.sum(sq);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn cross_entropy_on_uniform_logits_is_log_classes() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::zeros([4, 10]));
        let loss = g.cross_entropy(logits, &[0, 3, 7, 9]).unwrap();
        let expected = (10.0f32).ln();
        assert!((g.value(loss).item().unwrap() - expected).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let l0 = seeded(&[3, 5], 2.0, 37);
        let labels = vec![1usize, 4, 0];
        check_scalar_fn(&l0, 1e-2, 2e-2, |l| {
            let mut g = Graph::new();
            let lv = g.input(l.clone());
            let loss = g.cross_entropy(lv, &labels).unwrap();
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(lv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn cross_entropy_validates_labels() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::zeros([2, 3]));
        assert!(g.cross_entropy(logits, &[0]).is_err()); // wrong count
        assert!(g.cross_entropy(logits, &[0, 3]).is_err()); // class out of range
        let vec1d = g.input(Tensor::zeros([3]));
        assert!(g.cross_entropy(vec1d, &[0, 1, 2]).is_err()); // wrong rank
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero_per_row() {
        // softmax - onehot has zero row sum.
        let mut g = Graph::new();
        let logits = g.input(seeded(&[4, 6], 3.0, 41));
        let loss = g.cross_entropy(logits, &[0, 1, 2, 3]).unwrap();
        let grads = g.backward(loss).unwrap();
        let gl = grads.get(logits).unwrap();
        for row in 0..4 {
            let s: f32 = gl.data()[row * 6..(row + 1) * 6].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }
}
