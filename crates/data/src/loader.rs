//! Shuffled mini-batch iteration over a [`Dataset`].

use crate::synth::Dataset;
use hero_tensor::rng::Rng;
use hero_tensor::rng::StdRng;
use hero_tensor::Tensor;

/// One mini-batch: images and aligned labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Images `(b, c, h, w)`.
    pub images: Tensor,
    /// Labels, length `b`.
    pub labels: Vec<usize>,
}

/// Produces shuffled mini-batches, reshuffling every epoch.
#[derive(Debug)]
pub struct Loader {
    batch_size: usize,
    rng: StdRng,
}

impl Loader {
    /// Creates a loader with the given batch size and shuffle seed.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Loader {
            batch_size,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Returns the batches of one epoch in a fresh shuffled order. The
    /// final batch may be smaller than `batch_size`.
    pub fn epoch(&mut self, data: &Dataset) -> Vec<Batch> {
        let n = data.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher-Yates shuffle.
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let (c, h, w) = data.image_dims();
        let pix = c * h * w;
        let mut batches = Vec::with_capacity(n.div_ceil(self.batch_size));
        for chunk in order.chunks(self.batch_size) {
            let mut imgs = Vec::with_capacity(chunk.len() * pix);
            let mut labels = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                imgs.extend_from_slice(&data.images.data()[idx * pix..(idx + 1) * pix]);
                labels.push(data.labels[idx]);
            }
            let images = Tensor::from_vec(imgs, [chunk.len(), c, h, w])
                .expect("volume matches by construction");
            batches.push(Batch { images, labels });
        }
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthGenerator, SynthSpec};

    fn data(n: usize) -> Dataset {
        SynthGenerator::new(SynthSpec::default()).generate(n, 1)
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let d = data(23);
        let mut loader = Loader::new(5, 0);
        let batches = loader.epoch(&d);
        assert_eq!(batches.len(), 5);
        let total: usize = batches.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total, 23);
        assert_eq!(batches.last().unwrap().labels.len(), 3);
        // Label histogram matches the dataset.
        let mut count = vec![0usize; d.classes];
        for b in &batches {
            for &l in &b.labels {
                count[l] += 1;
            }
        }
        let mut expected = vec![0usize; d.classes];
        for &l in &d.labels {
            expected[l] += 1;
        }
        assert_eq!(count, expected);
    }

    #[test]
    fn shuffling_changes_across_epochs() {
        let d = data(40);
        let mut loader = Loader::new(8, 1);
        let e1: Vec<usize> = loader
            .epoch(&d)
            .iter()
            .flat_map(|b| b.labels.clone())
            .collect();
        let e2: Vec<usize> = loader
            .epoch(&d)
            .iter()
            .flat_map(|b| b.labels.clone())
            .collect();
        assert_ne!(e1, e2, "two epochs produced identical order");
    }

    #[test]
    fn images_align_with_labels() {
        // Build a dataset where each image is constant = its label.
        let mut d = data(20);
        let pix = 3 * 8 * 8;
        for i in 0..20 {
            let l = d.labels[i] as f32;
            for v in &mut d.images.data_mut()[i * pix..(i + 1) * pix] {
                *v = l;
            }
        }
        let mut loader = Loader::new(6, 2);
        for b in loader.epoch(&d) {
            for (row, &label) in b.labels.iter().enumerate() {
                let first = b.images.get(&[row, 0, 0, 0]).unwrap();
                assert_eq!(first, label as f32);
            }
        }
    }

    #[test]
    fn seeded_loader_is_deterministic() {
        let d = data(30);
        let a: Vec<usize> = Loader::new(7, 9)
            .epoch(&d)
            .iter()
            .flat_map(|b| b.labels.clone())
            .collect();
        let b: Vec<usize> = Loader::new(7, 9)
            .epoch(&d)
            .iter()
            .flat_map(|b| b.labels.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        Loader::new(0, 0);
    }
}
