//! Power iteration for the dominant Hessian eigenvalue.

use crate::hvp::{fd_hvp, GradOracle};
use hero_tensor::rng::Rng;
use hero_tensor::{fill_standard_normal, global_dot, global_norm_l2, Result, Tensor};

/// Result of a power-iteration run.
#[derive(Debug, Clone)]
pub struct PowerIterResult {
    /// Rayleigh-quotient estimate of the dominant eigenvalue λ_max
    /// (the `v` of Theorem 3).
    pub eigenvalue: f32,
    /// The corresponding unit eigenvector estimate, shaped like the
    /// parameters.
    pub eigenvector: Vec<Tensor>,
    /// Iterations actually run.
    pub iterations: usize,
    /// Whether the eigenvalue moved less than the tolerance on the final
    /// iteration.
    pub converged: bool,
}

/// Configuration for [`power_iteration`].
#[derive(Debug, Clone, Copy)]
pub struct PowerIterConfig {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Relative change in eigenvalue below which iteration stops.
    pub tol: f32,
    /// Finite-difference step for the inner HVPs.
    pub eps: f32,
}

impl Default for PowerIterConfig {
    fn default() -> Self {
        PowerIterConfig {
            max_iters: 30,
            tol: 1e-3,
            eps: 1e-3,
        }
    }
}

/// Estimates the dominant Hessian eigenvalue of `oracle` at `params` by
/// power iteration over finite-difference HVPs.
///
/// Each iteration costs one gradient evaluation. The returned eigenvalue is
/// the Rayleigh quotient `uᵀHu` of the final unit iterate `u`, which is
/// what Theorem 3's bounds consume.
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn power_iteration(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    cfg: PowerIterConfig,
    rng: &mut impl Rng,
) -> Result<PowerIterResult> {
    let _obs = hero_obs::span("power");
    let (_, base_grad) = oracle.grad(params)?;
    // Random unit start direction.
    let mut u: Vec<Tensor> = params
        .iter()
        .map(|p| {
            let mut t = Tensor::zeros(p.shape().clone());
            fill_standard_normal(&mut t, rng);
            t
        })
        .collect();
    normalize(&mut u);
    let mut eigenvalue = 0.0f32;
    let mut converged = false;
    let mut iterations = 0;
    for it in 0..cfg.max_iters {
        iterations = it + 1;
        let hu = fd_hvp(oracle, params, &base_grad, &u, cfg.eps)?;
        let rayleigh = global_dot(&u, &hu);
        let norm = global_norm_l2(&hu);
        if norm <= f32::MIN_POSITIVE {
            // H u = 0: the direction is in the null space; eigenvalue 0.
            eigenvalue = 0.0;
            converged = true;
            break;
        }
        let delta = (rayleigh - eigenvalue).abs();
        eigenvalue = rayleigh;
        u = hu;
        normalize(&mut u);
        if it > 0 && delta <= cfg.tol * eigenvalue.abs().max(1e-6) {
            converged = true;
            break;
        }
    }
    Ok(PowerIterResult {
        eigenvalue,
        eigenvector: u,
        iterations,
        converged,
    })
}

fn normalize(v: &mut [Tensor]) {
    let n = global_norm_l2(v);
    if n > f32::MIN_POSITIVE {
        for t in v {
            t.scale_in_place(1.0 / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::Quadratic;
    use hero_tensor::rng::StdRng;

    #[test]
    fn recovers_dominant_eigenvalue_of_diagonal() {
        let q = Quadratic::diag(&[1.0, 3.0, 10.0, 0.5]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::from_vec(vec![0.1, 0.2, -0.1, 0.3], [4]).unwrap()];
        let res = power_iteration(
            &mut oracle,
            &params,
            PowerIterConfig::default(),
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        assert!((res.eigenvalue - 10.0).abs() < 0.2, "λ={}", res.eigenvalue);
        assert!(res.converged);
        // Eigenvector should align with e_2.
        let ev = &res.eigenvector[0];
        assert!(ev.data()[2].abs() > 0.95);
    }

    #[test]
    fn eigenvector_is_unit_norm() {
        let q = Quadratic::diag(&[5.0, 1.0]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([2])];
        let res = power_iteration(
            &mut oracle,
            &params,
            PowerIterConfig::default(),
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        assert!((global_norm_l2(&res.eigenvector) - 1.0).abs() < 1e-4);
        assert!((res.eigenvalue - 5.0).abs() < 0.1);
    }

    #[test]
    fn zero_hessian_reports_zero() {
        // Linear objective: gradient constant, Hessian zero.
        let mut oracle =
            |ps: &[Tensor]| Ok((ps[0].sum(), vec![Tensor::ones(ps[0].shape().clone())]));
        let params = vec![Tensor::zeros([3])];
        let res = power_iteration(
            &mut oracle,
            &params,
            PowerIterConfig::default(),
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        assert_eq!(res.eigenvalue, 0.0);
        assert!(res.converged);
    }

    #[test]
    fn respects_max_iterations() {
        let q = Quadratic::diag(&[4.0, 3.9]); // close eigenvalues converge slowly
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([2])];
        let cfg = PowerIterConfig {
            max_iters: 2,
            tol: 1e-12,
            eps: 1e-3,
        };
        let res =
            power_iteration(&mut oracle, &params, cfg, &mut StdRng::seed_from_u64(4)).unwrap();
        assert!(res.iterations <= 2);
    }
}
